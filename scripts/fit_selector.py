#!/usr/bin/env python
"""Fit the adaptive selector's bias thresholds against the bundled corpus.

The probe's closed-form size models (repro.selection.probe) are cheap on
purpose, so each one systematically misses a piece of its codec: MPLG's
magnitude-sign retry, RZE's multi-level bitmap detail, and — by far the
largest gap — DPratio's restart-framed FCM pass, whose benefit is
data-dependent and invisible to a single-chunk probe.  This script closes
the gap empirically: it encodes every chunk of the bundled corpus with
every candidate codec, compares actual payload bytes to the modelled
bytes, and fits one multiplicative bias per codec as the *median* of the
actual/modelled ratio.  The median is deliberate — per-chunk ratios are
heavy-tailed (a chunk that defeats FCM restart can cost 1.6x its model),
and the selector only needs the ordering of calibrated sizes to be right
for most chunks, not the magnitudes.

Usage:
    PYTHONPATH=src python scripts/fit_selector.py --report
    PYTHONPATH=src python scripts/fit_selector.py --write   # refit the
        committed src/repro/selection/trained_thresholds.json

The --report table shows, per suite: the geo-mean compression ratio of
each fixed codec, of oracle selection (per-chunk argmin of actual
sizes), and of the fitted policy — plus its regret vs the oracle.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

import numpy as np

from repro.core.codecs import selection_candidates
from repro.core.container import DTYPE_F32, DTYPE_F64
from repro.datasets.registry import dp_suite, sp_suite
from repro.selection.policy import TRAINED_PATH, HeuristicPolicy
from repro.selection.probe import probe_chunks

CHUNK_SIZE = 1 << 16


def corpus_chunks(scale: float):
    """Yield (suite, file, dtype_code, chunks) for every bundled file."""
    for suite_name, suite, code in (
        ("sp", sp_suite(), DTYPE_F32),
        ("dp", dp_suite(), DTYPE_F64),
    ):
        for domain in suite:
            for dataset in domain.files:
                data = dataset.load(scale).tobytes()
                chunks = [
                    data[i : i + CHUNK_SIZE]
                    for i in range(0, len(data), CHUNK_SIZE)
                ]
                yield suite_name, dataset.name, code, chunks


def measure(scale: float):
    """Per-chunk modelled and actual sizes for every candidate codec.

    Returns rows of (suite, dtype_code, chunk_len, modeled, actual) where
    modeled/actual map codec name -> bytes.
    """
    pipelines: dict[str, object] = {}
    rows = []
    for suite_name, _file_name, code, chunks in corpus_chunks(scale):
        candidates = selection_candidates(code)
        probes = probe_chunks(chunks, candidates)
        for chunk, probe in zip(chunks, probes):
            actual = {}
            for codec in candidates:
                pipe = pipelines.get(codec.name)
                if pipe is None:
                    pipe = codec.make_pipeline(
                        codec.global_stage_factory is not None
                    )
                    pipelines[codec.name] = pipe
                actual[codec.name] = len(pipe.encode_chunk(chunk))
            rows.append((suite_name, code, len(chunk), probe.modeled, actual))
    return rows


def fit_bias(rows) -> dict[str, float]:
    """Median actual/modelled ratio per codec (3 decimals)."""
    ratios: dict[str, list[float]] = {}
    for _suite, _code, _n, modeled, actual in rows:
        for name, size in actual.items():
            if modeled.get(name):
                ratios.setdefault(name, []).append(size / modeled[name])
    return {
        name: round(float(np.median(vals)), 3)
        for name, vals in sorted(ratios.items())
    }


def refine_bias(rows, bias: dict[str, float]) -> dict[str, float]:
    """Grid-search each suite's ratio-codec bias to minimise picked bytes.

    Within a suite the choice depends only on the *relative* bias of its
    two candidates, so a 1-D sweep per suite is exact.  The median fit is
    the starting point; the sweep absorbs asymmetric model error (being
    wrong toward the ratio codec costs more than being wrong toward the
    speed codec on some corpora, less on others).  Ties prefer the
    multiplier closest to 1.0 to stay near the unrefined fit.
    """
    bias = dict(bias)
    for suite, ratio_name in (("sp", "spratio"), ("dp", "dpratio")):
        suite_rows = [r for r in rows if r[0] == suite]
        if not suite_rows or ratio_name not in bias:
            continue
        factors = np.geomspace(0.6, 1.4, 81)
        best = (None, None)
        for factor in sorted(factors, key=lambda f: abs(math.log(f))):
            trial = dict(bias, **{ratio_name: bias[ratio_name] * factor})
            total = 0
            for _suite, _code, _n, modeled, actual in suite_rows:
                scored = {
                    name: modeled[name] * trial.get(name, 1.0)
                    for name in actual
                    if modeled.get(name)
                }
                pick = (
                    min(scored, key=lambda k: (scored[k], k))
                    if scored else min(actual)
                )
                total += actual[pick]
            if best[0] is None or total < best[0]:
                best = (total, factor)
        bias[ratio_name] = round(bias[ratio_name] * best[1], 3)
    return bias


def report(rows, bias: dict[str, float]) -> str:
    """Geo-mean ratio table: fixed codecs vs oracle vs fitted policy."""
    policy = HeuristicPolicy(bias=bias)
    lines = []
    for suite in ("sp", "dp"):
        suite_rows = [r for r in rows if r[0] == suite]
        if not suite_rows:
            continue
        names = sorted(suite_rows[0][4])
        totals = {name: 0 for name in names}
        oracle = policy_total = raw = 0
        wins: dict[str, int] = dict.fromkeys(names, 0)
        for _suite, code, n, modeled, actual in suite_rows:
            raw += n
            for name in names:
                totals[name] += actual[name]
            oracle += min(actual.values())
            scored = {
                name: modeled[name] * bias.get(name, 1.0)
                for name in names
                if modeled.get(name)
            }
            pick = min(scored, key=lambda k: (scored[k], k)) if scored else names[0]
            wins[pick] += 1
            policy_total += actual[pick]
        lines.append(f"{suite} suite ({len(suite_rows)} chunks):")
        for name in names:
            lines.append(f"  {name:8s} ratio {raw / totals[name]:.4f}")
        lines.append(f"  {'oracle':8s} ratio {raw / oracle:.4f}")
        lines.append(
            f"  {'fitted':8s} ratio {raw / policy_total:.4f} "
            f"(regret {policy_total / oracle - 1:+.2%}, picks {wins})"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1.0,
                        help="corpus scale factor (default 1.0)")
    parser.add_argument("--report", action="store_true",
                        help="print the per-suite geo-mean ratio table")
    parser.add_argument("--write", action="store_true",
                        help=f"rewrite {TRAINED_PATH}")
    args = parser.parse_args(argv)

    rows = measure(args.scale)
    bias = refine_bias(rows, fit_bias(rows))
    print("fitted bias:", json.dumps(bias, indent=2))
    if args.report:
        print(report(rows, bias))
    if args.write:
        payload = {
            "schema": 1,
            "fitted_by": "scripts/fit_selector.py",
            "corpus": (
                f"bundled synthetic suites (sp_suite + dp_suite), "
                f"scale {args.scale}, chunk {CHUNK_SIZE}"
            ),
            "bias": bias,
        }
        TRAINED_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {TRAINED_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
