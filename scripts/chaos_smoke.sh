#!/usr/bin/env bash
# CI smoke test for the resilient serving tier.
#
# Builds the full fault-tolerant topology on one machine:
#
#     client -> router -> [ chaos-proxy -> backend A,  backend B ]
#
# with the chaos proxy injecting connection resets and header
# corruption on a FIXED seed, so the fault schedule is identical on
# every run.  The retrying client must ride through all of it and the
# results must be byte-identical to the local CLI's — resets may cost
# retries, never bytes.  A second pass replays seeded `fuzz --frames`
# mutants through the proxy path and requires the backend to survive.
#
# The caller should wrap this script in a hard timeout (CI uses
# `timeout 300`).

set -euo pipefail

PORT_A="${FPRZ_CHAOS_BACKEND_A:-19763}"
PORT_B="${FPRZ_CHAOS_BACKEND_B:-19764}"
PORT_CHAOS="${FPRZ_CHAOS_PROXY:-19765}"
PORT_ROUTER="${FPRZ_CHAOS_ROUTER:-19766}"
SEED=20250808
export PYTHONPATH="${PYTHONPATH:-src}"

workdir="$(mktemp -d)"
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

python - "$workdir/input.f32" <<'PY'
import sys
import numpy as np
rng = np.random.default_rng(0)
data = np.cumsum(rng.normal(scale=0.01, size=150_000)).astype(np.float32)
open(sys.argv[1], "wb").write(data.tobytes())
PY

python -m repro.cli serve --port "$PORT_A" &
PIDS+=($!)
python -m repro.cli serve --port "$PORT_B" &
PIDS+=($!)
python -m repro.cli chaos --upstream "127.0.0.1:$PORT_A" \
    --port "$PORT_CHAOS" --seed "$SEED" \
    --reset-rate 0.10 --corrupt-rate 0.05 &
PIDS+=($!)

python - "$PORT_A" "$PORT_B" "$PORT_CHAOS" <<'PY'
import sys
from repro.service import wait_for_port
for port in sys.argv[1:]:
    wait_for_port("127.0.0.1", int(port), timeout=30)
PY

python -m repro.cli route --port "$PORT_ROUTER" \
    --backend "127.0.0.1:$PORT_CHAOS" --backend "127.0.0.1:$PORT_B" \
    --health-interval 0.2 --failure-threshold 2 --open-seconds 0.5 &
PIDS+=($!)

python - "$PORT_ROUTER" <<'PY'
import sys
from repro.service import wait_for_port
wait_for_port("127.0.0.1", int(sys.argv[1]), timeout=30)
PY
echo "chaos-smoke: topology up (seed $SEED)"

# The schedule is replayable: print what the proxy will do.
python -m repro.cli chaos --upstream "127.0.0.1:$PORT_A" --seed "$SEED" \
    --reset-rate 0.10 --corrupt-rate 0.05 --describe 12

# Through the router: resets cost retries, never bytes.
python -m repro.cli remote compress "$workdir/input.f32" \
    "$workdir/routed.fprz" --addr "127.0.0.1:$PORT_ROUTER" --retries 10 \
    --dtype float32
python -m repro.cli compress "$workdir/input.f32" "$workdir/local.fprz" \
    --dtype float32
cmp "$workdir/routed.fprz" "$workdir/local.fprz"
python -m repro.cli remote decompress "$workdir/routed.fprz" \
    "$workdir/restored.f32" --addr "127.0.0.1:$PORT_ROUTER" --retries 10
cmp "$workdir/input.f32" "$workdir/restored.f32"
echo "chaos-smoke: routed round trip is byte-identical despite faults"

# Straight through the faulty path, no router: the retrying client
# alone must absorb the schedule.
python -m repro.cli remote compress "$workdir/input.f32" \
    "$workdir/direct.fprz" --addr "127.0.0.1:$PORT_CHAOS" --retries 10 \
    --dtype float32
cmp "$workdir/direct.fprz" "$workdir/local.fprz"
echo "chaos-smoke: direct faulty-path round trip is byte-identical"

# The router's fleet view is live and names both backends.
python -m repro.cli stats --port "$PORT_ROUTER" | grep -q "$PORT_CHAOS"
echo "chaos-smoke: router stats report the fleet"

# Seeded frame-fuzz mutants through the proxy path: hostile frames on
# a faulty wire must never wedge or kill the backend.
python - "$PORT_CHAOS" "$PORT_A" <<'PY'
import socket
import sys

from repro.fuzzing import replay_frame
from repro.service import ServiceClient

chaos_port, backend_port = int(sys.argv[1]), int(sys.argv[2])
for iteration in range(60):
    _case, mutator, blob = replay_frame(seed=0, iteration=iteration)
    try:
        with socket.create_connection(("127.0.0.1", chaos_port),
                                      timeout=5) as sock:
            sock.settimeout(5)
            sock.sendall(blob)
            try:
                sock.recv(4096)
            except TimeoutError:
                pass  # blackholed or ignored: closing is our exit
    except OSError:
        pass  # reset by the proxy: also fine
# The backend behind the proxy must still be alive and sane.
with ServiceClient(port=backend_port) as client:
    assert client.ping()
print("chaos-smoke: 60 fuzz frames through the proxy, backend healthy")
PY

echo "chaos-smoke: all checks passed"
