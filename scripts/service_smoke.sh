#!/usr/bin/env bash
# CI smoke test for the fprz compression service.
#
# Exercises the full serving path end to end: start `fprz serve`, run a
# remote compress/decompress round trip and byte-compare the remote
# container against the local CLI's (the payload-equals-container
# guarantee), read the stats endpoint, then SIGTERM the server while a
# request is in flight and assert the drain completed it intact.
#
# The caller should wrap this script in a hard timeout (CI uses
# `timeout 300`); everything here is expected to finish in well under a
# minute on an idle machine.

set -euo pipefail

PORT="${FPRZ_SMOKE_PORT:-19753}"
export PYTHONPATH="${PYTHONPATH:-src}"

workdir="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

python - "$workdir/input.f32" <<'PY'
import sys
import numpy as np
rng = np.random.default_rng(0)
data = np.cumsum(rng.normal(scale=0.01, size=200_000)).astype(np.float32)
open(sys.argv[1], "wb").write(data.tobytes())
PY

python -m repro.cli serve --port "$PORT" --deadline 120 &
SERVER_PID=$!
export SERVER_PID

python - "$PORT" <<'PY'
import sys
from repro.service import wait_for_port
wait_for_port("127.0.0.1", int(sys.argv[1]), timeout=30)
PY
echo "smoke: server is up on port $PORT"

# Remote round trip, byte-compared against the local CLI.
python -m repro.cli remote compress "$workdir/input.f32" "$workdir/remote.fprz" \
    --port "$PORT" --dtype float32
python -m repro.cli compress "$workdir/input.f32" "$workdir/local.fprz" \
    --dtype float32
cmp "$workdir/remote.fprz" "$workdir/local.fprz"
echo "smoke: remote container is byte-identical to the local one"

python -m repro.cli remote decompress "$workdir/remote.fprz" \
    "$workdir/restored.f32" --port "$PORT"
cmp "$workdir/input.f32" "$workdir/restored.f32"
echo "smoke: round trip restored the input exactly"

python -m repro.cli stats --port "$PORT" | grep -q "requests_total"
echo "smoke: stats endpoint reports request counters"

# Streamed round trip of a payload far beyond the per-connection cap:
# a second server with a deliberately tiny stream window proves the
# bounded-memory path end to end (the input is 800 KB against a 64 KiB
# window), byte-compared against the local restart-framed container.
STREAM_PORT=$((PORT + 1))
python -m repro.cli serve --port "$STREAM_PORT" --deadline 120 \
    --stream-window 65536 &
STREAM_PID=$!
python - "$STREAM_PORT" <<'PY'
import sys
from repro.service import wait_for_port
wait_for_port("127.0.0.1", int(sys.argv[1]), timeout=30)
PY
python -m repro.cli remote compress "$workdir/input.f32" \
    "$workdir/streamed.fprz" --port "$STREAM_PORT" --dtype float32 --streamed
python - "$workdir/input.f32" "$workdir/streamed.fprz" "$STREAM_PORT" <<'PY'
import sys
import numpy as np
import repro
from repro.service import ServiceClient

data = np.frombuffer(open(sys.argv[1], "rb").read(), dtype=np.float32)
blob = open(sys.argv[2], "rb").read()
assert blob == repro.compress(data, fcm="restart"), \
    "streamed container differs from the local restart-framed one"
with ServiceClient(port=int(sys.argv[3])) as client:
    restored = client.decompress_streamed(blob)
    stats = client.stats()
gauges = stats["metrics"]["gauges"]
watermark = gauges["stream_buffered_watermark"]
assert 0 < watermark <= 65536, \
    f"server buffered {watermark} bytes against a 65536-byte window"
assert np.array_equal(np.asarray(restored).ravel(), data)
print("smoke: streamed round trip held the server under its"
      f" 64 KiB window (watermark {watermark})")
PY
kill "$STREAM_PID" 2>/dev/null || true
wait "$STREAM_PID" 2>/dev/null || true

# Pipelined 3-deep burst through the CLI: the output archive must
# reassemble to the original bytes.
python -m repro.cli remote compress "$workdir/input.f32" \
    "$workdir/pipelined.fpra" --port "$PORT" --dtype float32 \
    --pipeline-depth 3
python -m repro.cli remote decompress "$workdir/pipelined.fpra" \
    "$workdir/pipelined.f32" --port "$PORT" --pipeline-depth 3
cmp "$workdir/input.f32" "$workdir/pipelined.f32"
echo "smoke: pipelined 3-deep burst round-tripped exactly"

# Graceful shutdown with a request in flight: SIGTERM must drain it.
python - "$PORT" <<'PY'
import os, signal, sys, threading, time
import numpy as np
import repro
from repro.service import ServiceClient

port = int(sys.argv[1])
pid = int(os.environ["SERVER_PID"])
rng = np.random.default_rng(1)
data = np.cumsum(rng.normal(scale=0.01, size=8_000_000)).astype(np.float32)
result = {}

def inflight():
    with ServiceClient(port=port, timeout=120) as client:
        result["blob"] = client.compress(data)

worker = threading.Thread(target=inflight)
worker.start()
# SIGTERM only once the request is provably admitted (bytes in
# flight on the server), so the drain has something to drain.
with ServiceClient(port=port, timeout=10) as probe:
    deadline = time.time() + 10
    while time.time() < deadline:
        gauges = probe.stats()["metrics"]["gauges"]
        if gauges.get("bytes_in_flight", 0) > 0:
            break
        time.sleep(0.05)
os.kill(pid, signal.SIGTERM)
worker.join(timeout=120)
assert not worker.is_alive(), "in-flight request never completed"
assert result.get("blob") == repro.compress(data), \
    "in-flight request corrupted during drain"
print("smoke: SIGTERM drained the in-flight request intact")
PY

wait "$SERVER_PID"
SERVER_PID=""
echo "smoke: server exited cleanly after drain"
