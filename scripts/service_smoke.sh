#!/usr/bin/env bash
# CI smoke test for the fprz compression service.
#
# Exercises the full serving path end to end: start `fprz serve`, run a
# remote compress/decompress round trip and byte-compare the remote
# container against the local CLI's (the payload-equals-container
# guarantee), read the stats endpoint, then SIGTERM the server while a
# request is in flight and assert the drain completed it intact.
#
# The caller should wrap this script in a hard timeout (CI uses
# `timeout 300`); everything here is expected to finish in well under a
# minute on an idle machine.

set -euo pipefail

PORT="${FPRZ_SMOKE_PORT:-19753}"
export PYTHONPATH="${PYTHONPATH:-src}"

workdir="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

python - "$workdir/input.f32" <<'PY'
import sys
import numpy as np
rng = np.random.default_rng(0)
data = np.cumsum(rng.normal(scale=0.01, size=200_000)).astype(np.float32)
open(sys.argv[1], "wb").write(data.tobytes())
PY

python -m repro.cli serve --port "$PORT" --deadline 120 &
SERVER_PID=$!
export SERVER_PID

python - "$PORT" <<'PY'
import sys
from repro.service import wait_for_port
wait_for_port("127.0.0.1", int(sys.argv[1]), timeout=30)
PY
echo "smoke: server is up on port $PORT"

# Remote round trip, byte-compared against the local CLI.
python -m repro.cli remote compress "$workdir/input.f32" "$workdir/remote.fprz" \
    --port "$PORT" --dtype float32
python -m repro.cli compress "$workdir/input.f32" "$workdir/local.fprz" \
    --dtype float32
cmp "$workdir/remote.fprz" "$workdir/local.fprz"
echo "smoke: remote container is byte-identical to the local one"

python -m repro.cli remote decompress "$workdir/remote.fprz" \
    "$workdir/restored.f32" --port "$PORT"
cmp "$workdir/input.f32" "$workdir/restored.f32"
echo "smoke: round trip restored the input exactly"

python -m repro.cli stats --port "$PORT" | grep -q "requests_total"
echo "smoke: stats endpoint reports request counters"

# Graceful shutdown with a request in flight: SIGTERM must drain it.
python - "$PORT" <<'PY'
import os, signal, sys, threading, time
import numpy as np
import repro
from repro.service import ServiceClient

port = int(sys.argv[1])
pid = int(os.environ["SERVER_PID"])
rng = np.random.default_rng(1)
data = np.cumsum(rng.normal(scale=0.01, size=8_000_000)).astype(np.float32)
result = {}

def inflight():
    with ServiceClient(port=port, timeout=120) as client:
        result["blob"] = client.compress(data)

worker = threading.Thread(target=inflight)
worker.start()
time.sleep(0.25)
os.kill(pid, signal.SIGTERM)
worker.join(timeout=120)
assert not worker.is_alive(), "in-flight request never completed"
assert result.get("blob") == repro.compress(data), \
    "in-flight request corrupted during drain"
print("smoke: SIGTERM drained the in-flight request intact")
PY

wait "$SERVER_PID"
SERVER_PID=""
echo "smoke: server exited cleanly after drain"
