"""Regenerate the paper's FIG15 (RTX 4090, float64, decompress throughput).

Shape targets from the paper:
* only DPratio and DPspeed are on the decompression front (paper 5.2)
* DPratio decompresses much faster than it compresses (no sort)
"""

from __future__ import annotations

import numpy as np

import repro
from conftest import figure_result, show, top_ratio_name


def test_fig15_shape(benchmark):
    result = benchmark(figure_result, "fig15")
    show(result)
    assert set(result.front_names()) == {"DPratio", "DPspeed"}
    comp = figure_result("fig14").row("DPratio").throughput
    assert result.row("DPratio").throughput > 8 * comp


def test_fig15_dpspeed_decompress_wallclock(benchmark, representative_dp):
    """Measured (Python) decompress throughput of dpspeed on one file."""
    data = representative_dp
    blob = repro.compress(data, "dpspeed")
    if "decompress" == "compress":
        result = benchmark(repro.compress, data, "dpspeed")
        assert repro.inspect(result).original_len == data.nbytes
    else:
        restored = benchmark(repro.decompress, blob)
        assert np.array_equal(restored, data)
