"""Measured wall-clock throughput of this Python implementation.

These are the honest numbers for the reproduction itself, reported
separately from the device-model throughputs used in the figure
regenerations (see DESIGN.md §2).  pytest-benchmark's stats give the
median of repeated runs, mirroring the paper's median-of-five timing
(§4).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from conftest import BENCH_SCALE


def _sample(dtype) -> np.ndarray:
    from repro.datasets import dp_suite, sp_suite

    suite = sp_suite() if dtype == np.float32 else dp_suite()
    return suite[0].files[0].load(BENCH_SCALE)


@pytest.mark.parametrize("codec,dtype", [
    ("spspeed", np.float32),
    ("spratio", np.float32),
    ("dpspeed", np.float64),
    ("dpratio", np.float64),
])
class TestCodecWallclock:
    def test_compress(self, benchmark, codec, dtype):
        data = _sample(dtype)
        blob = benchmark(repro.compress, data, codec)
        benchmark.extra_info["MB_per_s"] = round(
            data.nbytes / 1e6 / benchmark.stats.stats.median, 1
        )
        benchmark.extra_info["ratio"] = round(data.nbytes / len(blob), 3)

    def test_decompress(self, benchmark, codec, dtype):
        data = _sample(dtype)
        blob = repro.compress(data, codec)
        restored = benchmark(repro.decompress, blob)
        assert np.array_equal(restored, data)
        benchmark.extra_info["MB_per_s"] = round(
            data.nbytes / 1e6 / benchmark.stats.stats.median, 1
        )


class TestExecutorParity:
    """Per-executor measured rows on a multi-chunk sample.

    With one interpreter lock the threaded worklist cannot beat serial
    by much, but the zero-copy path must not make it meaningfully
    *slower* either: the margin below (0.6x) holds comfortably when
    scheduling overhead is per-chunk-amortised and fails if a per-byte
    copy sneaks back into the hot path.
    """

    def test_threaded_not_slower_than_serial(self):
        from repro.harness import format_measured, measure_executors

        data = _sample(np.float32).tobytes()
        assert len(data) > 16384  # multi-chunk, or the parity is vacuous
        rows = measure_executors(data, "spspeed", workers=4, runs=5)
        print()
        print(format_measured(rows))
        by_policy = {row.policy: row for row in rows}
        serial = by_policy["serial"]
        threaded = by_policy["threaded"]
        assert threaded.throughput >= 0.6 * serial.throughput
        assert threaded.decompress_throughput >= 0.6 * serial.decompress_throughput
        # identical ratio is implied by byte-identity (measure_executors
        # asserts the blobs match); record it anyway for the run log
        assert threaded.ratio == serial.ratio


@pytest.mark.parametrize("name", ["FPC", "GFC", "ANS", "Ndzip", "FPzip"])
def test_baseline_wallclock(benchmark, name):
    from repro.baselines import competitors_for

    data = _sample(np.float64).tobytes()
    comp = next(c for c in competitors_for(np.float64, "gpu")
                + competitors_for(np.float64, "cpu") if c.name == name)
    blob = benchmark(comp.compress, data)
    assert comp.decompress(blob) == data
