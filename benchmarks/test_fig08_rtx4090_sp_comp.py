"""Regenerate the paper's FIG08 (RTX 4090, float32, compress throughput).

Shape targets from the paper:
* SPratio delivers the highest compression ratio of every GPU codec
* the Pareto front is SPratio, SPspeed, and Bitcomp-i0 (paper 5.1)
"""

from __future__ import annotations

import numpy as np

import repro
from conftest import figure_result, show, top_ratio_name


def test_fig08_shape(benchmark):
    result = benchmark(figure_result, "fig08")
    show(result)
    assert top_ratio_name(result) == "SPratio"
    assert set(result.front_names()) == {"SPratio", "SPspeed", "Bitcomp-i0"}
    spspeed = result.row("SPspeed")
    # Paper: "SPspeed reaches a geometric-mean compression ratio of 1.41
    # and ... 518 GB/s"; ratio should land near that, throughput within 10%.
    assert 1.2 < spspeed.ratio < 1.7
    assert 450 < spspeed.throughput < 580


def test_fig08_spspeed_compress_wallclock(benchmark, representative_sp):
    """Measured (Python) compress throughput of spspeed on one file."""
    data = representative_sp
    blob = repro.compress(data, "spspeed")
    if "compress" == "compress":
        result = benchmark(repro.compress, data, "spspeed")
        assert repro.inspect(result).original_len == data.nbytes
    else:
        restored = benchmark(repro.decompress, blob)
        assert np.array_equal(restored, data)
