"""Regenerate the paper's FIG17 (A100, float64, decompress throughput).

Shape targets from the paper:
* DPspeed and DPratio are on the A100 decompression front
* DPratio decompression far outruns its compression (no sort)
"""

from __future__ import annotations

import numpy as np

import repro
from conftest import figure_result, show, top_ratio_name


def test_fig17_shape(benchmark):
    result = benchmark(figure_result, "fig17")
    show(result)
    front = set(result.front_names())
    assert {"DPspeed", "DPratio"} <= front
    comp = figure_result("fig16").row("DPratio").throughput
    assert result.row("DPratio").throughput > 8 * comp


def test_fig17_dpratio_decompress_wallclock(benchmark, representative_dp):
    """Measured (Python) decompress throughput of dpratio on one file."""
    data = representative_dp
    blob = repro.compress(data, "dpratio")
    if "decompress" == "compress":
        result = benchmark(repro.compress, data, "dpratio")
        assert repro.inspect(result).original_len == data.nbytes
    else:
        restored = benchmark(repro.decompress, blob)
        assert np.array_equal(restored, data)
