"""Regenerate the paper's Table 1: the compressor inventory.

Checks the registry against the published rows (device, datatype) and
benchmarks the registry's instantiation cost (trivial, but it keeps the
table printed under ``--benchmark-only`` runs).
"""

from __future__ import annotations

import numpy as np

from repro.baselines import baseline_registry, competitors_for

#: (name, device, datatype) triples exactly as printed in Table 1.
TABLE1 = {
    ("Ndzip", "CPU+GPU", "FP32 & FP64"),
    ("ZSTD", "CPU+GPU", "General"),
    ("ANS", "GPU", "FP32 & FP64"),
    ("Bitcomp", "GPU", "FP32 & FP64"),
    ("Cascaded", "GPU", "General"),
    ("Deflate", "GPU", "General"),
    ("Gdeflate", "GPU", "General"),
    ("GFC", "GPU", "FP64"),
    ("LZ4", "GPU", "General"),
    ("MPC", "GPU", "FP32 & FP64"),
    ("Snappy", "GPU", "General"),
    ("Bzip2", "CPU", "General"),
    ("FPC", "CPU", "FP64"),
    ("FPzip", "CPU", "FP32 & FP64"),
    ("Gzip", "CPU", "General"),
    ("pFPC", "CPU", "FP64"),
    ("SPDP", "CPU", "FP32 & FP64"),
    ("ZFP", "CPU", "FP32 & FP64"),
}


def test_table1_rows_match_paper():
    rows = {(s.name, s.device, s.datatype) for s in baseline_registry()}
    assert rows == TABLE1


def test_every_row_is_constructible_and_lossless():
    data = np.linspace(0, 1, 4096, dtype=np.float64).tobytes()
    for spec in baseline_registry():
        dtype = np.float64 if "FP64" in spec.datatype or spec.datatype == "General" else np.float32
        comp = spec.build(np.dtype(dtype))
        assert comp.decompress(comp.compress(data)) == data, spec.name


def test_table1_bench(benchmark):
    def build_all():
        total = 0
        for dtype in (np.float32, np.float64):
            for kind in ("cpu", "gpu"):
                total += len(competitors_for(dtype, kind))
        return total

    assert benchmark(build_all) >= 40
    print()
    print(f"{'Device':<8} {'Compressor':<12} {'Datatype':<12} {'Version':<8} Source")
    for spec in sorted(baseline_registry(), key=lambda s: (s.device, s.name)):
        print(f"{spec.device:<8} {spec.name:<12} {spec.datatype:<12} "
              f"{spec.version:<8} {spec.source}")
