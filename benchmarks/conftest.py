"""Shared infrastructure for the figure-regeneration benchmarks.

Each ``test_figXX_*`` module regenerates one of the paper's Figures 8-19:
it computes the figure's result rows (real compression ratios over the
synthetic corpus + modeled throughputs), prints the table, asserts the
paper's qualitative shape, and times the corresponding paper codec with
pytest-benchmark on a representative file (the *measured* wall-clock
numbers of this Python implementation).

Suite ratios are cached process-wide, so the twelve figures share four
corpus passes.  ``REPRO_BENCH_SCALE`` overrides the corpus scale
(default 1.0 = 256 KiB per file, the scale the shape targets are
calibrated at).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.harness import FigureResult, format_figure, run_figure

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

_FIGURE_CACHE: dict[str, FigureResult] = {}


def figure_result(figure_id: str) -> FigureResult:
    if figure_id not in _FIGURE_CACHE:
        _FIGURE_CACHE[figure_id] = run_figure(figure_id, scale=BENCH_SCALE)
    return _FIGURE_CACHE[figure_id]


#: Figure tables produced during the run, replayed in the terminal summary
#: (pytest captures per-test output; the regenerated figures ARE the
#: benchmark's product and belong in the run log).
_RENDERED_TABLES: dict[str, str] = {}


def show(result: FigureResult) -> None:
    text = format_figure(result)
    print("\n" + text)
    _RENDERED_TABLES[result.figure_id] = text


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RENDERED_TABLES:
        return
    terminalreporter.section("regenerated paper figures")
    for figure_id in sorted(_RENDERED_TABLES):
        terminalreporter.write_line("")
        for line in _RENDERED_TABLES[figure_id].splitlines():
            terminalreporter.write_line(line)


def top_ratio_name(result: FigureResult) -> str:
    return max(result.rows, key=lambda r: r.ratio).name


@pytest.fixture
def representative_sp() -> np.ndarray:
    from repro.datasets import sp_suite

    return sp_suite()[0].files[0].load(BENCH_SCALE)


@pytest.fixture
def representative_dp() -> np.ndarray:
    from repro.datasets import dp_suite

    return dp_suite()[0].files[0].load(BENCH_SCALE)
