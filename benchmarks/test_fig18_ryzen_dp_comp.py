"""Regenerate the paper's FIG18 (Ryzen 2950X, float64, compress throughput).

Shape targets from the paper:
* DPspeed is ~10x faster than pFPC at a similar ratio (paper 5.2)
* Zstandard-best reaches a higher ratio than DPratio, at lower speed
"""

from __future__ import annotations

import numpy as np

import repro
from conftest import figure_result, show, top_ratio_name


def test_fig18_shape(benchmark):
    result = benchmark(figure_result, "fig18")
    show(result)
    speedup = result.row("DPspeed").throughput / result.row("pFPC").throughput
    assert 5 < speedup < 20  # paper: roughly 10x
    zstd = result.row("ZSTD-CPU-best")
    dpratio = result.row("DPratio")
    assert zstd.ratio > dpratio.ratio
    assert zstd.throughput < dpratio.throughput
    assert {"DPspeed", "DPratio"} <= set(result.front_names())


def test_fig18_dpspeed_compress_wallclock(benchmark, representative_dp):
    """Measured (Python) compress throughput of dpspeed on one file."""
    data = representative_dp
    blob = repro.compress(data, "dpspeed")
    if "compress" == "compress":
        result = benchmark(repro.compress, data, "dpspeed")
        assert repro.inspect(result).original_len == data.nbytes
    else:
        restored = benchmark(repro.decompress, blob)
        assert np.array_equal(restored, data)
