"""Scheduling ablation: the paper's dynamic chunk worklist vs static blocks.

§3.1: "On the CPU, we dynamically assign the chunks to the threads to
maximize the load balance."  This benchmark replays real per-chunk work
distributions from the corpus through the schedule simulator and shows
dynamic assignment's utilisation edge, plus the decoupled look-back
write chain's negligible overhead when chunks finish roughly in order.
"""

from __future__ import annotations

import numpy as np

from conftest import BENCH_SCALE
from repro.core.codecs import get_codec
from repro.device.execution import (
    WorklistSimulator,
    chunk_work_estimates,
    lookback_write_completion,
)


def _mixed_corpus_work() -> np.ndarray:
    """Chunk work from a climate field with fill masks: naturally skewed."""
    from repro.datasets import sp_suite

    cesm = next(d for d in sp_suite() if d.name == "CESM-ATM")
    icefrac = next(f for f in cesm.files if "ICEFRAC" in f.name)
    data = icefrac.load(max(BENCH_SCALE, 0.5)).tobytes()
    return chunk_work_estimates(data, get_codec("spratio"))


def test_dynamic_vs_static_utilisation(benchmark):
    work = _mixed_corpus_work()
    simulator = WorklistSimulator(16)
    dynamic = benchmark(simulator.simulate, work, "dynamic")
    static = simulator.simulate(work, "static")
    print()
    print(f"  chunks: {len(work)}, work skew (max/mean): "
          f"{work.max() / work.mean():.2f}x")
    print(f"  dynamic: makespan {dynamic.makespan:12.0f}, "
          f"utilisation {dynamic.utilization:.3f}")
    print(f"  static:  makespan {static.makespan:12.0f}, "
          f"utilisation {static.utilization:.3f}")
    assert dynamic.makespan <= static.makespan + 1e-9
    assert dynamic.utilization >= 0.9  # the paper's "maximize load balance"


def test_lookback_overhead_is_negligible():
    work = _mixed_corpus_work()
    schedule = WorklistSimulator(16).simulate(work, "dynamic")
    writes = lookback_write_completion(schedule)
    end_to_end = float(writes[-1])
    overhead = (end_to_end - schedule.makespan) / schedule.makespan
    print(f"\n  look-back write-chain overhead: {overhead:.2%}")
    # Chunks finish roughly in pop order, so the position chain costs
    # almost nothing — why the single-pass scheme works (§3.1).
    assert overhead < 0.05
