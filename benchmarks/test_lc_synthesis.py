"""Benchmark the LC-style pipeline synthesis (paper §3's methodology).

Asserts that an exhaustive search over the component catalogue ranks
DIFFMS-led chains (the family all four published codecs belong to) at the
top on representative data, and that FCM-led chains win once far-apart
repeats dominate — i.e. the search would have *found* the paper's designs.
"""

from __future__ import annotations

import numpy as np

from conftest import BENCH_SCALE
from repro.lc import synthesize


def _sp_data() -> bytes:
    from repro.datasets import sp_suite

    return sp_suite()[0].files[5].load(min(BENCH_SCALE, 0.25)).tobytes()


def _msg_data() -> bytes:
    from repro.datasets import dp_suite

    return dp_suite()[0].files[0].load(min(BENCH_SCALE, 0.5)).tobytes()


def test_sp_search_prefers_diffms_family(benchmark):
    results = benchmark.pedantic(
        synthesize, args=(_sp_data(),),
        kwargs=dict(max_stages=2, word_bits=32, allow_global=False, top=5),
        rounds=1, iterations=1,
    )
    print()
    for rank, result in enumerate(results, 1):
        print(f"  {rank}. {' -> '.join(result.stages):<30} ratio {result.ratio:.3f}")
    assert results[0].stages[0] == "diffms32"
    assert results[0].ratio > 1.2


def test_dp_search_discovers_fcm(benchmark):
    results = benchmark.pedantic(
        synthesize, args=(_msg_data(),),
        kwargs=dict(max_stages=2, word_bits=64, allow_global=True,
                    stage_penalty=0.0, top=5),
        rounds=1, iterations=1,
    )
    print()
    for rank, result in enumerate(results, 1):
        print(f"  {rank}. {' -> '.join(result.stages):<30} ratio {result.ratio:.3f}")
    assert results[0].stages[0] == "fcm"
