"""Regenerate the paper's FIG09 (RTX 4090, float32, decompress throughput).

Shape targets from the paper:
* SPratio and SPspeed stay on the decompression Pareto front
"""

from __future__ import annotations

import numpy as np

import repro
from conftest import figure_result, show, top_ratio_name


def test_fig09_shape(benchmark):
    result = benchmark(figure_result, "fig09")
    show(result)
    assert top_ratio_name(result) == "SPratio"
    front = set(result.front_names())
    assert {"SPratio", "SPspeed"} <= front
    assert "Bitcomp-i0" in front


def test_fig09_spspeed_decompress_wallclock(benchmark, representative_sp):
    """Measured (Python) decompress throughput of spspeed on one file."""
    data = representative_sp
    blob = repro.compress(data, "spspeed")
    if "decompress" == "compress":
        result = benchmark(repro.compress, data, "spspeed")
        assert repro.inspect(result).original_len == data.nbytes
    else:
        restored = benchmark(repro.decompress, blob)
        assert np.array_equal(restored, data)
