"""Microbenchmarks of the word-lane packing kernels vs the bit-matrix
reference they replaced.

The lane kernels (``repro.bitpack.lanes``) exist purely for speed: the
wire format is unchanged (golden digests pin that).  This module keeps
the speed claim honest — at the representative widths of the trajectory
harness (8-52 bits, 16 KiB chunks) the kernels must beat the reference
by >= 3x in geometric mean, per word size and direction.

Byte-aligned widths are in the grid on purpose: they hit the pure
byte-slice path (5-14x) and carry the geomean; the unaligned widths
contribute their steadier 2-3x.  A single width regressing below ~2x
will drag the geomean under the gate.

``TestBackendSpeedup`` adds the backend dimension: the numba JIT
kernels must beat the numpy lane kernels by the same >= 3x geomean on
the *unaligned* pack/unpack widths (9-49 bits).  Aligned widths are
excluded there by design — the numba backend delegates ``width % 8 == 0``
to numpy's multi-GB/s byte-slice path, so at those widths the two
backends are the same code.  The class auto-skips when numba is not
importable; CI runs it in the ``backend-smoke`` job.

Not part of tier-1 (``testpaths = ["tests"]``): timing gates belong in
the benchmark suite, where a noisy CI box can rerun them in isolation.
"""

from __future__ import annotations

import math
import time

import numpy as np
import pytest

from repro.bitpack import backend as _backend
from repro.bitpack import pack_words, unpack_words
from repro.bitpack._numba_kernels import HAVE_NUMBA
from repro.harness.trajectory import KERNEL_CHUNK_BYTES, KERNEL_WIDTHS

MIN_GEOMEAN_SPEEDUP = 3.0
RUNS = 9

#: Unaligned widths for the backend gate — spanning the 9-49 bit band
#: the ISSUE names, none divisible by 8 (see module docstring).
BACKEND_GATE_WIDTHS = (9, 13, 21, 29, 37, 45, 49)


def _reference_pack(words: np.ndarray, width: int, word_bits: int) -> bytes:
    n = len(words)
    word_bytes = word_bits // 8
    be = words.astype(words.dtype.newbyteorder(">"), copy=False)
    bits = np.unpackbits(be.view(np.uint8).reshape(n, word_bytes), axis=1)
    return np.packbits(bits[:, word_bits - width:].reshape(-1)).tobytes()


def _reference_unpack(buf: bytes, count: int, width: int, word_bits: int) -> np.ndarray:
    raw = np.frombuffer(buf, dtype=np.uint8)
    need = (count * width + 7) // 8
    bits = np.unpackbits(raw[:need])[: count * width].reshape(count, width)
    word_bytes = word_bits // 8
    full = np.zeros((count, word_bits), dtype=np.uint8)
    full[:, word_bits - width:] = bits
    be_bytes = np.packbits(full.reshape(-1)).reshape(count, word_bytes)
    return be_bytes.view(np.dtype(f">u{word_bytes}")).reshape(count).astype(
        np.dtype(f"u{word_bytes}")
    )


def _paired_speedup(fast_fn, slow_fn, runs: int = RUNS) -> float:
    """best(slow) / best(fast), with trials interleaved.

    Interleaving keeps a frequency ramp, a noisy neighbour, or a
    mid-measurement throttle from landing entirely on one side of the
    ratio — the failure mode of timing the two loops back to back.
    """
    fast_fn(), slow_fn()  # warm caches and lru_cache'd plans
    best_fast = best_slow = math.inf
    for _ in range(runs):
        t0 = time.perf_counter()
        fast_fn()
        best_fast = min(best_fast, time.perf_counter() - t0)
        t0 = time.perf_counter()
        slow_fn()
        best_slow = min(best_slow, time.perf_counter() - t0)
    return best_slow / best_fast


def _sample(word_bits: int, width: int) -> np.ndarray:
    rng = np.random.default_rng(0x5EED + width)
    n = KERNEL_CHUNK_BYTES // (word_bits // 8)
    return rng.integers(0, 1 << width, size=n, dtype=np.uint64).astype(
        np.dtype(f"u{word_bits // 8}")
    )


@pytest.mark.parametrize("word_bits", [32, 64])
class TestKernelSpeedup:
    def test_pack_geomean_speedup(self, word_bits):
        speedups = []
        for width in KERNEL_WIDTHS[word_bits]:
            words = _sample(word_bits, width)
            assert pack_words(words, width, word_bits) == _reference_pack(
                words, width, word_bits
            )
            speedups.append(_paired_speedup(
                lambda: pack_words(words, width, word_bits),
                lambda: _reference_pack(words, width, word_bits),
            ))
        geomean = math.prod(speedups) ** (1 / len(speedups))
        assert geomean >= MIN_GEOMEAN_SPEEDUP, (
            f"pack w{word_bits}: geomean {geomean:.2f}x "
            f"(per width: {[f'{s:.1f}x' for s in speedups]})"
        )

    def test_unpack_geomean_speedup(self, word_bits):
        speedups = []
        n = KERNEL_CHUNK_BYTES // (word_bits // 8)
        for width in KERNEL_WIDTHS[word_bits]:
            words = _sample(word_bits, width)
            packed = pack_words(words, width, word_bits)
            assert np.array_equal(
                unpack_words(packed, n, width, word_bits),
                _reference_unpack(packed, n, width, word_bits),
            )
            speedups.append(_paired_speedup(
                lambda: unpack_words(packed, n, width, word_bits),
                lambda: _reference_unpack(packed, n, width, word_bits),
            ))
        geomean = math.prod(speedups) ** (1 / len(speedups))
        assert geomean >= MIN_GEOMEAN_SPEEDUP, (
            f"unpack w{word_bits}: geomean {geomean:.2f}x "
            f"(per width: {[f'{s:.1f}x' for s in speedups]})"
        )


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not importable")
@pytest.mark.parametrize("word_bits", [32, 64])
class TestBackendSpeedup:
    """numba JIT vs numpy lane kernels, paired-interleaved per width."""

    def _gate_widths(self, word_bits):
        return tuple(w for w in BACKEND_GATE_WIDTHS if w <= word_bits)

    def test_pack_backend_geomean_speedup(self, word_bits):
        numba_pack = _backend.get_backend("numba").resolved["pack_lanes"]
        numpy_pack = _backend.get_backend("numpy").resolved["pack_lanes"]
        speedups = []
        for width in self._gate_widths(word_bits):
            words = _sample(word_bits, width)
            assert numba_pack(words, width, word_bits) == numpy_pack(
                words, width, word_bits
            )
            speedups.append(_paired_speedup(
                lambda: numba_pack(words, width, word_bits),
                lambda: numpy_pack(words, width, word_bits),
            ))
        geomean = math.prod(speedups) ** (1 / len(speedups))
        assert geomean >= MIN_GEOMEAN_SPEEDUP, (
            f"numba pack w{word_bits}: geomean {geomean:.2f}x "
            f"(per width: {[f'{s:.1f}x' for s in speedups]})"
        )

    def test_unpack_backend_geomean_speedup(self, word_bits):
        numba_unpack = _backend.get_backend("numba").resolved["unpack_lanes"]
        numpy_unpack = _backend.get_backend("numpy").resolved["unpack_lanes"]
        n = KERNEL_CHUNK_BYTES // (word_bits // 8)
        speedups = []
        for width in self._gate_widths(word_bits):
            words = _sample(word_bits, width)
            packed = np.frombuffer(pack_words(words, width, word_bits), np.uint8)
            assert np.array_equal(
                numba_unpack(packed, n, width, word_bits),
                numpy_unpack(packed, n, width, word_bits),
            )
            speedups.append(_paired_speedup(
                lambda: numba_unpack(packed, n, width, word_bits),
                lambda: numpy_unpack(packed, n, width, word_bits),
            ))
        geomean = math.prod(speedups) ** (1 / len(speedups))
        assert geomean >= MIN_GEOMEAN_SPEEDUP, (
            f"numba unpack w{word_bits}: geomean {geomean:.2f}x "
            f"(per width: {[f'{s:.1f}x' for s in speedups]})"
        )
