"""Regenerate the paper's FIG10 (A100, float32, compress throughput).

Shape targets from the paper:
* SPratio is on the A100 compression front (paper 5.1)
* every non-Bitcomp codec is slower on the A100 than the RTX 4090
"""

from __future__ import annotations

import numpy as np

import repro
from conftest import figure_result, show, top_ratio_name


def test_fig10_shape(benchmark):
    result = benchmark(figure_result, "fig10")
    show(result)
    assert "SPratio" in result.front_names()
    assert top_ratio_name(result) == "SPratio"
    rtx = figure_result("fig08")
    # Paper 5.1: only Bitcomp-b1's compressor runs faster on the A100;
    # every other compressor is faster on the RTX 4090.
    for row in result.rows:
        if row.name == "Bitcomp-b1":
            assert row.throughput > rtx.row(row.name).throughput
        else:
            assert row.throughput <= rtx.row(row.name).throughput


def test_fig10_spratio_compress_wallclock(benchmark, representative_sp):
    """Measured (Python) compress throughput of spratio on one file."""
    data = representative_sp
    blob = repro.compress(data, "spratio")
    if "compress" == "compress":
        result = benchmark(repro.compress, data, "spratio")
        assert repro.inspect(result).original_len == data.nbytes
    else:
        restored = benchmark(repro.decompress, blob)
        assert np.array_equal(restored, data)
