"""Regenerate the paper's FIG12 (Ryzen 2950X, float32, compress throughput).

Shape targets from the paper:
* only FPzip, SPspeed, and SPratio lie on the CPU front (paper 5.1)
* FPzip compresses best; SPspeed compresses ~75x faster than FPzip
"""

from __future__ import annotations

import numpy as np

import repro
from conftest import figure_result, show, top_ratio_name


def test_fig12_shape(benchmark):
    result = benchmark(figure_result, "fig12")
    show(result)
    assert set(result.front_names()) == {"FPzip", "SPspeed", "SPratio"}
    assert top_ratio_name(result) == "FPzip"
    speedup = result.row("SPspeed").throughput / result.row("FPzip").throughput
    assert 40 < speedup < 120  # paper: 75x


def test_fig12_spspeed_compress_wallclock(benchmark, representative_sp):
    """Measured (Python) compress throughput of spspeed on one file."""
    data = representative_sp
    blob = repro.compress(data, "spspeed")
    if "compress" == "compress":
        result = benchmark(repro.compress, data, "spspeed")
        assert repro.inspect(result).original_len == data.nbytes
    else:
        restored = benchmark(repro.decompress, blob)
        assert np.array_equal(restored, data)
