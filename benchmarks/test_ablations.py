"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation perturbs one design decision of the paper's codecs and
reports its effect on the compression ratio over representative data:

* chunk size — the paper picks 16 KiB so two chunk buffers fit in shared
  memory / L1 (§3);
* MPLG subchunk width — 512-byte subchunks let each warp use its own
  leading-zero count (§3.1);
* bitmap recursion depth — RZE compresses its bitmap in 3 rounds (§3.2);
* FCM match window — 4 preceding sorted pairs are inspected (§3.2);
* adaptive k — RAZE/RARE pick k per chunk instead of a fixed split (§3.2).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from conftest import BENCH_SCALE
from repro.core.chunking import iter_chunks
from repro.datasets import dp_suite, sp_suite
from repro.stages import FCMStage, MPLG, RZE, DiffMS
from repro.stages._adaptive import choose_k


def _sp_sample() -> bytes:
    return sp_suite()[0].files[5].load(BENCH_SCALE).tobytes()


def _dp_sample() -> bytes:
    return dp_suite()[0].files[0].load(BENCH_SCALE).tobytes()


class TestChunkSizeAblation:
    def test_16k_is_a_sweet_spot(self):
        data = _sp_sample()
        sizes = {}
        for chunk_size in (1024, 4096, 16384, 65536):
            blob = repro.compress(data, "spratio", chunk_size=chunk_size)
            assert repro.decompress(blob) == data
            sizes[chunk_size] = len(blob)
        print("\nchunk-size ablation (SPratio):",
              {k: round(len(data) / v, 3) for k, v in sizes.items()})
        # Tiny chunks pay per-chunk overhead; 16 KiB must beat 1 KiB.
        assert sizes[16384] < sizes[1024]

    def test_chunk_size_bench(self, benchmark):
        data = _sp_sample()
        benchmark(repro.compress, data, "spratio")

    def test_16k_is_the_modeled_throughput_sweet_spot(self):
        """The paper's stated reason for 16 KiB: two chunk buffers fit
        shared memory / L1 (small chunks pay scheduling, large ones
        spill).  The device model must reproduce the maximum at 16 KiB on
        every machine."""
        from repro.device import ALL_DEVICES
        from repro.device.cost import OUR_CODECS

        candidates = (1024, 4096, 16384, 65536, 262144)
        for device in ALL_DEVICES.values():
            for codec in ("spspeed", "dpspeed"):
                profile = OUR_CODECS[codec].compress
                best = max(candidates, key=lambda cs: profile.throughput(device, cs))
                assert best == 16384, (device.name, codec)


class TestMPLGSubchunkAblation:
    @pytest.mark.parametrize("subchunk", [128, 512, 4096])
    def test_roundtrip_at_every_width(self, subchunk):
        data = _sp_sample()
        stage = MPLG(32, subchunk_bytes=subchunk)
        for chunk in iter_chunks(data):
            assert stage.decode(stage.encode(chunk)) == chunk

    def test_finer_subchunks_compress_better(self):
        data = _sp_sample()
        sizes = {}
        for subchunk in (128, 512, 4096, 16384):
            stage = MPLG(32, subchunk_bytes=subchunk)
            pre = DiffMS(32)
            sizes[subchunk] = sum(
                len(stage.encode(pre.encode(c))) for c in iter_chunks(data)
            )
        print("\nMPLG subchunk ablation:", sizes)
        # One width per 16 KiB chunk loses ratio vs the paper's 512 B.
        assert sizes[512] < sizes[16384]


class TestBitmapRecursionAblation:
    def test_three_levels_beat_zero(self):
        data = _sp_sample()
        flat = sum(len(RZE(bitmap_levels=0).encode(c)) for c in iter_chunks(data))
        deep = sum(len(RZE(bitmap_levels=3).encode(c)) for c in iter_chunks(data))
        print(f"\nbitmap recursion ablation: 0 levels {flat} B, 3 levels {deep} B")
        assert deep <= flat

    def test_levels_roundtrip(self):
        data = _sp_sample()
        for levels in (0, 1, 2, 3):
            stage = RZE(bitmap_levels=levels)
            for chunk in iter_chunks(data):
                assert stage.decode(stage.encode(chunk)) == chunk


class TestFCMWindowAblation:
    @pytest.mark.parametrize("window", [1, 2, 4, 8])
    def test_window_roundtrips(self, window):
        data = _dp_sample()
        stage = FCMStage(match_window=window)
        assert stage.decode(stage.encode(data)) == data

    def test_wider_windows_find_more_matches(self):
        data = _dp_sample()

        def matches(window: int) -> int:
            values, distances, _ = FCMStage.split_payload(
                FCMStage(match_window=window).encode(data)
            )
            return int((distances > 0).sum())

        m1, m4 = matches(1), matches(4)
        print(f"\nFCM window ablation: window=1 -> {m1} matches, window=4 -> {m4}")
        assert m4 >= m1


class TestAdaptiveKAblation:
    def test_adaptive_beats_any_fixed_k(self, rng=np.random.default_rng(9)):
        # The histogram-driven k must never lose to a fixed split, by
        # construction of the cost model it optimises.
        from repro.bitpack import count_leading_zeros
        from repro.stages._adaptive import eliminated_counts

        words = (rng.integers(0, 1 << 20, size=2048, dtype=np.uint64)
                 | (np.uint64(1) << np.uint64(np.random.default_rng(1).integers(20, 40))))
        leading = count_leading_zeros(words, 64)
        counts = eliminated_counts(leading, 64)
        n = len(words)

        def cost(k: int) -> float:
            if k == 0:
                return float(n * 64)
            return float(n + (n - counts[k]) * k + n * (64 - k))

        best_k = choose_k(leading, n, 64)
        assert cost(best_k) <= min(cost(k) for k in range(0, 65))

    def test_adaptive_k_bench(self, benchmark):
        data = _dp_sample()
        benchmark(repro.compress, data, "dpratio")


class TestRAZEModeAblation:
    def test_dual_mode_never_loses_to_single_mode(self):
        """Per chunk, RAZE picks the cheaper of its two zero-elimination
        modes; the combined encoder must match or beat each alone."""
        from repro.stages import RAZE

        data = _dp_sample()
        stage = RAZE(64)
        pre = DiffMS(64)
        for chunk in list(iter_chunks(data))[:4]:
            staged = pre.encode(chunk)
            words_len = len(staged)
            combined = len(stage.encode(staged))
            assert combined <= words_len + 16
            assert stage.decode(stage.encode(staged)) == staged
