"""Regenerate the paper's FIG16 (A100, float64, compress throughput).

Shape targets from the paper:
* DPspeed and DPratio are on the A100 front alongside Bitcomp
"""

from __future__ import annotations

import numpy as np

import repro
from conftest import figure_result, show, top_ratio_name


def test_fig16_shape(benchmark):
    result = benchmark(figure_result, "fig16")
    show(result)
    front = set(result.front_names())
    assert {"DPspeed", "DPratio"} <= front
    assert any(name.startswith("Bitcomp") for name in front)
    assert top_ratio_name(result) == "DPratio"


def test_fig16_dpratio_compress_wallclock(benchmark, representative_dp):
    """Measured (Python) compress throughput of dpratio on one file."""
    data = representative_dp
    blob = repro.compress(data, "dpratio")
    if "compress" == "compress":
        result = benchmark(repro.compress, data, "dpratio")
        assert repro.inspect(result).original_len == data.nbytes
    else:
        restored = benchmark(repro.decompress, blob)
        assert np.array_equal(restored, data)
