"""Timing gate for chunk-batched columnar stage execution.

Batching exists purely for speed: whole blocks of chunks run through
each stage's 2D kernels in one pass instead of re-entering the Python
dispatch machinery per chunk (the wire format is unchanged — the
byte-identity sweep in ``tests/core/test_batched.py`` pins that).  This
module keeps the speed claim honest: on the speed codecs, batched
compression must beat the per-chunk loop by >= 2x in geometric mean.

The speed codecs carry the gate because their pipelines are pure kernel
work (DiffMS -> MPLG), where per-chunk Python overhead dominates; the
ratio codecs spend their time inside larger per-call kernels and gain
less from batching.

The gate compresses at ``chunk_size=4096`` rather than the 16 KiB
default.  What batching eliminates is *per-chunk dispatch* — one
``Stage.encode`` entry, frame writer, and allocation round per chunk —
and that cost scales with the chunk count, not the byte count.  At 4
KiB the input splits into 4x as many dispatch units, so a regression in
the batch path (a stage silently falling back to its per-chunk loop,
say) moves the ratio far above run-to-run noise; at 16 KiB on a 1-CPU
box the same regression can hide inside kernel-time jitter.  End-to-end
throughput at the default chunk size is tracked by ``BENCH_pr5.json``
against the previous PR's numbers instead.

Timing follows the paired-interleaved pattern of
``test_kernel_microbench._paired_speedup``: best-of-runs with trials
interleaved, so a frequency ramp or noisy neighbour cannot land
entirely on one side of the ratio.

Not part of tier-1 (``testpaths = ["tests"]``): timing gates belong in
the benchmark suite, where a noisy CI box can rerun them in isolation.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.core.codecs import get_codec
from repro.core.compressor import compress_bytes, decompress_bytes

MIN_GEOMEAN_SPEEDUP = 2.0
SPEED_CODECS = ("spspeed", "dpspeed")
INPUT_BYTES = 1_000_000
CHUNK_BYTES = 4096  # 4x the dispatch units of the 16 KiB default
RUNS = 9


def _paired_speedup(fast_fn, slow_fn, runs: int = RUNS) -> float:
    """best(slow) / best(fast), with trials interleaved."""
    fast_fn(), slow_fn()  # warm caches and lru_cache'd plans
    best_fast = best_slow = math.inf
    for _ in range(runs):
        t0 = time.perf_counter()
        fast_fn()
        best_fast = min(best_fast, time.perf_counter() - t0)
        t0 = time.perf_counter()
        slow_fn()
        best_slow = min(best_slow, time.perf_counter() - t0)
    return best_slow / best_fast


def _sample(codec) -> bytes:
    rng = np.random.default_rng(0xBA7C4)
    n = INPUT_BYTES // codec.dtype.itemsize
    return np.cumsum(rng.normal(scale=0.01, size=n)).astype(
        codec.dtype
    ).tobytes()


class TestBatchedSpeedup:
    def test_compress_geomean_speedup_on_speed_codecs(self):
        speedups = []
        for name in SPEED_CODECS:
            codec = get_codec(name)
            data = _sample(codec)
            assert compress_bytes(
                data, codec, batch=True, chunk_size=CHUNK_BYTES
            ) == compress_bytes(data, codec, batch=False, chunk_size=CHUNK_BYTES)
            speedups.append(_paired_speedup(
                lambda: compress_bytes(
                    data, codec, batch=True, chunk_size=CHUNK_BYTES
                ),
                lambda: compress_bytes(
                    data, codec, batch=False, chunk_size=CHUNK_BYTES
                ),
            ))
        geomean = math.prod(speedups) ** (1 / len(speedups))
        assert geomean >= MIN_GEOMEAN_SPEEDUP, (
            f"batched compress geomean {geomean:.2f}x "
            f"(per codec: {[f'{s:.2f}x' for s in speedups]})"
        )

    def test_batched_decode_never_slower(self):
        """Decode batching is a smaller win; gate it at parity."""
        speedups = []
        for name in SPEED_CODECS:
            codec = get_codec(name)
            blob = compress_bytes(_sample(codec), codec, chunk_size=CHUNK_BYTES)
            speedups.append(_paired_speedup(
                lambda: decompress_bytes(blob, batch=True),
                lambda: decompress_bytes(blob, batch=False),
            ))
        geomean = math.prod(speedups) ** (1 / len(speedups))
        assert geomean >= 1.0, (
            f"batched decompress geomean {geomean:.2f}x "
            f"(per codec: {[f'{s:.2f}x' for s in speedups]})"
        )
