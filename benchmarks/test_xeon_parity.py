"""The paper's Xeon claim: results mirror the Ryzen's, only faster.

"We repeated the CPU experiments on a second system ... based on an
Intel Xeon.  The results are not shown as they are qualitatively very
similar ... The main difference is that the throughputs are generally
higher since the Xeon system contains two sockets" (paper §5.1/§5.2).
"""

from __future__ import annotations

import numpy as np

import repro
from conftest import BENCH_SCALE
from repro.device import RYZEN_2950X, XEON_6226R
from repro.harness.figures import XEON_CONFIGS
from repro.harness.runner import run_suite


def _pairs():
    for spec in XEON_CONFIGS:
        ryzen = run_suite(spec.dtype, RYZEN_2950X, spec.direction, scale=BENCH_SCALE)
        xeon = run_suite(spec.dtype, XEON_6226R, spec.direction, scale=BENCH_SCALE)
        yield spec, {r.name: r for r in ryzen}, {r.name: r for r in xeon}


def test_xeon_fronts_match_ryzen():
    for spec, ryzen, xeon in _pairs():
        ryzen_front = {n for n, r in ryzen.items() if r.on_front}
        xeon_front = {n for n, r in xeon.items() if r.on_front}
        assert ryzen_front == xeon_front, spec.figure_id


def test_xeon_is_uniformly_faster():
    for spec, ryzen, xeon in _pairs():
        for name in ryzen:
            assert xeon[name].throughput > ryzen[name].throughput, (spec.figure_id, name)


def test_ratios_are_device_independent():
    for spec, ryzen, xeon in _pairs():
        for name in ryzen:
            assert ryzen[name].ratio == xeon[name].ratio


def test_xeon_wallclock(benchmark):
    # Wall-clock anchor: one representative compression on the Xeon config.
    from repro.datasets import dp_suite

    data = dp_suite()[0].files[0].load(BENCH_SCALE)
    blob = benchmark(repro.compress, data, "dpspeed")
    assert np.array_equal(repro.decompress(blob), data)
