"""Regenerate the paper's FIG13 (Ryzen 2950X, float32, decompress throughput).

Shape targets from the paper:
* only FPzip, SPspeed, and SPratio lie on the CPU front
* SPspeed decompresses ~55x faster than FPzip
"""

from __future__ import annotations

import numpy as np

import repro
from conftest import figure_result, show, top_ratio_name


def test_fig13_shape(benchmark):
    result = benchmark(figure_result, "fig13")
    show(result)
    assert set(result.front_names()) == {"FPzip", "SPspeed", "SPratio"}
    speedup = result.row("SPspeed").throughput / result.row("FPzip").throughput
    assert 30 < speedup < 110  # paper: 55x


def test_fig13_spspeed_decompress_wallclock(benchmark, representative_sp):
    """Measured (Python) decompress throughput of spspeed on one file."""
    data = representative_sp
    blob = repro.compress(data, "spspeed")
    if "decompress" == "compress":
        result = benchmark(repro.compress, data, "spspeed")
        assert repro.inspect(result).original_len == data.nbytes
    else:
        restored = benchmark(repro.decompress, blob)
        assert np.array_equal(restored, data)
