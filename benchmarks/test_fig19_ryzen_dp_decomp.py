"""Regenerate the paper's FIG19 (Ryzen 2950X, float64, decompress throughput).

Shape targets from the paper:
* DPratio is the second-fastest CPU decompressor after DPspeed
* highlighting the speed of the union-find decode (paper 5.2)
"""

from __future__ import annotations

import numpy as np

import repro
from conftest import figure_result, show, top_ratio_name


def test_fig19_shape(benchmark):
    result = benchmark(figure_result, "fig19")
    show(result)
    ordered = sorted(result.rows, key=lambda r: -r.throughput)
    cpu_only = [r for r in ordered if r.name != "Ndzip"]  # ndzip is CPU+GPU
    assert cpu_only[0].name == "DPspeed"
    assert cpu_only[1].name == "DPratio"
    assert {"DPspeed", "DPratio"} <= set(result.front_names())


def test_fig19_dpspeed_decompress_wallclock(benchmark, representative_dp):
    """Measured (Python) decompress throughput of dpspeed on one file."""
    data = representative_dp
    blob = repro.compress(data, "dpspeed")
    if "decompress" == "compress":
        result = benchmark(repro.compress, data, "dpspeed")
        assert repro.inspect(result).original_len == data.nbytes
    else:
        restored = benchmark(repro.decompress, blob)
        assert np.array_equal(restored, data)
