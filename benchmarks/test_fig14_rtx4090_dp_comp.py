"""Regenerate the paper's FIG14 (RTX 4090, float64, compress throughput).

Shape targets from the paper:
* DPratio stands out with much higher ratio than the other GPU codes
* DPratio shares the front with DPspeed; Bitcomp is also on it
"""

from __future__ import annotations

import numpy as np

import repro
from conftest import figure_result, show, top_ratio_name


def test_fig14_shape(benchmark):
    result = benchmark(figure_result, "fig14")
    show(result)
    assert top_ratio_name(result) == "DPratio"
    front = set(result.front_names())
    assert {"DPratio", "DPspeed"} <= front
    assert any(name.startswith("Bitcomp") for name in front)
    # Bitcomp compresses at high speed but a near-useless ratio (paper: 1.04).
    assert result.row("Bitcomp-i0").ratio < 1.1


def test_fig14_dpspeed_compress_wallclock(benchmark, representative_dp):
    """Measured (Python) compress throughput of dpspeed on one file."""
    data = representative_dp
    blob = repro.compress(data, "dpspeed")
    if "compress" == "compress":
        result = benchmark(repro.compress, data, "dpspeed")
        assert repro.inspect(result).original_len == data.nbytes
    else:
        restored = benchmark(repro.decompress, blob)
        assert np.array_equal(restored, data)
