"""Regenerate the paper's FIG11 (A100, float32, decompress throughput).

Shape targets from the paper:
* SPspeed and SPratio are both on the A100 decompression front
"""

from __future__ import annotations

import numpy as np

import repro
from conftest import figure_result, show, top_ratio_name


def test_fig11_shape(benchmark):
    result = benchmark(figure_result, "fig11")
    show(result)
    front = set(result.front_names())
    assert {"SPspeed", "SPratio"} <= front
    # Paper 5.1: Bitcomp-b0's and b1's decompressors run faster on the
    # A100 than on the RTX 4090.
    rtx = figure_result("fig09")
    for name in ("Bitcomp-b0", "Bitcomp-b1"):
        assert result.row(name).throughput > rtx.row(name).throughput


def test_fig11_spratio_decompress_wallclock(benchmark, representative_sp):
    """Measured (Python) decompress throughput of spratio on one file."""
    data = representative_sp
    blob = repro.compress(data, "spratio")
    if "decompress" == "compress":
        result = benchmark(repro.compress, data, "spratio")
        assert repro.inspect(result).original_len == data.nbytes
    else:
        restored = benchmark(repro.decompress, blob)
        assert np.array_equal(restored, data)
