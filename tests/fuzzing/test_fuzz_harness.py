"""The fuzzing subsystem's own tests: determinism, invariants, mutators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import container as fmt
from repro.errors import ReproError, traceback_summary
from repro.fuzzing import (
    MUTATORS,
    build_corpus,
    mutate,
    replay,
    run_fuzz,
)


class TestDeterminism:
    def test_same_seed_same_report(self):
        a = run_fuzz(seed=3, iterations=40)
        b = run_fuzz(seed=3, iterations=40)
        assert a.outcomes == b.outcomes
        assert [str(f) for f in a.failures] == [str(f) for f in b.failures]

    def test_different_seeds_differ(self):
        a = run_fuzz(seed=1, iterations=40)
        b = run_fuzz(seed=2, iterations=40)
        assert a.outcomes != b.outcomes  # astronomically unlikely to match

    def test_replay_reproduces_the_iteration_inputs(self):
        case, mutator, mutant = replay(5, 17)
        case2, mutator2, mutant2 = replay(5, 17)
        assert case.label == case2.label
        assert mutator == mutator2
        assert mutant == mutant2

    def test_mutators_are_deterministic(self):
        corpus = build_corpus(0)
        blob = corpus[0].blob
        for name in MUTATORS:
            a = mutate(blob, name, np.random.default_rng(11))
            b = mutate(blob, name, np.random.default_rng(11))
            assert a == b, name


class TestCorpus:
    def test_corpus_covers_all_codecs_and_both_versions(self):
        corpus = build_corpus(0)
        labels = {case.label for case in corpus}
        for codec in ("spspeed", "spratio", "dpspeed", "dpratio"):
            assert f"{codec}-v1" in labels and f"{codec}-v2" in labels
        assert "raw-fallback" in labels
        # v2 cases really carry chunk CRCs, v1 cases really do not.
        for case in corpus:
            info = fmt.inspect_container(case.blob)
            if case.label.endswith("-v2"):
                assert info.chunk_crcs is not None and info.version == 2
            elif case.label.endswith("-v1"):
                assert info.chunk_crcs is None and info.version == 1

    def test_corpus_has_indexed_v3_cases(self):
        corpus = build_corpus(0)
        for codec in ("spspeed", "spratio", "dpspeed", "dpratio"):
            case = next(c for c in corpus if c.label == f"{codec}-v3")
            assert case.has_index
            info = fmt.inspect_container(case.blob)
            assert info.version == 3 and info.index_offsets is not None

    def test_corpus_containers_are_valid(self):
        from repro.core.compressor import decompress_bytes

        for case in build_corpus(0):
            data, _ = decompress_bytes(case.blob)
            assert data == case.data, case.label


class TestInvariants:
    def test_clean_run_has_no_failures(self):
        report = run_fuzz(seed=0, iterations=150)
        assert report.ok, report.render()
        assert sum(report.outcomes.values()) == 150
        # The mutation space actually exercises both fates.
        assert report.outcomes["rejected"] > 0
        decoded = (report.outcomes["decoded-intact"]
                   + report.outcomes["decoded-differs"])
        assert decoded > 0

    def test_every_mutator_fails_safely_on_every_case(self):
        # Denser coverage than the sampled loop: the full cartesian
        # product, one mutation each.
        from repro.core.compressor import decompress_bytes

        for case in build_corpus(7):
            for name in sorted(MUTATORS):
                rng = np.random.default_rng([7, hash(name) % (2**31)])
                mutant = mutate(case.blob, name, rng)
                try:
                    decompress_bytes(mutant)
                except ReproError:
                    pass
                try:
                    decompress_bytes(mutant, errors="salvage")
                except ReproError:
                    pass

    def test_render_summarises(self):
        report = run_fuzz(seed=0, iterations=25)
        text = report.render()
        assert "seed=0" in text and "iterations=25" in text


class TestIndexMutators:
    """The v3 chunk-index mutators: every changed mutant must be rejected."""

    def test_changed_index_mutants_always_reject(self):
        from repro.core.compressor import decompress_bytes
        from repro.fuzzing.mutators import CONTAINER_MUST_REJECT

        case = next(c for c in build_corpus(0) if c.label == "spratio-v3")
        for name in sorted(CONTAINER_MUST_REJECT):
            changed = 0
            for iteration in range(60):
                rng = np.random.default_rng([41, iteration])
                mutant = mutate(case.blob, name, rng)
                if mutant == case.blob:
                    continue
                changed += 1
                with pytest.raises(ReproError):
                    decompress_bytes(mutant)
            assert changed > 40, name  # the mutator actually bites

    def test_no_decompression_bomb_from_index_damage(self):
        # A damaged index must be rejected at parse time — before any
        # payload window is sliced, let alone decoded.
        case = next(c for c in build_corpus(0) if c.label == "dpratio-v3")
        rng = np.random.default_rng(77)
        mutant = mutate(case.blob, "index-offset", rng)
        assert mutant != case.blob
        with pytest.raises(ReproError):
            fmt.inspect_container(mutant)

    def test_mutators_fall_back_on_unindexed_containers(self):
        # v1/v2 containers carry no index; the index mutators degrade to
        # a generic bit flip instead of corrupting unrelated bytes.
        case = next(c for c in build_corpus(0) if c.label == "spratio-v1")
        rng = np.random.default_rng(5)
        mutant = mutate(case.blob, "index-overlap", rng)
        assert len(mutant) == len(case.blob)


class TestBombGuards:
    """Handcrafted decompression bombs the fuzz invariants rest on."""

    def _header(self, **overrides) -> bytearray:
        fields = dict(magic=b"FPRZ", version=1, codec_id=1, dtype_code=0,
                      flags=0, orig_len=16384, inter_len=16384,
                      chunk_size=16384, n_chunks=1)
        fields.update(overrides)
        import struct

        return bytearray(struct.pack(
            "<4sBBBBQQII", fields["magic"], fields["version"],
            fields["codec_id"], fields["dtype_code"], fields["flags"],
            fields["orig_len"], fields["inter_len"], fields["chunk_size"],
            fields["n_chunks"],
        ))

    def test_huge_declared_original_len_rejected_cheaply(self):
        from repro.errors import BoundsError

        blob = bytes(self._header(orig_len=1 << 62, inter_len=1 << 62)
                     ) + b"\x05\x00\x00\x00" + b"\x00" * 5
        with pytest.raises(BoundsError, match="implausible"):
            fmt.inspect_container(blob)

    def test_huge_chunk_size_rejected(self):
        from repro.errors import BoundsError

        blob = bytes(self._header(chunk_size=1 << 30)
                     ) + b"\x05\x00\x00\x00" + b"\x00" * 5
        with pytest.raises(BoundsError, match="chunk size"):
            fmt.inspect_container(blob)

    def test_intermediate_len_must_fit_the_global_stage(self, smooth_f64):
        # A plausible-per-byte-count inter_len that no FCM output could
        # have (codec dpratio: max 2x+9) must be rejected before the
        # decoder allocates the intermediate buffer.
        import repro
        from repro.core.compressor import decompress_bytes
        from repro.errors import BoundsError

        blob = bytearray(repro.compress(smooth_f64, "dpratio",
                                        checksum=False, chunk_checksums=False))
        orig_len = int.from_bytes(blob[8:16], "little")
        blob[16:24] = (4 * orig_len).to_bytes(8, "little")
        with pytest.raises(BoundsError, match="maximum"):
            decompress_bytes(bytes(blob))

    def test_traceback_summary_names_the_frame(self):
        try:
            1 / 0
        except ZeroDivisionError as exc:
            summary = traceback_summary(exc)
        assert "ZeroDivisionError" in summary
        assert "test_fuzz_harness.py" in summary
