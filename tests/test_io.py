"""Tests for the streaming frame format."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.errors import FormatError
from repro.io import StreamReader, StreamWriter


def frames(rng, count=5, size=3000):
    return [np.cumsum(rng.normal(size=size)).astype(np.float32) for _ in range(count)]


class TestStreamRoundtrip:
    def test_frames_roundtrip_in_order(self, rng):
        originals = frames(rng)
        sink = io.BytesIO()
        with StreamWriter(sink, codec="spspeed") as writer:
            for frame in originals:
                writer.write(frame)
        sink.seek(0)
        restored = list(StreamReader(sink))
        assert len(restored) == len(originals)
        for got, want in zip(restored, originals):
            assert np.array_equal(got, want)

    def test_mixed_dtypes_and_shapes(self, rng):
        originals = [
            rng.normal(size=(8, 16)).astype(np.float32),
            rng.normal(size=100).astype(np.float64),
        ]
        sink = io.BytesIO()
        with StreamWriter(sink) as writer:
            for frame in originals:
                writer.write(frame)
        sink.seek(0)
        restored = list(StreamReader(sink))
        assert restored[0].shape == (8, 16)
        assert restored[1].dtype == np.float64

    def test_writer_statistics(self, rng):
        sink = io.BytesIO()
        with StreamWriter(sink, codec="spratio") as writer:
            for frame in frames(rng, count=3):
                writer.write(frame)
            assert writer.frames_written == 3
            assert writer.ratio > 1.0

    def test_empty_stream(self):
        sink = io.BytesIO()
        StreamWriter(sink).close()
        sink.seek(0)
        assert list(StreamReader(sink)) == []

    def test_crashed_writer_stream_still_readable(self, rng):
        # No terminator (writer "crashed"): reader stops at EOF.
        originals = frames(rng, count=2)
        sink = io.BytesIO()
        writer = StreamWriter(sink, codec="spspeed")
        for frame in originals:
            writer.write(frame)
        # no close()
        sink.seek(0)
        restored = list(StreamReader(sink))
        assert len(restored) == 2

    def test_write_after_close_rejected(self, rng):
        sink = io.BytesIO()
        writer = StreamWriter(sink)
        writer.close()
        with pytest.raises(ValueError):
            writer.write(frames(rng, count=1)[0])


class TestStreamValidation:
    def test_bad_magic(self):
        with pytest.raises(FormatError):
            StreamReader(io.BytesIO(b"JUNKJUNK"))

    def test_truncated_frame(self, rng):
        sink = io.BytesIO()
        writer = StreamWriter(sink, codec="spspeed")
        writer.write(frames(rng, count=1)[0])
        data = sink.getvalue()[:-20]  # cut into the frame body
        reader = StreamReader(io.BytesIO(data))
        with pytest.raises(FormatError):
            list(reader)

    def test_bad_version(self):
        blob = b"FPRS" + bytes([99, 0, 0, 0])
        with pytest.raises(FormatError):
            StreamReader(io.BytesIO(blob))
