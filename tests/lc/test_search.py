"""Tests for the mini LC framework (pipeline synthesis)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lc import component_names, enumerate_pipelines, make_stage, synthesize


class TestCatalogue:
    def test_paper_transformations_present(self):
        names = component_names()
        for expected in ("diffms32", "diffms64", "bit32", "mplg32", "rze",
                         "raze64", "rare64", "fcm"):
            assert expected in names

    def test_make_stage_roundtrips(self, rng):
        data = rng.integers(0, 256, size=4096, dtype=np.uint8).tobytes()
        for name in component_names():
            stage = make_stage(name)
            assert stage.decode(stage.encode(data)) == data, name

    def test_unknown_component(self):
        with pytest.raises(KeyError):
            make_stage("middleout")


class TestEnumeration:
    def test_depth_one_yields_each_chunk_component(self):
        chains = set(enumerate_pipelines(max_stages=1, allow_global=False))
        assert ("diffms32",) in chains
        assert all(len(c) == 1 for c in chains)

    def test_no_immediate_repeats(self):
        for chain in enumerate_pipelines(max_stages=3, word_bits=32,
                                         allow_global=False):
            assert all(a != b for a, b in zip(chain, chain[1:]))

    def test_global_stage_only_leads(self):
        for chain in enumerate_pipelines(max_stages=2, word_bits=64):
            assert "fcm" not in chain[1:]

    def test_word_bits_filter(self):
        for chain in enumerate_pipelines(max_stages=2, word_bits=32,
                                         allow_global=False):
            assert not any(name.endswith("64") for name in chain)


class TestSynthesis:
    def test_smooth_data_prefers_diffms_first(self, smooth_f32):
        results = synthesize(smooth_f32.tobytes()[:65536], max_stages=2,
                             word_bits=32, allow_global=False, top=3)
        assert results[0].stages[0] == "diffms32"
        assert results[0].ratio > 1.2

    def test_results_sorted_by_score(self, smooth_f32):
        results = synthesize(smooth_f32.tobytes()[:32768], max_stages=2,
                             word_bits=32, allow_global=False, top=10)
        scores = [r.score for r in results]
        assert scores == sorted(scores)

    def test_stage_penalty_prefers_short_chains(self, smooth_f32):
        data = smooth_f32.tobytes()[:32768]
        cheap = synthesize(data, max_stages=2, word_bits=32,
                           allow_global=False, stage_penalty=0.2, top=1)
        assert len(cheap[0].stages) == 1

    def test_repetitive_doubles_prefer_fcm(self, rng):
        # Data whose only structure is far-apart repeats: chains with the
        # global FCM stage must beat chains without it.
        period = rng.integers(0, 1 << 60, size=8192, dtype=np.uint64)
        data = np.tile(period, 6).tobytes()
        results = synthesize(data, max_stages=2, word_bits=64,
                             allow_global=True, stage_penalty=0.0, top=5)
        assert results[0].stages[0] == "fcm"
