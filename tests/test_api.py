"""Tests for the public array-level API."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.errors import UnsupportedDtypeError


class TestCompressDecompress:
    def test_f32_default_is_ratio_codec(self, smooth_f32):
        blob = repro.compress(smooth_f32)
        assert repro.inspect(blob).codec_id == repro.get_codec("spratio").codec_id

    def test_f64_default_is_ratio_codec(self, smooth_f64):
        blob = repro.compress(smooth_f64)
        assert repro.inspect(blob).codec_id == repro.get_codec("dpratio").codec_id

    def test_mode_speed(self, smooth_f32):
        blob = repro.compress(smooth_f32, mode="speed")
        assert repro.inspect(blob).codec_id == repro.get_codec("spspeed").codec_id

    @pytest.mark.parametrize("codec", ["spspeed", "spratio"])
    def test_f32_roundtrip(self, codec, smooth_f32):
        back = repro.decompress(repro.compress(smooth_f32, codec))
        assert back.dtype == np.float32
        assert np.array_equal(back, smooth_f32)

    @pytest.mark.parametrize("codec", ["dpspeed", "dpratio"])
    def test_f64_roundtrip(self, codec, smooth_f64):
        back = repro.decompress(repro.compress(smooth_f64, codec))
        assert back.dtype == np.float64
        assert np.array_equal(back, smooth_f64)

    def test_shape_preserved(self, rng):
        field = rng.normal(size=(16, 8, 4)).astype(np.float32)
        back = repro.decompress(repro.compress(field))
        assert back.shape == (16, 8, 4)
        assert np.array_equal(back, field)

    def test_special_values_bit_exact(self, special_f32, special_f64):
        for arr in (special_f32, special_f64):
            back = repro.decompress(repro.compress(arr))
            # NaN != NaN, so compare bit patterns.
            assert back.tobytes() == arr.tobytes()

    def test_nan_payloads_preserved(self):
        # Two NaNs with different payloads must stay distinct.
        words = np.array([0x7FC00001, 0x7FC00002], dtype=np.uint32)
        arr = words.view(np.float32)
        back = repro.decompress(repro.compress(arr))
        assert back.view(np.uint32).tolist() == words.tolist()

    def test_bytes_input_needs_codec(self):
        with pytest.raises(UnsupportedDtypeError):
            repro.compress(b"12345678")

    def test_bytes_input_roundtrip(self):
        data = bytes(range(256)) * 64
        blob = repro.compress(data, "spspeed")
        assert repro.decompress(blob) == data

    def test_rejects_integer_arrays(self):
        with pytest.raises(UnsupportedDtypeError):
            repro.compress(np.arange(10))

    def test_noncontiguous_input(self, rng):
        base = rng.normal(size=(100, 2)).astype(np.float32)
        view = base[:, 0]
        back = repro.decompress(repro.compress(view))
        assert np.array_equal(back, view)

    def test_empty_array(self):
        arr = np.zeros(0, dtype=np.float32)
        back = repro.decompress(repro.compress(arr))
        assert back.size == 0 and back.dtype == np.float32


class TestInspect:
    def test_reports_ratio(self, smooth_f32):
        blob = repro.compress(smooth_f32)
        info = repro.inspect(blob)
        assert info.original_len == smooth_f32.nbytes
        assert info.ratio > 1.0

    def test_available_codecs(self):
        assert repro.available_codecs() == [
            "auto", "dpratio", "dpspeed", "spratio", "spspeed"
        ]


class TestCrossCodecSafety:
    def test_container_knows_its_codec(self, smooth_f32, smooth_f64):
        # A blob produced by one codec decodes with the right pipeline
        # even if the caller guessed wrong: the codec id is authoritative.
        blob = repro.compress(smooth_f32, "spspeed")
        back = repro.decompress(blob)
        assert np.array_equal(back, smooth_f32)
