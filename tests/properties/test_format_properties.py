"""Property tests for the container, archive, and stream layers."""

from __future__ import annotations

import io

import numpy as np
from hypothesis import given, settings, strategies as st

import repro
from repro.archive import Archive, write_archive
from repro.io import StreamReader, StreamWriter

member_names = st.text(
    alphabet=st.characters(codec="utf-8", exclude_characters="\x00"),
    min_size=1, max_size=24,
)

float_arrays = st.lists(
    st.floats(width=32, allow_nan=True, allow_infinity=True),
    min_size=0, max_size=200,
).map(lambda xs: np.array(xs, dtype=np.float32))


class TestArchiveProperties:
    @given(st.dictionaries(member_names, float_arrays, min_size=0, max_size=6))
    @settings(max_examples=40)
    def test_any_member_set_roundtrips(self, members):
        archive = Archive.from_bytes(write_archive(members))
        assert set(archive.members()) == set(members)
        for name, original in members.items():
            assert archive.read(name).tobytes() == original.tobytes()

    @given(st.lists(float_arrays, min_size=1, max_size=5))
    @settings(max_examples=30)
    def test_member_order_preserved(self, arrays):
        members = {f"m{i}": arr for i, arr in enumerate(arrays)}
        archive = Archive.from_bytes(write_archive(members))
        assert archive.members() == list(members)


class TestStreamProperties:
    @given(st.lists(float_arrays, min_size=0, max_size=8))
    @settings(max_examples=40)
    def test_any_frame_sequence_roundtrips(self, frames):
        sink = io.BytesIO()
        with StreamWriter(sink) as writer:
            for frame in frames:
                writer.write(frame)
        sink.seek(0)
        restored = list(StreamReader(sink))
        assert len(restored) == len(frames)
        for got, want in zip(restored, frames):
            assert got.tobytes() == want.tobytes()

    @given(float_arrays, st.integers(min_value=1, max_value=8))
    @settings(max_examples=30)
    def test_stream_frames_equal_api_containers(self, frame, workers):
        # A stream frame's payload is exactly repro.compress's output.
        sink = io.BytesIO()
        with StreamWriter(sink, checksum=False, workers=workers) as writer:
            writer.write(frame)
        body = sink.getvalue()[8:]  # skip stream header
        length = int.from_bytes(body[:4], "little")
        assert body[4 : 4 + length] == repro.compress(
            frame, workers=workers, checksum=False
        )


class TestContainerInspectionProperties:
    @given(float_arrays, st.booleans())
    @settings(max_examples=40)
    def test_inspect_never_lies_about_sizes(self, values, checksum):
        blob = repro.compress(values, checksum=checksum)
        info = repro.inspect(blob)
        assert info.total_len == len(blob)
        assert info.original_len == values.nbytes
        assert (info.checksum is not None) == checksum
        if not info.raw_fallback:
            assert sum(info.chunk_sizes) + info.payload_offset == len(blob)
