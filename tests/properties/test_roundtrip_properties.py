"""Property-based tests (hypothesis): losslessness is unconditional.

Every codec, every stage, and every bit-level primitive must round-trip
*arbitrary* input — not just the smooth data it was designed for.  These
properties are the library's core contract.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

import repro
from repro.bitpack import (
    bit_transpose,
    bit_untranspose,
    byte_shuffle,
    byte_unshuffle,
    count_leading_zeros,
    pack_words,
    unpack_words,
    zigzag_decode,
    zigzag_encode,
)
from repro.stages import RARE, RAZE, RZE, BitTranspose, DiffMS, FCMStage, MPLG

arbitrary_bytes = st.binary(min_size=0, max_size=4096)

words32 = st.lists(
    st.integers(min_value=0, max_value=(1 << 32) - 1), min_size=0, max_size=1000
).map(lambda xs: np.array(xs, dtype=np.uint32))

words64 = st.lists(
    st.integers(min_value=0, max_value=(1 << 64) - 1), min_size=0, max_size=600
).map(lambda xs: np.array(xs, dtype=np.uint64))

floats32 = st.lists(
    st.floats(width=32, allow_nan=True, allow_infinity=True),
    min_size=0, max_size=800,
).map(lambda xs: np.array(xs, dtype=np.float32))

floats64 = st.lists(
    st.floats(allow_nan=True, allow_infinity=True),
    min_size=0, max_size=500,
).map(lambda xs: np.array(xs, dtype=np.float64))


class TestBitpackProperties:
    @given(words32)
    def test_zigzag32_bijective(self, words):
        assert np.array_equal(zigzag_decode(zigzag_encode(words, 32), 32), words)

    @given(words64)
    def test_zigzag64_bijective(self, words):
        assert np.array_equal(zigzag_decode(zigzag_encode(words, 64), 64), words)

    @given(words64)
    def test_clz_bounds(self, words):
        clz = count_leading_zeros(words, 64)
        assert np.all(clz <= 64)
        nonzero = words != 0
        if nonzero.any():
            shifted = words[nonzero] >> (np.uint64(63) - clz[nonzero].astype(np.uint64))
            assert np.all(shifted == 1)

    @given(words32, st.integers(min_value=0, max_value=32))
    def test_packing_roundtrip_when_values_fit(self, words, width):
        mask = np.uint32((1 << width) - 1) if width else np.uint32(0)
        fitted = words & mask
        packed = pack_words(fitted, width, 32)
        assert np.array_equal(unpack_words(packed, len(fitted), width, 32), fitted)

    @given(words64)
    def test_transpose_bijective(self, words):
        stream = bit_transpose(words, 64)
        assert np.array_equal(bit_untranspose(stream, len(words), 64), words)

    @given(arbitrary_bytes, st.sampled_from([2, 4, 8]))
    def test_byte_shuffle_bijective(self, data, word_bytes):
        assert byte_unshuffle(byte_shuffle(data, word_bytes), word_bytes) == data


class TestStageProperties:
    @given(arbitrary_bytes)
    @settings(max_examples=60)
    def test_every_chunk_stage_roundtrips(self, data):
        for stage in (DiffMS(32), DiffMS(64), MPLG(32), MPLG(64),
                      BitTranspose(32), BitTranspose(64), RZE(),
                      RAZE(32), RAZE(64), RARE(32), RARE(64)):
            assert stage.decode(stage.encode(data)) == data, stage.name

    @given(arbitrary_bytes)
    @settings(max_examples=60)
    def test_fcm_roundtrips(self, data):
        stage = FCMStage()
        assert stage.decode(stage.encode(data)) == data


class TestCodecProperties:
    @given(floats32, st.sampled_from(["spspeed", "spratio"]))
    @settings(max_examples=60)
    def test_sp_codecs_bit_exact(self, values, codec):
        blob = repro.compress(values, codec)
        assert repro.decompress(blob).tobytes() == values.tobytes()

    @given(floats64, st.sampled_from(["dpspeed", "dpratio"]))
    @settings(max_examples=60)
    def test_dp_codecs_bit_exact(self, values, codec):
        blob = repro.compress(values, codec)
        assert repro.decompress(blob).tobytes() == values.tobytes()

    @given(arbitrary_bytes, st.sampled_from(["spspeed", "spratio", "dpspeed", "dpratio"]))
    @settings(max_examples=60)
    def test_raw_bytes_roundtrip_any_codec(self, data, codec):
        assert repro.decompress(repro.compress(data, codec)) == data

    @given(arbitrary_bytes)
    @settings(max_examples=40)
    def test_expansion_bounded_by_header(self, data):
        # The worst-case cap the chunk/raw fallbacks guarantee.
        for codec in ("spspeed", "dpratio"):
            blob = repro.compress(data, codec)
            assert len(blob) <= len(data) + 64

    @given(floats32)
    @settings(max_examples=40)
    def test_container_metadata_consistent(self, values):
        blob = repro.compress(values)
        info = repro.inspect(blob)
        assert info.original_len == values.nbytes
        assert info.total_len == len(blob)


class TestBaselineProperties:
    @given(arbitrary_bytes)
    @settings(max_examples=40)
    def test_entropy_coder_roundtrips(self, data):
        from repro.baselines.rans import ANS

        ans = ANS()
        assert ans.decompress(ans.compress(data)) == data

    @given(arbitrary_bytes)
    @settings(max_examples=40)
    def test_lz_roundtrips(self, data):
        from repro.baselines.lz77 import lz4

        comp = lz4()
        assert comp.decompress(comp.compress(data)) == data

    @given(floats64)
    @settings(max_examples=30)
    def test_fpc_roundtrips(self, values):
        from repro.baselines.fpc import FPC

        fpc = FPC()
        data = values.tobytes()
        assert fpc.decompress(fpc.compress(data)) == data

    @given(floats64)
    @settings(max_examples=30)
    def test_gfc_roundtrips(self, values):
        from repro.baselines.gfc import GFC

        gfc = GFC()
        data = values.tobytes()
        assert gfc.decompress(gfc.compress(data)) == data
