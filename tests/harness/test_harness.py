"""Tests for the figure-regeneration harness (at reduced corpus scale)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness import FIGURES, format_figure, run_figure
from repro.harness.figures import XEON_CONFIGS
from repro.harness.runner import our_codecs_for

#: Tiny corpus scale: the harness machinery is under test, not the shape.
SCALE = 0.02


class TestFigureSpecs:
    def test_twelve_figures(self):
        assert sorted(FIGURES) == [f"fig{n:02d}" for n in range(8, 20)]

    def test_axes_cover_the_grid(self):
        devices = {spec.device.name for spec in FIGURES.values()}
        assert devices == {"RTX 4090", "A100", "Ryzen 2950X"}
        dtypes = {np.dtype(spec.dtype).name for spec in FIGURES.values()}
        assert dtypes == {"float32", "float64"}
        directions = {spec.direction for spec in FIGURES.values()}
        assert directions == {"compress", "decompress"}

    def test_titles_mention_device_and_direction(self):
        spec = FIGURES["fig08"]
        assert "RTX 4090" in spec.title and "compression" in spec.title

    def test_xeon_configs_present(self):
        assert len(XEON_CONFIGS) == 4


class TestRunner:
    @pytest.fixture(scope="class")
    def fig08(self):
        return run_figure("fig08", scale=SCALE)

    def test_rows_cover_ours_plus_competitors(self, fig08):
        names = {r.name for r in fig08.rows}
        assert {"SPspeed", "SPratio"} <= names
        assert len(names) >= 12

    def test_ratios_positive_and_finite(self, fig08):
        for row in fig08.rows:
            assert 0 < row.ratio < 1000
            assert 0 < row.throughput < 10_000

    def test_front_is_marked(self, fig08):
        front = fig08.front_names()
        assert front
        marked = [r.name for r in fig08.rows if r.on_front]
        assert sorted(front) == sorted(marked)

    def test_rows_sorted_by_throughput(self, fig08):
        throughputs = [r.throughput for r in fig08.rows]
        assert throughputs == sorted(throughputs, reverse=True)

    def test_row_lookup(self, fig08):
        assert fig08.row("SPspeed").ours
        with pytest.raises(KeyError):
            fig08.row("nonexistent")

    def test_ratio_cache_shared_between_figures(self, fig08):
        # fig09 differs only in direction: identical ratios, free of charge.
        fig09 = run_figure("fig09", scale=SCALE)
        for row in fig08.rows:
            assert fig09.row(row.name).ratio == row.ratio

    def test_our_codec_adapter_names(self):
        assert [c.name for c in our_codecs_for(np.float32)] == ["SPspeed", "SPratio"]
        assert [c.name for c in our_codecs_for(np.float64)] == ["DPspeed", "DPratio"]


class TestReport:
    def test_plain_table_contains_all_rows(self):
        result = run_figure("fig08", scale=SCALE)
        text = format_figure(result)
        for row in result.rows:
            assert row.name in text
        assert "Pareto" in text

    def test_markdown_table(self):
        result = run_figure("fig08", scale=SCALE)
        text = format_figure(result, markdown=True)
        assert text.count("|") > 20
        assert "| compressor |" in text

    def test_render_experiments(self):
        from repro.harness import render_experiments

        result = run_figure("fig08", scale=SCALE)
        doc = render_experiments([result], preamble="# Title")
        assert doc.startswith("# Title")
        assert "Pareto front:" in doc
