"""Unit tests for the benchmark-trajectory schema helpers.

These do not run benchmarks (that is the bench-smoke CI job's work);
they pin the save/load contract and the regression-gate semantics that
``fprz bench --baseline`` relies on.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.harness.trajectory import (
    RANGE_SLICES,
    SCHEMA_VERSION,
    Regression,
    compare_trajectories,
    format_trajectory,
    load_trajectory,
    save_trajectory,
)


def _point(compress=100e6, decompress=200e6, *, codecs=None, tag="t"):
    if codecs is None:
        codecs = {
            "spspeed": {
                "compress_bytes_per_s": compress,
                "decompress_bytes_per_s": decompress,
                "ratio": 1.5,
            }
        }
    return {"schema": SCHEMA_VERSION, "tag": tag, "codecs": codecs}


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        point = _point(tag="rt")
        path = tmp_path / "BENCH_rt.json"
        save_trajectory(point, path)
        assert load_trajectory(path) == point

    def test_saved_file_is_stable_json(self, tmp_path):
        # sort_keys + trailing newline: committed points diff cleanly.
        path = tmp_path / "p.json"
        save_trajectory(_point(), path)
        text = path.read_text()
        assert text.endswith("\n")
        assert text == json.dumps(json.loads(text), indent=2, sort_keys=True) + "\n"

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError, match="cannot load"):
            load_trajectory(tmp_path / "absent.json")

    def test_malformed_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ReproError, match="cannot load"):
            load_trajectory(path)

    def test_non_dict_json_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ReproError, match="not a benchmark trajectory"):
            load_trajectory(path)

    @pytest.mark.parametrize("missing", ["schema", "codecs"])
    def test_missing_required_key_rejected(self, tmp_path, missing):
        point = _point()
        del point[missing]
        path = tmp_path / "partial.json"
        path.write_text(json.dumps(point))
        with pytest.raises(ReproError, match="not a benchmark trajectory"):
            load_trajectory(path)

    def test_newer_schema_rejected(self, tmp_path):
        point = _point()
        point["schema"] = SCHEMA_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(point))
        with pytest.raises(ReproError, match="newer than supported"):
            load_trajectory(path)


class TestCompare:
    def test_identical_points_have_no_regressions(self):
        assert compare_trajectories(_point(), _point()) == []

    def test_improvement_is_not_a_regression(self):
        assert compare_trajectories(_point(100e6), _point(400e6)) == []

    def test_drop_within_threshold_passes(self):
        # -30% is the default gate; -25% must pass.
        assert compare_trajectories(_point(100e6), _point(75e6)) == []

    def test_drop_past_threshold_is_reported(self):
        regs = compare_trajectories(_point(100e6, 200e6), _point(60e6, 200e6))
        assert len(regs) == 1
        reg = regs[0]
        assert (reg.section, reg.key, reg.metric) == (
            "codecs", "spspeed", "compress_bytes_per_s",
        )
        assert reg.baseline == 100e6 and reg.current == 60e6

    def test_both_directions_gate(self):
        regs = compare_trajectories(_point(100e6, 200e6), _point(10e6, 20e6))
        assert {r.metric for r in regs} == {
            "compress_bytes_per_s", "decompress_bytes_per_s",
        }

    def test_custom_threshold(self):
        base, cur = _point(100e6), _point(85e6)
        assert compare_trajectories(base, cur, threshold=0.10)
        assert compare_trajectories(base, cur, threshold=0.20) == []

    def test_codec_missing_from_current_is_skipped(self):
        # A baseline measured with more codecs must not fail the gate.
        assert compare_trajectories(_point(), _point(codecs={})) == []

    def test_only_codecs_section_gates(self):
        base, cur = _point(), _point()
        base["kernels"] = {"pack_words/w32/width8": {"bytes_per_s": 1e9}}
        cur["kernels"] = {"pack_words/w32/width8": {"bytes_per_s": 1e3}}
        assert compare_trajectories(base, cur) == []


def _range_rows(bytes_per_s):
    key = f"dpratio/slice{max(RANGE_SLICES)}"
    return {key: {"bytes_per_s": bytes_per_s,
                  "slice_bytes": max(RANGE_SLICES)}}


class TestRangeReadGate:
    def test_range_read_point_gates(self):
        base, cur = _point(), _point()
        base["range_read"] = _range_rows(100e6)
        cur["range_read"] = _range_rows(40e6)
        regs = compare_trajectories(base, cur)
        assert len(regs) == 1
        assert regs[0].section == "range_read"
        assert regs[0].metric == "bytes_per_s"

    def test_range_read_within_threshold_passes(self):
        base, cur = _point(), _point()
        base["range_read"] = _range_rows(100e6)
        cur["range_read"] = _range_rows(80e6)
        assert compare_trajectories(base, cur) == []

    def test_missing_range_section_is_skipped(self):
        # Old baselines without the section must keep gating cleanly.
        base, cur = _point(), _point()
        cur["range_read"] = _range_rows(1e3)
        assert compare_trajectories(base, cur) == []

    def test_only_the_largest_slice_gates(self):
        # Small-slice throughput is planning-overhead-dominated and far
        # noisier; it is recorded but not gated.
        base, cur = _point(), _point()
        small = f"dpratio/slice{min(RANGE_SLICES)}"
        base["range_read"] = {small: {"bytes_per_s": 100e6, "slice_bytes": 1}}
        cur["range_read"] = {small: {"bytes_per_s": 1e3, "slice_bytes": 1}}
        assert compare_trajectories(base, cur) == []


class TestRegression:
    def test_change_is_relative(self):
        reg = Regression("codecs", "spspeed", "compress_bytes_per_s", 100e6, 60e6)
        assert reg.change == pytest.approx(-0.4)

    def test_zero_baseline_change_is_zero(self):
        reg = Regression("codecs", "spspeed", "compress_bytes_per_s", 0.0, 60e6)
        assert reg.change == 0.0

    def test_render_mentions_metric_and_delta(self):
        reg = Regression("codecs", "dpratio", "decompress_bytes_per_s", 200e6, 100e6)
        text = reg.render()
        assert "codecs/dpratio" in text
        assert "decompress_bytes_per_s" in text
        assert "-50.0%" in text
        assert "200.00 -> 100.00 MB/s" in text


class TestFormat:
    def test_format_lists_codecs_and_kernels(self):
        point = _point(tag="fmt")
        point["kernels"] = {"clz/w32": {"bytes_per_s": 5e8}}
        text = format_trajectory(point)
        assert "tag fmt" in text
        assert "spspeed" in text
        assert "clz/w32" in text

    def test_format_renders_range_and_parallel_sections(self):
        point = _point(tag="v3")
        point["range_read"] = {
            "dpratio/slice4096": {"bytes_per_s": 2e8, "slice_bytes": 4096},
        }
        point["fcm_parallel"] = {
            "serial": {"compress_bytes_per_s": 1e8,
                       "decompress_bytes_per_s": 2e8,
                       "ratio": 1.2, "workers": 1},
            "global": {"compress_bytes_per_s": 1e8,
                       "decompress_bytes_per_s": 2e8,
                       "ratio": 1.3, "workers": 1},
        }
        text = format_trajectory(point)
        assert "dpratio/slice4096" in text
        assert "range read" in text
        assert "serial" in text and "global" in text


def _saturation_derived(pipelined=2.5, router=3.5):
    return {"derived": {"pipelined_speedup": pipelined,
                        "router_scaling": router,
                        "job_delay_ms": 3.0}}


class TestSaturationGate:
    def test_ratio_drop_past_threshold_gates(self):
        base, cur = _point(), _point()
        base["service_saturation"] = _saturation_derived(pipelined=2.5)
        cur["service_saturation"] = _saturation_derived(pipelined=1.2)
        regs = compare_trajectories(base, cur)
        assert len(regs) == 1
        reg = regs[0]
        assert (reg.section, reg.metric) == (
            "service_saturation", "pipelined_speedup",
        )
        assert reg.unit == "x"

    def test_both_saturation_ratios_gate(self):
        base, cur = _point(), _point()
        base["service_saturation"] = _saturation_derived(2.5, 3.5)
        cur["service_saturation"] = _saturation_derived(1.0, 1.0)
        regs = compare_trajectories(base, cur)
        assert {r.metric for r in regs} == {
            "pipelined_speedup", "router_scaling",
        }

    def test_ratio_within_threshold_passes(self):
        base, cur = _point(), _point()
        base["service_saturation"] = _saturation_derived(2.5, 3.5)
        cur["service_saturation"] = _saturation_derived(2.0, 2.8)  # -20%
        assert compare_trajectories(base, cur) == []

    def test_missing_saturation_section_is_skipped(self):
        base, cur = _point(), _point()
        base["service_saturation"] = _saturation_derived()
        assert compare_trajectories(base, cur) == []

    def test_ratio_regression_renders_raw_values_not_mbs(self):
        reg = Regression(
            "service_saturation", "derived", "router_scaling",
            3.5, 1.4, unit="x",
        )
        text = reg.render()
        assert "3.50 -> 1.40 x" in text
        assert "MB/s" not in text
