"""Tests for the multi-member archive format."""

from __future__ import annotations

import numpy as np
import pytest

from repro.archive import Archive, write_archive
from repro.errors import FormatError


@pytest.fixture
def members(rng):
    return {
        "temperature": np.cumsum(rng.normal(size=(32, 64)), axis=1).astype(np.float32),
        "pressure": np.cumsum(rng.normal(size=5000)).astype(np.float64),
        "mask": rng.integers(0, 2, size=3000).astype(np.float32),
    }


class TestArchiveRoundtrip:
    def test_members_roundtrip(self, members):
        archive = Archive.from_bytes(write_archive(members))
        assert archive.members() == list(members)
        for name, original in members.items():
            restored = archive.read(name)
            assert restored.dtype == original.dtype
            assert np.array_equal(restored, original)

    def test_shapes_preserved(self, members):
        archive = Archive.from_bytes(write_archive(members))
        assert archive.read("temperature").shape == (32, 64)

    def test_random_access_info(self, members):
        archive = Archive.from_bytes(write_archive(members))
        info = archive.info("pressure")
        assert info.original_len == members["pressure"].nbytes

    def test_total_ratio(self, members):
        archive = Archive.from_bytes(write_archive(members))
        assert archive.total_ratio() > 1.0

    def test_contains_and_len(self, members):
        archive = Archive.from_bytes(write_archive(members))
        assert "mask" in archive and "nonexistent" not in archive
        assert len(archive) == 3

    def test_checksummed_archive(self, members):
        blob = write_archive(members, checksum=True)
        archive = Archive.from_bytes(blob)
        assert archive.info("mask").checksum is not None
        assert np.array_equal(archive.read("mask"), members["mask"])

    def test_explicit_codec(self, rng):
        data = {"x": rng.normal(size=1000).astype(np.float64)}
        blob = write_archive(data, codec="dpspeed")
        archive = Archive.from_bytes(blob)
        assert np.array_equal(archive.read("x"), data["x"])

    def test_empty_archive(self):
        archive = Archive.from_bytes(write_archive({}))
        assert len(archive) == 0 and archive.members() == []


class TestArchiveValidation:
    def test_missing_member(self, members):
        archive = Archive.from_bytes(write_archive(members))
        with pytest.raises(KeyError):
            archive.read("missing")

    def test_bad_magic(self):
        with pytest.raises(FormatError):
            Archive.from_bytes(b"NOPE" + bytes(16))

    def test_truncated_index(self, members):
        blob = write_archive(members)
        with pytest.raises(FormatError):
            Archive.from_bytes(blob[:12])

    def test_payload_length_mismatch(self, members):
        blob = write_archive(members)
        with pytest.raises(FormatError):
            Archive.from_bytes(blob + b"trailing")

    def test_empty_member_name_rejected(self, rng):
        with pytest.raises(ValueError):
            write_archive({"": rng.normal(size=10).astype(np.float32)})

    def test_unicode_member_names(self, rng):
        data = {"θ_température": rng.normal(size=100).astype(np.float32)}
        archive = Archive.from_bytes(write_archive(data))
        assert np.array_equal(archive.read("θ_température"), data["θ_température"])
