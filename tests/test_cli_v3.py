"""CLI surface added with container v3: --chunks, concat, --range, --fcm."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.cli import main


@pytest.fixture
def walk(rng) -> np.ndarray:
    return np.cumsum(rng.normal(scale=0.01, size=12_000)).astype(np.float64)


@pytest.fixture
def fprz(walk, tmp_path):
    raw = tmp_path / "walk.d64"
    raw.write_bytes(walk.tobytes())
    out = tmp_path / "walk.fprz"
    assert main(["compress", str(raw), str(out), "--codec", "dpratio",
                 "--dtype", "float64", "--fcm", "restart"]) == 0
    return out


class TestInspectChunks:
    def test_chunk_table_from_header_alone(self, fprz, capsys):
        assert main(["inspect", str(fprz), "--chunks"]) == 0
        out = capsys.readouterr().out
        assert "fcm restarts: yes" in out
        assert "chunk index:  derived" in out
        lines = [l for l in out.splitlines() if l and l.split()[0].isdigit()]
        info = repro.inspect(fprz.read_bytes())
        assert len(lines) == info.n_chunks
        # First chunk row: offset is the payload base, sizes match tables.
        first = lines[0].split()
        assert int(first[1]) == info.payload_offset
        assert int(first[2]) == info.chunk_sizes[0]
        assert first[4] == f"{info.chunk_crcs[0]:08x}"

    def test_explicit_index_is_labelled(self, fprz, tmp_path, capsys):
        merged = tmp_path / "merged.fprz"
        assert main(["concat", str(merged), str(fprz), str(fprz)]) == 0
        assert main(["inspect", str(merged), "--chunks"]) == 0
        out = capsys.readouterr().out
        assert "chunk index:  explicit (v3)" in out


class TestConcatCommand:
    def test_concat_then_range_read(self, walk, fprz, tmp_path, capsys):
        merged = tmp_path / "merged.fprz"
        assert main(["concat", str(merged), str(fprz), str(fprz)]) == 0
        assert "no payload re-encoded" in capsys.readouterr().out
        out = tmp_path / "part.bin"
        n = walk.size
        assert main(["decompress", str(merged), str(out),
                     "--range", f"{n - 10}:{n + 10}"]) == 0
        got = np.frombuffer(out.read_bytes(), dtype=np.float64)
        want = np.concatenate([walk, walk])[n - 10 : n + 10]
        assert np.array_equal(got, want)

    def test_concat_rejects_legacy_global_fcm(self, walk, tmp_path, capsys):
        raw = tmp_path / "walk.d64"
        raw.write_bytes(walk.tobytes())
        legacy = tmp_path / "legacy.fprz"
        assert main(["compress", str(raw), str(legacy), "--codec", "dpratio",
                     "--dtype", "float64"]) == 0  # --fcm defaults to global
        merged = tmp_path / "merged.fprz"
        assert main(["concat", str(merged), str(legacy), str(legacy)]) == 1
        assert "error:" in capsys.readouterr().err


class TestRangeFlag:
    def test_bad_range_specs_are_typed_errors(self, fprz, tmp_path, capsys):
        out = tmp_path / "part.bin"
        assert main(["decompress", str(fprz), str(out), "--range", "10"]) == 1
        assert main(["decompress", str(fprz), str(out), "--range", "a:b"]) == 1
        err = capsys.readouterr().err
        assert "START:STOP" in err and "integer" in err

    def test_open_endpoints(self, walk, fprz, tmp_path):
        out = tmp_path / "tail.bin"
        assert main(["decompress", str(fprz), str(out), "--range=-100:"]) == 0
        assert np.array_equal(
            np.frombuffer(out.read_bytes(), dtype=np.float64), walk[-100:]
        )
