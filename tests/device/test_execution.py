"""Tests for the parallel-encoder schedule simulation (§3.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.codecs import get_codec
from repro.device import RTX4090, RYZEN_2950X
from repro.device.execution import (
    WorklistSimulator,
    chunk_work_estimates,
    lookback_write_completion,
    simulate_encoder,
)


class TestWorklist:
    def test_uniform_work_balances_perfectly(self):
        work = np.full(64, 10.0)
        schedule = WorklistSimulator(8).simulate(work, "dynamic")
        assert schedule.makespan == pytest.approx(80.0)
        assert schedule.utilization == pytest.approx(1.0)
        assert schedule.imbalance == pytest.approx(1.0)

    def test_makespan_lower_bounds(self):
        rng = np.random.default_rng(3)
        work = rng.uniform(1.0, 10.0, size=100)
        schedule = WorklistSimulator(7).simulate(work, "dynamic")
        assert schedule.makespan >= work.sum() / 7 - 1e-9
        assert schedule.makespan >= work.max()
        assert schedule.total_work == pytest.approx(work.sum())

    def test_dynamic_never_loses_to_static_on_skewed_work(self):
        # The paper's motivation for dynamic assignment: compressible and
        # incompressible chunks take very different times.
        rng = np.random.default_rng(7)
        work = np.where(rng.random(200) < 0.1, 50.0, 1.0)
        dynamic = WorklistSimulator(16).simulate(work, "dynamic")
        static = WorklistSimulator(16).simulate(work, "static")
        assert dynamic.makespan <= static.makespan + 1e-9

    def test_static_blocked_partition(self):
        work = np.array([5.0, 5.0, 1.0, 1.0])
        schedule = WorklistSimulator(2).simulate(work, "static")
        assert schedule.assignment == (0, 0, 1, 1)
        assert schedule.makespan == pytest.approx(10.0)

    def test_single_worker_serialises(self):
        work = np.array([1.0, 2.0, 3.0])
        schedule = WorklistSimulator(1).simulate(work, "dynamic")
        assert schedule.makespan == pytest.approx(6.0)
        assert schedule.spans == ((0.0, 1.0), (1.0, 3.0), (3.0, 6.0))

    def test_deterministic(self):
        rng = np.random.default_rng(1)
        work = rng.uniform(1, 5, size=50)
        a = WorklistSimulator(4).simulate(work)
        b = WorklistSimulator(4).simulate(work)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            WorklistSimulator(0)
        with pytest.raises(ValueError):
            WorklistSimulator(2).simulate(np.ones(3), "round-robin")

    def test_empty_work(self):
        schedule = WorklistSimulator(4).simulate(np.zeros(0))
        assert schedule.makespan == 0.0


class TestLookback:
    def test_in_order_finishes_add_nothing(self):
        work = np.full(16, 2.0)
        schedule = WorklistSimulator(1).simulate(work)
        writes = lookback_write_completion(schedule)
        finishes = [finish for _, finish in schedule.spans]
        assert np.allclose(writes, finishes)

    def test_straggler_serialises_successors(self):
        # Chunk 0 is huge: every later chunk's write must wait for its post.
        work = np.array([100.0, 1.0, 1.0, 1.0])
        schedule = WorklistSimulator(4).simulate(work)
        writes = lookback_write_completion(schedule)
        assert writes[0] == pytest.approx(100.0)
        assert np.all(writes[1:] >= 100.0)

    def test_post_latency_accumulates(self):
        work = np.full(10, 1.0)
        schedule = WorklistSimulator(10).simulate(work)
        writes = lookback_write_completion(schedule, post_latency=0.5)
        assert writes[-1] == pytest.approx(1.0 + 0.5 * 9)


class TestEncoderSimulation:
    def test_work_estimates_track_chunk_count(self, smooth_f32):
        codec = get_codec("spratio")
        work = chunk_work_estimates(smooth_f32.tobytes(), codec)
        expected_chunks = (smooth_f32.nbytes + 16383) // 16384
        assert len(work) == expected_chunks
        assert np.all(work > 0)

    def test_gpu_schedule_beats_cpu_schedule(self, smooth_f32):
        codec = get_codec("spspeed")
        _, gpu_time = simulate_encoder(smooth_f32.tobytes(), codec, RTX4090)
        _, cpu_time = simulate_encoder(smooth_f32.tobytes(), codec, RYZEN_2950X)
        assert gpu_time <= cpu_time  # more execution slots, same work

    def test_dynamic_policy_on_real_mixed_data(self, rng):
        # Half smooth, half incompressible: chunk work is genuinely skewed.
        smooth = np.cumsum(rng.normal(scale=0.01, size=40_000)).astype(np.float32)
        noise = (rng.random(40_000).astype(np.float32) * 2 - 1) * 1e30
        data = np.concatenate([smooth, noise]).tobytes()
        codec = get_codec("spratio")
        work = chunk_work_estimates(data, codec)
        dynamic = WorklistSimulator(16).simulate(work, "dynamic")
        static = WorklistSimulator(16).simulate(work, "static")
        assert dynamic.makespan <= static.makespan + 1e-9
        assert dynamic.utilization >= static.utilization - 1e-9
