"""Tests for the device execution model."""

from __future__ import annotations

import pytest

from repro.device import A100, ALL_DEVICES, RTX4090, RYZEN_2950X, XEON_6226R
from repro.device.cost import OUR_CODECS, CostProfile
from repro.device.model import modeled_throughput
from repro.errors import UnknownCodecError


class TestCostProfiles:
    def test_roofline_is_max_of_mem_and_compute(self):
        device = RTX4090
        mem_bound = CostProfile(mem_bytes=10.0, ops=1.0)
        compute_bound = CostProfile(mem_bytes=0.1, ops=100.0)
        assert mem_bound.throughput(device) == pytest.approx(device.mem_bw / 10.0)
        assert compute_bound.throughput(device) == pytest.approx(device.compute / 100.0)

    def test_sort_term_is_additive(self):
        with_sort = CostProfile(mem_bytes=1.0, ops=1.0, sort_bytes=1.0)
        without = CostProfile(mem_bytes=1.0, ops=1.0)
        assert with_sort.throughput(RTX4090) < without.throughput(RTX4090)

    def test_all_codecs_have_profiles(self):
        assert set(OUR_CODECS) == {"spspeed", "spratio", "dpspeed", "dpratio"}


class TestPaperAnchors:
    """Quantitative anchors the paper states explicitly."""

    def test_spspeed_4090_near_518(self):
        # §5: "our fastest code compresses and decompresses at over
        # 500 GB/s" on the RTX 4090.
        assert modeled_throughput("SPspeed", RTX4090, "compress") > 500
        assert modeled_throughput("SPspeed", RTX4090, "decompress") > 500

    def test_spspeed_vs_fpzip_ryzen(self):
        # §5.1: "SPspeed compresses 75 times faster and decompresses 55
        # times faster than FPzip".
        comp = modeled_throughput("SPspeed", RYZEN_2950X, "compress")
        comp_fpzip = modeled_throughput("FPzip", RYZEN_2950X, "compress")
        assert 40 < comp / comp_fpzip < 120

    def test_dpspeed_vs_pfpc_ryzen(self):
        # §5.2: DPspeed "compresses and decompresses roughly 10 times
        # faster than pFPC".
        for direction in ("compress", "decompress"):
            ours = modeled_throughput("DPspeed", RYZEN_2950X, direction)
            pfpc = modeled_throughput("pFPC", RYZEN_2950X, direction)
            assert 5 < ours / pfpc < 20

    def test_dpratio_decompression_outruns_compression(self):
        # §5.2: no sorting in the FCM decoder.
        for device in (RTX4090, A100, RYZEN_2950X):
            comp = modeled_throughput("DPratio", device, "compress")
            decomp = modeled_throughput("DPratio", device, "decompress")
            assert decomp > 5 * comp

    def test_ours_faster_on_4090_than_a100(self):
        # §5.1: "we optimized our compressors ... for newer GPUs".
        for codec in ("SPspeed", "SPratio", "DPspeed", "DPratio"):
            for direction in ("compress", "decompress"):
                assert modeled_throughput(codec, RTX4090, direction) > \
                    modeled_throughput(codec, A100, direction)

    def test_xeon_faster_than_ryzen(self):
        for codec in ("SPspeed", "DPratio", "FPzip", "Gzip-fast"):
            assert modeled_throughput(codec, XEON_6226R, "compress") > \
                modeled_throughput(codec, RYZEN_2950X, "compress")

    def test_bitcomp_b1_faster_on_a100(self):
        # §5.1: "Bitcomp-b0's decompressor and Bitcomp-b1's compressor and
        # decompressor run faster on the A100."
        assert modeled_throughput("Bitcomp-b1", A100, "compress") > \
            modeled_throughput("Bitcomp-b1", RTX4090, "compress")
        assert modeled_throughput("Bitcomp-b0", A100, "decompress") > \
            modeled_throughput("Bitcomp-b0", RTX4090, "decompress")
        assert modeled_throughput("Bitcomp-b0", A100, "compress") < \
            modeled_throughput("Bitcomp-b0", RTX4090, "compress")


class TestModelAPI:
    def test_unknown_codec_rejected(self):
        with pytest.raises(UnknownCodecError):
            modeled_throughput("middle-out", RTX4090, "compress")

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError):
            modeled_throughput("SPspeed", RTX4090, "sideways")

    def test_ndzip_resolves_by_device_kind(self):
        gpu = modeled_throughput("Ndzip", RTX4090, "compress")
        cpu = modeled_throughput("Ndzip", RYZEN_2950X, "compress")
        assert gpu > 20 * cpu

    def test_devices_registered(self):
        assert set(ALL_DEVICES) == {
            "RTX 4090", "A100", "Ryzen 2950X", "Xeon 6226R (2x)"
        }

    def test_f64_overrides_apply(self):
        f32 = modeled_throughput("Bitcomp-i0", RTX4090, "decompress", "float32")
        f64 = modeled_throughput("Bitcomp-i0", RTX4090, "decompress", "float64")
        assert f64 < f32
