"""Unit tests for the enhanced MPLG stage."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stages import MPLG
from repro.errors import CorruptDataError


@pytest.mark.parametrize("word_bits,dtype", [(32, np.uint32), (64, np.uint64)])
class TestMPLG:
    def test_roundtrip_random(self, word_bits, dtype, rng):
        words = rng.integers(0, 1 << 32, size=4096, dtype=np.uint64).astype(dtype)
        stage = MPLG(word_bits)
        assert stage.decode(stage.encode(words.tobytes())) == words.tobytes()

    def test_roundtrip_with_tail(self, word_bits, dtype, rng):
        data = rng.integers(0, 256, size=16387, dtype=np.uint8).tobytes()
        stage = MPLG(word_bits)
        assert stage.decode(stage.encode(data)) == data

    def test_compresses_small_values(self, word_bits, dtype, rng):
        # Values below 2^8 need only 8 bits each: ~4x/8x reduction.
        words = rng.integers(0, 256, size=4096, dtype=np.uint64).astype(dtype)
        encoded = MPLG(word_bits).encode(words.tobytes())
        assert len(encoded) < len(words.tobytes()) / (word_bits // 16)

    def test_all_zero_subchunks_collapse(self, word_bits, dtype):
        words = np.zeros(4096, dtype=dtype)
        encoded = MPLG(word_bits).encode(words.tobytes())
        # Payload is only the frame + one header byte per subchunk.
        assert len(encoded) < 200
        assert MPLG(word_bits).decode(encoded) == words.tobytes()

    def test_enhancement_kicks_in_when_max_has_no_leading_zeros(self, word_bits, dtype):
        # All values equal to ~(small) have no leading zeros, but their
        # magnitude-sign conversion does: the flagged path must be smaller
        # than raw storage and still round-trip.
        top = (1 << word_bits) - 3  # == -3 in two's complement
        words = np.full(512, top, dtype=dtype)
        stage = MPLG(word_bits)
        encoded = stage.encode(words.tobytes())
        assert len(encoded) < len(words.tobytes()) / 2
        assert stage.decode(encoded) == words.tobytes()

    def test_incompressible_does_not_explode(self, word_bits, dtype, rng):
        words = rng.integers(0, 1 << 63, size=2048, dtype=np.uint64).astype(dtype)
        words |= dtype(1) << dtype(word_bits - 1)  # force no leading zeros
        encoded = MPLG(word_bits).encode(words.tobytes())
        # Worst case: full-width packing plus one header byte per subchunk.
        overhead = len(encoded) - len(words.tobytes())
        assert overhead < 4096 // 64 + 64

    def test_partial_subchunk(self, word_bits, dtype, rng):
        words = rng.integers(0, 1000, size=3, dtype=np.uint64).astype(dtype)
        stage = MPLG(word_bits)
        assert stage.decode(stage.encode(words.tobytes())) == words.tobytes()

    def test_empty(self, word_bits, dtype):
        stage = MPLG(word_bits)
        assert stage.decode(stage.encode(b"")) == b""

    def test_corrupt_width_rejected(self, word_bits, dtype):
        stage = MPLG(word_bits)
        encoded = bytearray(stage.encode(np.arange(128, dtype=dtype).tobytes()))
        # Offset 4+1 = first subchunk header; force an illegal width.
        encoded[5] = 0x7F if word_bits == 32 else 0x7F
        if word_bits == 32:
            with pytest.raises(CorruptDataError):
                stage.decode(bytes(encoded))


@pytest.mark.parametrize("word_bits,dtype", [(32, np.uint32), (64, np.uint64)])
class TestBatchedMatchesSerial:
    """The width-grouped batch encoder is an optimisation, not a format
    change: its output must be byte-identical to the per-subchunk serial
    path, and either encoder's output must decode on either decoder."""

    def _inputs(self, word_bits, dtype, rng):
        top = dtype((1 << word_bits) - 1) if word_bits < 64 else dtype(~np.uint64(0))
        word_bytes = word_bits // 8
        return {
            "random": rng.integers(0, 1 << 16, size=4096, dtype=np.uint64)
            .astype(dtype).tobytes(),
            "all-zero": np.zeros(4096, dtype=dtype).tobytes(),
            "max-entropy": (
                rng.integers(0, 1 << 63, size=4096, dtype=np.uint64).astype(dtype)
                | (dtype(1) << dtype(word_bits - 1))
            ).tobytes(),
            # 4096-byte subchunks: a short final subchunk plus a partial word.
            "short-final": rng.integers(0, 256, size=4096 * word_bytes + 7,
                                        dtype=np.uint8).tobytes(),
            "single-word": np.array([5], dtype=dtype).tobytes(),
            "mixed-widths": np.concatenate([
                np.zeros(1024, dtype=dtype),
                rng.integers(0, 256, size=1024, dtype=np.uint64).astype(dtype),
                rng.integers(0, 1 << 24, size=1024, dtype=np.uint64).astype(dtype),
            ]).tobytes(),
            "empty": b"",
        }

    def test_encoders_byte_identical(self, word_bits, dtype, rng):
        for label, data in self._inputs(word_bits, dtype, rng).items():
            batched = MPLG(word_bits)
            serial = MPLG(word_bits)
            serial._force_serial = True
            assert batched.encode(data) == serial.encode(data), label

    def test_cross_decoding(self, word_bits, dtype, rng):
        for label, data in self._inputs(word_bits, dtype, rng).items():
            batched = MPLG(word_bits)
            serial = MPLG(word_bits)
            serial._force_serial = True
            encoded = batched.encode(data)
            assert batched.decode(encoded) == data, label
            assert serial.decode(encoded) == data, label

    def test_unaligned_subchunk_stays_serial(self, word_bits, dtype, rng):
        # words_per_subchunk % 8 != 0 breaks the whole-byte concatenation
        # precondition, so the constructor pins those configs to serial.
        stage = MPLG(word_bits, subchunk_bytes=word_bits // 8 * 4)
        assert stage._force_serial
        data = rng.integers(0, 1000, size=100, dtype=np.uint64).astype(dtype).tobytes()
        assert stage.decode(stage.encode(data)) == data


def test_subchunk_must_align_with_words():
    with pytest.raises(ValueError):
        MPLG(64, subchunk_bytes=12)
