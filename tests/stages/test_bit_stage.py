"""Unit tests for the BIT (bit transposition) stage."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stages import BitTranspose


@pytest.mark.parametrize("word_bits,dtype", [(32, np.uint32), (64, np.uint64)])
class TestBitStage:
    def test_roundtrip(self, word_bits, dtype, rng):
        words = rng.integers(0, 1 << 32, size=4096, dtype=np.uint64).astype(dtype)
        stage = BitTranspose(word_bits)
        assert stage.decode(stage.encode(words.tobytes())) == words.tobytes()

    def test_roundtrip_with_tail(self, word_bits, dtype, rng):
        data = rng.integers(0, 256, size=16385, dtype=np.uint8).tobytes()
        stage = BitTranspose(word_bits)
        assert stage.decode(stage.encode(data)) == data

    def test_empty(self, word_bits, dtype):
        stage = BitTranspose(word_bits)
        assert stage.decode(stage.encode(b"")) == b""

    def test_leading_zeros_become_zero_bytes(self, word_bits, dtype):
        # 4096 words all below 256: every bit plane above bit 7 is zero,
        # so the transposed stream is mostly zero bytes (RZE's food).
        words = np.arange(4096, dtype=dtype) % 256
        stage = BitTranspose(word_bits)
        encoded = stage.encode(words.tobytes())
        body = np.frombuffer(encoded[5:], dtype=np.uint8)
        zero_fraction = float((body == 0).mean())
        assert zero_fraction > 0.7


def test_rejects_odd_word_size():
    with pytest.raises(ValueError):
        BitTranspose(8)
