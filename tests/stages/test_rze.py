"""Unit tests for the RZE stage."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CorruptDataError
from repro.stages import RZE


class TestRZE:
    def test_roundtrip_random(self, rng):
        data = rng.integers(0, 256, size=16384, dtype=np.uint8).tobytes()
        stage = RZE()
        assert stage.decode(stage.encode(data)) == data

    def test_roundtrip_sparse(self, rng):
        buf = np.zeros(16384, dtype=np.uint8)
        idx = rng.choice(16384, size=500, replace=False)
        buf[idx] = rng.integers(1, 256, size=500)
        stage = RZE()
        encoded = stage.encode(buf.tobytes())
        assert stage.decode(encoded) == buf.tobytes()
        # ~500 nonzero bytes + compressed bitmap must beat 16384 by far.
        assert len(encoded) < 4000

    def test_all_zero_input(self):
        data = bytes(16384)
        stage = RZE()
        encoded = stage.encode(data)
        assert len(encoded) < 40
        assert stage.decode(encoded) == data

    def test_empty(self):
        stage = RZE()
        assert stage.decode(stage.encode(b"")) == b""

    def test_single_byte(self):
        stage = RZE()
        for b in (b"\x00", b"\xff"):
            assert stage.decode(stage.encode(b)) == b

    def test_population_mismatch_detected(self, rng):
        stage = RZE()
        data = rng.integers(0, 256, size=256, dtype=np.uint8).tobytes()
        encoded = bytearray(stage.encode(data))
        # Corrupt the nonzero count field (offset 4..8).
        encoded[4] ^= 0xFF
        with pytest.raises(CorruptDataError):
            stage.decode(bytes(encoded))

    def test_typical_post_bit_stage_shape(self):
        # Long zero run then noise: exactly what BIT hands to RZE.
        data = bytes(12000) + bytes(range(256)) * 17
        stage = RZE()
        encoded = stage.encode(data)
        assert stage.decode(encoded) == data
        assert len(encoded) < len(data) / 2
