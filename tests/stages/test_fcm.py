"""Unit tests for the FCM global stage."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CorruptDataError
from repro.stages import FCMStage


def split_arrays(stage: FCMStage, data: bytes) -> tuple[np.ndarray, np.ndarray]:
    """Decode an FCM payload's two scalar arrays for white-box assertions."""
    values, distances, tail = FCMStage.split_payload(stage.encode(data))
    assert tail == data[len(values) * 8 :]
    return values, distances


class TestFCM:
    def test_roundtrip_random(self, rng):
        words = rng.integers(0, 1 << 63, size=5000, dtype=np.uint64)
        stage = FCMStage()
        assert stage.decode(stage.encode(words.tobytes())) == words.tobytes()

    def test_roundtrip_with_tail(self, rng):
        data = rng.integers(0, 256, size=8005, dtype=np.uint8).tobytes()
        stage = FCMStage()
        assert stage.decode(stage.encode(data)) == data

    def test_output_doubles_the_data(self, rng):
        words = rng.integers(0, 1 << 63, size=1000, dtype=np.uint64)
        encoded = FCMStage().encode(words.tobytes())
        assert len(encoded) == 2 * len(words.tobytes()) + 9  # 9-byte trailer

    def test_arrays_stay_word_aligned(self, rng):
        # The downstream DIFFMS stage reads the payload as 64-bit words;
        # a misaligned frame would silently wreck its effectiveness.
        words = rng.integers(0, 1 << 63, size=64, dtype=np.uint64)
        encoded = FCMStage().encode(words.tobytes())
        values = np.frombuffer(encoded, dtype="<u8", count=64)
        assert np.array_equal(values, FCMStage.split_payload(encoded)[0])

    def test_repeating_pattern_matches(self, rng):
        # A periodic signal repeats both values and contexts, so most
        # positions after the first period must become matches.
        period = rng.integers(0, 1 << 60, size=64, dtype=np.uint64)
        words = np.tile(period, 50)
        values, distances = split_arrays(FCMStage(), words.tobytes())
        match_fraction = float((distances > 0).mean())
        assert match_fraction > 0.9
        assert np.all(values[distances > 0] == 0)

    def test_matches_point_at_equal_values(self):
        period = np.arange(16, dtype=np.uint64) + 100
        words = np.tile(period, 20)
        values, distances = split_arrays(FCMStage(), words.tobytes())
        idx = np.nonzero(distances > 0)[0]
        sources = idx - distances[idx].astype(np.int64)
        assert np.all(sources >= 0)
        assert np.array_equal(words[idx], words[sources])

    def test_unique_values_yield_no_matches(self, rng):
        words = np.arange(1000, dtype=np.uint64) * np.uint64(0x10000000001)
        values, distances = split_arrays(FCMStage(), words.tobytes())
        assert np.all(distances == 0)
        assert np.array_equal(values, words)

    def test_constant_input_chains_decode(self):
        # All-equal values create long match chains; pointer doubling must
        # resolve them without quadratic blowup.
        words = np.full(20000, 0x3FF0000000000000, dtype=np.uint64)
        stage = FCMStage()
        assert stage.decode(stage.encode(words.tobytes())) == words.tobytes()

    def test_zero_values_are_unambiguous(self):
        # A literal 0.0 double stores 0 in the value array with distance 0;
        # the decoder must reproduce it.
        words = np.array([0, 0, 5, 0, 5], dtype=np.uint64)
        stage = FCMStage()
        assert stage.decode(stage.encode(words.tobytes())) == words.tobytes()

    def test_empty(self):
        stage = FCMStage()
        assert stage.decode(stage.encode(b"")) == b""

    def test_corrupt_forward_distance_rejected(self):
        stage = FCMStage()
        words = np.arange(10, dtype=np.uint64)
        encoded = bytearray(stage.encode(words.tobytes()))
        # Distance array starts right after the 80-byte value array;
        # point element 0 forward (beyond its own index).
        encoded[80] = 200
        with pytest.raises(CorruptDataError):
            stage.decode(bytes(encoded))

    def test_truncated_payload_rejected(self):
        stage = FCMStage()
        encoded = stage.encode(np.arange(10, dtype=np.uint64).tobytes())
        with pytest.raises(CorruptDataError):
            stage.decode(encoded[:-1])

    def test_match_window_validation(self):
        with pytest.raises(ValueError):
            FCMStage(match_window=0)
