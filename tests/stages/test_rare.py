"""Unit tests for the RARE stage."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stages import RARE


@pytest.mark.parametrize("word_bits,dtype", [(32, np.uint32), (64, np.uint64)])
class TestRARE:
    def test_roundtrip_random(self, word_bits, dtype, rng):
        words = rng.integers(0, 1 << 63, size=2048, dtype=np.uint64).astype(dtype)
        stage = RARE(word_bits)
        assert stage.decode(stage.encode(words.tobytes())) == words.tobytes()

    def test_roundtrip_with_tail(self, word_bits, dtype, rng):
        data = rng.integers(0, 256, size=16389, dtype=np.uint8).tobytes()
        stage = RARE(word_bits)
        assert stage.decode(stage.encode(data)) == data

    def test_repeated_top_bits_compress(self, word_bits, dtype, rng):
        # Identical high halves, random low halves: RARE's target shape
        # ("values with identical bit patterns in the most-significant
        # bits", paper §3.2).
        half = word_bits // 2
        high = dtype(0x5A5A) << dtype(half)
        words = (rng.integers(0, 1 << half, size=2048, dtype=np.uint64).astype(dtype)) | high
        stage = RARE(word_bits)
        encoded = stage.encode(words.tobytes())
        assert stage.decode(encoded) == words.tobytes()
        assert len(encoded) < len(words.tobytes()) * 0.65

    def test_alternating_tops_still_roundtrip(self, word_bits, dtype):
        a = dtype(0xAA) << dtype(word_bits - 8)
        words = np.zeros(1024, dtype=dtype)
        words[::2] = a
        stage = RARE(word_bits)
        assert stage.decode(stage.encode(words.tobytes())) == words.tobytes()

    def test_constant_words_collapse(self, word_bits, dtype):
        words = np.full(2048, 0xDEADBEEF, dtype=dtype)
        stage = RARE(word_bits)
        encoded = stage.encode(words.tobytes())
        assert stage.decode(encoded) == words.tobytes()
        assert len(encoded) < len(words.tobytes()) / 8

    def test_zero_leading_value_chain(self, word_bits, dtype):
        # First value inherits top bits from the implicit 0 predecessor.
        words = np.zeros(100, dtype=dtype)
        stage = RARE(word_bits)
        assert stage.decode(stage.encode(words.tobytes())) == words.tobytes()

    def test_empty(self, word_bits, dtype):
        stage = RARE(word_bits)
        assert stage.decode(stage.encode(b"")) == b""
