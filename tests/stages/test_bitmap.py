"""Unit tests for the recursive bitmap compressor shared by RZE/RAZE/RARE."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CorruptDataError
from repro.stages._bitmap import compress_bitmap, decompress_bitmap
from repro.stages._frame import Reader


def roundtrip(bits: np.ndarray, max_levels: int = 3) -> np.ndarray:
    payload = compress_bitmap(bits, max_levels)
    return decompress_bitmap(Reader(payload), len(bits)), payload


class TestBitmapCompression:
    @pytest.mark.parametrize("n", [0, 1, 7, 8, 63, 64, 1000, 16384])
    def test_roundtrip_random(self, n, rng):
        bits = rng.random(n) < 0.3
        back, _ = roundtrip(bits)
        assert np.array_equal(back, bits)

    def test_all_zero_bitmap_is_tiny(self):
        bits = np.zeros(16384, dtype=bool)
        back, payload = roundtrip(bits)
        assert np.array_equal(back, bits)
        # 16384 bits -> 2048 -> 256 -> 32 bits: final level is 4 bytes.
        assert len(payload) < 32

    def test_all_one_bitmap_is_tiny(self):
        bits = np.ones(16384, dtype=bool)
        back, payload = roundtrip(bits)
        assert np.array_equal(back, bits)
        assert len(payload) < 32

    def test_front_zero_back_one_pattern(self):
        # The shape the paper says RZE bitmaps typically have.
        bits = np.concatenate([np.zeros(12000, dtype=bool), np.ones(4384, dtype=bool)])
        back, payload = roundtrip(bits)
        assert np.array_equal(back, bits)
        assert len(payload) < 40

    def test_recursion_depth_matches_paper(self):
        # 16384-bit bitmap: 3 levels reduce the stored bitmap to 32 bits.
        bits = np.zeros(16384, dtype=bool)
        payload = compress_bitmap(bits)
        levels = payload[0]
        assert levels == 3

    def test_incompressible_bitmap_still_roundtrips(self, rng):
        bits = rng.random(16384) < 0.5
        back, _ = roundtrip(bits)
        assert np.array_equal(back, bits)

    def test_zero_levels(self, rng):
        bits = rng.random(100) < 0.5
        back, _ = roundtrip(bits, max_levels=0)
        assert np.array_equal(back, bits)


class TestPadValidation:
    """Set padding bits in any packed level are corruption, not noise."""

    def test_final_level_pad_bit_rejected(self, rng):
        # 100 bits, no recursion: 13 packed bytes, 4 pad bits at the end.
        bits = rng.random(100) < 0.5
        payload = bytearray(compress_bitmap(bits, max_levels=0))
        payload[-1] |= 0x01
        with pytest.raises(CorruptDataError):
            decompress_bitmap(Reader(bytes(payload)), 100)

    def test_recursed_level_pad_bit_rejected(self):
        # 1000 zero bits, one level: the stored innermost bitmap is the
        # 16-byte mask level (125 used bits, 3 pad bits), at bytes 1..16
        # right after the level-count byte.
        bits = np.zeros(1000, dtype=bool)
        payload = compress_bitmap(bits, max_levels=1)
        assert payload[0] == 1
        damaged = bytearray(payload)
        damaged[16] |= 0x01  # final byte of the stored mask level
        with pytest.raises(CorruptDataError):
            decompress_bitmap(Reader(bytes(damaged)), 1000)

    def test_byte_aligned_bitmap_has_no_pad(self, rng):
        bits = rng.random(128) < 0.5
        back, _ = roundtrip(bits, max_levels=0)
        assert np.array_equal(back, bits)
