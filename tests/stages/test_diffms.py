"""Unit tests for the DIFFMS stage."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stages import DiffMS


@pytest.mark.parametrize("word_bits,dtype", [(32, np.uint32), (64, np.uint64)])
class TestDiffMS:
    def test_roundtrip_random(self, word_bits, dtype, rng):
        words = rng.integers(0, 1 << 32, size=4096, dtype=np.uint64).astype(dtype)
        stage = DiffMS(word_bits)
        assert stage.decode(stage.encode(words.tobytes())) == words.tobytes()

    def test_roundtrip_with_tail(self, word_bits, dtype, rng):
        data = rng.integers(0, 256, size=4097, dtype=np.uint8).tobytes()
        stage = DiffMS(word_bits)
        assert stage.decode(stage.encode(data)) == data

    def test_length_preserving(self, word_bits, dtype, rng):
        data = rng.integers(0, 256, size=1000, dtype=np.uint8).tobytes()
        assert len(DiffMS(word_bits).encode(data)) == len(data)

    def test_first_value_preserved_in_ms_form(self, word_bits, dtype):
        # With 0 as the implicit predecessor, the first difference is the
        # value itself; a small positive value v encodes as 2v.
        words = np.array([5], dtype=dtype)
        coded = np.frombuffer(DiffMS(word_bits).encode(words.tobytes()), dtype=dtype)
        assert int(coded[0]) == 10

    def test_constant_run_becomes_zeroes(self, word_bits, dtype):
        words = np.full(100, 0x12345678, dtype=dtype)
        coded = np.frombuffer(DiffMS(word_bits).encode(words.tobytes()), dtype=dtype)
        assert np.all(coded[1:] == 0)

    def test_smooth_sequence_gets_leading_zeros(self, word_bits, dtype):
        # Consecutive values 1000, 1001, ... differ by 1 -> codes are tiny.
        words = np.arange(1000, 1100, dtype=dtype)
        coded = np.frombuffer(DiffMS(word_bits).encode(words.tobytes()), dtype=dtype)
        assert np.all(coded[1:] == 2)  # +1 difference zigzags to 2

    def test_wraparound_difference(self, word_bits, dtype):
        top = dtype(np.iinfo(dtype).max)
        words = np.array([top, 0, top], dtype=dtype)
        stage = DiffMS(word_bits)
        assert stage.decode(stage.encode(words.tobytes())) == words.tobytes()

    def test_empty(self, word_bits, dtype):
        stage = DiffMS(word_bits)
        assert stage.decode(stage.encode(b"")) == b""


def test_rejects_odd_word_size():
    with pytest.raises(ValueError):
        DiffMS(16)
