"""Tests for the additional LC-catalogue stages (XORDELTA, SHUF)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stages import ByteShuffle, XorDelta


@pytest.mark.parametrize("word_bits,dtype", [(32, np.uint32), (64, np.uint64)])
class TestXorDelta:
    def test_roundtrip_random(self, word_bits, dtype, rng):
        words = rng.integers(0, 1 << 32, size=4096, dtype=np.uint64).astype(dtype)
        stage = XorDelta(word_bits)
        assert stage.decode(stage.encode(words.tobytes())) == words.tobytes()

    def test_roundtrip_with_tail(self, word_bits, dtype, rng):
        data = rng.integers(0, 256, size=4099, dtype=np.uint8).tobytes()
        stage = XorDelta(word_bits)
        assert stage.decode(stage.encode(data)) == data

    def test_shared_prefixes_cancel(self, word_bits, dtype):
        # Equal values XOR to zero — no sign-extension artefacts, unlike
        # subtraction.
        words = np.full(100, 0xDEADBEEF, dtype=dtype)
        coded = np.frombuffer(XorDelta(word_bits).encode(words.tobytes()), dtype=dtype)
        assert np.all(coded[1:] == 0)

    def test_first_word_preserved(self, word_bits, dtype):
        words = np.array([42, 42], dtype=dtype)
        coded = np.frombuffer(XorDelta(word_bits).encode(words.tobytes()), dtype=dtype)
        assert int(coded[0]) == 42

    def test_length_preserving(self, word_bits, dtype, rng):
        data = rng.integers(0, 256, size=1000, dtype=np.uint8).tobytes()
        assert len(XorDelta(word_bits).encode(data)) == len(data)

    def test_empty(self, word_bits, dtype):
        stage = XorDelta(word_bits)
        assert stage.decode(stage.encode(b"")) == b""


class TestByteShuffle:
    @pytest.mark.parametrize("word_bits", [16, 32, 64])
    def test_roundtrip(self, word_bits, rng):
        data = rng.integers(0, 256, size=4097, dtype=np.uint8).tobytes()
        stage = ByteShuffle(word_bits)
        assert stage.decode(stage.encode(data)) == data

    def test_groups_exponent_bytes(self, smooth_f32):
        # After shuffling, the first quarter of the output holds the most
        # significant bytes, which are near-constant for smooth data.
        data = smooth_f32.tobytes()[:16384]
        shuffled = ByteShuffle(32).encode(data)
        msb_plane = np.frombuffer(shuffled[3 * len(shuffled) // 4:], dtype=np.uint8)
        assert len(np.unique(msb_plane)) < 20

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            ByteShuffle(24)


class TestCatalogueIntegration:
    def test_new_components_registered(self):
        from repro.lc import component_names

        names = component_names()
        for expected in ("xordelta32", "xordelta64", "shuf32", "shuf64"):
            assert expected in names

    def test_xor_bit_rze_chain_competitive(self, smooth_f32):
        # The ndzip-flavoured chain must be explorable and lossless.
        from repro.core.pipeline import Pipeline
        from repro.stages import RZE, BitTranspose

        pipeline = Pipeline([XorDelta(32), BitTranspose(32), RZE()])
        data = smooth_f32.tobytes()[:16384]
        encoded = pipeline.encode(data)
        assert pipeline.decode(encoded) == data
        assert len(encoded) < len(data)
