"""Unit tests for the RAZE stage."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stages import RAZE
from repro.stages._adaptive import choose_k, eliminated_counts


@pytest.mark.parametrize("word_bits,dtype", [(32, np.uint32), (64, np.uint64)])
class TestRAZE:
    def test_roundtrip_random(self, word_bits, dtype, rng):
        words = rng.integers(0, 1 << 63, size=2048, dtype=np.uint64).astype(dtype)
        stage = RAZE(word_bits)
        assert stage.decode(stage.encode(words.tobytes())) == words.tobytes()

    def test_roundtrip_with_tail(self, word_bits, dtype, rng):
        data = rng.integers(0, 256, size=16389, dtype=np.uint8).tobytes()
        stage = RAZE(word_bits)
        assert stage.decode(stage.encode(data)) == data

    def test_random_mantissa_smooth_top(self, word_bits, dtype, rng):
        # The DP profile: top bits near zero, bottom bits random.  RAZE
        # must strip the top without touching the incompressible bottom.
        bottom_bits = word_bits // 2
        words = rng.integers(0, 1 << bottom_bits, size=2048, dtype=np.uint64).astype(dtype)
        stage = RAZE(word_bits)
        encoded = stage.encode(words.tobytes())
        assert stage.decode(encoded) == words.tobytes()
        assert len(encoded) < len(words.tobytes()) * 0.65

    def test_all_zero(self, word_bits, dtype):
        words = np.zeros(2048, dtype=dtype)
        stage = RAZE(word_bits)
        encoded = stage.encode(words.tobytes())
        assert stage.decode(encoded) == words.tobytes()
        assert len(encoded) < 64

    def test_incompressible_disables_split(self, word_bits, dtype, rng):
        words = rng.integers(0, 1 << 63, size=512, dtype=np.uint64).astype(dtype)
        words |= dtype(1) << dtype(word_bits - 1)
        stage = RAZE(word_bits)
        encoded = stage.encode(words.tobytes())
        assert stage.decode(encoded) == words.tobytes()
        # k == 0 path: overhead is just the frame.
        assert len(encoded) <= len(words.tobytes()) + 16

    def test_empty(self, word_bits, dtype):
        stage = RAZE(word_bits)
        assert stage.decode(stage.encode(b"")) == b""


class TestAdaptiveK:
    def test_eliminated_counts_suffix_sum(self):
        leading = np.array([0, 3, 3, 64], dtype=np.uint8)
        counts = eliminated_counts(leading, 64)
        assert counts[0] == 4       # every value qualifies for k=0
        assert counts[1] == 3       # all but the lz=0 value
        assert counts[3] == 3
        assert counts[4] == 1       # only the all-zero value
        assert counts[64] == 1

    def test_choose_k_prefers_common_prefix_width(self):
        # 2048 values with exactly 40 leading zeros: k=40 removes 40 bits
        # from every value at the cost of one bitmap bit each.
        words = np.full(2048, (1 << 23) | 5, dtype=np.uint64)
        from repro.bitpack import count_leading_zeros

        leading = count_leading_zeros(words, 64)
        k = choose_k(leading, len(words), 64)
        assert k == 40

    def test_choose_k_zero_for_full_entropy(self, rng):
        leading = np.zeros(1000, dtype=np.uint8)  # no value has leading zeros
        assert choose_k(leading, 1000, 64) == 0

    def test_choose_k_empty(self):
        assert choose_k(np.zeros(0, dtype=np.uint8), 0, 64) == 0
