"""Golden tests: the worked examples of the paper's Figures 2-6.

These pin the stage semantics to the paper's own illustrations, so a
refactor that silently changes a transformation breaks loudly here.
"""

from __future__ import annotations

import numpy as np

from repro.bitpack import count_leading_zeros, pack_words, unpack_words
from repro.stages import DiffMS, FCMStage
from repro.stages._frame import Reader


class TestFigure2DiffMS:
    """DIFFMS difference coding + magnitude-sign conversion on FP32 words."""

    def test_three_value_example_structure(self):
        # Three single-precision values within a narrow range: similar
        # exponents.  The paper's example produces one positive and two
        # negative differences; after the conversion all three have
        # leading zeros.
        floats = np.array([1.25, 1.2, 1.22], dtype=np.float32)
        words = floats.view(np.uint32)
        coded = np.frombuffer(DiffMS(32).encode(words.tobytes()), dtype=np.uint32)

        diffs = words.astype(np.int64)
        diffs[1:] -= words[:-1].astype(np.int64)
        assert diffs[0] > 0, "first element is preserved (positive word)"
        assert diffs[1] < 0, "the example needs a negative difference"
        # Every coded word has leading zeros even though the raw
        # differences include negative (leading-ones) values.
        clz = count_leading_zeros(coded, 32)
        assert np.all(clz[1:] > 8), "differences must lose the exponent bits"

    def test_sign_stored_in_least_significant_bit(self):
        # Negative differences set the LSB of the magnitude-sign code.
        words = np.array([10, 7], dtype=np.uint32)  # difference -3
        coded = np.frombuffer(DiffMS(32).encode(words.tobytes()), dtype=np.uint32)
        assert int(coded[1]) & 1 == 1
        assert int(coded[1]) == 5  # zigzag(-3)

    def test_first_element_treated_as_if_zero_preceded(self):
        words = np.array([42], dtype=np.uint32)
        coded = np.frombuffer(DiffMS(32).encode(words.tobytes()), dtype=np.uint32)
        assert int(coded[0]) == 84  # zigzag(42 - 0)


class TestFigure3MPLG:
    """MPLG eliminates the leading-zero count of the subchunk maximum."""

    def test_twelve_leading_zero_example(self):
        # Figure 3: the maximum has 12 leading zeros, so every value keeps
        # 20 bits and three values concatenate into 60 bits.
        values = np.array([0x000FFFFF, 0x00000003, 0x00012345], dtype=np.uint32)
        assert int(count_leading_zeros(values[:1], 32)[0]) == 12
        packed = pack_words(values, 20, 32)
        assert len(packed) == 8  # ceil(60 / 8)
        assert np.array_equal(unpack_words(packed, 3, 20, 32), values)

    def test_fixed_width_keeps_values_independently_decodable(self):
        # The paper keeps the eliminated-bit count fixed per subchunk so
        # each value can be decoded independently: value i lives at bit
        # offset i * width exactly.
        values = np.array([9, 1, 5, 7], dtype=np.uint32)
        width = 4
        packed = np.unpackbits(np.frombuffer(pack_words(values, width, 32), dtype=np.uint8))
        for i, v in enumerate(values):
            bits = packed[i * width : (i + 1) * width]
            assert int("".join(map(str, bits)), 2) == v


class TestFigure4Bit:
    """BIT groups equal bit positions of consecutive values together."""

    def test_first_bits_group_first(self):
        from repro.bitpack import bit_transpose

        # Three words whose MSBs are 1,0,1: plane 0 starts with bits 101.
        words = np.array([1 << 31, 0, 1 << 31], dtype=np.uint32)
        stream = bit_transpose(words, 32)
        assert stream[0] >> 5 == 0b101


class TestFigure5RZE:
    """RZE bitmap semantics: set bit <=> nonzero byte, zeros removed."""

    def test_bitmap_and_nonzero_stream(self):
        from repro.stages import RZE

        data = bytes([0, 0, 7, 0, 9, 0, 0, 0xFF])
        encoded = RZE().encode(data)
        reader = Reader(encoded)
        n = reader.u32()
        n_nonzero = reader.u32()
        assert n == 8 and n_nonzero == 3
        assert reader.raw(3) == bytes([7, 9, 0xFF])
        assert RZE().decode(encoded) == data


class TestFigure6FCM:
    """The exact Figure 6 example, with the figure's simplified hashes."""

    A, B, C = 1001, 2002, 3003

    def figure_hashes(self, words: np.ndarray) -> np.ndarray:
        # Figure 6 assigns context hash 0 to indices {0, 2, 5}, hash 1 to
        # {1, 3, 6}, and hash 2 to {4}.
        table = {0: 0, 2: 0, 5: 0, 1: 1, 3: 1, 6: 1, 4: 2}
        return np.array([table[i] for i in range(len(words))], dtype=np.uint64)

    def test_value_and_distance_arrays_match_figure(self):
        words = np.array([self.A, self.B, self.A, self.B, self.C, self.A, self.B],
                         dtype=np.uint64)
        stage = FCMStage(hash_fn=self.figure_hashes)
        values, distances, _ = FCMStage.split_payload(stage.encode(words.tobytes()))
        assert values.tolist() == [self.A, self.B, 0, 0, self.C, 0, 0]
        assert distances.tolist() == [0, 0, 2, 2, 0, 3, 3]

    def test_figure_example_roundtrips(self):
        words = np.array([self.A, self.B, self.A, self.B, self.C, self.A, self.B],
                         dtype=np.uint64)
        stage = FCMStage(hash_fn=self.figure_hashes)
        assert stage.decode(stage.encode(words.tobytes())) == words.tobytes()
