"""Tests for the fprz command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.cli import main


@pytest.fixture
def float_file(tmp_path, rng):
    data = np.cumsum(rng.normal(scale=0.01, size=20_000)).astype(np.float32)
    path = tmp_path / "input.f32"
    path.write_bytes(data.tobytes())
    return path, data


class TestCompressDecompress:
    def test_roundtrip_via_cli(self, float_file, tmp_path, capsys):
        src, data = float_file
        blob_path = tmp_path / "out.fprz"
        restored_path = tmp_path / "restored.f32"
        assert main(["compress", str(src), str(blob_path), "--dtype", "float32"]) == 0
        assert main(["decompress", str(blob_path), str(restored_path)]) == 0
        assert restored_path.read_bytes() == data.tobytes()
        out = capsys.readouterr().out
        assert "ratio" in out

    def test_explicit_codec(self, float_file, tmp_path):
        src, data = float_file
        blob_path = tmp_path / "out.fprz"
        assert main(["compress", str(src), str(blob_path),
                     "--codec", "spspeed", "--dtype", "float32"]) == 0
        info = repro.inspect(blob_path.read_bytes())
        assert info.codec_id == repro.get_codec("spspeed").codec_id

    def test_bytes_mode_requires_codec(self, float_file, tmp_path, capsys):
        src, _ = float_file
        rc = main(["compress", str(src), str(tmp_path / "x"), "--dtype", "bytes"])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_float64_roundtrip(self, tmp_path, rng):
        data = np.cumsum(rng.normal(size=5_000)).astype(np.float64)
        src = tmp_path / "input.d64"
        src.write_bytes(data.tobytes())
        blob = tmp_path / "out.fprz"
        restored = tmp_path / "restored.d64"
        assert main(["compress", str(src), str(blob), "--dtype", "float64"]) == 0
        assert main(["decompress", str(blob), str(restored)]) == 0
        assert restored.read_bytes() == data.tobytes()


class TestInspect:
    def test_inspect_prints_metadata(self, float_file, tmp_path, capsys):
        src, _ = float_file
        blob_path = tmp_path / "out.fprz"
        main(["compress", str(src), str(blob_path), "--dtype", "float32"])
        capsys.readouterr()
        assert main(["inspect", str(blob_path)]) == 0
        out = capsys.readouterr().out
        assert "codec:" in out and "ratio:" in out and "chunks:" in out

    def test_inspect_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.fprz"
        bad.write_bytes(b"this is not a container")
        assert main(["inspect", str(bad)]) == 1


class TestTable1:
    def test_prints_18_rows(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 19
        for name in ("FPC", "Ndzip", "Bzip2", "GFC"):
            assert name in out


class TestBench:
    def test_unknown_figure_rejected(self, capsys):
        assert main(["bench", "--figure", "fig99"]) == 1
        assert "unknown figure" in capsys.readouterr().err

    def test_single_figure_runs(self, capsys):
        assert main(["bench", "--figure", "fig08", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "SPratio" in out and "front" in out


class TestFuzzCommand:
    def test_fuzz_runs_clean(self, capsys):
        assert main(["fuzz", "--seed", "0", "--iterations", "30"]) == 0
        out = capsys.readouterr().out
        assert "failures=0" in out and "iterations=30" in out

    def test_fuzz_codec_restriction(self, capsys):
        assert main(["fuzz", "--iterations", "10",
                     "--codec", "spspeed", "--codec", "dpratio"]) == 0
        assert "failures=0" in capsys.readouterr().out


class TestSalvageFlag:
    def test_salvage_of_pristine_container(self, float_file, tmp_path, capsys):
        src, data = float_file
        blob_path = tmp_path / "out.fprz"
        restored = tmp_path / "restored.f32"
        main(["compress", str(src), str(blob_path), "--dtype", "float32"])
        assert main(["decompress", str(blob_path), str(restored),
                     "--salvage"]) == 0
        assert restored.read_bytes() == data.tobytes()
        assert "chunks recovered" in capsys.readouterr().out

    def test_salvage_of_damaged_container(self, float_file, tmp_path, capsys):
        src, data = float_file
        blob_path = tmp_path / "out.fprz"
        restored = tmp_path / "restored.f32"
        main(["compress", str(src), str(blob_path), "--dtype", "float32"])
        blob = bytearray(blob_path.read_bytes())
        info = repro.inspect(bytes(blob))
        blob[info.payload_offset + 10] ^= 0xFF
        blob_path.write_bytes(bytes(blob))
        # strict decompress refuses ...
        assert main(["decompress", str(blob_path), str(restored)]) == 1
        # ... salvage writes output, reports damage, and exits non-zero.
        assert main(["decompress", str(blob_path), str(restored),
                     "--salvage"]) == 1
        out = capsys.readouterr().out
        assert "damaged" in out
        assert len(restored.read_bytes()) == len(data.tobytes())

    def test_verify_with_fuzz_flag(self, capsys):
        assert main(["verify", "--scale", "0.02", "--fuzz", "20"]) == 0
        out = capsys.readouterr().out
        assert "ALL LOSSLESS" in out and "fuzz: seed=0 iterations=20" in out
