"""Cross-module integration tests: corpus × codecs × claims.

These check the *system-level* behaviours the paper's narrative depends
on, at small corpus scale (the full-shape checks live in benchmarks/).
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis import recommend, repeat_profile
from repro.datasets import dp_suite, sp_suite
from repro.metrics import geomean


def domain(suite, name):
    return next(d for d in suite() if d.name == name)


class TestCodecOnCorpus:
    def test_ratio_mode_wins_on_every_sp_domain(self):
        for dom in sp_suite():
            speeds, ratios = [], []
            for file in dom.files[:3]:
                data = file.load(0.3)
                speeds.append(data.nbytes / len(repro.compress(data, "spspeed")))
                ratios.append(data.nbytes / len(repro.compress(data, "spratio")))
            assert geomean(ratios) > geomean(speeds) * 0.98, dom.name

    def test_msg_domain_is_fcm_territory(self):
        # The analysis module's recommendation agrees with the harness.
        file = domain(dp_suite, "msg").files[0]
        data = file.load(1.0)
        assert repeat_profile(data).favors_fcm
        codec, _ = recommend(data)
        assert codec == "dpratio"
        speed = data.nbytes / len(repro.compress(data, "dpspeed"))
        ratio = data.nbytes / len(repro.compress(data, "dpratio"))
        assert ratio > 1.3 * speed

    def test_fill_sentinels_compress_away(self):
        # Climate fill regions (constant 1e35 runs) must be nearly free
        # under SPratio's zero-elimination machinery.
        icefrac = next(f for f in domain(sp_suite, "CESM-ATM").files
                       if "ICEFRAC" in f.name)
        data = icefrac.load(0.5)
        filled = float((data == np.float32(1e35)).mean())
        assert filled > 0.3
        ratio = data.nbytes / len(repro.compress(data, "spratio"))
        # Even this rough field compresses usefully thanks to the mask runs.
        assert ratio > 1.2

    def test_every_dp_file_roundtrips_all_codecs(self):
        for dom in dp_suite():
            for file in dom.files:
                data = file.load(0.1)
                for codec in ("dpspeed", "dpratio"):
                    back = repro.decompress(repro.compress(data, codec))
                    assert np.array_equal(back, data), (file.name, codec)


class TestCrossDeviceStory:
    """The paper's §1 interoperability claim at the format level."""

    def test_one_container_many_configurations(self, smooth_f32):
        # Whatever execution strategy produced the container (serial,
        # threaded, any worker count), any consumer configuration decodes
        # it: the format carries no execution details.
        blobs = {
            repro.compress(smooth_f32, workers=w, chunk_size=cs)
            for w in (1, 4) for cs in (16384,)
        }
        assert len(blobs) == 1  # deterministic across configurations
        blob = blobs.pop()
        for workers in (1, 2, 8):
            assert np.array_equal(repro.decompress(blob, workers=workers), smooth_f32)

    def test_archive_of_mixed_codecs(self, rng):
        from repro.archive import Archive, write_archive

        sp = rng.normal(size=2000).astype(np.float32)
        dp = rng.normal(size=1000).astype(np.float64)
        blob = write_archive({"sp": sp, "dp": dp})
        archive = Archive.from_bytes(blob)
        # Codec choice is per member, by dtype.
        assert archive.info("sp").codec_id == repro.get_codec("spratio").codec_id
        assert archive.info("dp").codec_id == repro.get_codec("dpratio").codec_id


class TestStatisticalHonesty:
    """Guards against accidentally cooking the corpus."""

    def test_sp_corpus_not_trivially_compressible(self):
        # Geo-mean SPratio ratio must stay in a scientific-data regime,
        # not a synthetic-toy one.
        ratios = []
        for dom in sp_suite():
            file_ratios = []
            for file in dom.files[:2]:
                data = file.load(0.3)
                file_ratios.append(data.nbytes / len(repro.compress(data, "spratio")))
            ratios.append(geomean(file_ratios))
        overall = geomean(ratios)
        assert 1.2 < overall < 3.0

    def test_corpus_defeats_plain_gzip(self):
        # gzip should do clearly worse than the FP-aware codecs overall
        # (fig 12): if it doesn't, the corpus leaks byte-level structure.
        import zlib

        sp_files = [d.files[0] for d in sp_suite()]
        gzip_ratios, ours = [], []
        for file in sp_files:
            data = file.load(0.3)
            gzip_ratios.append(data.nbytes / len(zlib.compress(data.tobytes(), 6)))
            ours.append(data.nbytes / len(repro.compress(data, "spratio")))
        assert geomean(ours) > geomean(gzip_ratios)
