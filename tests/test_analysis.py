"""Tests for the compressibility diagnostics and the explain tool."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.analysis import (
    byte_plane_entropy,
    explain,
    leading_zero_profile,
    recommend,
    repeat_profile,
    smoothness,
)
from repro.errors import UnsupportedDtypeError


class TestSmoothness:
    def test_smooth_data_detected(self, smooth_f32):
        assert smoothness(smooth_f32).is_smooth

    def test_random_data_not_smooth(self, rng):
        noisy = rng.random(10_000).astype(np.float32) * 1e20
        assert not smoothness(noisy).is_smooth

    def test_constant_data(self):
        constant = np.full(1000, 2.5, dtype=np.float64)
        profile = smoothness(constant)
        assert profile.zero_diff_fraction > 0.99

    def test_empty(self):
        assert smoothness(np.zeros(0, dtype=np.float32)).mean_diff_bits == 0.0

    def test_rejects_ints(self):
        with pytest.raises(UnsupportedDtypeError):
            smoothness(np.arange(10))


class TestLeadingZeroProfile:
    def test_histogram_covers_all_values(self, smooth_f64):
        hist = leading_zero_profile(smooth_f64)
        assert hist.sum() == smooth_f64.size
        assert len(hist) == 65

    def test_diff_shifts_mass_toward_high_counts(self, smooth_f32):
        raw = leading_zero_profile(smooth_f32, after_diff=False)
        diffed = leading_zero_profile(smooth_f32, after_diff=True)
        wb = 32
        mean_raw = (raw * np.arange(wb + 1)).sum() / raw.sum()
        mean_diffed = (diffed * np.arange(wb + 1)).sum() / diffed.sum()
        assert mean_diffed > mean_raw


class TestBytePlaneEntropy:
    def test_gradient_msb_to_lsb(self, smooth_f64):
        entropy = byte_plane_entropy(smooth_f64)
        assert len(entropy) == 8
        # Exponent byte is near-constant, low mantissa near-random.
        assert entropy[0] < 2.0
        assert entropy[-1] > 6.0

    def test_bounds(self, rng):
        noisy = rng.random(5000).astype(np.float32)
        entropy = byte_plane_entropy(noisy)
        assert np.all(entropy >= 0) and np.all(entropy <= 8.0)


class TestRepeatProfile:
    def test_far_repeats_detected(self, rng):
        period = rng.normal(size=8000).astype(np.float64)
        data = np.tile(period, 3)
        profile = repeat_profile(data)
        assert profile.favors_fcm
        assert profile.far_repeat_fraction > 0.3

    def test_unique_data(self, rng):
        data = np.arange(10_000, dtype=np.float64)
        profile = repeat_profile(data)
        assert profile.unique_fraction == 1.0
        assert profile.repeat_fraction == 0.0

    def test_near_repeats_not_counted_as_far(self):
        data = np.repeat(np.arange(100, dtype=np.float64), 10)
        profile = repeat_profile(data)
        assert profile.near_repeat_fraction > 0.8
        assert profile.far_repeat_fraction < 0.05


class TestExplain:
    def test_waterfall_matches_pipeline(self, smooth_f32):
        breakdown = explain(smooth_f32, "spratio")
        assert [name for name, _ in breakdown.waterfall] == ["diffms", "bit", "rze"]
        assert breakdown.ratio > 1.0

    def test_fcm_doubles_then_wins_back(self, rng):
        period = rng.normal(size=6000).astype(np.float64)
        data = np.tile(period, 4)
        breakdown = explain(data, "dpratio")
        names = [name for name, _ in breakdown.waterfall]
        assert names[0] == "fcm"
        fcm_size = breakdown.waterfall[0][1]
        assert fcm_size > 1.9 * breakdown.original  # FCM doubles the data
        assert breakdown.compressed < breakdown.original  # and wins it back

    def test_render_is_readable(self, smooth_f32):
        text = explain(smooth_f32, "spspeed").render()
        assert "diffms" in text and "ratio" in text

    def test_sizes_track_real_compression(self, smooth_f64):
        breakdown = explain(smooth_f64, "dpspeed")
        blob = repro.compress(smooth_f64, "dpspeed")
        # Array input additionally stores the shape block (1 + 8*ndim B).
        assert abs(len(blob) - breakdown.compressed) <= 1 + 8 * smooth_f64.ndim


class TestRecommend:
    def test_smooth_sp_gets_ratio_codec(self, smooth_f32):
        codec, reason = recommend(smooth_f32)
        assert codec == "spratio"
        assert reason

    def test_far_repeats_get_dpratio(self, rng):
        period = rng.normal(size=8000).astype(np.float64)
        codec, reason = recommend(np.tile(period, 3))
        assert codec == "dpratio"
        assert "FCM" in reason

    def test_noise_gets_speed_codec(self, rng):
        noisy = (rng.random(20_000).astype(np.float32) * 2 - 1) * 1e30
        codec, _ = recommend(noisy)
        assert codec == "spspeed"

    def test_rejects_unsupported(self):
        with pytest.raises(UnsupportedDtypeError):
            recommend(np.arange(5))
