"""End-to-end tests of the adaptive ``auto`` codec.

The engine contract extends to the selector: output bytes are identical
under every executor policy and batching mode (selection happens once,
up front, on the calling thread), and every v4 container decodes through
the ordinary paths — full, range, and salvage.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

import repro
from repro.core import container as fmt
from repro.core.codecs import get_codec
from repro.core.compressor import (
    compress_bytes,
    decompress_bytes,
    decompress_range_bytes,
)
from repro.errors import CorruptDataError

CHUNK = 8192


@pytest.fixture
def rng():
    return np.random.default_rng(0x5E7EC7)


def _mixed_f32(rng) -> bytes:
    smooth = np.cumsum(rng.normal(size=4 * CHUNK // 4)).astype("<f4")
    noisy = rng.random(4 * CHUNK // 4).astype("<f4")
    rep = np.repeat(rng.random(CHUNK // 16).astype("<f4"), 4)
    return np.concatenate([smooth, noisy, rep]).tobytes()


def _mixed_f64(rng) -> bytes:
    smooth = np.cumsum(rng.normal(size=2 * CHUNK // 8)).astype("<f8")
    noisy = rng.random(2 * CHUNK // 8).astype("<f8")
    return np.concatenate([smooth, noisy]).tobytes()


class TestAutoRoundTrip:
    @pytest.mark.parametrize("dtype_code", [fmt.DTYPE_F32, fmt.DTYPE_F64])
    def test_roundtrip(self, rng, dtype_code):
        data = _mixed_f32(rng) if dtype_code == fmt.DTYPE_F32 else _mixed_f64(rng)
        blob = compress_bytes(data, get_codec("auto"), chunk_size=CHUNK,
                              dtype_code=dtype_code)
        out, info = decompress_bytes(blob)
        assert out == data
        assert info.version == fmt.VERSION_CHUNK_CODECS
        assert info.chunk_codecs is not None
        assert len(info.chunk_codecs) == info.n_chunks

    def test_bytes_input_uses_all_candidates(self, rng):
        data = _mixed_f32(rng)
        blob = compress_bytes(data, get_codec("auto"), chunk_size=CHUNK)
        out, _ = decompress_bytes(blob)
        assert out == data

    def test_empty_input(self):
        blob = compress_bytes(b"", get_codec("auto"))
        out, info = decompress_bytes(blob)
        assert out == b""
        assert info.n_chunks == 0

    def test_incompressible_raw_fallback(self, rng):
        noise = rng.bytes(3 * CHUNK)
        blob = compress_bytes(noise, get_codec("auto"), chunk_size=CHUNK)
        info = fmt.inspect_container(blob)
        assert info.raw_fallback
        assert info.chunk_codecs is None  # raw fallback carries no table
        out, _ = decompress_bytes(blob)
        assert out == noise

    def test_api_roundtrip_array(self, rng):
        field = np.cumsum(rng.normal(size=(64, 128))).astype(np.float32)
        blob = repro.compress(field, "auto")
        back = repro.decompress(blob)
        assert back.shape == field.shape
        assert np.array_equal(back, field)
        assert "auto" in repro.available_codecs()

    def test_selector_specs_roundtrip(self, rng):
        data = _mixed_f32(rng)
        default = compress_bytes(data, get_codec("auto"), chunk_size=CHUNK)
        trained = compress_bytes(data, get_codec("auto"), chunk_size=CHUNK,
                                 selector="trained")
        # The committed trained fit equals the heuristic defaults, so the
        # containers match; both must decode regardless.
        assert decompress_bytes(trained)[0] == data
        assert decompress_bytes(default)[0] == data


class TestAutoExecutorIdentity:
    @pytest.mark.parametrize("executor", [
        "serial", "threaded", "static-blocks", "process",
    ])
    @pytest.mark.parametrize("batch", [False, True])
    def test_byte_identical_across_executors(self, rng, executor, batch):
        data = _mixed_f32(rng)
        reference = compress_bytes(data, get_codec("auto"), chunk_size=CHUNK,
                                   dtype_code=fmt.DTYPE_F32)
        blob = compress_bytes(data, get_codec("auto"), chunk_size=CHUNK,
                              dtype_code=fmt.DTYPE_F32, workers=3,
                              executor=executor, batch=batch)
        assert hashlib.sha256(blob).hexdigest() == \
            hashlib.sha256(reference).hexdigest()
        out, _ = decompress_bytes(blob, workers=3, executor=executor,
                                  batch=batch)
        assert out == data

    def test_mixed_decode_under_process_executor(self, rng):
        # A v4 container whose codec table actually changes mid-stream,
        # decoded through the shared-memory process pool (block tasks
        # must split at the codec boundary).
        data = _mixed_f64(rng)
        blob = compress_bytes(data, get_codec("auto"), chunk_size=CHUNK,
                              dtype_code=fmt.DTYPE_F64)
        out, _ = decompress_bytes(blob, workers=2, executor="process",
                                  batch=True)
        assert out == data


class TestAutoRangeAndSalvage:
    def test_decompress_range_on_mixed(self, rng):
        data = _mixed_f32(rng)
        blob = compress_bytes(data, get_codec("auto"), chunk_size=CHUNK,
                              dtype_code=fmt.DTYPE_F32)
        for start, stop in ((0, 100), (CHUNK - 3, CHUNK + 17),
                            (3 * CHUNK, len(data)), (0, len(data))):
            window, _ = decompress_range_bytes(blob, start, stop)
            assert window == data[start:stop], (start, stop)

    def test_selector_geometry_rules(self, rng):
        data = _mixed_f32(rng)
        blob = compress_bytes(data, get_codec("auto"), chunk_size=CHUNK,
                              dtype_code=fmt.DTYPE_F32)
        # Strip the codec table flag at the header level and the decoder
        # must reject the geometry, never guess a pipeline.
        buf = bytearray(blob)
        buf[7] &= ~fmt.FLAG_CHUNK_CODECS & 0xFF
        with pytest.raises(Exception):
            decompress_bytes(bytes(buf))

    def test_selector_header_without_table_rejected(self):
        # A hand-built v1 container claiming the selector codec id but
        # carrying chunks must be rejected: nothing says how to decode.
        blob = fmt.build_container(
            codec_id=get_codec("spspeed").codec_id, dtype_code=fmt.DTYPE_F32,
            original_len=8, intermediate_len=8, chunk_size=fmt_chunk(8),
            chunk_payloads=[b"\x00" * 4],
        )
        buf = bytearray(blob)
        buf[5] = get_codec("auto").codec_id
        with pytest.raises(CorruptDataError, match="selector"):
            decompress_bytes(bytes(buf))


def fmt_chunk(n: int) -> int:
    return max(n, 1)
