"""Policy tests: bias-scaled argmin, trained thresholds, spec resolution."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.codecs import get_codec, selection_candidates
from repro.core.container import DTYPE_F32, DTYPE_F64
from repro.errors import ReproError
from repro.selection import (
    HeuristicPolicy,
    SelectionPolicy,
    TrainedPolicy,
    get_policy,
    probe_chunk,
)
from repro.selection.policy import DEFAULT_BIAS, TRAINED_PATH

SP = selection_candidates(DTYPE_F32)


def _sp_probe():
    rng = np.random.default_rng(7)
    chunk = np.cumsum(rng.normal(size=2048)).astype("<f4").tobytes()
    return probe_chunk(chunk, SP)


class TestHeuristicPolicy:
    def test_argmin_of_biased_models(self):
        probe = _sp_probe()
        # Extreme biases force each candidate in turn.
        force_speed = HeuristicPolicy(bias={"spspeed": 1e-6, "spratio": 1.0})
        force_ratio = HeuristicPolicy(bias={"spspeed": 1.0, "spratio": 1e-6})
        assert force_speed.choose(probe, SP).name == "spspeed"
        assert force_ratio.choose(probe, SP).name == "spratio"

    def test_tie_breaks_to_lower_codec_id(self):
        probe = _sp_probe()
        # Equal scores: bias each codec by the inverse of its model.
        bias = {name: 1.0 / size for name, size in probe.modeled.items()}
        chosen = HeuristicPolicy(bias=bias).choose(probe, SP)
        assert chosen.codec_id == min(c.codec_id for c in SP)

    def test_choice_is_deterministic(self):
        probe = _sp_probe()
        policy = HeuristicPolicy()
        assert policy.choose(probe, SP) is policy.choose(probe, SP)


class TestTrainedPolicy:
    def test_committed_thresholds_load(self):
        policy = TrainedPolicy()
        assert policy.path == TRAINED_PATH
        assert policy.name == "trained"
        # The committed fit and the heuristic defaults are kept in sync
        # by scripts/fit_selector.py.
        assert policy.bias == DEFAULT_BIAS

    def test_custom_thresholds_file(self, tmp_path):
        path = tmp_path / "bias.json"
        path.write_text(json.dumps({"bias": {"spspeed": 0.5}}))
        policy = TrainedPolicy(path)
        assert policy.bias["spspeed"] == 0.5
        # Unnamed codecs keep the defaults.
        assert policy.bias["dpratio"] == DEFAULT_BIAS["dpratio"]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError, match="cannot load"):
            TrainedPolicy(tmp_path / "nope.json")

    def test_bad_schema_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"not_bias": {}}))
        with pytest.raises(ReproError, match="bias"):
            TrainedPolicy(path)
        path.write_text(json.dumps({"bias": {"spspeed": "fast"}}))
        with pytest.raises(ReproError, match="numbers"):
            TrainedPolicy(path)


class TestGetPolicy:
    def test_spec_resolution(self, tmp_path):
        assert isinstance(get_policy(None), HeuristicPolicy)
        assert isinstance(get_policy("heuristic"), HeuristicPolicy)
        assert isinstance(get_policy("trained"), TrainedPolicy)
        path = tmp_path / "t.json"
        path.write_text(json.dumps({"bias": {}}))
        assert isinstance(get_policy(str(path)), TrainedPolicy)
        prebuilt = HeuristicPolicy()
        assert get_policy(prebuilt) is prebuilt

    def test_unknown_spec_raises(self):
        with pytest.raises(ReproError, match="unknown selector"):
            get_policy("magic")


class TestSelectionCandidates:
    def test_policy_never_picks_outside_candidates(self):
        probe = _sp_probe()
        policy = HeuristicPolicy()
        assert policy.choose(probe, SP) in SP

    def test_base_policy_is_abstract(self):
        with pytest.raises(NotImplementedError):
            SelectionPolicy().choose(_sp_probe(), SP)

    def test_fallback_without_models(self):
        probe = _sp_probe()
        dp = selection_candidates(DTYPE_F64)
        # The probe modelled only sp codecs; choosing among dp candidates
        # falls back to the lowest codec id for determinism.
        chosen = HeuristicPolicy().choose(probe, dp)
        assert chosen.name == "dpspeed"
        assert chosen is get_codec("dpspeed")
