"""Probe tests: determinism, batching invariance, and model sanity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.codecs import get_codec, selection_candidates
from repro.core.container import DTYPE_BYTES, DTYPE_F32, DTYPE_F64
from repro.selection import probe_chunk, probe_chunks

SP = selection_candidates(DTYPE_F32)
DP = selection_candidates(DTYPE_F64)


@pytest.fixture
def rng():
    return np.random.default_rng(0xABC)


def _smooth(rng, dtype, n):
    return np.cumsum(rng.normal(size=n)).astype(dtype).tobytes()


def _noise(rng, dtype, n):
    return rng.random(n).astype(dtype).tobytes()


class TestProbeBasics:
    def test_candidates_by_dtype(self):
        assert tuple(c.name for c in SP) == ("spspeed", "spratio")
        assert tuple(c.name for c in DP) == ("dpspeed", "dpratio")
        all_four = selection_candidates(DTYPE_BYTES)
        assert {c.name for c in all_four} == {
            "spspeed", "spratio", "dpspeed", "dpratio"
        }

    def test_probe_models_every_candidate(self, rng):
        probe = probe_chunk(_smooth(rng, "<f4", 4096), SP)
        assert set(probe.modeled) == {"spspeed", "spratio"}
        assert all(size > 0 for size in probe.modeled.values())

    def test_probe_is_deterministic(self, rng):
        chunk = _smooth(rng, "<f4", 4096)
        assert probe_chunk(chunk, SP) == probe_chunk(chunk, SP)

    def test_batched_probe_matches_individual(self, rng):
        chunks = [
            _smooth(rng, "<f4", 4096),
            _noise(rng, "<f4", 4096),
            _smooth(rng, "<f4", 4096),
        ]
        batched = probe_chunks(chunks, SP)
        individual = [probe_chunk(chunk, SP) for chunk in chunks]
        assert batched == individual

    def test_mixed_lengths_batch_correctly(self, rng):
        # Different-length chunks are grouped by length internally; the
        # results must still come back in input order.
        chunks = [
            _smooth(rng, "<f4", 4096),
            _smooth(rng, "<f4", 1000),
            _noise(rng, "<f4", 4096),
            _noise(rng, "<f4", 1000),
        ]
        batched = probe_chunks(chunks, SP)
        assert batched == [probe_chunk(chunk, SP) for chunk in chunks]

    def test_empty_input(self):
        assert probe_chunks([], SP) == []


class TestModelQuality:
    def test_mplg_model_tracks_actual(self, rng):
        # The MPLG closed form misses only the magnitude-sign retry, so
        # the modelled size must sit within a few percent of the actual
        # payload on smooth data.
        chunk = _smooth(rng, "<f4", 4096)
        probe = probe_chunk(chunk, SP)
        codec = get_codec("spspeed")
        actual = len(codec.make_pipeline(False).encode_chunk(chunk))
        assert abs(probe.modeled["spspeed"] - actual) / actual < 0.10

    def test_smooth_models_smaller_than_noise(self, rng):
        smooth = probe_chunk(_smooth(rng, "<f8", 2048), DP)
        noise = probe_chunk(_noise(rng, "<f8", 2048), DP)
        for name in ("dpspeed", "dpratio"):
            assert smooth.modeled[name] < noise.modeled[name]

    def test_stats_shape(self, rng):
        probe = probe_chunk(_smooth(rng, "<f4", 4096), SP)
        stats = probe.stats[32]
        assert stats.word_bits == 32
        assert stats.n_words == 4096
        assert stats.tail_len == 0
        assert 0.0 <= stats.repeated_fraction <= 1.0
        assert stats.exponent_entropy >= 0.0

    def test_tail_bytes_survive(self, rng):
        # A chunk that is not a whole number of words still probes.
        chunk = _smooth(rng, "<f4", 1024)[:-3]
        probe = probe_chunk(chunk, SP)
        assert probe.n_bytes == 4093
        assert probe.stats[32].tail_len == 1
        assert all(size > 0 for size in probe.modeled.values())
