"""Unit tests for fixed-width MSB-first bit packing.

The word-lane kernels in :mod:`repro.bitpack.lanes` replaced the
original bit-matrix implementation (one ``np.uint8`` per *bit*).  That
implementation survives here as ``_reference_pack``/``_reference_unpack``:
the wire format is frozen, so the fast kernels must stay byte-identical
to the reference across every width, word size, and count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitpack import pack_words, packed_size_bytes, unpack_words
from repro.errors import CorruptDataError


def _reference_pack(words: np.ndarray, width: int, word_bits: int) -> bytes:
    """The original bit-matrix pack: one byte per bit via unpackbits."""
    n = len(words)
    if n == 0 or width == 0:
        return b""
    word_bytes = word_bits // 8
    be = words.astype(words.dtype.newbyteorder(">"), copy=False)
    bits = np.unpackbits(be.view(np.uint8).reshape(n, word_bytes), axis=1)
    low = bits[:, word_bits - width:]
    return np.packbits(low.reshape(-1)).tobytes()


def _reference_unpack(buf: bytes, count: int, width: int, word_bits: int) -> np.ndarray:
    """The original bit-matrix unpack (no pad validation, by design)."""
    dtype = np.dtype(f"u{word_bits // 8}")
    if count == 0 or width == 0:
        return np.zeros(count, dtype=dtype)
    raw = np.frombuffer(buf, dtype=np.uint8)
    need = packed_size_bytes(count, width)
    bits = np.unpackbits(raw[:need])[: count * width].reshape(count, width)
    word_bytes = word_bits // 8
    full = np.zeros((count, word_bits), dtype=np.uint8)
    full[:, word_bits - width:] = bits
    be_bytes = np.packbits(full.reshape(-1)).reshape(count, word_bytes)
    return be_bytes.view(np.dtype(f">u{word_bytes}")).reshape(count).astype(dtype)


@pytest.mark.parametrize("word_bits,dtype", [(32, np.uint32), (64, np.uint64)])
class TestPacking:
    def test_roundtrip_every_width(self, word_bits, dtype, rng):
        for width in range(0, word_bits + 1):
            limit = 1 << width if width else 1
            words = rng.integers(0, limit, size=37, dtype=np.uint64).astype(dtype)
            packed = pack_words(words, width, word_bits)
            assert len(packed) == packed_size_bytes(37, width)
            back = unpack_words(packed, 37, width, word_bits)
            assert np.array_equal(back, words), f"width={width}"

    def test_zero_width_is_empty(self, word_bits, dtype):
        assert pack_words(np.zeros(100, dtype=dtype), 0, word_bits) == b""
        back = unpack_words(b"", 100, 0, word_bits)
        assert np.array_equal(back, np.zeros(100, dtype=dtype))

    def test_empty_input(self, word_bits, dtype):
        assert pack_words(np.zeros(0, dtype=dtype), 5, word_bits) == b""
        assert len(unpack_words(b"", 0, 5, word_bits)) == 0

    def test_width_out_of_range(self, word_bits, dtype):
        with pytest.raises(ValueError):
            pack_words(np.zeros(1, dtype=dtype), word_bits + 1, word_bits)
        with pytest.raises(ValueError):
            unpack_words(b"\x00" * 32, 1, word_bits + 1, word_bits)

    def test_truncated_buffer_raises(self, word_bits, dtype):
        words = np.arange(8, dtype=dtype)
        packed = pack_words(words, 7, word_bits)
        with pytest.raises(ValueError):
            unpack_words(packed[:-1], 8, 7, word_bits)


@pytest.mark.parametrize("word_bits,dtype", [(32, np.uint32), (64, np.uint64)])
class TestAgainstReference:
    """The lane kernels must match the bit-matrix reference bit for bit."""

    #: Odd, prime-ish, and boundary counts: exercise partial lanes,
    #: partial final bytes, and single-element streams.
    COUNTS = (0, 1, 2, 3, 7, 37, 128, 511, 1000)

    def test_pack_byte_identical_every_width(self, word_bits, dtype, rng):
        for width in range(0, word_bits + 1):
            limit = 1 << width if width else 1
            for count in self.COUNTS:
                words = rng.integers(0, limit, size=count, dtype=np.uint64)
                words = words.astype(dtype)
                got = pack_words(words, width, word_bits)
                want = _reference_pack(words, width, word_bits)
                assert got == want, f"width={width} count={count}"

    def test_unpack_matches_reference_every_width(self, word_bits, dtype, rng):
        for width in range(0, word_bits + 1):
            limit = 1 << width if width else 1
            for count in self.COUNTS:
                words = rng.integers(0, limit, size=count, dtype=np.uint64)
                words = words.astype(dtype)
                packed = _reference_pack(words, width, word_bits)
                got = unpack_words(packed, count, width, word_bits)
                want = _reference_unpack(packed, count, width, word_bits)
                assert got.dtype == want.dtype
                assert np.array_equal(got, want), f"width={width} count={count}"
                assert np.array_equal(got, words), f"width={width} count={count}"

    def test_extreme_values(self, word_bits, dtype):
        # All-zero and all-ones words at every width: the chain carries
        # either nothing or a solid run of set bits across lane seams.
        for width in range(1, word_bits + 1):
            top = dtype((1 << width) - 1)
            for words in (np.zeros(61, dtype=dtype), np.full(61, top)):
                got = pack_words(words, width, word_bits)
                assert got == _reference_pack(words, width, word_bits), f"width={width}"
                back = unpack_words(got, 61, width, word_bits)
                assert np.array_equal(back, words), f"width={width}"


@pytest.mark.parametrize("word_bits", [32, 64])
class TestPadValidation:
    def test_nonzero_pad_bits_rejected(self, word_bits, rng):
        # width 5, count 3: 15 bits used, 1 pad bit in the final byte.
        words = rng.integers(0, 32, size=3, dtype=np.uint64)
        words = words.astype(np.dtype(f"u{word_bits // 8}"))
        packed = bytearray(pack_words(words, 5, word_bits))
        packed[-1] |= 0x01
        with pytest.raises(CorruptDataError):
            unpack_words(bytes(packed), 3, 5, word_bits)

    def test_every_pad_bit_position_rejected(self, word_bits):
        # width 3, count 2: 6 bits used, pad bits 0 and 1 both checked.
        packed = pack_words(np.array([1, 2], dtype=np.uint64).astype(
            np.dtype(f"u{word_bits // 8}")), 3, word_bits)
        for bit in range(2):
            dirty = bytearray(packed)
            dirty[-1] |= 1 << bit
            with pytest.raises(CorruptDataError):
                unpack_words(bytes(dirty), 2, 3, word_bits)

    def test_full_final_byte_has_no_pad(self, word_bits, rng):
        # count * width divisible by 8: no pad bits, nothing to reject.
        words = rng.integers(0, 32, size=8, dtype=np.uint64)
        words = words.astype(np.dtype(f"u{word_bits // 8}"))
        packed = pack_words(words, 5, word_bits)
        assert len(packed) * 8 == 8 * 5
        back = unpack_words(packed, 8, 5, word_bits)
        assert np.array_equal(back, words)

    def test_short_buffer_still_value_error(self, word_bits):
        # Truncation is a caller bug (ValueError), not data corruption.
        with pytest.raises(ValueError):
            unpack_words(b"\x00", 9, 7, word_bits)


def test_known_bit_layout():
    # Two 3-bit values 0b101, 0b011 pack MSB-first into 0b101011xx.
    words = np.array([0b101, 0b011], dtype=np.uint32)
    packed = pack_words(words, 3, 32)
    assert packed == bytes([0b10101100])


def test_packed_size_formula():
    assert packed_size_bytes(0, 13) == 0
    assert packed_size_bytes(1, 1) == 1
    assert packed_size_bytes(8, 1) == 1
    assert packed_size_bytes(9, 1) == 2
    assert packed_size_bytes(3, 20) == 8  # 60 bits -> 8 bytes
