"""Unit tests for fixed-width MSB-first bit packing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitpack import pack_words, packed_size_bytes, unpack_words


@pytest.mark.parametrize("word_bits,dtype", [(32, np.uint32), (64, np.uint64)])
class TestPacking:
    def test_roundtrip_every_width(self, word_bits, dtype, rng):
        for width in range(0, word_bits + 1):
            limit = 1 << width if width else 1
            words = rng.integers(0, limit, size=37, dtype=np.uint64).astype(dtype)
            packed = pack_words(words, width, word_bits)
            assert len(packed) == packed_size_bytes(37, width)
            back = unpack_words(packed, 37, width, word_bits)
            assert np.array_equal(back, words), f"width={width}"

    def test_zero_width_is_empty(self, word_bits, dtype):
        assert pack_words(np.zeros(100, dtype=dtype), 0, word_bits) == b""
        back = unpack_words(b"", 100, 0, word_bits)
        assert np.array_equal(back, np.zeros(100, dtype=dtype))

    def test_empty_input(self, word_bits, dtype):
        assert pack_words(np.zeros(0, dtype=dtype), 5, word_bits) == b""
        assert len(unpack_words(b"", 0, 5, word_bits)) == 0

    def test_width_out_of_range(self, word_bits, dtype):
        with pytest.raises(ValueError):
            pack_words(np.zeros(1, dtype=dtype), word_bits + 1, word_bits)
        with pytest.raises(ValueError):
            unpack_words(b"\x00" * 32, 1, word_bits + 1, word_bits)

    def test_truncated_buffer_raises(self, word_bits, dtype):
        words = np.arange(8, dtype=dtype)
        packed = pack_words(words, 7, word_bits)
        with pytest.raises(ValueError):
            unpack_words(packed[:-1], 8, 7, word_bits)


def test_known_bit_layout():
    # Two 3-bit values 0b101, 0b011 pack MSB-first into 0b101011xx.
    words = np.array([0b101, 0b011], dtype=np.uint32)
    packed = pack_words(words, 3, 32)
    assert packed == bytes([0b10101100])


def test_packed_size_formula():
    assert packed_size_bytes(0, 13) == 0
    assert packed_size_bytes(1, 1) == 1
    assert packed_size_bytes(8, 1) == 1
    assert packed_size_bytes(9, 1) == 2
    assert packed_size_bytes(3, 20) == 8  # 60 bits -> 8 bytes
