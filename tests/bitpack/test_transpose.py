"""Unit tests for the bit transposition primitive behind the BIT stage."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitpack import bit_transpose, bit_untranspose


@pytest.mark.parametrize("word_bits,dtype", [(32, np.uint32), (64, np.uint64)])
class TestBitTranspose:
    @pytest.mark.parametrize("n", [1, 7, 8, 31, 32, 100, 4096])
    def test_roundtrip(self, word_bits, dtype, n, rng):
        words = rng.integers(0, 1 << 32, size=n, dtype=np.uint64).astype(dtype)
        stream = bit_transpose(words, word_bits)
        assert len(stream) == word_bits * ((n + 7) // 8)
        assert np.array_equal(bit_untranspose(stream, n, word_bits), words)

    def test_empty(self, word_bits, dtype):
        assert bit_transpose(np.zeros(0, dtype=dtype), word_bits) == b""
        assert len(bit_untranspose(b"", 0, word_bits)) == 0

    def test_truncated_raises(self, word_bits, dtype):
        words = np.arange(16, dtype=dtype)
        stream = bit_transpose(words, word_bits)
        with pytest.raises(ValueError):
            bit_untranspose(stream[:-1], 16, word_bits)


def test_msb_plane_comes_first():
    # A single value with only the MSB set: the first bit plane (row) is
    # the one holding that bit.
    words = np.array([1 << 31], dtype=np.uint32)
    stream = bit_transpose(words, 32)
    assert stream[0] == 0b10000000
    assert set(stream[1:]) == {0}


def test_groups_equal_bit_positions_together():
    # Eight words each with bit 31 set: plane 0 is a full 0xFF byte.
    words = np.full(8, 1 << 31, dtype=np.uint32)
    stream = bit_transpose(words, 32)
    assert stream[0] == 0xFF
    assert set(stream[1:]) == {0}
