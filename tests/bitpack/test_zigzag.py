"""Unit tests for the magnitude-sign (zigzag) representation change."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitpack import zigzag_decode, zigzag_encode


@pytest.mark.parametrize("word_bits,dtype", [(32, np.uint32), (64, np.uint64)])
class TestZigzag:
    def test_small_values_map_to_small_codes(self, word_bits, dtype):
        # 0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, 2 -> 4 ... (sign in the LSB).
        signed = np.array([0, -1, 1, -2, 2, -3, 3], dtype=np.int64)
        words = signed.astype(dtype)
        coded = zigzag_encode(words, word_bits)
        assert coded.tolist() == [0, 1, 2, 3, 4, 5, 6]

    def test_roundtrip_exhaustive_boundaries(self, word_bits, dtype):
        top = (1 << word_bits) - 1
        half = 1 << (word_bits - 1)
        words = np.array(
            [0, 1, 2, half - 1, half, half + 1, top - 1, top], dtype=dtype
        )
        assert np.array_equal(zigzag_decode(zigzag_encode(words, word_bits), word_bits), words)

    def test_roundtrip_random(self, word_bits, dtype, rng):
        words = rng.integers(0, 1 << 32, size=10_000, dtype=np.uint64).astype(dtype)
        assert np.array_equal(zigzag_decode(zigzag_encode(words, word_bits), word_bits), words)

    def test_leading_ones_become_leading_zeros(self, word_bits, dtype):
        # -1 in two's complement is all ones; its code (1) has w-1 leading zeros.
        minus_one = np.array([-1], dtype=np.int64).astype(dtype)
        coded = zigzag_encode(minus_one, word_bits)
        assert int(coded[0]) == 1

    def test_rejects_wrong_dtype(self, word_bits, dtype):
        wrong = np.zeros(4, dtype=np.uint16)
        with pytest.raises(ValueError):
            zigzag_encode(wrong, word_bits)


def test_rejects_unsupported_width():
    with pytest.raises(ValueError):
        zigzag_encode(np.zeros(1, dtype=np.uint32), 24)
