"""Unit tests for vectorised count-leading-zeros / leading-common-bits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitpack import count_leading_zeros, leading_common_bits


@pytest.mark.parametrize("word_bits,dtype", [(32, np.uint32), (64, np.uint64)])
class TestCLZ:
    def test_powers_of_two(self, word_bits, dtype):
        values = np.array([1 << b for b in range(word_bits)], dtype=dtype)
        expected = [word_bits - 1 - b for b in range(word_bits)]
        assert count_leading_zeros(values, word_bits).tolist() == expected

    def test_zero_counts_full_width(self, word_bits, dtype):
        assert count_leading_zeros(np.zeros(3, dtype=dtype), word_bits).tolist() == [word_bits] * 3

    def test_all_ones(self, word_bits, dtype):
        top = np.array([(1 << word_bits) - 1], dtype=dtype)
        assert count_leading_zeros(top, word_bits).tolist() == [0]

    def test_matches_python_bit_length(self, word_bits, dtype, rng):
        values = rng.integers(0, 1 << 30, size=5_000, dtype=np.uint64).astype(dtype)
        got = count_leading_zeros(values, word_bits)
        expected = [word_bits - int(v).bit_length() for v in values]
        assert got.tolist() == expected

    def test_empty(self, word_bits, dtype):
        assert len(count_leading_zeros(np.zeros(0, dtype=dtype), word_bits)) == 0

    def test_dtype_mismatch_raises(self, word_bits, dtype):
        with pytest.raises(ValueError):
            count_leading_zeros(np.zeros(1, dtype=np.uint8), word_bits)


class TestLeadingCommonBits:
    def test_identical_neighbours_share_everything(self):
        words = np.array([7, 7, 7], dtype=np.uint64)
        common = leading_common_bits(words, 64)
        # Element 0 vs initial 0: 7 ^ 0 = 7 -> 61 leading zeros.
        assert common.tolist() == [61, 64, 64]

    def test_first_element_against_custom_initial(self):
        words = np.array([5], dtype=np.uint32)
        assert leading_common_bits(words, 32, initial=5).tolist() == [32]

    def test_high_bit_divergence(self):
        a = np.uint64(1) << np.uint64(63)
        words = np.array([0, a], dtype=np.uint64)
        assert leading_common_bits(words, 64).tolist() == [64, 0]

    def test_empty(self):
        assert len(leading_common_bits(np.zeros(0, dtype=np.uint32), 32)) == 0
