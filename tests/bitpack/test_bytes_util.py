"""Unit tests for byte views and byte shuffles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitpack import byte_shuffle, byte_unshuffle, words_from_bytes, words_to_bytes


class TestWordViews:
    @pytest.mark.parametrize("word_bits", [16, 32, 64])
    def test_roundtrip_with_tail(self, word_bits, rng):
        data = rng.integers(0, 256, size=1001, dtype=np.uint8).tobytes()
        words, tail = words_from_bytes(data, word_bits)
        assert len(tail) == 1001 % (word_bits // 8)
        assert words_to_bytes(words, tail) == data

    def test_empty(self):
        words, tail = words_from_bytes(b"", 32)
        assert len(words) == 0 and tail == b""
        assert words_to_bytes(words, tail) == b""

    def test_little_endian_interpretation(self):
        words, _ = words_from_bytes(b"\x01\x00\x00\x00", 32)
        assert words[0] == 1

    def test_words_are_a_safe_copy(self):
        data = b"\x01\x00\x00\x00"
        words, _ = words_from_bytes(data, 32)
        words[0] = 99  # must not raise (frombuffer views are read-only)


class TestByteShuffle:
    @pytest.mark.parametrize("word_bytes", [2, 4, 8])
    def test_roundtrip(self, word_bytes, rng):
        data = rng.integers(0, 256, size=333, dtype=np.uint8).tobytes()
        assert byte_unshuffle(byte_shuffle(data, word_bytes), word_bytes) == data

    def test_known_layout(self):
        # Words AABB CCDD (little-endian bytes) shuffle to AA CC BB DD.
        data = bytes([0xAA, 0xBB, 0xCC, 0xDD])
        assert byte_shuffle(data, 2) == bytes([0xAA, 0xCC, 0xBB, 0xDD])

    def test_tail_passes_through(self):
        data = bytes(range(10))
        shuffled = byte_shuffle(data, 4)
        assert shuffled[-2:] == data[-2:]
