"""The lane-plan LRU caches must stay bounded under shape churn.

A long-running service sees an unbounded stream of distinct
``(count, width)`` geometries; each mints new pack/unpack plans.  The
caches share one bound (``lanes.PLAN_CACHE_SIZE``) so memory stays
O(bound) — this test hammers far more shapes than the bound and checks
both the cap and that evicted plans recompute correctly.
"""

from __future__ import annotations

import numpy as np

from repro.bitpack import lanes
from repro.bitpack.packing import pack_words, unpack_words

_PLAN_CACHES = (
    lanes._single_gather_pack_plan,
    lanes._pair_pack_plan,
    lanes._boundary_unpack_plan,
    lanes._two_lane_unpack_plan,
)


def test_every_plan_cache_uses_shared_bound():
    for fn in _PLAN_CACHES:
        assert fn.cache_info().maxsize == lanes.PLAN_CACHE_SIZE


def test_caches_stay_bounded_under_shape_churn():
    rng = np.random.default_rng(0xCACE)
    # Far more distinct (n, width) shapes than the cap, across widths
    # that exercise every planning regime (single-gather, pair-window,
    # boundary, two-lane).
    shapes = [(n, w) for w in (3, 5, 9, 13, 21, 29, 33, 47, 52, 63)
              for n in range(1, 1 + 2 * lanes.PLAN_CACHE_SIZE // 10)]
    assert len(shapes) > lanes.PLAN_CACHE_SIZE
    for n, width in shapes:
        word_bits = 64 if width > 32 else 32
        dt = np.uint64 if width > 32 else np.uint32
        w = (rng.integers(0, 2**word_bits, n, dtype=np.uint64)
             & np.uint64((1 << width) - 1)).astype(dt)
        assert np.array_equal(
            unpack_words(pack_words(w, width, word_bits), n, width, word_bits), w
        )
    for fn in _PLAN_CACHES:
        info = fn.cache_info()
        assert info.currsize <= lanes.PLAN_CACHE_SIZE, fn.__name__


def test_evicted_plans_recompute_identically():
    n, width, word_bits = 1009, 13, 32
    w = (np.arange(n, dtype=np.uint64) * np.uint64(2654435761)
         & np.uint64((1 << width) - 1)).astype(np.uint32)
    before = pack_words(w, width, word_bits)
    # Evict by churning through more shapes than the cap holds.
    for n2 in range(1, lanes.PLAN_CACHE_SIZE + 8):
        pack_words(np.zeros(n2, dtype=np.uint32), width, word_bits)
    assert pack_words(w, width, word_bits) == before
