"""Kernel backend registry + cross-backend byte-identity parity suite.

Every registered backend must produce *identical* results to the numpy
reference for every kernel in the frozen contract — same bytes, same
dtypes, same errors.  The suite runs against whatever is registered:

* locally (no numba/cupy installed) the numba loop bodies are exercised
  un-jitted — ``pure_python_kernels()`` registers them as the
  ``numba-py`` backend, so the exact code numba compiles is verified
  byte for byte even where numba itself is absent;
* in the CI ``backend-smoke`` job (numba installed) the compiled
  ``numba`` backend additionally replays the golden sha256 corpus.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

import repro
from repro.bitpack import backend as B
from repro.bitpack import _cupy_kernels, _numba_kernels
from repro.errors import ReproError
from tests.core.test_golden_format import GOLDEN_CORPUS_SHA256, _golden_corpus

PURE_NAME = "numba-py"


def _ensure_pure_backend():
    """Register the un-jitted numba loop bodies as a parity backend."""
    if PURE_NAME not in B.available_backends():
        B.register_backend(B.KernelBackend(
            name=PURE_NAME,
            kernels=_numba_kernels.pure_python_kernels(),
            version="pure-python",
            accelerated=False,
            priority=-1,
            auto=False,
        ))


_ensure_pure_backend()

#: Backends under parity test: everything registered except the
#: reference itself.
ALT_BACKENDS = [name for name in B.available_backends() if name != "numpy"]

#: Geometries that historically shake out off-by-ones: empty, single
#: value, single full word, just past word boundaries, ragged tails.
COUNTS = (0, 1, 2, 3, 7, 8, 9, 37, 64, 100)


def _ref():
    return B.get_backend("numpy").resolved


def _alt(name):
    return B.get_backend(name).resolved


def _words(rng, n, width, word_bits):
    dt = np.uint32 if word_bits == 32 else np.uint64
    w = rng.integers(0, 2**word_bits, n, dtype=np.uint64)
    if width < 64:
        w &= np.uint64((1 << width) - 1)
    return w.astype(dt)


@pytest.mark.parametrize("backend", ALT_BACKENDS)
@pytest.mark.parametrize("word_bits", [32, 64])
class TestPackParity:
    def test_pack_unpack_all_widths(self, backend, word_bits):
        ref, alt = _ref(), _alt(backend)
        rng = np.random.default_rng(0xBACC + word_bits)
        for width in range(1, word_bits + 1):
            for n in COUNTS:
                w = _words(rng, n, width, word_bits)
                expect = ref["pack_lanes"](w, width, word_bits)
                got = alt["pack_lanes"](w, width, word_bits)
                assert got == expect, f"pack width={width} n={n}"
                raw = np.frombuffer(expect, dtype=np.uint8)
                u_ref = ref["unpack_lanes"](raw, n, width, word_bits)
                u_alt = alt["unpack_lanes"](raw, n, width, word_bits)
                assert u_alt.dtype == u_ref.dtype
                assert np.array_equal(u_alt, u_ref), f"unpack width={width} n={n}"

    def test_clz_and_common_bits(self, backend, word_bits):
        ref, alt = _ref(), _alt(backend)
        rng = np.random.default_rng(0xC12 + word_bits)
        for n in COUNTS:
            w = _words(rng, n, word_bits, word_bits)
            w[: n // 3] = 0  # clz(0) == word_bits corner
            for k in ("count_leading_zeros",):
                a, b = ref[k](w, word_bits), alt[k](w, word_bits)
                assert a.dtype == b.dtype and np.array_equal(a, b)
            for initial in (0, 5):
                a = ref["leading_common_bits"](w, word_bits, initial=initial)
                b = alt["leading_common_bits"](w, word_bits, initial=initial)
                assert a.dtype == b.dtype and np.array_equal(a, b)

    def test_clz_2d_grid(self, backend, word_bits):
        ref, alt = _ref(), _alt(backend)
        rng = np.random.default_rng(3)
        g = _words(rng, 4 * 25, word_bits, word_bits).reshape(4, 25)
        a = ref["count_leading_zeros"](g, word_bits)
        b = alt["count_leading_zeros"](g, word_bits)
        assert a.shape == b.shape == (4, 25) and np.array_equal(a, b)

    def test_clz_dtype_mismatch_raises(self, backend, word_bits):
        other = np.zeros(4, dtype=np.uint64 if word_bits == 32 else np.uint32)
        with pytest.raises(ValueError):
            _alt(backend)["count_leading_zeros"](other, word_bits)

    def test_transpose(self, backend, word_bits):
        ref, alt = _ref(), _alt(backend)
        rng = np.random.default_rng(0x717 + word_bits)
        for n in COUNTS:
            w = _words(rng, n, word_bits, word_bits)
            expect = ref["bit_transpose"](w, word_bits)
            assert alt["bit_transpose"](w, word_bits) == expect
            u_ref = ref["bit_untranspose"](expect, n, word_bits)
            u_alt = alt["bit_untranspose"](expect, n, word_bits)
            assert u_alt.dtype == u_ref.dtype and np.array_equal(u_alt, u_ref)

    def test_untranspose_short_buffer_raises(self, backend, word_bits):
        with pytest.raises(ValueError):
            _alt(backend)["bit_untranspose"](b"\x00", 100, word_bits)

    def test_adaptive_rows(self, backend, word_bits):
        ref, alt = _ref(), _alt(backend)
        rng = np.random.default_rng(0xADA + word_bits)
        lead = rng.integers(0, word_bits + 1, (6, 40), dtype=np.int64)
        a = ref["eliminated_counts_rows"](lead, word_bits)
        b = alt["eliminated_counts_rows"](lead, word_bits)
        assert np.array_equal(a, b)
        for n in (0, 40):
            ka, ca = ref["choose_k_rows"](lead, n, word_bits)
            kb, cb = alt["choose_k_rows"](lead, n, word_bits)
            assert np.array_equal(ka, kb) and np.array_equal(ca, cb)
        # all-zero leading counts => split disabled everywhere
        flat = np.zeros((3, 16), dtype=np.int64)
        ka, ca = ref["choose_k_rows"](flat, 16, word_bits)
        kb, cb = alt["choose_k_rows"](flat, 16, word_bits)
        assert np.array_equal(ka, kb) and np.array_equal(ca, cb)


@pytest.mark.parametrize("backend", ALT_BACKENDS)
class TestEndToEndParity:
    """Whole containers, encoded under each backend, must match numpy."""

    def test_small_corpus_byte_identical(self, backend):
        rng = np.random.default_rng(0xE2E)
        datasets = [
            ("walk32", np.cumsum(rng.normal(size=1500)).astype(np.float32)),
            ("walk64", np.cumsum(rng.normal(size=1100)).astype(np.float64)),
            ("mixed", np.where(rng.random(700) < 0.1, np.inf,
                               rng.normal(size=700)).astype(np.float32)),
        ]
        for label, arr in datasets:
            codecs = ("spspeed", "spratio") if arr.itemsize == 4 else ("dpspeed", "dpratio")
            for codec in codecs:
                with B.use_backend("numpy"):
                    expect = repro.compress(arr, codec)
                with B.use_backend(backend):
                    blob = repro.compress(arr, codec)
                    back = repro.decompress(expect)
                assert blob == expect, f"{label}/{codec} diverged under {backend}"
                assert np.array_equal(back, arr, equal_nan=True)


#: Real accelerated backends replay the full golden corpus; the pure
#: Python loops are exempt (same code, ~100x slower) — they get the
#: small corpus above instead.
REAL_BACKENDS = [
    name for name, have in (
        ("numba", _numba_kernels.HAVE_NUMBA),
        ("cupy", _cupy_kernels.HAVE_CUPY),
    ) if have
]


@pytest.mark.parametrize("backend", REAL_BACKENDS or ["numba"])
class TestGoldenCorpusPerBackend:
    def test_golden_digests_match(self, backend):
        if backend not in REAL_BACKENDS:
            pytest.skip(f"{backend} not importable")
        seen = {}
        with B.use_backend(backend):
            for dtype, datasets in _golden_corpus():
                codecs = ("spspeed", "spratio") if dtype.itemsize == 4 else ("dpspeed", "dpratio")
                for label, arr in datasets:
                    for codec in codecs:
                        blob = repro.compress(arr, codec)
                        seen[f"{label}/{dtype.name}/{codec}"] = hashlib.sha256(blob).hexdigest()
        assert seen == GOLDEN_CORPUS_SHA256


class TestRegistry:
    def test_numpy_always_registered_and_default(self):
        assert "numpy" in B.available_backends()
        ref = B.get_backend("numpy")
        assert not ref.accelerated
        assert set(ref.resolved) == set(B.KERNEL_NAMES)

    def test_unknown_backend_raises(self):
        with pytest.raises(ReproError, match="unknown kernel backend"):
            B.get_backend("tpu")

    def test_register_rejects_unknown_kernel_names(self):
        with pytest.raises(ReproError, match="unknown kernels"):
            B.register_backend(B.KernelBackend(name="bad", kernels={"pack_lane": len}))

    def test_partial_backend_falls_back_to_numpy(self):
        pure = _numba_kernels.pure_python_kernels()
        bk = B.register_backend(B.KernelBackend(
            name="partial-test",
            kernels={"pack_lanes": pure["pack_lanes"]},
            auto=False,
        ))
        assert bk.resolved["pack_lanes"] is pure["pack_lanes"]
        ref = B.get_backend("numpy").resolved
        for name in B.KERNEL_NAMES:
            if name != "pack_lanes":
                assert bk.resolved[name] is ref[name]

    def test_set_backend_pins_and_restores(self):
        assert B.set_backend(PURE_NAME) is None
        try:
            assert B.active_backend().name == PURE_NAME
        finally:
            assert B.set_backend(None) == PURE_NAME
        assert B.active_backend().name != PURE_NAME

    def test_use_backend_context_restores_on_error(self):
        before = B.active_backend().name
        with pytest.raises(RuntimeError):
            with B.use_backend(PURE_NAME):
                assert B.active_backend().name == PURE_NAME
                raise RuntimeError("boom")
        assert B.active_backend().name == before

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv(B.BACKEND_ENV_VAR, PURE_NAME)
        B.set_backend(None)  # drop the cached resolution
        try:
            assert B.active_backend().name == PURE_NAME
        finally:
            monkeypatch.delenv(B.BACKEND_ENV_VAR)
            B.set_backend(None)
        assert B.active_backend().name != PURE_NAME

    def test_explicit_pin_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(B.BACKEND_ENV_VAR, PURE_NAME)
        with B.use_backend("numpy"):
            assert B.active_backend().name == "numpy"

    def test_auto_false_backends_never_auto_selected(self):
        # numba-py has auto=False: with no pin and no env var the
        # resolver must not pick it even though it is registered.
        B.set_backend(None)
        assert B.active_backend().name != PURE_NAME
        assert B.active_backend().auto

    def test_backend_versions_reports_all(self):
        versions = B.backend_versions()
        assert versions["numpy"] == np.__version__
        assert versions[PURE_NAME] == "pure-python"

    def test_describe_counts_native_kernels(self):
        assert "8/8 native kernels" in B.get_backend(PURE_NAME).describe()
        assert B.get_backend("numpy").describe().startswith("numpy")

    def test_numba_auto_selected_when_importable(self):
        if not _numba_kernels.HAVE_NUMBA:
            pytest.skip("numba not importable")
        B.set_backend(None)
        assert B.active_backend().name == "numba"
        assert B.active_backend().accelerated
