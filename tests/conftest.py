"""Shared fixtures: deterministic RNG and representative float arrays."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20250330)  # the conference's opening day


def _smooth(rng: np.random.Generator, n: int, dtype) -> np.ndarray:
    """A 1-D random walk: the smooth, zero-centred signal the codecs target."""
    return np.cumsum(rng.normal(scale=0.01, size=n)).astype(dtype)


@pytest.fixture
def smooth_f32(rng) -> np.ndarray:
    return _smooth(rng, 40_000, np.float32)


@pytest.fixture
def smooth_f64(rng) -> np.ndarray:
    return _smooth(rng, 20_000, np.float64)


@pytest.fixture
def special_f32() -> np.ndarray:
    """Every awkward IEEE-754 citizen in one array."""
    return np.array(
        [0.0, -0.0, np.inf, -np.inf, np.nan, np.float32(1e-45), -np.float32(1e-45),
         np.finfo(np.float32).max, np.finfo(np.float32).min, np.finfo(np.float32).tiny,
         1.0, -1.0, np.pi],
        dtype=np.float32,
    )


@pytest.fixture
def special_f64() -> np.ndarray:
    return np.array(
        [0.0, -0.0, np.inf, -np.inf, np.nan, 5e-324, -5e-324,
         np.finfo(np.float64).max, np.finfo(np.float64).min, np.finfo(np.float64).tiny,
         1.0, -1.0, np.pi],
        dtype=np.float64,
    )
