"""Tests for the random-field generator primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import fields as gen


class TestSpectralField:
    def test_shape_and_dtype(self, rng):
        field = gen.spectral_field(rng, (8, 16, 16), slope=3.0, dtype=np.float32)
        assert field.shape == (8, 16, 16)
        assert field.dtype == np.float32

    def test_steeper_slope_is_smoother(self, rng):
        rough = gen.spectral_field(rng, (4096,), slope=1.0, dtype=np.float64)
        smooth = gen.spectral_field(rng, (4096,), slope=3.5, dtype=np.float64)

        def roughness(x):
            return float(np.abs(np.diff(x)).mean()) / (float(x.std()) or 1.0)

        assert roughness(smooth) < roughness(rough)

    def test_offset_and_amplitude(self, rng):
        field = gen.spectral_field(rng, (4096,), amplitude=2.0, offset=100.0)
        assert 90 < field.mean() < 110
        assert 0.5 < field.std() < 5.0


class TestNoiseFloor:
    def test_perturbs_low_mantissa_only(self, rng):
        base = gen.spectral_field(rng, (4096,), slope=3.0, dtype=np.float64)
        noisy = gen.with_noise_floor(rng, base, relative=1e-9)
        assert not np.array_equal(noisy, base)
        assert np.allclose(noisy, base, rtol=1e-8)

    def test_zero_noise_is_identity(self, rng):
        base = gen.spectral_field(rng, (128,), dtype=np.float32)
        assert np.array_equal(gen.with_noise_floor(rng, base, relative=0.0), base)


class TestRecurrences:
    def test_creates_far_matches(self, rng):
        base = rng.normal(size=32768)
        out = gen.with_recurrences(rng, base, fraction=0.3, segment=16,
                                   min_distance=4300)
        repeats = len(out) - len(np.unique(out))
        assert repeats > 0.15 * len(out)

    def test_short_input_untouched(self, rng):
        base = rng.normal(size=100)
        out = gen.with_recurrences(rng, base, min_distance=4300)
        assert np.array_equal(out, base)

    def test_preserves_shape(self, rng):
        base = rng.normal(size=(32, 32, 32))
        out = gen.with_recurrences(rng, base, fraction=0.2, min_distance=4300)
        assert out.shape == base.shape


class TestFillRegions:
    def test_1d_runs(self, rng):
        base = rng.normal(size=10_000)
        out = gen.with_fill_regions(rng, base, fill_value=7.0, fraction=0.3, patch=50)
        assert 0.2 < (out == 7.0).mean() < 0.8

    def test_3d_boxes_have_low_surface(self, rng):
        base = rng.normal(size=(32, 32, 32)).astype(np.float32)
        out = gen.with_fill_regions(rng, base, fill_value=0.0, fraction=0.3)
        filled = out == 0.0
        # Boundary cells (filled with non-filled x-neighbour) must be a
        # small share of the filled volume — stripes would fail this.
        boundary = filled[:, :, 1:] & ~filled[:, :, :-1]
        assert boundary.sum() < 0.35 * filled.sum()


class TestQuantizers:
    def test_mantissa_quantization_zeroes_trailing_bits(self, rng):
        base = gen.spectral_field(rng, (1024,), dtype=np.float64)
        quantized = gen.quantized(base, 20)
        trailing = quantized.view(np.uint64) & np.uint64((1 << 32) - 1)
        assert np.all(trailing == 0)

    def test_step_quantization_repeats_levels(self, rng):
        base = gen.spectral_field(rng, (8192,), slope=3.0, amplitude=1.0)
        quantized = gen.quantized_step(base, 0.01)
        assert len(np.unique(quantized)) < len(np.unique(base))

    def test_quantized_rejects_ints(self):
        with pytest.raises(ValueError):
            gen.quantized(np.arange(4), 10)


class TestMessages:
    def test_period_repeats(self, rng):
        data = gen.repeating_messages(rng, 30_000, period=5000, fresh_fraction=0.2)
        assert len(np.unique(data)) < 0.5 * len(data)

    def test_small_n_still_works(self, rng):
        data = gen.repeating_messages(rng, 500, period=10_000)
        assert len(data) == 500


class TestParticles:
    def test_positions_stay_in_box(self, rng):
        pos = gen.particle_positions(rng, 50_000, box=256.0)
        assert np.all(pos >= 0) and np.all(pos <= 256.0)

    def test_locally_coherent(self, rng):
        pos = gen.particle_positions(rng, 50_000, box=256.0, stride=0.01)
        step = np.abs(np.diff(pos.astype(np.float64)))
        assert step.mean() < 256.0 * 0.05
