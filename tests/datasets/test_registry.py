"""Tests for the synthetic corpus registry and suite composition."""

from __future__ import annotations

import numpy as np

from repro.datasets import dp_suite, sp_suite


class TestSuiteComposition:
    def test_sp_suite_matches_paper_counts(self):
        domains = sp_suite()
        assert len(domains) == 7
        assert sum(len(d.files) for d in domains) == 90

    def test_dp_suite_matches_paper_counts(self):
        domains = dp_suite()
        assert len(domains) == 5
        assert sum(len(d.files) for d in domains) == 20

    def test_dtypes(self):
        assert all(f.dtype == np.float32 for d in sp_suite() for f in d.files)
        assert all(f.dtype == np.float64 for d in dp_suite() for f in d.files)

    def test_names_are_unique(self):
        names = [f.name for d in sp_suite() for f in d.files]
        names += [f.name for d in dp_suite() for f in d.files]
        assert len(set(names)) == len(names)

    def test_multidimensional_grids_exist(self):
        grids = {f.base_grid for d in sp_suite() for f in d.files}
        assert any(len(g) == 3 for g in grids)
        assert any(len(g) == 1 for g in grids)


class TestDeterminism:
    def test_same_file_same_bytes(self):
        file = sp_suite()[0].files[0]
        assert np.array_equal(file.load(0.1), file.load(0.1))

    def test_different_files_different_bytes(self):
        files = sp_suite()[0].files
        a, b = files[0].load(0.1), files[1].load(0.1)
        assert a.tobytes() != b.tobytes()

    def test_scale_changes_size_not_identity(self):
        file = sp_suite()[0].files[0]
        small, large = file.load(0.1), file.load(0.3)
        assert small.size < large.size


class TestGridScaling:
    def test_grid_at_unit_scale(self):
        file = sp_suite()[0].files[0]
        assert file.grid_at(1.0) == file.base_grid

    def test_grid_scales_isotropically(self):
        file = sp_suite()[0].files[0]
        grid = file.grid_at(0.125)
        assert len(grid) == len(file.base_grid)
        assert all(g <= b for g, b in zip(grid, file.base_grid))

    def test_load_shape_matches_grid(self):
        file = sp_suite()[0].files[0]
        assert file.load(0.2).shape == file.grid_at(0.2)

    def test_base_elements(self):
        file = sp_suite()[0].files[0]
        expected = 1
        for dim in file.base_grid:
            expected *= dim
        assert file.base_elements == expected


class TestStatisticalFingerprints:
    def test_climate_fields_contain_fill_sentinel(self):
        cesm = next(d for d in sp_suite() if d.name == "CESM-ATM")
        icefrac = next(f for f in cesm.files if "ICEFRAC" in f.name)
        data = icefrac.load(0.5)
        assert np.any(data == np.float32(1.0e35))

    def test_hydrometeors_are_mostly_zero(self):
        isabel = next(d for d in sp_suite() if d.name == "ISABEL")
        qgraup = next(f for f in isabel.files if "QGRAUP" in f.name)
        data = qgraup.load(0.5)
        assert (data == 0).mean() > 0.4

    def test_nyx_densities_are_positive(self):
        nyx = next(d for d in sp_suite() if d.name == "NYX")
        density = next(f for f in nyx.files if "baryon" in f.name)
        assert np.all(density.load(0.25) > 0)

    def test_msg_traces_repeat_values(self):
        msg = next(d for d in dp_suite() if d.name == "msg")
        data = msg.files[0].load(1.0)
        unique_fraction = len(np.unique(data)) / data.size
        assert unique_fraction < 0.8  # many exact repeats

    def test_num_files_have_noisy_mantissas(self):
        num = next(d for d in dp_suite() if d.name == "num")
        data = num.files[0].load(0.25)
        low_bits = data.view(np.uint64) & np.uint64(0xFFFF)
        # Low mantissa bits should look uniform (>14 bits of entropy).
        assert len(np.unique(low_bits)) > data.size * 0.6

    def test_all_files_finite_or_sentinel(self):
        for domain in dp_suite():
            for file in domain.files:
                data = file.load(0.1)
                assert np.all(np.isfinite(data)), file.name
