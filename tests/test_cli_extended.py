"""Tests for the extended CLI subcommands (explain/recommend/verify/archive)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture
def sample_file(tmp_path, rng):
    data = np.cumsum(rng.normal(scale=0.01, size=15_000)).astype(np.float32)
    path = tmp_path / "field.f32"
    path.write_bytes(data.tobytes())
    return path, data


class TestExplainCommand:
    def test_waterfall_printed(self, sample_file, capsys):
        path, _ = sample_file
        assert main(["explain", str(path), "--codec", "spratio"]) == 0
        out = capsys.readouterr().out
        for stage in ("diffms", "bit", "rze"):
            assert stage in out
        assert "ratio" in out


class TestRecommendCommand:
    def test_smooth_data_recommendation(self, sample_file, capsys):
        path, _ = sample_file
        assert main(["recommend", str(path)]) == 0
        out = capsys.readouterr().out
        assert "recommended codec: spratio" in out


class TestBenchMeasured:
    def test_trace_prints_per_chunk_stage_table(self, capsys):
        assert main(["bench", "--trace", "--scale", "0.05",
                     "--codec", "spratio"]) == 0
        out = capsys.readouterr().out
        # per-executor measured rows name their policy
        for policy in ("serial", "threaded", "static-blocks"):
            assert policy in out
        # per-chunk stage timings and sizes from the traced run
        for stage in ("diffms", "bit", "rze"):
            assert stage in out
        assert "raw fallback" in out
        assert "ms" in out and "B out" in out

    def test_single_executor_selection(self, capsys):
        assert main(["bench", "--codec", "spspeed", "--executor", "threaded",
                     "--workers", "2", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "threaded" in out
        assert "serial" not in out

    def test_unknown_executor_rejected(self, capsys):
        rc = main(["bench", "--codec", "spspeed", "--executor", "fibers",
                   "--scale", "0.05"])
        assert rc == 1


class TestVerifyCommand:
    def test_verify_passes(self, capsys):
        assert main(["verify", "--scale", "0.02"]) == 0
        assert "ALL LOSSLESS" in capsys.readouterr().out


class TestArchiveCommand:
    def test_create_list_extract(self, tmp_path, rng, capsys):
        a = np.cumsum(rng.normal(size=4000)).astype(np.float32)
        b = rng.normal(size=2000).astype(np.float32)
        (tmp_path / "a.f32").write_bytes(a.tobytes())
        (tmp_path / "b.f32").write_bytes(b.tobytes())
        archive_path = tmp_path / "snapshot.fpra"

        assert main(["archive", "create", str(archive_path),
                     f"T={tmp_path / 'a.f32'}", f"P={tmp_path / 'b.f32'}"]) == 0
        assert main(["archive", "list", str(archive_path)]) == 0
        out = capsys.readouterr().out
        assert "T" in out and "total ratio" in out

        out_path = tmp_path / "restored.f32"
        assert main(["archive", "extract", str(archive_path), f"T={out_path}"]) == 0
        assert out_path.read_bytes() == a.tobytes()

    def test_bad_member_spec(self, tmp_path, capsys):
        rc = main(["archive", "create", str(tmp_path / "x.fpra"), "justaname"])
        assert rc == 1
        assert "NAME=FILE" in capsys.readouterr().err
