"""Behavioural tests for GFC, MPC, ndzip, Bitcomp, Cascaded, ZFP, FPzip, LZ."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.bitcomp import Bitcomp
from repro.baselines.cascaded import Cascaded, _rle
from repro.baselines.fpzip import FPzip, _from_ordered, _to_ordered
from repro.baselines.gfc import GFC
from repro.baselines.lz77 import lz4, snappy
from repro.baselines.mpc import MPC
from repro.baselines.ndzip import Ndzip
from repro.baselines.zfp import ZFP
from repro.errors import CorruptDataError


class TestGFC:
    def test_lag32_structure_helps_strided_data(self, rng):
        # 32 interleaved smooth lanes: exactly GFC's parallel layout.
        lanes = np.cumsum(rng.normal(scale=0.01, size=(500, 32)), axis=0)
        data = lanes.astype(np.float64).reshape(-1).tobytes()
        assert GFC().roundtrip_ratio(data) > 1.1

    def test_short_input_below_lag(self, rng):
        data = rng.normal(size=7).astype(np.float64).tobytes()
        gfc = GFC()
        assert gfc.decompress(gfc.compress(data)) == data

    def test_rejects_fp32(self):
        with pytest.raises(ValueError):
            GFC(np.float32)


class TestMPC:
    def test_multidimensional_delta(self, rng):
        # Tuples of 3 (x, y, z triples): dimension-aware delta wins.
        base = np.cumsum(rng.normal(scale=0.01, size=(2000, 3)), axis=0)
        data = base.astype(np.float32).reshape(-1).tobytes()
        r1 = MPC(np.float32, dimension=1).roundtrip_ratio(data)
        r3 = MPC(np.float32, dimension=3).roundtrip_ratio(data)
        assert r3 > r1

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            MPC(np.float32, dimension=0)

    def test_fp64_roundtrip(self, smooth_f64):
        mpc = MPC(np.float64)
        data = smooth_f64.tobytes()
        assert mpc.decompress(mpc.compress(data)) == data


class TestNdzip:
    def test_xor_residuals_cancel_shared_prefixes(self, smooth_f32):
        ratio = Ndzip(np.float32).roundtrip_ratio(smooth_f32.tobytes())
        assert ratio > 1.2

    def test_prefix_xor_inverse(self, rng):
        from repro.baselines.ndzip import Ndzip

        nd = Ndzip(np.float64)
        words = rng.integers(0, 1 << 63, size=777, dtype=np.uint64)
        assert np.array_equal(nd._inverse(nd._forward(words)), words)


class TestBitcomp:
    def test_variant_names(self):
        assert Bitcomp(np.float32).name == "Bitcomp-b0"
        assert Bitcomp(np.float32, block_words=1024).name == "Bitcomp-b1"
        assert Bitcomp(np.float32, delta=False).name == "Bitcomp-i0"

    def test_finer_blocks_compress_more(self, smooth_f32):
        data = smooth_f32.tobytes()
        b0 = Bitcomp(np.float32, block_words=4096).roundtrip_ratio(data)
        b1 = Bitcomp(np.float32, block_words=1024).roundtrip_ratio(data)
        assert b1 >= b0

    def test_no_delta_weaker_on_smooth(self, smooth_f32):
        data = smooth_f32.tobytes()
        assert (
            Bitcomp(np.float32, delta=True).roundtrip_ratio(data)
            > Bitcomp(np.float32, delta=False).roundtrip_ratio(data)
        )


class TestCascaded:
    def test_rle_runs(self):
        words = np.array([5, 5, 5, 9, 9, 5], dtype=np.uint32)
        values, lengths = _rle(words)
        assert values.tolist() == [5, 9, 5]
        assert lengths.tolist() == [3, 2, 1]

    def test_shines_on_run_data(self):
        data = np.repeat(np.arange(50, dtype=np.float32), 100).tobytes()
        assert Cascaded(np.float32).roundtrip_ratio(data) > 20


class TestFPzip:
    def test_ordered_mapping_is_monotone_bijection(self, rng):
        floats = np.sort(rng.normal(size=1000).astype(np.float32))
        words = floats.view(np.uint32)
        ordered = _to_ordered(words, 32)
        assert np.all(np.diff(ordered.astype(np.int64)) >= 0)
        assert np.array_equal(_from_ordered(ordered, 32), words)

    def test_best_in_class_on_smooth_sp(self, smooth_f32):
        # The paper: FPzip yields "by far the best compression ratio" on
        # CPU single-precision data.
        data = smooth_f32.tobytes()
        fpz = FPzip(np.float32).roundtrip_ratio(data)
        assert fpz > ZFP(np.float32).roundtrip_ratio(data)
        assert fpz > Ndzip(np.float32).roundtrip_ratio(data)


class TestZFP:
    def test_roundtrip_block_edges(self, rng):
        for n in (1, 2, 3, 4, 5, 7, 8, 4095, 4097):
            data = rng.normal(size=n).astype(np.float32).tobytes()
            z = ZFP(np.float32)
            assert z.decompress(z.compress(data)) == data, n


class TestLZFamily:
    def test_finds_long_matches(self):
        data = b"abcdefgh" * 2000
        blob = lz4().compress(data)
        assert lz4().decompress(blob) == data
        assert len(blob) < len(data) / 20

    def test_overlapping_match_copy(self):
        # RLE-style self-overlap: match offset 1, long length.
        data = b"a" * 5000
        blob = lz4().compress(data)
        assert lz4().decompress(blob) == data
        assert len(blob) < 100

    def test_incompressible_passthrough(self, rng):
        data = rng.integers(0, 256, size=30_000, dtype=np.uint8).tobytes()
        blob = lz4().compress(data)
        assert lz4().decompress(blob) == data
        assert len(blob) < len(data) * 1.05

    def test_snappy_differs_from_lz4(self):
        assert snappy().name == "Snappy"
        data = b"xyz" * 10_000
        assert snappy().decompress(snappy().compress(data)) == data

    def test_corrupt_offset_rejected(self):
        blob = bytearray(lz4().compress(b"mississippi" * 100))
        # Find a match token and zero its offset.
        comp = lz4()
        with pytest.raises(CorruptDataError):
            comp.decompress(blob[:4] + b"\x01\x05\x00\x00")
