"""Lossless round-trip tests for every baseline on adversarial inputs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import competitors_for


def _cases(dtype, rng):
    itemsize = np.dtype(dtype).itemsize
    smooth = np.cumsum(rng.normal(scale=0.01, size=5000)).astype(dtype)
    special = np.array(
        [0.0, -0.0, np.inf, -np.inf, np.nan, 1.0, -1.0,
         np.finfo(dtype).max, np.finfo(dtype).min, np.finfo(dtype).tiny],
        dtype=dtype,
    )
    return {
        "smooth": smooth.tobytes(),
        "random": rng.integers(0, 256, size=4096 * itemsize + 3, dtype=np.uint8).tobytes(),
        "constant": np.full(3000, 3.14159, dtype=dtype).tobytes(),
        "zeros": bytes(3000 * itemsize),
        "special": special.tobytes(),
        "empty": b"",
        "tiny": b"\x42",
        "one_value": np.array([2.5], dtype=dtype).tobytes(),
    }


def _all_baselines():
    out = []
    for dtype in (np.float32, np.float64):
        seen = set()
        for kind in ("gpu", "cpu"):
            for comp in competitors_for(dtype, kind):
                if comp.name in seen:
                    continue
                seen.add(comp.name)
                out.append(pytest.param(comp, np.dtype(dtype),
                                        id=f"{comp.name}-{np.dtype(dtype).name}"))
    return out


@pytest.mark.parametrize("comp,dtype", _all_baselines())
def test_lossless_roundtrip_everywhere(comp, dtype, rng):
    for label, data in _cases(dtype, rng).items():
        blob = comp.compress(data)
        back = comp.decompress(blob)
        assert back == data, f"{comp.name} corrupted the {label!r} case"


@pytest.mark.parametrize("comp,dtype", _all_baselines())
def test_expansion_is_bounded(comp, dtype, rng):
    # No baseline may blow up adversarial input beyond a modest overhead.
    data = rng.integers(0, 256, size=50_000, dtype=np.uint8).tobytes()
    blob = comp.compress(data)
    assert len(blob) < len(data) * 1.35 + 2048, comp.name


class TestComparisonSets:
    def test_fp64_only_codecs_excluded_from_fp32(self):
        names32 = {c.name for c in competitors_for(np.float32, "cpu")}
        assert "FPC" not in names32 and "pFPC" not in names32
        names64 = {c.name for c in competitors_for(np.float64, "cpu")}
        assert {"FPC", "pFPC"} <= names64

    def test_gfc_only_on_gpu_fp64(self):
        assert "GFC" not in {c.name for c in competitors_for(np.float32, "gpu")}
        assert "GFC" in {c.name for c in competitors_for(np.float64, "gpu")}

    def test_ndzip_and_zstd_appear_on_both_devices(self):
        gpu = {c.name for c in competitors_for(np.float32, "gpu")}
        cpu = {c.name for c in competitors_for(np.float32, "cpu")}
        assert "Ndzip" in gpu and "Ndzip" in cpu
        assert any(n.startswith("ZSTD") for n in gpu)
        assert any(n.startswith("ZSTD") for n in cpu)

    def test_multi_level_codecs_contribute_two_modes(self):
        cpu = {c.name for c in competitors_for(np.float32, "cpu")}
        for family in ("Bzip2", "Gzip", "SPDP", "ZSTD-CPU"):
            assert f"{family}-fast" in cpu and f"{family}-best" in cpu

    def test_zstd_cpu_and_gpu_are_incompatible(self):
        from repro.baselines.stdlib_codecs import ZstdCPU, ZstdGPU
        from repro.errors import CorruptDataError

        data = b"incompatible sources" * 10
        blob_gpu = ZstdGPU().compress(data)
        with pytest.raises(CorruptDataError):
            ZstdCPU().decompress(blob_gpu)

    def test_registry_has_18_rows(self):
        from repro.baselines import baseline_registry

        rows = baseline_registry()
        assert len(rows) == 18
        assert len({r.name for r in rows}) == 18
