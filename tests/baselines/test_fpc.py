"""Behavioural tests for FPC/pFPC semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.fpc import FPC, PFPC, _leading_zero_bytes
from repro.errors import CorruptDataError


class TestLeadingZeroBytes:
    def test_boundaries(self):
        assert _leading_zero_bytes(0) == 8
        assert _leading_zero_bytes(1) == 7
        assert _leading_zero_bytes(0xFF) == 7
        assert _leading_zero_bytes(0x100) == 6
        assert _leading_zero_bytes(1 << 63) == 0
        assert _leading_zero_bytes((1 << 64) - 1) == 0


class TestFPC:
    def test_repetitive_data_compresses_hard(self, rng):
        # Hash prediction turns exact repeats into zero residuals.
        tile = rng.normal(size=64).astype(np.float64)
        data = np.tile(tile, 100).tobytes()
        ratio = FPC().roundtrip_ratio(data)
        assert ratio > 5.0

    def test_perfect_prediction_costs_half_byte(self, rng):
        # A long constant run: header nibbles only (~16x).
        data = np.full(8000, 1.5, dtype=np.float64).tobytes()
        ratio = FPC().roundtrip_ratio(data)
        assert ratio > 10.0

    def test_four_zero_byte_downgrade_roundtrips(self):
        # Craft residuals with exactly 4 leading zero bytes (the skipped
        # count): value whose bits occupy the low 32 bits, following a 0.
        words = np.array([0, 0xDEADBEEF, 0, 0x12345678], dtype=np.uint64)
        data = words.tobytes()
        fpc = FPC()
        assert fpc.decompress(fpc.compress(data)) == data

    def test_rejects_fp32(self):
        with pytest.raises(ValueError):
            FPC(np.float32)

    def test_truncation_detected(self, rng):
        data = rng.normal(size=100).astype(np.float64).tobytes()
        blob = FPC().compress(data)
        with pytest.raises(CorruptDataError):
            FPC().decompress(blob[:-3])

    def test_table_size_changes_format_compatible_streams(self, rng):
        # Different table sizes are different codecs; same size round-trips.
        data = np.cumsum(rng.normal(size=500)).astype(np.float64).tobytes()
        small = FPC(table_log2=8)
        assert small.decompress(small.compress(data)) == data


class TestPFPC:
    def test_matches_fpc_on_single_chunk(self, rng):
        data = np.cumsum(rng.normal(size=1000)).astype(np.float64).tobytes()
        pfpc = PFPC(chunk_values=4096, table_log2=14)
        fpc = FPC(table_log2=14)
        # One chunk: identical payload modulo the chunk table.
        assert pfpc.compress(data)[8:] == fpc.compress(data)

    def test_chunking_slightly_hurts_ratio(self, rng):
        # Fresh predictor tables per chunk lose cross-chunk history, the
        # classic pFPC trade-off.
        tile = rng.normal(size=64).astype(np.float64)
        data = np.tile(tile, 200).tobytes()
        assert FPC().roundtrip_ratio(data) >= PFPC(chunk_values=1024).roundtrip_ratio(data)

    def test_many_chunks_roundtrip(self, rng):
        data = rng.normal(size=10_000).astype(np.float64).tobytes()
        pfpc = PFPC(chunk_values=512)
        assert pfpc.decompress(pfpc.compress(data)) == data
