"""Tests for FPzip's dimensionality-aware Lorenzo predictor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.fpzip import FPzip
from repro.datasets import fields as gen


@pytest.fixture
def smooth_grid(rng):
    return gen.spectral_field(rng, (16, 32, 32), slope=3.8, amplitude=10.0,
                              offset=100.0, dtype=np.float32)


class TestLorenzoDims:
    def test_3d_roundtrip(self, smooth_grid):
        fp = FPzip(np.float32)
        fp.set_dimensions(smooth_grid.shape)
        data = smooth_grid.tobytes()
        assert fp.decompress(fp.compress(data)) == data

    def test_3d_beats_1d_on_3d_data(self, smooth_grid):
        data = smooth_grid.tobytes()
        fp1 = FPzip(np.float32)
        fp3 = FPzip(np.float32)
        fp3.set_dimensions(smooth_grid.shape)
        assert len(fp3.compress(data)) < len(fp1.compress(data))

    def test_wrong_dimensions_fall_back_to_1d(self, smooth_grid):
        # A stale shape that doesn't cover the data must not corrupt it.
        fp = FPzip(np.float32)
        fp.set_dimensions((999, 999))
        data = smooth_grid.tobytes()
        assert fp.decompress(fp.compress(data)) == data

    def test_2d_roundtrip(self, rng):
        grid = gen.spectral_field(rng, (64, 128), slope=3.0, dtype=np.float64)
        fp = FPzip(np.float64)
        fp.set_dimensions(grid.shape)
        data = grid.tobytes()
        assert fp.decompress(fp.compress(data)) == data

    def test_shape_travels_in_the_payload(self, smooth_grid):
        # The decoder needs no set_dimensions call: shape is self-describing.
        writer = FPzip(np.float32)
        writer.set_dimensions(smooth_grid.shape)
        blob = writer.compress(smooth_grid.tobytes())
        fresh = FPzip(np.float32)
        assert fresh.decompress(blob) == smooth_grid.tobytes()

    def test_separable_lorenzo_is_its_own_inverse_chain(self, rng):
        words = rng.integers(0, 1 << 32, size=512, dtype=np.uint64).astype(np.uint32)
        forward = FPzip._lorenzo_forward(words, (8, 8, 8))
        back = FPzip._lorenzo_inverse(forward.copy(), (8, 8, 8))
        assert np.array_equal(back, words)
