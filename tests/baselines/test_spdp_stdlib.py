"""Behavioural tests for SPDP and the stdlib-backed general codecs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.spdp import SPDP
from repro.baselines.stdlib_codecs import (
    Bzip2,
    Gdeflate,
    ZstdCPU,
    ZstdGPU,
    deflate,
    gzip_best,
    gzip_fast,
)
from repro.errors import CorruptDataError


class TestSPDP:
    def test_level_names(self):
        assert SPDP(np.float32, level=1).name == "SPDP-fast"
        assert SPDP(np.float32, level=9).name == "SPDP-best"
        assert SPDP(np.float32, level=5).name == "SPDP-5"

    def test_best_compresses_at_least_as_well(self, smooth_f32):
        data = smooth_f32.tobytes()
        fast = len(SPDP(np.float32, level=1).compress(data))
        best = len(SPDP(np.float32, level=9).compress(data))
        # Greedy parses differ slightly between hash configurations; the
        # thorough mode must never lose more than noise.
        assert best <= fast * 1.01

    def test_shuffle_plus_difference_beats_plain_lz(self, smooth_f64):
        from repro.baselines.lz77 import LZ4Like

        data = smooth_f64.tobytes()
        spdp = len(SPDP(np.float64, level=9).compress(data))
        plain = len(LZ4Like(search_effort=12, hash_log2=18).compress(data))
        assert spdp < plain

    def test_word_size_matters(self, smooth_f64):
        # Treating doubles as float32 pairs misaligns the byte lanes.
        data = smooth_f64.tobytes()
        right = SPDP(np.float64, level=5)
        wrong = SPDP(np.float32, level=5)
        assert right.decompress(right.compress(data)) == data
        assert wrong.decompress(wrong.compress(data)) == data  # still lossless
        assert len(right.compress(data)) < len(wrong.compress(data)) * 1.2

    def test_rejects_odd_dtype(self):
        with pytest.raises(ValueError):
            SPDP(np.int16)

    def test_corrupt_stream_detected(self, smooth_f32):
        blob = bytearray(SPDP(np.float32).compress(smooth_f32.tobytes()))
        blob[2] ^= 0xFF  # length field
        with pytest.raises(CorruptDataError):
            SPDP(np.float32).decompress(bytes(blob))


class TestStdlibCodecs:
    def test_gzip_levels_tradeoff(self):
        data = (b"scientific data " * 4000)
        fast = len(gzip_fast().compress(data))
        best = len(gzip_best().compress(data))
        assert best <= fast

    def test_bzip2_names(self):
        assert Bzip2(level=1).name == "Bzip2-fast"
        assert Bzip2(level=9).name == "Bzip2-best"

    def test_gdeflate_pages_independent(self, rng):
        # >1 page: each page decompresses alone (the GPU-parallel framing).
        import zlib
        data = rng.integers(0, 64, size=200_000, dtype=np.uint8).tobytes()
        g = Gdeflate()
        blob = g.compress(data)
        assert g.decompress(blob) == data
        import struct
        (n_pages,) = struct.unpack_from("<I", blob, 0)
        assert n_pages == 4  # ceil(200000 / 65536)
        # First page decodes standalone:
        sizes = struct.unpack_from(f"<{n_pages}I", blob, 4)
        start = 4 + 4 * n_pages
        first = zlib.decompress(blob[start : start + sizes[0]])
        assert first == data[:65536]

    def test_gdeflate_corruption_detected(self, rng):
        data = rng.integers(0, 64, size=100_000, dtype=np.uint8).tobytes()
        blob = bytearray(Gdeflate().compress(data))
        blob[-10] ^= 0xFF
        with pytest.raises(CorruptDataError):
            Gdeflate().decompress(bytes(blob))

    def test_zstd_best_beats_fast(self, smooth_f64):
        data = smooth_f64.tobytes()
        fast = len(ZstdCPU(best=False).compress(data))
        best = len(ZstdCPU(best=True).compress(data))
        assert best < fast

    def test_zstd_gpu_roundtrip(self, smooth_f32):
        data = smooth_f32.tobytes()
        z = ZstdGPU()
        assert z.decompress(z.compress(data)) == data

    def test_cross_source_incompatibility_both_ways(self):
        data = b"separate sources" * 100
        cpu_blob = ZstdCPU().compress(data)
        gpu_blob = ZstdGPU().compress(data)
        with pytest.raises(CorruptDataError):
            ZstdGPU().decompress(cpu_blob)
        with pytest.raises(CorruptDataError):
            ZstdCPU().decompress(gpu_blob)

    def test_deflate_is_gpu_row(self):
        assert deflate().device == "GPU"
        assert gzip_fast().device == "CPU"
