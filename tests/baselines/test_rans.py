"""Tests for the rANS entropy coder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.rans import ANS, PROB_SCALE, normalized_frequencies
from repro.errors import CorruptDataError


class TestFrequencyModel:
    def test_sums_to_scale(self, rng):
        data = rng.integers(0, 256, size=10_000, dtype=np.uint8)
        assert normalized_frequencies(data).sum() == PROB_SCALE

    def test_present_symbols_never_zero(self, rng):
        data = np.concatenate([
            np.zeros(100_000, dtype=np.uint8),
            np.array([255], dtype=np.uint8),  # one-in-100k symbol
        ])
        freqs = normalized_frequencies(data)
        assert freqs[255] >= 1
        assert freqs.sum() == PROB_SCALE

    def test_single_symbol(self):
        freqs = normalized_frequencies(np.full(50, 7, dtype=np.uint8))
        assert freqs[7] == PROB_SCALE

    def test_empty(self):
        assert normalized_frequencies(np.zeros(0, dtype=np.uint8)).sum() == PROB_SCALE

    def test_uniform(self):
        data = np.arange(256, dtype=np.uint8).repeat(10)
        freqs = normalized_frequencies(data)
        assert freqs.min() >= 1
        assert freqs.sum() == PROB_SCALE


class TestANS:
    @pytest.mark.parametrize("n", [0, 1, 2, 63, 64, 255, 256, 1000, 65_537])
    def test_roundtrip_sizes(self, n, rng):
        data = rng.integers(0, 256, size=n, dtype=np.uint8).tobytes()
        ans = ANS()
        assert ans.decompress(ans.compress(data)) == data

    def test_skewed_data_approaches_entropy(self, rng):
        # 90% zeros: H ~ 0.47 bits/byte; allow generous coder overhead.
        data = (rng.random(100_000) < 0.1).astype(np.uint8).tobytes()
        ans = ANS()
        blob = ans.compress(data)
        assert ans.decompress(blob) == data
        bits_per_byte = 8 * len(blob) / len(data)
        assert bits_per_byte < 0.75

    def test_uniform_data_does_not_expand_much(self, rng):
        data = rng.integers(0, 256, size=100_000, dtype=np.uint8).tobytes()
        blob = ANS().compress(data)
        assert len(blob) < len(data) * 1.05

    def test_text_like_data(self):
        data = (b"the quick brown fox jumps over the lazy dog " * 500)
        ans = ANS()
        blob = ans.compress(data)
        assert ans.decompress(blob) == data
        assert len(blob) < len(data) * 0.72  # ~4.3 bits/char entropy

    def test_single_lane_path(self, rng):
        data = rng.integers(0, 256, size=100, dtype=np.uint8).tobytes()
        ans = ANS(n_lanes=1)
        assert ans.decompress(ans.compress(data)) == data

    def test_corrupt_frequency_table_rejected(self, rng):
        blob = bytearray(ANS().compress(b"hello world" * 100))
        blob[6] ^= 0xFF  # inside the frequency table
        with pytest.raises(CorruptDataError):
            ANS().decompress(bytes(blob))

    def test_lane_count_validation(self):
        with pytest.raises(ValueError):
            ANS(n_lanes=0)
