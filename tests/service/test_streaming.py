"""Protocol v2 on the wire: streams, pipelining, quotas, v1 interop.

The contracts under test, in the order the PR's acceptance criteria
state them:

* **Golden frames** — the version-1 frame bytes are pinned literally;
  any layout drift (field order, widths, endianness) fails here before
  it can silently break cross-version peers.
* **v1 interop** — a client that never negotiates speaks pure v1
  against the v2 server and passes the full operation matrix, and a v2
  client against a v1 server transparently falls back to unary frames.
* **Bounded memory** — a streamed COMPRESS of a payload ≥ 8× the
  per-connection stream window round-trips byte-identically to the
  local API while the server's buffered-bytes watermark never exceeds
  the window (asserted via live STATS).
* **Pipelining** — responses collected out of submission order.
* **Quotas** — per-tenant token buckets reject with a typed
  :class:`QuotaExceededError` carrying a refill hint.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core import container as fmt
from repro.errors import ProtocolError, QuotaExceededError, ReproError
from repro.service import ServerThread, ServiceClient, ServiceConfig
from repro.service import protocol as proto
from repro.service.server import CompressionServer


def _walk(rng, n, dtype=np.float32):
    return np.cumsum(rng.normal(scale=0.01, size=n)).astype(dtype)


# ---------------------------------------------------------------------------
# Golden v1 frame bytes
# ---------------------------------------------------------------------------

#: Pinned wire bytes.  These are the protocol-v1 frames (and the v2
#: stream extension frames) exactly as they leave ``encode_frame``;
#: they must NEVER change — v1 peers in the field parse them.
GOLDEN_FRAMES = {
    "ping": (
        (proto.OP_PING, 7, b""),
        "4650525701050000070000000000000000000000",
    ),
    "compress": (
        (
            proto.OP_COMPRESS,
            0x1122334455667788,
            proto.encode_compress_body(
                b"\x00\x00\x80\x3f\x00\x00\x00\x40",
                codec="spspeed", dtype_code=fmt.DTYPE_F32, shape=(2,),
            ),
        ),
        "465052570101000088776655443322111a00000007737073706565640101"
        "02000000000000000000803f00000040",
    ),
    "decompress": (
        (proto.OP_DECOMPRESS, 2, b"FPRZ"),
        "46505257010200000200000000000000040000004650525a",
    ),
    "result": (
        (proto.OP_RESULT, 5, b"ok"),
        "46505257018000000500000000000000020000006f6b",
    ),
    "error": (
        (proto.OP_ERROR, 3, proto.encode_error_body(proto.ERR_FORMAT, "bad")),
        "465052570181000003000000000000000400000002626164",
    ),
    "busy": (
        (proto.OP_BUSY, 4, proto.encode_busy_body(50)),
        "465052570182000004000000000000000400000032000000",
    ),
    "stream-begin": (
        (
            proto.OP_STREAM_BEGIN,
            6,
            proto.encode_stream_begin(
                proto.STREAM_COMPRESS, total_len=8, codec="spspeed",
                dtype_code=fmt.DTYPE_F32, shape=(2,),
            ),
        ),
        "465052570106000006000000000000001b0000000107737073706565640101"
        "02000000000000000800000000000000",
    ),
    "stream-ack": (
        (proto.OP_STREAM_ACK, 6, proto.encode_stream_ack(65536)),
        "465052570183000006000000000000000400000000000100",
    ),
}


class TestGoldenFrames:
    @pytest.mark.parametrize("name", sorted(GOLDEN_FRAMES))
    def test_encoded_bytes_are_pinned(self, name):
        (opcode, rid, body), golden = GOLDEN_FRAMES[name]
        assert proto.encode_frame(opcode, rid, body).hex() == golden

    @pytest.mark.parametrize("name", sorted(GOLDEN_FRAMES))
    def test_golden_bytes_parse_back(self, name):
        (opcode, rid, body), golden = GOLDEN_FRAMES[name]
        frame = proto.parse_frame(bytes.fromhex(golden))
        assert (frame.opcode, frame.request_id, frame.body) == (
            opcode, rid, body,
        )

    def test_header_is_twenty_bytes(self):
        # The fixed prelude every peer ever shipped reads first.
        assert proto.HEADER_SIZE == 20

    def test_version_byte_is_still_one(self):
        # Streams/pipelining/quotas are negotiated features, not a
        # version bump: every frame stays version 1 on the wire.
        assert proto.VERSION == 1
        for (opcode, rid, body), golden in GOLDEN_FRAMES.values():
            assert bytes.fromhex(golden)[4] == 1


# ---------------------------------------------------------------------------
# v1 x v2 interop
# ---------------------------------------------------------------------------


class TestV1ClientAgainstV2Server:
    """A never-negotiating client is a v1 peer; the full matrix must pass."""

    def test_full_operation_matrix(self, rng):
        data = _walk(rng, 8_000)
        expected = repro.compress(data, "spspeed")
        with ServerThread(ServiceConfig(port=0)) as srv:
            with ServiceClient(port=srv.port) as client:
                # v1 clients never send a PING body and never negotiate.
                assert client.server_features is None
                blob = client.compress(data, "spspeed")
                assert blob == expected
                assert np.array_equal(client.decompress(blob), data)
                assert client.inspect(blob)["codec"] == "spspeed"
                assert "metrics" in client.stats()
                assert client.ping()
                assert client.server_features is None  # still never negotiated

    def test_empty_ping_gets_the_empty_v1_reply(self):
        # Byte-for-byte v1 semantics: empty body in, empty body out.
        with ServerThread(ServiceConfig(port=0)) as srv:
            with ServiceClient(port=srv.port) as client:
                assert client._request(proto.OP_PING) == b""

    def test_malformed_ping_body_fails_open_to_v1(self):
        # An old client with junk in its PING body must not be rejected.
        with ServerThread(ServiceConfig(port=0)) as srv:
            with ServiceClient(port=srv.port) as client:
                assert client._request(proto.OP_PING, b"\xff\xfejunk") == b""


class TestV2ClientAgainstV1Server:
    """Against a v1 peer the streamed methods fall back to unary frames."""

    @pytest.fixture()
    def v1_server(self, monkeypatch):
        # A v1 server is one that answers every PING with an empty body.
        monkeypatch.setattr(
            CompressionServer, "_negotiate", lambda self, conn, body: b""
        )
        with ServerThread(ServiceConfig(port=0)) as srv:
            yield srv

    def test_streamed_methods_fall_back_to_unary(self, rng, v1_server):
        data = _walk(rng, 8_000)
        with ServiceClient(port=v1_server.port) as client:
            blob = client.compress_streamed(data, "spspeed")
            assert client.server_features == ()  # negotiation saw a v1 peer
            assert blob == repro.compress(data, "spspeed")
            assert np.array_equal(client.decompress_streamed(blob), data)

    def test_iter_decompress_degrades_to_unary_chunks(self, rng, v1_server):
        data = _walk(rng, 4_000)
        blob = repro.compress(data, "spspeed")
        with ServiceClient(port=v1_server.port) as client:
            raw = b"".join(client.iter_decompress_streamed(blob))
            assert raw == data.tobytes()


# ---------------------------------------------------------------------------
# Streamed transfers: bounded memory and byte identity
# ---------------------------------------------------------------------------

WINDOW = 64 * 1024


class TestStreamedTransfers:
    @pytest.mark.parametrize("codec,dtype", [
        ("spspeed", np.float32), ("spratio", np.float32),
        ("dpspeed", np.float64), ("dpratio", np.float64),
    ])
    def test_streamed_compress_matches_restart_framed_api(
        self, rng, codec, dtype
    ):
        data = _walk(rng, 20_000, dtype)
        expected = repro.compress(data, codec, fcm="restart")
        with ServerThread(ServiceConfig(port=0)) as srv:
            with ServiceClient(port=srv.port) as client:
                blob = client.compress_streamed(data, codec)
                assert blob == expected
                assert np.array_equal(client.decompress_streamed(blob), data)

    def test_bounded_memory_at_eight_times_the_window(self, rng):
        """The acceptance criterion: payload >= 8x the stream window
        round-trips byte-identically while the server's buffered-bytes
        watermark never exceeds the window."""
        data = _walk(rng, 160_000)  # 640 KiB of f32 = 10x the window
        assert data.nbytes >= 8 * WINDOW
        expected = repro.compress(data, "spspeed", fcm="restart")
        with ServerThread(
            ServiceConfig(port=0, stream_window=WINDOW)
        ) as srv:
            with ServiceClient(port=srv.port) as client:
                blob = client.compress_streamed(
                    data, "spspeed", piece_size=16 * 1024
                )
                assert blob == expected
                assert np.array_equal(client.decompress_streamed(blob), data)
                gauges = client.stats()["metrics"]["gauges"]
                watermark = gauges["stream_buffered_watermark"]
                assert 0 < watermark <= WINDOW
                assert gauges["streams_in_flight"] == 0  # all torn down

    def test_iter_decompress_yields_ordered_chunks(self, rng):
        data = _walk(rng, 120_000)
        blob = repro.compress(data, "spspeed", fcm="restart")
        with ServerThread(
            ServiceConfig(port=0, stream_window=WINDOW)
        ) as srv:
            with ServiceClient(port=srv.port) as client:
                pieces = list(client.iter_decompress_streamed(blob))
                assert len(pieces) > 1  # actually chunked, not one blob
                assert b"".join(pieces) == data.tobytes()

    def test_negotiation_reports_the_server_window(self):
        with ServerThread(
            ServiceConfig(port=0, stream_window=WINDOW)
        ) as srv:
            with ServiceClient(port=srv.port) as client:
                doc = client.negotiate()
                assert set(proto.FEATURES) <= set(doc["features"])
                assert client.server_stream_window == WINDOW

    def test_connection_stays_usable_after_stream_error(self, rng):
        # A typed stream failure tombstones the id, not the connection.
        data = _walk(rng, 2_000)
        with ServerThread(ServiceConfig(port=0)) as srv:
            with ServiceClient(port=srv.port) as client:
                with pytest.raises(ReproError):
                    client.decompress_streamed(b"not a container" * 10)
                assert client.broken is None
                blob = client.compress_streamed(data, "spspeed")
                assert np.array_equal(client.decompress(blob), data)


# ---------------------------------------------------------------------------
# Pipelining: out-of-order collection over correlation ids
# ---------------------------------------------------------------------------


class TestPipelining:
    def test_collect_out_of_submission_order(self, rng):
        arrays = [_walk(rng, 1_000 + 500 * i) for i in range(6)]
        expected = [repro.compress(a, "spspeed") for a in arrays]
        with ServerThread(ServiceConfig(port=0)) as srv:
            with ServiceClient(port=srv.port) as client:
                rids = [client.submit_compress(a, "spspeed") for a in arrays]
                assert client.in_flight == len(rids)
                collected = {
                    rid: client.collect(rid) for rid in reversed(rids)
                }
                assert client.in_flight == 0
                assert [collected[r] for r in rids] == expected

    def test_mixed_opcodes_interleave_on_one_connection(self, rng):
        data = _walk(rng, 3_000)
        blob = repro.compress(data, "spspeed")
        with ServerThread(ServiceConfig(port=0)) as srv:
            with ServiceClient(port=srv.port) as client:
                rid_c = client.submit_compress(data, "spspeed")
                rid_d = client.submit_decompress(blob)
                rid_p = client.submit(proto.OP_PING)
                assert client.collect(rid_p) == b""
                assert np.array_equal(client.collect_decompress(rid_d), data)
                assert client.collect(rid_c) == blob

    def test_depth_histogram_observes_the_burst(self, rng):
        data = _walk(rng, 1_000)
        with ServerThread(ServiceConfig(port=0)) as srv:
            with ServiceClient(port=srv.port) as client:
                rids = [client.submit_compress(data, "spspeed")
                        for _ in range(4)]
                for rid in rids:
                    client.collect(rid)
                histograms = client.stats()["metrics"]["histograms"]
                depth = next(v for k, v in histograms.items()
                             if k.startswith("pipeline_depth"))
                assert depth["count"] >= 4


# ---------------------------------------------------------------------------
# Per-tenant admission quotas
# ---------------------------------------------------------------------------


def _quota_config() -> ServiceConfig:
    # 1 byte/s refill with a burst that covers exactly one ~40 KiB
    # request: the first request is admitted, the second rejected with
    # an hours-long refill hint.
    return ServiceConfig(port=0, quota_rate=1.0, quota_burst=64 * 1024)


class TestQuotas:
    def test_second_request_is_rejected_with_refill_hint(self, rng):
        data = _walk(rng, 10_000)  # 40 KiB payload
        with ServerThread(_quota_config()) as srv:
            with ServiceClient(port=srv.port) as client:
                client.compress(data, "spspeed")  # burst covers this
                with pytest.raises(QuotaExceededError) as info:
                    client.compress(data, "spspeed")
                assert info.value.retry_after_ms > 0

    def test_buckets_are_per_tenant(self, rng):
        data = _walk(rng, 10_000)
        with ServerThread(_quota_config()) as srv:
            with ServiceClient(port=srv.port) as alice:
                alice.negotiate(tenant="alice")
                alice.compress(data, "spspeed")
                with pytest.raises(QuotaExceededError):
                    alice.compress(data, "spspeed")
                # A different tenant draws from its own fresh bucket.
                with ServiceClient(port=srv.port) as bob:
                    bob.negotiate(tenant="bob")
                    assert bob.compress(data, "spspeed") == repro.compress(
                        data, "spspeed"
                    )

    def test_streams_are_charged_at_admission(self, rng):
        data = _walk(rng, 10_000)
        with ServerThread(_quota_config()) as srv:
            with ServiceClient(port=srv.port) as client:
                client.compress_streamed(data, "spspeed")
                with pytest.raises(QuotaExceededError):
                    client.compress_streamed(data, "spspeed")
                assert client.broken is None  # rejection, not poisoning

    def test_rejections_are_counted_per_tenant(self, rng):
        data = _walk(rng, 10_000)
        with ServerThread(_quota_config()) as srv:
            with ServiceClient(port=srv.port) as client:
                client.negotiate(tenant="alice")
                client.compress(data, "spspeed")
                with pytest.raises(QuotaExceededError):
                    client.compress(data, "spspeed")
                counters = client.stats()["metrics"]["counters"]
                assert counters.get(
                    "quota_rejected_total{tenant=alice}", 0
                ) == 1

    def test_zero_rate_disables_enforcement(self, rng):
        data = _walk(rng, 2_000)
        with ServerThread(ServiceConfig(port=0)) as srv:
            with ServiceClient(port=srv.port) as client:
                for _ in range(5):
                    client.compress(data, "spspeed")


# ---------------------------------------------------------------------------
# The stream ledger: every must-reject invariant, in-process
# ---------------------------------------------------------------------------


def _begin_body(total_len: int, window_codec: str = "spspeed") -> bytes:
    return proto.encode_stream_begin(
        proto.STREAM_COMPRESS, total_len=total_len, codec=window_codec,
        dtype_code=fmt.DTYPE_BYTES, shape=None,
    )


class TestStreamLedger:
    def test_data_without_begin_is_rejected(self):
        ledger = proto.StreamLedger(window=1024)
        with pytest.raises(ProtocolError, match="no preceding STREAM-BEGIN"):
            ledger.on_data(9, 10)

    def test_overlapping_stream_ids_are_rejected(self):
        ledger = proto.StreamLedger(window=1024)
        ledger.on_begin(1, _begin_body(100))
        with pytest.raises(ProtocolError, match="overlapping stream ids"):
            ledger.on_begin(1, _begin_body(100))

    def test_window_violation_is_rejected(self):
        ledger = proto.StreamLedger(window=64)
        state = ledger.on_begin(1, _begin_body(1000))
        assert state.credit == 64  # initial credit = min(window, total)
        with pytest.raises(ProtocolError, match="window violation"):
            ledger.on_data(1, 65)

    def test_credit_never_exceeds_the_declared_total(self):
        # Overrunning total_len is impossible through granted credit:
        # the initial grant and every regrant are capped at the bytes
        # still owed, so an overrun always trips the window check first.
        ledger = proto.StreamLedger(window=1024)
        state = ledger.on_begin(1, _begin_body(10))
        assert state.credit == 10
        with pytest.raises(ProtocolError, match="window violation"):
            ledger.on_data(1, 11)

    def test_truncated_end_is_rejected(self):
        ledger = proto.StreamLedger(window=1024)
        ledger.on_begin(1, _begin_body(100))
        ledger.on_data(1, 40)
        with pytest.raises(ProtocolError, match="truncated stream"):
            ledger.on_end(1)

    def test_data_after_end_is_rejected(self):
        ledger = proto.StreamLedger(window=1024)
        ledger.on_begin(1, _begin_body(10))
        ledger.on_data(1, 10)
        ledger.on_end(1)
        with pytest.raises(ProtocolError, match="after STREAM-END"):
            ledger.on_data(1, 1)

    def test_stream_cap_is_enforced(self):
        ledger = proto.StreamLedger(window=1024, max_streams=2)
        ledger.on_begin(1, _begin_body(10))
        ledger.on_begin(2, _begin_body(10))
        with pytest.raises(ProtocolError, match="open streams"):
            ledger.on_begin(3, _begin_body(10))

    def test_consume_never_grants_beyond_the_window(self):
        ledger = proto.StreamLedger(window=64)
        ledger.on_begin(1, _begin_body(1000))
        state = ledger.get(1)
        total_granted = state.credit
        sent = 0
        while sent < 1000:
            n = min(state.credit, 1000 - sent)
            ledger.on_data(1, n)
            sent += n
            total_granted += ledger.consume(1, n)
            # Credit plus buffered bytes can never exceed the window.
            assert state.credit + state.buffered <= 64
        assert total_granted <= 1000  # never over-granted vs the payload

    def test_violations_carry_the_correlation_id(self):
        ledger = proto.StreamLedger(window=64)
        with pytest.raises(ProtocolError) as info:
            ledger.on_data(42, 1)
        assert info.value.request_id == 42
