"""Unit and live tests of the shard router.

The live tests run real :class:`~repro.service.server.ServerThread`
backends behind a :class:`~repro.service.router.RouterThread` and
assert the acceptance behaviors: byte-identical routing, circuit
breakers that open after consecutive failures and readmit a recovered
backend (observed through the metrics registry), failover around a
dead backend, and load shedding with a ``retry_after_ms`` hint.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro
from repro.errors import BusyError, ServiceError
from repro.service import (
    ResilientClient,
    RetryPolicy,
    RouterConfig,
    RouterThread,
    ServerThread,
    ServiceClient,
    ServiceConfig,
)
from repro.service.router import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    ShardRouter,
)


class _Clock:
    """A hand-stepped monotonic clock for breaker tests."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(3, 1.0, clock=_Clock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allows()

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(3, 1.0, clock=_Clock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED  # streak broken at 2

    def test_open_becomes_half_open_after_the_window(self):
        clock = _Clock()
        breaker = CircuitBreaker(1, 5.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        clock.now += 4.9
        assert breaker.state == BREAKER_OPEN
        clock.now += 0.2
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.allows()  # probes may flow

    def test_half_open_probe_success_closes(self):
        clock = _Clock()
        breaker = CircuitBreaker(1, 1.0, clock=clock)
        breaker.record_failure()
        clock.now += 1.1
        assert breaker.state == BREAKER_HALF_OPEN
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_probe_failure_rearms_the_window(self):
        clock = _Clock()
        breaker = CircuitBreaker(1, 1.0, clock=clock)
        breaker.record_failure()
        clock.now += 1.1
        assert breaker.state == BREAKER_HALF_OPEN
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        clock.now += 0.5
        assert breaker.state == BREAKER_OPEN  # full window, re-armed
        clock.now += 0.6
        assert breaker.state == BREAKER_HALF_OPEN

    def test_transitions_are_reported(self):
        clock = _Clock()
        seen: list[str] = []
        breaker = CircuitBreaker(1, 1.0, clock=clock,
                                 on_transition=seen.append)
        breaker.record_failure()
        clock.now += 1.1
        breaker.state  # noqa: B018 - lazy transition happens on read
        breaker.record_success()
        assert seen == [BREAKER_OPEN, BREAKER_HALF_OPEN, BREAKER_CLOSED]


class TestHashRing:
    def _router(self, n_backends: int) -> ShardRouter:
        backends = tuple(("127.0.0.1", 10_000 + i) for i in range(n_backends))
        return ShardRouter(RouterConfig(backends=backends))

    def test_requires_a_backend(self):
        with pytest.raises(ServiceError, match="at least one backend"):
            ShardRouter(RouterConfig(backends=()))

    def test_same_body_routes_to_same_backend(self):
        router = self._router(4)
        body = b"x" * 1000
        first = router._candidates(body)
        for _ in range(5):
            assert [b.label for b in router._candidates(body)] == [
                b.label for b in first
            ]

    def test_candidates_cover_every_backend_once(self):
        router = self._router(4)
        candidates = router._candidates(b"some request body")
        assert len(candidates) == 4
        assert len({b.label for b in candidates}) == 4

    def test_keyspace_spreads_across_backends(self):
        router = self._router(4)
        first = {
            router._candidates(bytes([i, i >> 4]) * 50)[0].label
            for i in range(64)
        }
        assert len(first) == 4  # every backend owns some keys

    def test_removing_a_backend_only_remaps_its_keys(self):
        big = self._router(4)
        small = self._router(3)  # same first three backend addresses
        moved = 0
        total = 128
        for i in range(total):
            body = bytes([i]) * 32
            before = big._candidates(body)[0].label
            after = small._candidates(body)[0].label
            if before != after:
                moved += 1
                # Keys only move off the removed backend, never between
                # the survivors.
                assert before == "127.0.0.1:10003"
        assert 0 < moved < total // 2


def _walk(rng, n, dtype=np.float32):
    return np.cumsum(rng.normal(scale=0.01, size=n)).astype(dtype)


def _router_config(*ports: int, **overrides) -> RouterConfig:
    return RouterConfig(
        port=0,
        backends=tuple(("127.0.0.1", p) for p in ports),
        health_interval=0.1,
        failure_threshold=2,
        open_seconds=0.4,
        **overrides,
    )


class TestRoutingLive:
    def test_routed_requests_are_byte_identical(self, rng):
        data = _walk(rng, 8_000)
        with ServerThread(ServiceConfig(port=0)) as a, \
                ServerThread(ServiceConfig(port=0)) as b:
            with RouterThread(_router_config(a.port, b.port)) as rt:
                with ServiceClient(port=rt.port) as client:
                    blob = client.compress(data, "spspeed")
                    assert blob == repro.compress(data, "spspeed")
                    assert np.array_equal(client.decompress(blob), data)
                    assert client.ping()

    def test_work_spreads_across_backends(self, rng):
        with ServerThread(ServiceConfig(port=0)) as a, \
                ServerThread(ServiceConfig(port=0)) as b:
            with RouterThread(_router_config(a.port, b.port)) as rt:
                with ServiceClient(port=rt.port) as client:
                    for i in range(24):
                        client.compress(_walk(rng, 500 + 37 * i), "spspeed")
                    counters = client.stats()["metrics"]["counters"]
                served = {
                    key for key, count in counters.items()
                    if key.startswith("router_requests_total")
                    and "outcome=ok" in key and count > 0
                }
                assert len(served) == 2  # both backends did codec work

    def test_dead_backend_fails_over_and_breaker_opens(self, rng):
        data = _walk(rng, 4_000)
        expected = repro.compress(data, "spspeed")
        with ServerThread(ServiceConfig(port=0)) as a, \
                ServerThread(ServiceConfig(port=0)) as b:
            dead = a.port
            with RouterThread(_router_config(a.port, b.port)) as rt:
                a.stop(drain=False)
                with ServiceClient(port=rt.port) as client:
                    # Every request succeeds despite the dead backend.
                    for _ in range(8):
                        assert client.compress(data, "spspeed") == expected
                    # The health loop needs failure_threshold failed
                    # probes before the breaker opens; poll for it.
                    deadline = time.monotonic() + 10
                    while time.monotonic() < deadline:
                        stats = client.stats()
                        breakers = {
                            row["address"]: row["breaker"]
                            for row in stats["router"]["backends"]
                        }
                        if breakers[f"127.0.0.1:{dead}"] != BREAKER_CLOSED:
                            break
                        time.sleep(0.05)
                assert breakers[f"127.0.0.1:{dead}"] in (
                    BREAKER_OPEN, BREAKER_HALF_OPEN,
                )
                counters = stats["metrics"]["counters"]
                opened = counters.get(
                    "breaker_transitions_total"
                    f"{{backend=127.0.0.1:{dead},to=open}}", 0,
                )
                assert opened >= 1
                gauges = stats["metrics"]["gauges"]
                assert gauges[f"backend_healthy{{backend=127.0.0.1:{dead}}}"] == 0

    def test_recovered_backend_is_readmitted(self, rng):
        """OPEN -> HALF_OPEN -> CLOSED, observed through the registry."""
        with ServerThread(ServiceConfig(port=0)) as a:
            anchor_port = a.port
            with ServerThread(ServiceConfig(port=0)) as flaky:
                flaky_port = flaky.port
                with RouterThread(
                    _router_config(anchor_port, flaky_port)
                ) as rt:
                    flaky.stop(drain=False)
                    with ServiceClient(port=rt.port) as client:
                        deadline = time.monotonic() + 10
                        while time.monotonic() < deadline:
                            row = next(
                                r for r in client.stats()["router"]["backends"]
                                if r["address"] == f"127.0.0.1:{flaky_port}"
                            )
                            if row["breaker"] == BREAKER_OPEN:
                                break
                            time.sleep(0.05)
                        assert row["breaker"] == BREAKER_OPEN

                        # Resurrect a backend on the same port: the
                        # health loop must probe (half-open) and close
                        # the breaker again.
                        with ServerThread(
                            ServiceConfig(port=flaky_port)
                        ):
                            deadline = time.monotonic() + 10
                            while time.monotonic() < deadline:
                                row = next(
                                    r for r in
                                    client.stats()["router"]["backends"]
                                    if r["address"]
                                    == f"127.0.0.1:{flaky_port}"
                                )
                                if row["breaker"] == BREAKER_CLOSED:
                                    break
                                time.sleep(0.05)
                            assert row["breaker"] == BREAKER_CLOSED
                            counters = client.stats()["metrics"]["counters"]
                            label = f"backend=127.0.0.1:{flaky_port}"
                            assert counters[
                                f"breaker_transitions_total{{{label},"
                                f"to=half-open}}"
                            ] >= 1
                            assert counters[
                                f"breaker_transitions_total{{{label},"
                                f"to=closed}}"
                            ] >= 1

    def test_all_backends_down_surfaces_busy_not_error(self, rng):
        data = _walk(rng, 1_000)
        with ServerThread(ServiceConfig(port=0)) as a:
            with RouterThread(_router_config(a.port)) as rt:
                a.stop(drain=False)
                with ServiceClient(port=rt.port) as client:
                    with pytest.raises(BusyError):
                        client.compress(data, "spspeed")

    def test_load_shedding_answers_busy_with_hint(self, rng):
        data = _walk(rng, 1_000)
        with ServerThread(ServiceConfig(port=0)) as a:
            config = _router_config(a.port, inflight_high_water=0,
                                    busy_retry_ms=321)
            with RouterThread(config) as rt:
                with ServiceClient(port=rt.port) as client:
                    with pytest.raises(BusyError) as info:
                        client.compress(data, "spspeed")
                    assert info.value.retry_after_ms == 321
                    counters = client.stats()["metrics"]["counters"]
                    assert counters["sheds_total"] >= 1

    def test_resilient_client_rides_through_shedding(self, rng):
        data = _walk(rng, 1_000)
        with ServerThread(ServiceConfig(port=0)) as a:
            # High water of 1 forces intermittent sheds under pipelining;
            # the retrying client must absorb all of them.
            with RouterThread(
                _router_config(a.port, inflight_high_water=1,
                               busy_retry_ms=5)
            ) as rt:
                with ResilientClient(
                    f"127.0.0.1:{rt.port}",
                    policy=RetryPolicy(attempts=10, base_ms=2.0),
                    seed=0,
                ) as client:
                    expected = repro.compress(data, "spspeed")
                    for _ in range(12):
                        assert client.compress(data, "spspeed") == expected

    def test_router_stats_shape(self, rng):
        with ServerThread(ServiceConfig(port=0)) as a:
            with RouterThread(_router_config(a.port)) as rt:
                with ServiceClient(port=rt.port) as client:
                    client.compress(_walk(rng, 500), "spspeed")
                    stats = client.stats()
        router = stats["router"]
        assert router["draining"] is False
        assert router["inflight"] == 0
        assert router["failure_threshold"] == 2
        (backend,) = router["backends"]
        assert backend["address"] == f"127.0.0.1:{a.port}"
        assert backend["breaker"] == BREAKER_CLOSED
        assert "metrics" in stats

    def test_stopped_router_refuses_connections(self):
        with ServerThread(ServiceConfig(port=0)) as a:
            rt = RouterThread(_router_config(a.port))
            with rt:
                port = rt.port
                with ServiceClient(port=port) as client:
                    assert client.ping()
            # After stop, the listener is gone entirely.
            with pytest.raises(ServiceError, match="cannot connect"):
                ServiceClient(port=port, timeout=2.0)


class TestRoutedStreams:
    """Protocol-v2 streams relayed through the router.

    The router buffers a stream's uplink frames only while a replay is
    still possible; failover is allowed exclusively for fully-buffered,
    not-yet-answered streams, so a retried stream is byte-identical to
    the first attempt and a half-answered one fails loudly instead of
    silently duplicating work.
    """

    def test_streamed_round_trip_through_the_router(self, rng):
        data = _walk(rng, 60_000)
        expected = repro.compress(data, "spspeed", fcm="restart")
        with ServerThread(ServiceConfig(port=0)) as a, \
                ServerThread(ServiceConfig(port=0)) as b:
            with RouterThread(_router_config(a.port, b.port)) as rt:
                with ServiceClient(port=rt.port) as client:
                    assert client.supports("stream")  # negotiated end-to-end
                    blob = client.compress_streamed(data, "spspeed")
                    assert blob == expected
                    assert np.array_equal(client.decompress_streamed(blob),
                                          data)

    def test_streams_and_unary_interleave_through_the_router(self, rng):
        data = _walk(rng, 10_000)
        with ServerThread(ServiceConfig(port=0)) as a, \
                ServerThread(ServiceConfig(port=0)) as b:
            with RouterThread(_router_config(a.port, b.port)) as rt:
                with ServiceClient(port=rt.port) as client:
                    blob = client.compress_streamed(data, "spspeed")
                    assert np.array_equal(client.decompress(blob), data)
                    assert client.ping()
                    blob2 = client.compress(data, "spspeed")
                    assert np.array_equal(
                        client.decompress_streamed(blob2), data
                    )

    def test_stream_fails_over_around_a_dead_backend(self, rng):
        data = _walk(rng, 6_000)
        expected = repro.compress(data, "spspeed", fcm="restart")
        with ServerThread(ServiceConfig(port=0)) as a, \
                ServerThread(ServiceConfig(port=0)) as b:
            with RouterThread(_router_config(a.port, b.port)) as rt:
                a.stop(drain=False)
                with ServiceClient(port=rt.port) as client:
                    # Several distinct payloads so the ring maps at
                    # least one of them to the dead backend first.
                    for i in range(6):
                        payload = data + np.float32(i)
                        blob = client.compress_streamed(payload, "spspeed")
                        assert blob == repro.compress(
                            payload, "spspeed", fcm="restart"
                        )
                    counters = client.stats()["metrics"]["counters"]
                failovers = sum(
                    count for key, count in counters.items()
                    if key.startswith("failovers_total") and "stream" in key
                )
                assert failovers >= 1
                assert expected  # the non-failover path stayed correct
