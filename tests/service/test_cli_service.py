"""CLI surface of the service: ``fprz remote``, ``fprz stats``, frame fuzz."""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro
from repro.cli import main
from repro.service import ServerThread, ServiceConfig


@pytest.fixture(scope="module")
def server():
    with ServerThread(ServiceConfig(port=0)) as srv:
        yield srv


class TestRemote:
    def test_remote_round_trip_is_byte_identical_to_local(
        self, server, tmp_path, rng, capsys
    ):
        data = np.cumsum(rng.normal(scale=0.01, size=20_000)).astype(np.float32)
        src = tmp_path / "input.f32"
        src.write_bytes(data.tobytes())
        remote_blob = tmp_path / "remote.fprz"
        local_blob = tmp_path / "local.fprz"
        restored = tmp_path / "restored.f32"

        assert main(["remote", "compress", str(src), str(remote_blob),
                     "--port", str(server.port), "--dtype", "float32"]) == 0
        assert main(["compress", str(src), str(local_blob),
                     "--dtype", "float32"]) == 0
        # The acceptance criterion: the remote container is the local one.
        assert remote_blob.read_bytes() == local_blob.read_bytes()

        assert main(["remote", "decompress", str(remote_blob), str(restored),
                     "--port", str(server.port)]) == 0
        assert restored.read_bytes() == data.tobytes()
        out = capsys.readouterr().out
        assert f"via 127.0.0.1:{server.port}" in out

    def test_remote_compress_with_explicit_codec(self, server, tmp_path, rng):
        data = np.cumsum(rng.normal(size=4_000)).astype(np.float64)
        src = tmp_path / "input.d64"
        src.write_bytes(data.tobytes())
        blob = tmp_path / "out.fprz"
        assert main(["remote", "compress", str(src), str(blob),
                     "--port", str(server.port),
                     "--dtype", "float64", "--codec", "dpspeed"]) == 0
        assert blob.read_bytes() == repro.compress(data, "dpspeed")

    def test_remote_raw_bytes_requires_codec(self, server, tmp_path, capsys):
        src = tmp_path / "blob.bin"
        src.write_bytes(b"x" * 100)
        rc = main(["remote", "compress", str(src), str(tmp_path / "out"),
                   "--port", str(server.port), "--dtype", "bytes"])
        assert rc == 1
        assert "codec" in capsys.readouterr().err


class TestStats:
    def test_stats_json_mode(self, server, capsys):
        assert main(["stats", "--port", str(server.port), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert "server" in stats and "metrics" in stats

    def test_stats_table_mode(self, server, capsys):
        assert main(["stats", "--port", str(server.port)]) == 0
        out = capsys.readouterr().out
        assert "uptime:" in out
        assert "queue depth:" in out

    def test_stats_against_dead_server_fails_cleanly(self, capsys):
        rc = main(["stats", "--port", "1"])  # nothing listens on port 1
        assert rc == 1
        assert "error" in capsys.readouterr().err


class TestFrameFuzzCLI:
    def test_fuzz_frames_runs_clean(self, capsys):
        assert main(["fuzz", "--frames", "--iterations", "120",
                     "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "failures=0" in out
        assert "rejected" in out
