"""Tests of the seeded chaos proxy, and the chaos acceptance scenario.

The acceptance case at the bottom is the PR's headline: two backends
behind the shard router, one of them behind a chaos proxy that kills it
mid-run on a seeded schedule, and a retrying client pushing a batch of
mixed compress/decompress requests — all of which must succeed with
byte-identical results to the in-process API.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.errors import ReproError, ServiceError
from repro.service import (
    ChaosConfig,
    ChaosProxy,
    ChaosProxyThread,
    ResilientClient,
    RetryPolicy,
    RouterConfig,
    RouterThread,
    ServerThread,
    ServiceClient,
    ServiceConfig,
)
from repro.service.faults import (
    _CORRUPTIBLE_OFFSETS,
    _draw,
    schedule_preview,
    stream_schedule_preview,
)


class TestChaosConfig:
    def test_rates_must_not_exceed_one(self):
        with pytest.raises(ServiceError, match="sum to at most"):
            ChaosConfig(reset_rate=0.6, corrupt_rate=0.6)

    def test_rates_must_be_non_negative(self):
        with pytest.raises(ServiceError):
            ChaosConfig(delay_rate=-0.1)

    def test_direction_is_validated(self):
        with pytest.raises(ServiceError, match="request|response|both"):
            ChaosConfig(direction="sideways")


class TestSchedule:
    def test_schedule_is_deterministic_in_seed(self):
        config = ChaosConfig(seed=42, reset_rate=0.2, corrupt_rate=0.2,
                             delay_rate=0.2)
        assert schedule_preview(config, 64) == schedule_preview(config, 64)

    def test_different_seeds_differ(self):
        a = ChaosConfig(seed=1, reset_rate=0.3, truncate_rate=0.3)
        b = ChaosConfig(seed=2, reset_rate=0.3, truncate_rate=0.3)
        assert schedule_preview(a, 64) != schedule_preview(b, 64)

    def test_zero_rates_always_pass(self):
        config = ChaosConfig(seed=0)
        assert all(a == "pass" for _, a in schedule_preview(config, 100))

    def test_rates_shape_the_mix(self):
        config = ChaosConfig(seed=9, reset_rate=0.5, blackhole_rate=0.25)
        actions = [a for _, a in schedule_preview(config, 400)]
        assert 120 < actions.count("reset") < 280
        assert 50 < actions.count("blackhole") < 150
        assert actions.count("truncate") == 0

    def test_decision_matches_the_replay_convention(self):
        # The contract documented in the module: the decision for event
        # i derives from default_rng([seed, i]) and nothing else.
        config = ChaosConfig(seed=7, delay_rate=1.0)
        action, rng = _draw(config, 12)
        assert action == "delay"
        expected = np.random.default_rng([7, 12])
        expected.random()  # the fault draw
        assert rng.uniform(*config.delay_ms) == pytest.approx(
            float(expected.uniform(*config.delay_ms))
        )

    def test_corruption_never_targets_the_opcode_byte(self):
        # Offset 5 (opcode) XORed can yield a *different valid request*,
        # which no layer can detect; everything else is validated.
        assert 5 not in _CORRUPTIBLE_OFFSETS
        assert all(0 <= off < 8 for off in _CORRUPTIBLE_OFFSETS)


def _walk(rng, n, dtype=np.float32):
    return np.cumsum(rng.normal(scale=0.01, size=n)).astype(dtype)


def _proxy_for(port: int, **overrides) -> ChaosProxyThread:
    return ChaosProxyThread(ChaosConfig(
        upstream=("127.0.0.1", port), **overrides,
    ))


class TestProxyPassThrough:
    def test_transparent_at_zero_rates(self, rng):
        data = _walk(rng, 6_000)
        with ServerThread(ServiceConfig(port=0)) as srv:
            with _proxy_for(srv.port) as proxy:
                with ServiceClient(port=proxy.port) as client:
                    blob = client.compress(data, "spspeed")
                    assert blob == repro.compress(data, "spspeed")
                    assert np.array_equal(client.decompress(blob), data)
                assert proxy.proxy.frames_observed >= 4

    def test_faults_observed_and_counted(self, rng):
        data = _walk(rng, 2_000)
        with ServerThread(ServiceConfig(port=0)) as srv:
            with _proxy_for(srv.port, seed=11, reset_rate=0.15,
                            corrupt_rate=0.15) as proxy:
                with ResilientClient(
                    f"127.0.0.1:{proxy.port}",
                    policy=RetryPolicy(attempts=10, base_ms=2.0),
                    seed=1,
                ) as client:
                    expected = repro.compress(data, "spspeed")
                    for _ in range(40):
                        assert client.compress(data, "spspeed") == expected
                counters = proxy.proxy.registry.snapshot()["counters"]
                injected = sum(
                    count for key, count in counters.items()
                    if key.startswith("chaos_injections_total")
                )
                assert injected >= 1  # the schedule actually fired

    def test_kill_aborts_and_revive_restores(self, rng):
        data = _walk(rng, 1_000)
        with ServerThread(ServiceConfig(port=0)) as srv:
            with _proxy_for(srv.port) as proxy:
                with ServiceClient(port=proxy.port) as client:
                    assert client.ping()
                    proxy.kill()
                    with pytest.raises(ReproError) as info:
                        client.ping()
                    assert getattr(info.value, "transport", False)
                # New connections die immediately while killed.
                with pytest.raises(ReproError):
                    ServiceClient(port=proxy.port, timeout=2.0).ping()
                proxy.revive()
                with ServiceClient(port=proxy.port) as client:
                    blob = client.compress(data, "spspeed")
                    assert blob == repro.compress(data, "spspeed")

    def test_blackhole_hangs_until_client_timeout(self, rng):
        with ServerThread(ServiceConfig(port=0)) as srv:
            with _proxy_for(srv.port, seed=0, blackhole_rate=1.0) as proxy:
                with ServiceClient(port=proxy.port, timeout=0.5) as client:
                    with pytest.raises(ServiceError, match="timed out"):
                        client.ping()
                    # The connection is poisoned, not silently reusable.
                    assert client.broken is not None


class TestChaosAcceptance:
    def test_batch_survives_backend_killed_mid_run(self, rng):
        """≥100 mixed requests, one backend dying mid-run: zero failures.

        Topology: client -> router -> [chaos-proxy -> backend A,
        backend B].  The proxy kills the path to A after a seeded number
        of frames; the router's breaker ejects it and everything fails
        over to B.  Every result must be byte-identical to the
        in-process API.
        """
        datasets = [
            _walk(rng, 1_000 + 400 * i,
                  np.float32 if i % 2 == 0 else np.float64)
            for i in range(6)
        ]
        codecs = ["spspeed", "dpspeed", "spratio", "dpratio", "spspeed",
                  "dpratio"]
        expected = [
            repro.compress(d, c) for d, c in zip(datasets, codecs)
        ]
        with ServerThread(ServiceConfig(port=0)) as a, \
                ServerThread(ServiceConfig(port=0)) as b:
            with _proxy_for(a.port, seed=20250808,
                            kill_after_frames=40) as proxy:
                config = RouterConfig(
                    port=0,
                    backends=(
                        ("127.0.0.1", proxy.port),
                        ("127.0.0.1", b.port),
                    ),
                    health_interval=0.1,
                    failure_threshold=2,
                    open_seconds=0.5,
                    backend_timeout=5.0,
                )
                with RouterThread(config) as rt:
                    with ResilientClient(
                        f"127.0.0.1:{rt.port}",
                        policy=RetryPolicy(attempts=10, base_ms=5.0,
                                           cap_ms=200.0),
                        timeout=10.0,
                        seed=99,
                    ) as client:
                        completed = 0
                        for i in range(110):
                            j = i % len(datasets)
                            if i % 2 == 0:
                                blob = client.compress(datasets[j], codecs[j])
                                assert blob == expected[j]
                            else:
                                out = client.decompress(expected[j])
                                assert np.array_equal(out, datasets[j])
                            completed += 1
                        assert completed == 110
                # The kill actually happened mid-run (not before, not
                # never): the proxy saw its quota of frames and died.
                assert proxy.proxy.frames_observed >= 40
                counters = proxy.proxy.registry.snapshot()["counters"]
                assert counters.get("chaos_kills_total", 0) >= 1


class TestStreamAwareness:
    """The proxy's stream-aware satellite: per-frame schedule preview
    and the live per-stream event log."""

    def test_preview_walks_the_canonical_ladder(self):
        rows = stream_schedule_preview(
            ChaosConfig(seed=0), streams=1, data_frames=2
        )
        kinds = [kind for _, _, kind, _, _ in rows]
        assert kinds == [
            "stream-begin", "stream-ack",
            "stream-data", "stream-ack",
            "stream-data", "stream-ack",
            "stream-end",
            "stream-result", "stream-result",
            "stream-done",
        ]
        # Event indices advance monotonically across streams.
        indices = [index for index, *_ in rows]
        assert indices == list(range(len(rows)))

    def test_preview_is_deterministic_in_seed(self):
        config = ChaosConfig(seed=42, delay_rate=0.3, reset_rate=0.2)
        assert stream_schedule_preview(
            config, streams=3, data_frames=4
        ) == stream_schedule_preview(config, streams=3, data_frames=4)

    def test_preview_matches_the_frame_schedule(self):
        # The per-stream preview and the flat schedule draw from the
        # same (seed, event_index) convention: actions must agree.
        config = ChaosConfig(seed=9, delay_rate=0.5, corrupt_rate=0.3)
        flat = dict(schedule_preview(config, 40))
        for index, _, _, _, action in stream_schedule_preview(
            config, streams=2, data_frames=3
        ):
            assert action == flat[index]

    def test_unfaulted_direction_passes_but_still_counts(self):
        config = ChaosConfig(seed=9, reset_rate=1.0, direction="request")
        rows = stream_schedule_preview(config, streams=1, data_frames=2)
        for _, _, _, direction, action in rows:
            if direction == "response":
                assert action == "pass"
            else:
                assert action == "reset"
        # The counter advanced through the passed frames too.
        assert [i for i, *_ in rows] == list(range(len(rows)))

    def test_live_stream_events_are_recorded(self, rng):
        data = _walk(rng, 40_000)
        with ServerThread(ServiceConfig(port=0)) as srv:
            with _proxy_for(srv.port) as proxy:
                with ServiceClient(port=proxy.port) as client:
                    blob = client.compress_streamed(data, "spspeed")
                    assert blob == repro.compress(data, "spspeed",
                                                  fcm="restart")
                events = proxy.proxy.stream_events
                kinds = {kind for _, _, kind, _, _ in events}
                assert kinds >= {
                    "stream-begin", "stream-ack", "stream-data",
                    "stream-end", "stream-result", "stream-done",
                }
                # Every frame of the stream shares one correlation id.
                assert len({rid for _, _, _, rid, _ in events}) == 1
                # Requests and responses are both observed.
                assert {d for _, d, _, _, _ in events} == {
                    "request", "response",
                }

    def test_unary_traffic_does_not_pollute_the_stream_log(self, rng):
        data = _walk(rng, 1_000)
        with ServerThread(ServiceConfig(port=0)) as srv:
            with _proxy_for(srv.port) as proxy:
                with ServiceClient(port=proxy.port) as client:
                    client.compress(data, "spspeed")
                    assert client.ping()
                assert proxy.proxy.stream_events == []
