"""End-to-end tests of the compression service over real sockets.

Every test runs a :class:`~repro.service.server.ServerThread` on an
ephemeral port and talks to it with the blocking
:class:`~repro.service.client.ServiceClient` — the same harness the
benchmark trajectory and the CI smoke job use.  The acceptance
invariants: remote compression is byte-identical to the in-process API,
hostile frames and overload fail typed (never by hanging or crashing
the server), and a graceful stop drains in-flight work.
"""

from __future__ import annotations

import socket
import struct
import threading
import time

import numpy as np
import pytest

import repro
from repro.core.codecs import CODECS
from repro.errors import (
    BusyError,
    DeadlineExceededError,
    FormatError,
    ProtocolError,
    ServiceError,
)
from repro.service import ServerThread, ServiceClient, ServiceConfig
from repro.service import protocol as wire


def _config(**overrides) -> ServiceConfig:
    return ServiceConfig(port=0, **overrides)


def _walk(rng, n, dtype):
    return np.cumsum(rng.normal(scale=0.01, size=n)).astype(dtype)


@pytest.fixture(scope="module")
def server():
    with ServerThread(ServiceConfig(port=0)) as srv:
        yield srv


@pytest.fixture
def client(server):
    with ServiceClient(port=server.port) as c:
        yield c


class TestByteIdentity:
    """The payload-equals-container guarantee, per codec."""

    @pytest.mark.parametrize("name", sorted(CODECS))
    def test_remote_compress_matches_api(self, client, rng, name):
        dtype = np.float32 if name.startswith("sp") else np.float64
        data = _walk(rng, 20_000, dtype)
        remote = client.compress(data, codec=name)
        assert remote == repro.compress(data, name)
        restored = client.decompress(remote)
        assert restored.dtype == data.dtype
        assert np.array_equal(restored, data)

    def test_default_codec_selection_matches_api(self, client, rng):
        data = _walk(rng, 8_000, np.float32)
        assert client.compress(data) == repro.compress(data)

    def test_shape_survives_the_wire(self, client, rng):
        data = _walk(rng, 6_000, np.float64).reshape(20, 30, 10)
        restored = client.decompress(client.compress(data))
        assert restored.shape == (20, 30, 10)
        assert np.array_equal(restored, data)

    def test_raw_bytes_round_trip(self, client, rng):
        payload = rng.bytes(10_000)
        blob = client.compress(payload, codec="spspeed")
        assert blob == repro.compress(payload, "spspeed")
        assert client.decompress(blob) == payload

    def test_remote_blob_decodes_locally_and_vice_versa(self, client, rng):
        data = _walk(rng, 9_000, np.float32)
        assert np.array_equal(repro.decompress(client.compress(data)), data)
        assert np.array_equal(client.decompress(repro.compress(data)), data)


class TestConcurrentClients:
    def test_simultaneous_clients_all_byte_identical(self, server):
        n_clients = 8
        errors: list[BaseException] = []

        def one(i: int) -> None:
            try:
                rng = np.random.default_rng(1000 + i)
                name = sorted(CODECS)[i % len(CODECS)]
                dtype = np.float32 if name.startswith("sp") else np.float64
                data = _walk(rng, 5_000 + 700 * i, dtype)
                with ServiceClient(port=server.port) as c:
                    for _ in range(3):
                        blob = c.compress(data, codec=name)
                        assert blob == repro.compress(data, name)
                        assert np.array_equal(c.decompress(blob), data)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=one, args=(i,)) for i in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors

    def test_pipelined_requests_on_one_connection(self, client, rng):
        # Interleave opcodes on a single connection: ids stay matched.
        data = _walk(rng, 4_000, np.float32)
        blob = client.compress(data)
        assert client.ping()
        assert client.inspect(blob)["codec"] == "spratio"
        assert np.array_equal(client.decompress(blob), data)


class TestTypedFailures:
    def test_invalid_container_surfaces_format_error(self, client):
        with pytest.raises(FormatError, match="server:"):
            client.decompress(b"this is not a container" * 10)

    def test_unknown_codec_is_typed(self, client, rng):
        from repro.errors import UnknownCodecError

        with pytest.raises(UnknownCodecError):
            client.compress(_walk(rng, 100, np.float32), codec="zpaq")

    def test_garbage_header_answered_typed_then_closed(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as s:
            s.sendall(b"GET / HTTP/1.1\r\n\r\n12")  # 20 bytes, wrong magic
            header = _recv_exactly(s, wire.HEADER_SIZE)
            opcode, _, body_len = wire.parse_header(header)
            assert opcode == wire.OP_ERROR
            code, message = wire.decode_error_body(_recv_exactly(s, body_len))
            assert code == wire.ERR_PROTOCOL
            assert "magic" in message
            assert s.recv(1) == b""  # untrusted stream: connection dropped

    def test_allocation_bomb_declaration_rejected_at_header(self, server):
        bomb = struct.pack(
            "<4sBBBBQI", wire.MAGIC, wire.VERSION, wire.OP_COMPRESS,
            0, 0, 42, 0xFFFFFFFF,
        )
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as s:
            s.sendall(bomb)  # no body ever sent; server must not wait for one
            header = _recv_exactly(s, wire.HEADER_SIZE)
            opcode, request_id, body_len = wire.parse_header(header)
            assert opcode == wire.OP_ERROR
            assert request_id == 42  # id was still parseable, so it is echoed
            code, message = wire.decode_error_body(_recv_exactly(s, body_len))
            assert code == wire.ERR_PROTOCOL
            assert "frame limit" in message

    def test_response_opcode_from_client_is_rejected(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as s:
            s.sendall(wire.encode_frame(wire.OP_RESULT, 3))
            header = _recv_exactly(s, wire.HEADER_SIZE)
            opcode, _, body_len = wire.parse_header(header)
            assert opcode == wire.OP_ERROR
            code, message = wire.decode_error_body(_recv_exactly(s, body_len))
            assert code == wire.ERR_PROTOCOL
            assert "response opcode" in message

    def test_oversized_request_rejected_client_side(self, server):
        with ServiceClient(port=server.port, max_frame=1024) as c:
            with pytest.raises(ProtocolError, match="frame limit"):
                c.compress(np.zeros(4096, dtype=np.float32))


class TestDeadlines:
    def test_slow_request_cancelled_without_poisoning_the_connection(self, rng):
        config = _config(request_timeout=0.2, job_delay=1.0, job_threads=2)
        with ServerThread(config) as srv:
            with ServiceClient(port=srv.port) as c:
                data = _walk(rng, 2_000, np.float32)
                with pytest.raises(DeadlineExceededError, match="deadline"):
                    c.compress(data)
                # Same connection, next request: still serviceable.
                assert c.ping()
                stats = c.stats()
                outcomes = stats["metrics"]["counters"]
                assert outcomes[
                    "requests_total{codec=-,opcode=compress,outcome=deadline}"
                ] == 1


class TestBackpressure:
    def test_queue_overflow_surfaces_busy(self, rng):
        config = _config(
            queue_high_water=1, job_threads=1, job_delay=0.8,
            request_timeout=30.0,
        )
        data = _walk(rng, 1_000, np.float32)
        with ServerThread(config) as srv:
            results: dict[str, object] = {}

            def slow():
                with ServiceClient(port=srv.port) as c:
                    results["blob"] = c.compress(data)

            worker = threading.Thread(target=slow)
            worker.start()
            time.sleep(0.3)  # the slow job is admitted and occupies the queue
            with ServiceClient(port=srv.port) as c:
                with pytest.raises(BusyError, match="high-water"):
                    c.compress(data)
            worker.join()
            # The admitted job was unaffected by the rejection.
            assert results["blob"] == repro.compress(data)
            with ServiceClient(port=srv.port) as c:
                busy = c.stats()["metrics"]["counters"]
                assert busy["busy_rejections_total{reason=queue}"] >= 1

    def test_connection_byte_cap_surfaces_busy(self, rng):
        config = _config(conn_bytes_in_flight=1024)
        with ServerThread(config) as srv:
            with ServiceClient(port=srv.port) as c:
                with pytest.raises(BusyError):
                    c.compress(np.zeros(4_096, dtype=np.float32))


class TestBusyHint:
    def test_busy_carries_retry_after_ms(self, rng):
        config = _config(
            queue_high_water=1, job_threads=1, job_delay=0.8,
            busy_retry_ms=123,
        )
        data = _walk(rng, 1_000, np.float32)
        with ServerThread(config) as srv:
            worker = threading.Thread(
                target=lambda: ServiceClient(port=srv.port).compress(data)
            )
            worker.start()
            time.sleep(0.3)
            with ServiceClient(port=srv.port) as c:
                with pytest.raises(BusyError) as info:
                    c.compress(data)
                assert info.value.retry_after_ms == 123
            worker.join()

    def test_hint_can_be_disabled(self, rng):
        # busy_retry_ms=0 sends the legacy empty BUSY body.
        config = _config(conn_bytes_in_flight=1024, busy_retry_ms=0)
        with ServerThread(config) as srv:
            with ServiceClient(port=srv.port) as c:
                with pytest.raises(BusyError) as info:
                    c.compress(np.zeros(4_096, dtype=np.float32))
                assert info.value.retry_after_ms is None


class TestBrokenConnections:
    """After a mid-frame failure the client connection must not be
    silently reusable — the stream position cannot be trusted."""

    def test_timeout_mid_frame_poisons_the_connection(self, rng):
        config = _config(job_delay=1.0)
        data = _walk(rng, 1_000, np.float32)
        with ServerThread(config) as srv:
            with ServiceClient(port=srv.port, timeout=0.2) as c:
                with pytest.raises(ServiceError, match="timed out"):
                    c.compress(data)
                assert c.broken is not None
                # Reuse fails fast and typed, before any byte is sent.
                from repro.errors import ConnectionBrokenError

                with pytest.raises(ConnectionBrokenError, match="desync"):
                    c.ping()

    def test_poisoned_errors_carry_transport_markers(self, rng):
        config = _config(job_delay=1.0)
        data = _walk(rng, 1_000, np.float32)
        with ServerThread(config) as srv:
            with ServiceClient(port=srv.port, timeout=0.2) as c:
                with pytest.raises(ServiceError) as info:
                    c.compress(data)
                assert info.value.transport is True
                assert info.value.request_sent is True  # ambiguous: sent

    def test_rejected_oversize_request_does_not_poison(self, rng):
        with ServerThread(_config()) as srv:
            with ServiceClient(port=srv.port, max_frame=1024) as c:
                with pytest.raises(ProtocolError) as info:
                    c.compress(np.zeros(4_096, dtype=np.float32))
                # Rejected before the wire: provably unsent, still usable.
                assert info.value.request_sent is False
                assert c.broken is None
                assert c.ping()


class TestGracefulDrain:
    def test_client_disconnect_mid_request_does_not_wedge_drain(self, rng):
        """A client that vanishes mid-request must not stall the drain:
        its job completes into the void and stop() still returns."""
        config = _config(job_delay=0.6, drain_timeout=10.0)
        data = _walk(rng, 2_000, np.float32)
        with ServerThread(config) as srv:
            abandoner = ServiceClient(port=srv.port)
            from repro.core import container as fmt

            frame = wire.encode_frame(
                wire.OP_COMPRESS, 1,
                wire.encode_compress_body(data.tobytes(), codec="spspeed",
                                          dtype_code=fmt.DTYPE_F32),
            )
            abandoner._sock.sendall(frame)
            time.sleep(0.2)  # job admitted and running
            abandoner.close()  # walk away mid-request
            started = time.monotonic()
            srv.stop(drain=True)
            assert time.monotonic() - started < 8.0
            # The drain completed despite the dead client: the job's
            # reply was discarded, not raised.

    def test_stop_waits_for_inflight_work(self, rng):
        config = _config(job_delay=0.8, drain_timeout=30.0)
        data = _walk(rng, 2_000, np.float32)
        with ServerThread(config) as srv:
            port = srv.port
            results: dict[str, object] = {}

            def inflight():
                with ServiceClient(port=port) as c:
                    results["blob"] = c.compress(data)

            worker = threading.Thread(target=inflight)
            worker.start()
            time.sleep(0.3)  # request admitted, job sleeping in the pool
            srv.stop(drain=True)
            worker.join(timeout=30)
            assert not worker.is_alive()
            # The in-flight request completed, correctly, during the drain.
            assert results["blob"] == repro.compress(data)
            # The listener is gone: new connections are refused.
            with pytest.raises(ServiceError, match="cannot connect"):
                ServiceClient(port=port, timeout=2.0)

    def test_new_requests_during_drain_get_shutting_down(self, rng):
        config = _config(job_delay=1.0, drain_timeout=30.0)
        data = _walk(rng, 2_000, np.float32)
        with ServerThread(config) as srv:
            with ServiceClient(port=srv.port) as bystander:
                worker = threading.Thread(
                    target=lambda: ServiceClient(port=srv.port).compress(data)
                )
                worker.start()
                time.sleep(0.3)
                stopper = threading.Thread(target=srv.stop)
                stopper.start()
                time.sleep(0.3)  # drain in progress, held open by the job
                with pytest.raises(ServiceError, match="draining"):
                    bystander.compress(data)
                worker.join(timeout=30)
                stopper.join(timeout=30)


class TestStatsOpcode:
    def test_stats_reports_server_and_metrics(self, server, client, rng):
        client.compress(_walk(rng, 3_000, np.float32))
        stats = client.stats()
        assert stats["server"]["queue_high_water"] == server.config.queue_high_water
        assert stats["server"]["uptime_seconds"] > 0
        assert stats["server"]["draining"] is False
        counters = stats["metrics"]["counters"]
        ok_compress = [
            k for k in counters
            if k.startswith("requests_total")
            and "opcode=compress" in k and "outcome=ok" in k
        ]
        assert ok_compress and all(counters[k] >= 1 for k in ok_compress)
        assert any(k.startswith("compression_ratio")
                   for k in stats["metrics"]["histograms"])

    def test_inspect_round_trips_container_metadata(self, client, rng):
        data = _walk(rng, 7_000, np.float64)
        blob = client.compress(data, codec="dpratio")
        info = client.inspect(blob)
        assert info["codec"] == "dpratio"
        assert info["original_len"] == data.nbytes
        assert info["compressed_len"] == len(blob)
        assert info["shape"] == [7_000]


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n:
        chunk = sock.recv(n)
        assert chunk, "server closed early"
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)
