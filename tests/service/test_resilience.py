"""Unit and live tests of the retry policy and the resilient client.

The contract under test: transport failures and BUSY pushback are
retried under a capped, jittered, budgeted backoff — across addresses
when more than one is given — while deterministic server answers
surface immediately, and a non-idempotent request is *never* re-sent
once it may have reached a server.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

import repro
from repro.errors import (
    BusyError,
    ConnectionBrokenError,
    FormatError,
    ServiceError,
)
from repro.service import ResilientClient, RetryPolicy, ServerThread, ServiceConfig
from repro.service.resilience import (
    format_address,
    is_transport_error,
    parse_address,
    request_may_have_been_applied,
)


class TestAddresses:
    def test_parse_host_port_string(self):
        assert parse_address("10.1.2.3:9752") == ("10.1.2.3", 9752)

    def test_parse_tuple_passthrough(self):
        assert parse_address(("example", "80")) == ("example", 80)

    def test_format_round_trips(self):
        assert parse_address(format_address(("h", 1))) == ("h", 1)

    @pytest.mark.parametrize("bad", ["nohost", ":80", "h:port", ""])
    def test_malformed_addresses_are_typed(self, bad):
        with pytest.raises(ServiceError):
            parse_address(bad)


class TestRetryPolicy:
    def test_at_least_one_attempt_required(self):
        with pytest.raises(ServiceError):
            RetryPolicy(attempts=0)

    def test_delays_respect_exponential_ceiling_and_cap(self):
        policy = RetryPolicy(attempts=10, base_ms=10.0, cap_ms=55.0,
                             budget_ms=1e9)
        schedule = policy.schedule(random.Random(7))
        for k in range(9):
            ceiling = min(55.0, 10.0 * 2**k)
            delay = schedule.next_delay_ms()
            assert delay is not None
            assert 0.0 <= delay <= ceiling

    def test_attempts_exhaust(self):
        schedule = RetryPolicy(attempts=3).schedule(random.Random(0))
        assert schedule.next_delay_ms() is not None
        assert schedule.next_delay_ms() is not None
        assert schedule.next_delay_ms() is None  # 3 tries = 2 retries

    def test_budget_exhausts_before_attempts(self):
        policy = RetryPolicy(attempts=1000, base_ms=64.0, cap_ms=64.0,
                             budget_ms=100.0)
        schedule = policy.schedule(random.Random(3))
        total = 0.0
        while (delay := schedule.next_delay_ms(retry_after_ms=50)) is not None:
            total += delay
        assert total <= 100.0
        assert schedule.retries < 1000

    def test_retry_after_hint_is_a_floor(self):
        policy = RetryPolicy(attempts=100, base_ms=1.0, cap_ms=1.0,
                             budget_ms=1e9)
        schedule = policy.schedule(random.Random(1))
        for _ in range(20):
            assert schedule.next_delay_ms(retry_after_ms=250) >= 250.0

    def test_full_jitter_spreads_delays(self):
        policy = RetryPolicy(attempts=200, base_ms=100.0, cap_ms=100.0,
                             budget_ms=1e9)
        schedule = policy.schedule(random.Random(5))
        delays = [schedule.next_delay_ms() for _ in range(100)]
        assert len(set(delays)) > 50  # not a fixed ladder


class TestErrorClassification:
    def test_plain_errors_are_not_transport(self):
        assert not is_transport_error(FormatError("bad container"))

    def test_marked_errors_are_transport(self):
        exc = ServiceError("conn died")
        exc.transport = True
        assert is_transport_error(exc)

    def test_unknown_provenance_counts_as_applied(self):
        # The conservative default: without proof, assume the server
        # may have acted on the request.
        assert request_may_have_been_applied(ServiceError("?"))

    def test_provably_unsent_requests_are_safe(self):
        exc = ConnectionBrokenError("poisoned", request_sent=False)
        assert not request_may_have_been_applied(exc)


class _ScriptedClient:
    """A fake ServiceClient driven by a list of outcomes."""

    def __init__(self, label: str, log: list) -> None:
        self.label = label
        self.log = log
        self.broken = None
        self.closed = False

    def close(self) -> None:
        self.closed = True


def _factory(script: dict, log: list):
    """client_factory returning scripted fakes keyed by port."""

    def make(host: str, port: int) -> _ScriptedClient:
        outcome = script.get(port, "ok")
        if outcome == "refuse":
            log.append(("refused", port))
            raise ServiceError(f"cannot connect to {host}:{port}")
        log.append(("connected", port))
        return _ScriptedClient(f"{host}:{port}", log)

    return make


def _transport_error(request_sent: bool) -> ServiceError:
    exc = ServiceError("mid-frame failure")
    exc.transport = True
    exc.request_sent = request_sent
    return exc


class TestResilientClientUnit:
    def _client(self, script=None, **kwargs):
        log: list = []
        client = ResilientClient(
            [("127.0.0.1", 1), ("127.0.0.1", 2)],
            policy=kwargs.pop("policy", RetryPolicy(attempts=4, base_ms=1.0)),
            client_factory=_factory(script or {}, log),
            sleep=lambda s: log.append(("slept", s)),
            seed=0,
            **kwargs,
        )
        return client, log

    def test_needs_an_address(self):
        with pytest.raises(ServiceError, match="at least one address"):
            ResilientClient([])

    def test_transport_failure_fails_over_to_next_address(self):
        client, log = self._client()
        calls: list[int] = []

        def fn(c):
            calls.append(1)
            if len(calls) == 1:
                c.broken = "poisoned"
                raise _transport_error(True)
            return c.label

        assert client.call(fn) == "127.0.0.1:2"
        assert ("connected", 1) in log and ("connected", 2) in log
        assert client.registry.counter("client_failovers_total").value == 1

    def test_unreachable_address_is_skipped(self):
        client, log = self._client(script={1: "refuse"})
        assert client.call(lambda c: c.label) == "127.0.0.1:2"
        assert ("refused", 1) in log

    def test_all_unreachable_raises_transport_error(self):
        client, _ = self._client(script={1: "refuse", 2: "refuse"},
                                 policy=RetryPolicy(attempts=2, base_ms=1.0))
        with pytest.raises(ServiceError, match="no backend reachable"):
            client.call(lambda c: c.label)

    def test_busy_retries_and_honors_hint(self):
        client, log = self._client()
        attempts: list[int] = []

        def fn(c):
            attempts.append(1)
            if len(attempts) < 3:
                raise BusyError("busy", retry_after_ms=200)
            return "done"

        assert client.call(fn) == "done"
        sleeps = [s for kind, s in log if kind == "slept"]
        assert len(sleeps) == 2
        assert all(s >= 0.2 for s in sleeps)  # hint is the floor
        assert client.registry.counter(
            "client_retries_total", reason="busy"
        ).value == 2

    def test_deterministic_errors_surface_immediately(self):
        client, _ = self._client()
        attempts: list[int] = []

        def fn(c):
            attempts.append(1)
            raise FormatError("bad container")

        with pytest.raises(FormatError):
            client.call(fn)
        assert len(attempts) == 1  # retrying would fail identically

    def test_non_idempotent_half_sent_is_never_resent(self):
        client, _ = self._client()
        attempts: list[int] = []

        def fn(c):
            attempts.append(1)
            c.broken = "poisoned"
            raise _transport_error(True)  # the request may have landed

        with pytest.raises(ServiceError):
            client.call(fn, idempotent=False)
        assert len(attempts) == 1  # THE guard: no duplicate side effects

    def test_non_idempotent_provably_unsent_is_retried(self):
        client, _ = self._client()
        attempts: list[int] = []

        def fn(c):
            attempts.append(1)
            if len(attempts) == 1:
                raise _transport_error(False)  # rejected before the wire
            return "done"

        assert client.call(fn, idempotent=False) == "done"
        assert len(attempts) == 2

    def test_idempotent_half_sent_is_retried(self):
        client, _ = self._client()
        attempts: list[int] = []

        def fn(c):
            attempts.append(1)
            if len(attempts) == 1:
                raise _transport_error(True)
            return "done"

        assert client.call(fn) == "done"
        assert len(attempts) == 2

    def test_retry_budget_exhaustion_surfaces_last_error(self):
        client, _ = self._client(policy=RetryPolicy(attempts=3, base_ms=1.0))
        with pytest.raises(BusyError):
            client.call(lambda c: (_ for _ in ()).throw(BusyError("busy")))


class TestPipelinedRetrySemantics:
    """The pipelined batch guard rails (`_pipelined` via *_many).

    Three contracts: BUSY backoff applies per correlation id (one hot
    request cannot charge its neighbours' budgets), provably-unsent ids
    are re-submitted after a reconnect even in non-idempotent batches,
    and ambiguous in-flight ids are never re-sent when the batch is
    non-idempotent.
    """

    def _client(self, script=None, **kwargs):
        log: list = []
        client = ResilientClient(
            [("127.0.0.1", 1), ("127.0.0.1", 2)],
            policy=kwargs.pop("policy", RetryPolicy(attempts=6, base_ms=1.0)),
            client_factory=_factory(script or {}, log),
            sleep=lambda s: log.append(("slept", s)),
            seed=0,
            **kwargs,
        )
        return client, log

    def test_busy_hint_applies_per_request_not_per_connection(self):
        # Two requests on ONE connection, each BUSY once with a
        # different hint: each backoff must honor its own request's
        # hint, not a per-connection latch of the first one seen.
        client, log = self._client()
        hints = {0: 100, 1: 400}
        rejected: set[int] = set()

        def collect(i):
            def inner(c, rid):
                if i not in rejected:
                    rejected.add(i)
                    raise BusyError("busy", retry_after_ms=hints[i])
                return f"r{i}"
            return inner

        results = client._pipelined(
            [lambda c: 10, lambda c: 11],
            [collect(0), collect(1)],
            depth=2,
        )
        assert results == ["r0", "r1"]
        sleeps = sorted(s for kind, s in log if kind == "slept")
        assert len(sleeps) == 2
        assert sleeps[0] >= 0.1 and sleeps[1] >= 0.4
        assert client.registry.counter(
            "client_retries_total", reason="busy"
        ).value == 2

    def test_unsent_ids_are_resubmitted_after_reconnect(self):
        # The submit itself fails provably before the wire: even a
        # non-idempotent batch re-sends it on the fresh connection.
        client, log = self._client()
        submits: list[int] = []

        def submit(c):
            submits.append(1)
            if len(submits) == 1:
                raise _transport_error(False)
            return 7

        results = client._pipelined(
            [submit], [lambda c, rid: "done"], depth=1, idempotent=False
        )
        assert results == ["done"]
        assert len(submits) == 2
        connects = [port for kind, port in log if kind == "connected"]
        assert len(connects) == 2  # the failure forced a reconnect

    def test_non_idempotent_batch_never_resends_ambiguous_ids(self):
        # One id submitted, then the connection dies collecting it: the
        # request may have been applied, so a non-idempotent batch must
        # surface the ambiguity instead of re-sending.
        client, _ = self._client()
        submits: list[int] = []

        def submit(c):
            submits.append(1)
            return 7

        def collect(c, rid):
            c.broken = "poisoned"
            raise _transport_error(True)

        with pytest.raises(ServiceError):
            client._pipelined([submit], [collect], depth=1, idempotent=False)
        assert len(submits) == 1  # THE guard: no duplicate side effects

    def test_idempotent_batch_resends_ambiguous_ids(self):
        client, _ = self._client()
        attempts: list[int] = []

        def collect(c, rid):
            attempts.append(1)
            if len(attempts) == 1:
                c.broken = "poisoned"
                raise _transport_error(True)
            return "done"

        results = client._pipelined(
            [lambda c: 7], [collect], depth=1, idempotent=True
        )
        assert results == ["done"]
        assert len(attempts) == 2

    def test_half_sent_stream_is_never_resent_non_idempotent(self):
        # The streamed analogue of the unary guard: a stream that moved
        # DATA frames before dying carries request_sent=True, so a
        # non-idempotent call must not re-run it.
        client, _ = self._client()
        attempts: list[int] = []

        def stream_fn(c):
            attempts.append(1)
            c.broken = "stream abandoned mid-flight"
            raise _transport_error(True)  # sent > 0 on the real client

        with pytest.raises(ServiceError):
            client.call(stream_fn, idempotent=False)
        assert len(attempts) == 1

    def test_streamed_retry_runs_on_a_fresh_connection(self):
        # compress_streamed is idempotent: after a mid-stream transport
        # failure it retries, but only ever on a new connection — the
        # old correlation id is dead server-side.
        client, log = self._client()
        seen_clients: list[object] = []

        def stream_fn(c):
            seen_clients.append(c)
            if len(seen_clients) == 1:
                c.broken = "stream abandoned mid-flight"
                raise _transport_error(True)
            return b"container"

        assert client.call(stream_fn) == b"container"
        assert seen_clients[0] is not seen_clients[1]
        assert seen_clients[0].closed  # the poisoned connection was dropped


class TestResilientClientLive:
    def test_survives_backend_death_mid_run(self, rng):
        """Failover across two real servers while one dies mid-batch."""
        data = np.cumsum(rng.normal(size=4_000)).astype(np.float32)
        expected = repro.compress(data, "spspeed")
        with ServerThread(ServiceConfig(port=0)) as a:
            with ServerThread(ServiceConfig(port=0)) as b:
                addresses = [f"127.0.0.1:{a.port}", f"127.0.0.1:{b.port}"]
                with ResilientClient(
                    addresses,
                    policy=RetryPolicy(attempts=6, base_ms=5.0),
                    seed=3,
                ) as client:
                    for i in range(30):
                        if i == 10:
                            a.stop(drain=False)  # first backend dies
                        assert client.compress(data, "spspeed") == expected
                    assert client.registry.counter(
                        "client_reconnects_total"
                    ).value >= 1

    def test_pipelined_batches_round_trip_in_order(self, rng):
        arrays = [
            np.cumsum(rng.normal(size=1_000 + 300 * i)).astype(np.float32)
            for i in range(9)
        ]
        expected = [repro.compress(a, "spspeed") for a in arrays]
        with ServerThread(ServiceConfig(port=0)) as srv:
            with ResilientClient(f"127.0.0.1:{srv.port}") as client:
                blobs = client.compress_many(arrays, "spspeed", depth=4)
                assert blobs == expected
                restored = client.decompress_many(blobs, depth=4)
                for out, original in zip(restored, arrays):
                    assert np.array_equal(out, original)

    def test_reuses_one_connection_while_healthy(self, rng):
        data = np.cumsum(rng.normal(size=2_000)).astype(np.float32)
        with ServerThread(ServiceConfig(port=0)) as srv:
            with ResilientClient(f"127.0.0.1:{srv.port}") as client:
                for _ in range(5):
                    client.compress(data, "spspeed")
                assert client.registry.counter(
                    "client_reconnects_total"
                ).value == 1
                assert client.connected_to == ("127.0.0.1", srv.port)
