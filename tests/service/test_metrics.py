"""The metrics registry: counters, gauges, histograms, snapshot, render."""

from __future__ import annotations

import json
import threading

from repro.service.metrics import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    render_snapshot,
)


class TestCounters:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.counter("hits").inc(3)
        assert reg.counter("hits").value == 4

    def test_label_sets_are_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("requests_total", opcode="compress", outcome="ok").inc()
        reg.counter("requests_total", opcode="compress", outcome="busy").inc(2)
        reg.counter("requests_total", opcode="ping", outcome="ok").inc()
        snap = reg.snapshot()["counters"]
        assert snap["requests_total{opcode=compress,outcome=busy}"] == 2
        assert snap["requests_total{opcode=compress,outcome=ok}"] == 1

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        reg.counter("x", b="2", a="1").inc()
        reg.counter("x", a="1", b="2").inc()
        assert reg.snapshot()["counters"] == {"x{a=1,b=2}": 2}


class TestGauges:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("queue_depth")
        gauge.set(5)
        gauge.inc()
        gauge.dec(3)
        assert reg.snapshot()["gauges"]["queue_depth"] == 3


class TestHistograms:
    def test_observations_land_in_inclusive_upper_bounds(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", buckets=(1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 99.0):
            hist.observe(value)
        snap = reg.snapshot()["histograms"]["lat"]
        assert snap["buckets"] == {"1.0": 2, "2.0": 1, "+Inf": 1}
        assert snap["count"] == 4
        assert snap["sum"] == 0.5 + 1.0 + 1.5 + 99.0

    def test_mean(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", buckets=LATENCY_BUCKETS)
        assert hist.mean == 0.0
        hist.observe(2.0)
        hist.observe(4.0)
        assert hist.mean == 3.0

    def test_same_name_same_buckets_one_series(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(1.0,)).observe(0.5)
        reg.histogram("lat", buckets=(1.0,)).observe(0.7)
        assert reg.snapshot()["histograms"]["lat"]["count"] == 2


class TestSnapshot:
    def test_snapshot_is_json_serialisable(self):
        reg = MetricsRegistry()
        reg.counter("a", k="v").inc()
        reg.gauge("b").set(1.5)
        reg.histogram("c", buckets=(1.0, 2.0)).observe(0.2)
        snap = reg.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert set(snap) == {"counters", "gauges", "histograms"}

    def test_render_mentions_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("requests_total", outcome="ok").inc(7)
        reg.gauge("queue_depth").set(2)
        reg.histogram("request_seconds").observe(0.004)
        text = reg.render()
        assert "requests_total{outcome=ok}" in text
        assert "queue_depth" in text
        assert "request_seconds" in text and "count=1" in text

    def test_render_of_empty_registry(self):
        assert render_snapshot(MetricsRegistry().snapshot()) == "(no metrics recorded)"


class TestThreadSafety:
    def test_concurrent_increments_are_lossless(self):
        reg = MetricsRegistry()
        per_thread, threads = 2_000, 8

        def worker():
            for _ in range(per_thread):
                reg.counter("n").inc()
                reg.histogram("h", buckets=(0.5,)).observe(1.0)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert reg.counter("n").value == per_thread * threads
        assert reg.histogram("h", buckets=(0.5,)).count == per_thread * threads
