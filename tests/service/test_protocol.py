"""FPRW wire protocol: framing, body codecs, and hostile-frame rejection.

The frame layer's contract is the container format's, restated for a
socket: every declared length is validated before a buffer is sized
from it, and every violation dies with a typed
:class:`~repro.errors.ProtocolError` carrying the request id when the
id itself could still be trusted.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.core import container as fmt
from repro.errors import (
    BusyError,
    ChecksumError,
    CorruptDataError,
    DeadlineExceededError,
    FormatError,
    ProtocolError,
    RemoteError,
    ReproError,
    ServiceError,
)
from repro.fuzzing import (
    FRAME_MUTATORS,
    build_frame_corpus,
    mutate_frame,
    replay_frame,
    run_frame_fuzz,
)
from repro.fuzzing.mutators import FRAME_MUST_REJECT
from repro.service import protocol as wire


def _frame(opcode=wire.OP_PING, request_id=7, body=b""):
    return wire.encode_frame(opcode, request_id, body)


class TestFraming:
    def test_header_is_twenty_bytes(self):
        assert wire.HEADER_SIZE == 20
        assert len(_frame()) == 20

    @pytest.mark.parametrize("opcode", sorted(wire.OPCODE_NAMES))
    def test_round_trip_every_opcode(self, opcode):
        frame = wire.parse_frame(_frame(opcode, 99, b"payload"))
        assert frame.opcode == opcode
        assert frame.request_id == 99
        assert frame.body == b"payload"

    def test_request_id_is_u64(self):
        big = (1 << 64) - 1
        assert wire.parse_frame(_frame(request_id=big)).request_id == big

    def test_encode_rejects_unknown_opcode(self):
        with pytest.raises(ValueError, match="unknown opcode"):
            wire.encode_frame(0x42, 1)

    def test_truncated_header_rejected(self):
        with pytest.raises(ProtocolError, match="truncated frame header"):
            wire.parse_header(_frame()[:10])

    def test_wrong_magic_rejected(self):
        buf = bytearray(_frame())
        buf[:4] = b"HTTP"
        with pytest.raises(ProtocolError, match="magic"):
            wire.parse_frame(bytes(buf))

    def test_wrong_version_rejected_with_request_id(self):
        buf = bytearray(_frame(request_id=55))
        buf[4] = wire.VERSION + 1
        with pytest.raises(ProtocolError, match="version") as excinfo:
            wire.parse_frame(bytes(buf))
        assert excinfo.value.request_id == 55

    def test_nonzero_reserved_fields_rejected(self):
        for offset in (6, 7):
            buf = bytearray(_frame())
            buf[offset] = 1
            with pytest.raises(ProtocolError, match="reserved"):
                wire.parse_frame(bytes(buf))

    def test_unknown_opcode_rejected(self):
        buf = bytearray(_frame())
        buf[5] = 0x42
        with pytest.raises(ProtocolError, match="opcode"):
            wire.parse_frame(bytes(buf))

    def test_declared_length_checked_before_allocation(self):
        # A header declaring 4 GiB dies at the 20-byte header — parse_header
        # never sees (or sizes anything from) a body.
        header = struct.pack(
            "<4sBBBBQI", wire.MAGIC, wire.VERSION, wire.OP_COMPRESS,
            0, 0, 1, 0xFFFFFFFF,
        )
        with pytest.raises(ProtocolError, match="frame limit") as excinfo:
            wire.parse_header(header, max_frame=1 << 20)
        assert excinfo.value.request_id == 1

    def test_body_length_mismatch_rejected(self):
        frame = _frame(body=b"abc")
        with pytest.raises(ProtocolError, match="mismatch"):
            wire.parse_frame(frame + b"x")
        with pytest.raises(ProtocolError, match="mismatch"):
            wire.parse_frame(frame[:-1])


class TestBodyCodecs:
    def test_compress_body_round_trip_array(self):
        payload = np.arange(12, dtype=np.float32).tobytes()
        body = wire.encode_compress_body(
            payload, codec="spspeed", dtype_code=fmt.DTYPE_F32, shape=(3, 4)
        )
        codec, dtype_code, shape, out = wire.decode_compress_body(body)
        assert (codec, dtype_code, shape, out) == (
            "spspeed", fmt.DTYPE_F32, (3, 4), payload
        )

    def test_compress_body_round_trip_raw(self):
        body = wire.encode_compress_body(b"\x01\x02\x03")
        codec, dtype_code, shape, out = wire.decode_compress_body(body)
        assert (codec, dtype_code, shape, out) == (
            None, fmt.DTYPE_BYTES, None, b"\x01\x02\x03"
        )

    def test_compress_body_geometry_must_cover_payload(self):
        payload = np.zeros(6, dtype=np.float32).tobytes()
        body = wire.encode_compress_body(
            payload, dtype_code=fmt.DTYPE_F32, shape=(2, 3)
        )
        # Stomp the payload short: shape no longer covers it.
        with pytest.raises(ProtocolError, match="does not cover"):
            wire.decode_compress_body(body[:-4])

    def test_compress_body_rejects_misaligned_payload(self):
        body = wire.encode_compress_body(b"12345", dtype_code=fmt.DTYPE_F64)
        with pytest.raises(ProtocolError, match="not a multiple"):
            wire.decode_compress_body(body)

    def test_compress_body_rejects_non_ascii_codec_name(self):
        body = b"\x02\xff\xfe" + wire.encode_compress_body(b"")[1:]
        with pytest.raises(ProtocolError, match="ASCII"):
            wire.decode_compress_body(body)

    def test_array_body_round_trip(self):
        payload = np.arange(5, dtype=np.float64).tobytes()
        body = wire.encode_array_body(
            payload, dtype_code=fmt.DTYPE_F64, shape=(5,)
        )
        assert wire.decode_array_body(body) == (fmt.DTYPE_F64, (5,), payload)

    def test_array_body_rejects_unknown_dtype(self):
        with pytest.raises(ProtocolError, match="dtype"):
            wire.decode_array_body(b"\x09\xff")

    def test_array_body_rejects_implausible_rank(self):
        body = struct.pack("<BB", fmt.DTYPE_BYTES, fmt.MAX_NDIM + 1)
        with pytest.raises(ProtocolError, match="dimensions"):
            wire.decode_array_body(body)

    def test_error_body_round_trip(self):
        body = wire.encode_error_body(wire.ERR_CHECKSUM, "sum went bad")
        assert wire.decode_error_body(body) == (wire.ERR_CHECKSUM, "sum went bad")

    def test_empty_error_body_rejected(self):
        with pytest.raises(ProtocolError, match="empty"):
            wire.decode_error_body(b"")

    def test_busy_body_round_trips_the_hint(self):
        assert wire.decode_busy_body(wire.encode_busy_body(350)) == 350

    def test_busy_body_empty_means_no_hint(self):
        # Backward compatibility: pre-hint servers send bodyless BUSY.
        assert wire.encode_busy_body(None) == b""
        assert wire.decode_busy_body(b"") is None

    def test_busy_body_rejects_wrong_length(self):
        with pytest.raises(ProtocolError, match="retry_after_ms"):
            wire.decode_busy_body(b"\x01\x02\x03")

    def test_busy_hint_must_fit_u32(self):
        with pytest.raises(ValueError, match="u32"):
            wire.encode_busy_body(1 << 32)
        with pytest.raises(ValueError, match="u32"):
            wire.encode_busy_body(-1)


class TestErrorCodeMapping:
    @pytest.mark.parametrize("exc,code", [
        (ProtocolError("x"), wire.ERR_PROTOCOL),
        (FormatError("x"), wire.ERR_FORMAT),
        (CorruptDataError("x"), wire.ERR_CORRUPT),
        (ChecksumError("x"), wire.ERR_CHECKSUM),
        (DeadlineExceededError("x"), wire.ERR_DEADLINE),
        (MemoryError(), wire.ERR_INTERNAL),
    ])
    def test_error_code_for(self, exc, code):
        assert wire.error_code_for(exc) == code

    def test_wire_codes_rebuild_the_same_error_family(self):
        # Client-side inverse: the family survives one wire crossing.
        for exc_cls in (FormatError, CorruptDataError, ChecksumError,
                        DeadlineExceededError, ProtocolError):
            code = wire.error_code_for(exc_cls("x"))
            assert isinstance(wire.exception_for(code, "msg"), exc_cls)
        assert isinstance(
            wire.exception_for(wire.ERR_INTERNAL, "msg"), RemoteError
        )
        assert isinstance(wire.exception_for(9999, "msg"), ServiceError)

    def test_service_errors_are_repro_errors(self):
        for cls in (ServiceError, ProtocolError, BusyError,
                    DeadlineExceededError, RemoteError):
            assert issubclass(cls, ReproError)


class TestFrameMutators:
    """Every mutant parses or dies typed — the in-process fuzz invariant."""

    @pytest.mark.parametrize("name", sorted(FRAME_MUTATORS))
    def test_mutants_fail_typed(self, name):
        cases = build_frame_corpus(3)
        for iteration in range(40):
            rng = np.random.default_rng([3, iteration])
            case = cases[iteration % len(cases)]
            mutant = mutate_frame(case.frame, name, rng)
            try:
                frame = wire.parse_frame(mutant, max_frame=1 << 20)
            except ProtocolError:
                continue  # typed rejection: the contract held
            if mutant != case.frame and name in FRAME_MUST_REJECT:
                pytest.fail(f"{name} mutant parsed as 0x{frame.opcode:02x}")

    def test_harness_is_clean(self):
        report = run_frame_fuzz(seed=11, iterations=200)
        assert report.ok, report.render()
        assert report.outcomes["rejected"] > 0  # mutators actually bit

    def test_replay_rebuilds_the_same_mutant(self):
        case_a, mut_a, blob_a = replay_frame(5, 17)
        case_b, mut_b, blob_b = replay_frame(5, 17)
        assert (case_a.label, mut_a, blob_a) == (case_b.label, mut_b, blob_b)

    def test_corpus_covers_requests_and_responses(self):
        opcodes = {case.opcode for case in build_frame_corpus(0)}
        assert set(wire.REQUEST_OPCODES) <= opcodes
        assert wire.OP_RESULT in opcodes and wire.OP_ERROR in opcodes
