"""Unit tests for the FPRZ container format."""

from __future__ import annotations

import pytest

from repro.core import container as fmt
from repro.errors import FormatError


class TestContainer:
    def test_roundtrip_metadata(self):
        blob = fmt.build_container(
            codec_id=2,
            dtype_code=fmt.DTYPE_F32,
            original_len=100,
            intermediate_len=100,
            chunk_size=16384,
            chunk_payloads=[b"\x01abc", b"\x01defg"],
            shape=(5, 5),
        )
        info = fmt.inspect_container(blob)
        assert info.codec_id == 2
        assert info.dtype_code == fmt.DTYPE_F32
        assert info.original_len == 100
        assert info.chunk_size == 16384
        assert info.n_chunks == 2
        assert info.chunk_sizes == (4, 5)
        assert info.shape == (5, 5)
        assert not info.raw_fallback

    def test_payload_offsets_are_prefix_sums(self):
        blob = fmt.build_container(
            codec_id=1,
            dtype_code=fmt.DTYPE_BYTES,
            original_len=9,
            intermediate_len=9,
            chunk_size=4,
            chunk_payloads=[b"ab", b"cde", b"f"],
        )
        info = fmt.inspect_container(blob)
        offsets = fmt.payload_offsets(info)
        assert blob[offsets[0] : offsets[0] + 2] == b"ab"
        assert blob[offsets[1] : offsets[1] + 3] == b"cde"
        assert blob[offsets[2] : offsets[2] + 1] == b"f"

    def test_raw_container(self):
        blob = fmt.build_raw_container(codec_id=3, dtype_code=fmt.DTYPE_F64, data=b"xyz")
        info = fmt.inspect_container(blob)
        assert info.raw_fallback
        assert info.original_len == 3
        assert blob[info.payload_offset :] == b"xyz"

    def test_ratio_property(self):
        blob = fmt.build_raw_container(codec_id=1, dtype_code=0, data=bytes(100))
        info = fmt.inspect_container(blob)
        assert 0 < info.ratio < 1  # raw fallback always "expands" by the header

    def test_bad_magic(self):
        with pytest.raises(FormatError):
            fmt.inspect_container(b"NOPE" + bytes(40))

    def test_truncated_header(self):
        with pytest.raises(FormatError):
            fmt.inspect_container(b"FPRZ\x01")

    def test_bad_version(self):
        blob = bytearray(
            fmt.build_raw_container(codec_id=1, dtype_code=0, data=b"")
        )
        blob[4] = 99
        with pytest.raises(FormatError):
            fmt.inspect_container(bytes(blob))

    def test_table_payload_mismatch(self):
        blob = fmt.build_container(
            codec_id=1,
            dtype_code=0,
            original_len=4,
            intermediate_len=4,
            chunk_size=4,
            chunk_payloads=[b"abcd"],
        )
        with pytest.raises(FormatError):
            fmt.inspect_container(blob + b"extra")

    def test_truncated_shape_block(self):
        blob = fmt.build_container(
            codec_id=1,
            dtype_code=0,
            original_len=0,
            intermediate_len=0,
            chunk_size=4,
            chunk_payloads=[],
            shape=(3, 3, 3),
        )
        with pytest.raises(FormatError):
            fmt.inspect_container(blob[:33])
