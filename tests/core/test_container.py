"""Unit tests for the FPRZ container format."""

from __future__ import annotations

import pytest

from repro.core import container as fmt
from repro.errors import FormatError


class TestContainer:
    def test_roundtrip_metadata(self):
        blob = fmt.build_container(
            codec_id=2,
            dtype_code=fmt.DTYPE_F32,
            original_len=100,
            intermediate_len=100,
            chunk_size=16384,
            chunk_payloads=[b"\x01abc", b"\x01defg"],
            shape=(5, 5),
        )
        info = fmt.inspect_container(blob)
        assert info.codec_id == 2
        assert info.dtype_code == fmt.DTYPE_F32
        assert info.original_len == 100
        assert info.chunk_size == 16384
        assert info.n_chunks == 2
        assert info.chunk_sizes == (4, 5)
        assert info.shape == (5, 5)
        assert not info.raw_fallback

    def test_payload_offsets_are_prefix_sums(self):
        blob = fmt.build_container(
            codec_id=1,
            dtype_code=fmt.DTYPE_BYTES,
            original_len=9,
            intermediate_len=9,
            chunk_size=4,
            chunk_payloads=[b"ab", b"cde", b"f"],
        )
        info = fmt.inspect_container(blob)
        offsets = fmt.payload_offsets(info)
        assert blob[offsets[0] : offsets[0] + 2] == b"ab"
        assert blob[offsets[1] : offsets[1] + 3] == b"cde"
        assert blob[offsets[2] : offsets[2] + 1] == b"f"

    def test_raw_container(self):
        blob = fmt.build_raw_container(codec_id=3, dtype_code=fmt.DTYPE_F64, data=b"xyz")
        info = fmt.inspect_container(blob)
        assert info.raw_fallback
        assert info.original_len == 3
        assert blob[info.payload_offset :] == b"xyz"

    def test_ratio_property(self):
        blob = fmt.build_raw_container(codec_id=1, dtype_code=0, data=bytes(100))
        info = fmt.inspect_container(blob)
        assert 0 < info.ratio < 1  # raw fallback always "expands" by the header

    def test_bad_magic(self):
        with pytest.raises(FormatError):
            fmt.inspect_container(b"NOPE" + bytes(40))

    def test_truncated_header(self):
        with pytest.raises(FormatError):
            fmt.inspect_container(b"FPRZ\x01")

    def test_bad_version(self):
        blob = bytearray(
            fmt.build_raw_container(codec_id=1, dtype_code=0, data=b"")
        )
        blob[4] = 99
        with pytest.raises(FormatError):
            fmt.inspect_container(bytes(blob))

    def test_table_payload_mismatch(self):
        blob = fmt.build_container(
            codec_id=1,
            dtype_code=0,
            original_len=4,
            intermediate_len=4,
            chunk_size=4,
            chunk_payloads=[b"abcd"],
        )
        with pytest.raises(FormatError):
            fmt.inspect_container(blob + b"extra")

    def test_truncated_shape_block(self):
        blob = fmt.build_container(
            codec_id=1,
            dtype_code=0,
            original_len=0,
            intermediate_len=0,
            chunk_size=4,
            chunk_payloads=[],
            shape=(3, 3, 3),
        )
        with pytest.raises(FormatError):
            fmt.inspect_container(blob[:33])


class TestContainerV2:
    """Per-chunk CRC table (version 2) and the bounds guards."""

    def _build(self, payloads, *, chunk_crcs=True, **kwargs):
        defaults = dict(
            codec_id=1, dtype_code=fmt.DTYPE_BYTES,
            original_len=sum(max(len(p) - 1, 0) for p in payloads),
            intermediate_len=sum(max(len(p) - 1, 0) for p in payloads),
            chunk_size=4,
        )
        defaults.update(kwargs)
        return fmt.build_container(
            chunk_payloads=payloads, chunk_crcs=chunk_crcs, **defaults
        )

    def test_crc_table_written_and_parsed(self):
        payloads = [b"\x00abc", b"\x00defg"]
        blob = self._build(payloads)
        info = fmt.inspect_container(blob)
        assert info.version == 2
        assert info.chunk_crcs == tuple(fmt.checksum_of(p) for p in payloads)

    def test_crc_table_sits_between_size_table_and_payloads(self):
        import struct

        payloads = [b"\x00abc", b"\x00defg"]
        blob = self._build(payloads)
        info = fmt.inspect_container(blob)
        crc_offset = info.payload_offset - 4 * info.n_chunks
        stored = struct.unpack_from("<2I", blob, crc_offset)
        assert stored == info.chunk_crcs
        assert blob[info.payload_offset :] == b"".join(payloads)

    def test_without_crcs_stays_version_1(self):
        blob = self._build([b"\x00abc"], chunk_crcs=False)
        info = fmt.inspect_container(blob)
        assert info.version == 1
        assert info.chunk_crcs is None

    def test_empty_container_drops_the_crc_table(self):
        # No chunks -> nothing to protect; stay v1 for byte-compat.
        blob = self._build([], chunk_crcs=True, original_len=0,
                           intermediate_len=0)
        info = fmt.inspect_container(blob)
        assert info.version == 1 and info.chunk_crcs is None

    def test_overhead_is_four_bytes_per_chunk(self):
        payloads = [b"\x00abc", b"\x00defg", b"\x00h"]
        with_crcs = self._build(payloads, chunk_crcs=True)
        without = self._build(payloads, chunk_crcs=False)
        assert len(with_crcs) == len(without) + 4 * len(payloads)

    def test_chunk_crc_flag_rejected_on_version_1(self):
        blob = bytearray(self._build([b"\x00abc"], chunk_crcs=False))
        blob[7] |= fmt.FLAG_CHUNK_CRCS  # claim a CRC table on a v1 blob
        with pytest.raises(FormatError, match="unknown flag"):
            fmt.inspect_container(bytes(blob))

    def test_zero_length_chunk_entry_rejected(self):
        import struct

        blob = bytearray(self._build([b"\x00abc", b"\x00de"], chunk_crcs=False))
        info = fmt.inspect_container(bytes(blob))
        table = info.payload_offset - 8
        struct.pack_into("<I", blob, table, 0)
        struct.pack_into("<I", blob, table + 4, 7)  # keep the sum right
        with pytest.raises(FormatError, match="chunk 0"):
            fmt.inspect_container(bytes(blob))

    def test_shape_dtype_product_must_match_original_len(self):
        from repro.errors import ReproError

        blob = bytearray(fmt.build_container(
            codec_id=1, dtype_code=fmt.DTYPE_F32, original_len=16,
            intermediate_len=16, chunk_size=16,
            chunk_payloads=[b"\x00" + bytes(16)], shape=(2, 2),
        ))
        blob[34] = 3  # shape (3, 2): 6 floats != 16 bytes
        with pytest.raises(ReproError, match="shape"):
            fmt.inspect_container(bytes(blob))

    def test_excessive_ndim_rejected(self):
        blob = bytearray(fmt.build_container(
            codec_id=1, dtype_code=fmt.DTYPE_BYTES, original_len=4,
            intermediate_len=4, chunk_size=4, chunk_payloads=[b"\x00abcd"],
            shape=(4,),
        ))
        blob[34] = 200
        with pytest.raises(FormatError):
            fmt.inspect_container(bytes(blob))

    def test_raw_fallback_refuses_chunk_crc_flag(self):
        blob = bytearray(fmt.build_raw_container(
            codec_id=1, dtype_code=fmt.DTYPE_BYTES, data=b"abc"
        ))
        blob[4] = 2  # version must allow the flag before the check fires
        blob[7] |= fmt.FLAG_CHUNK_CRCS
        with pytest.raises(FormatError, match="raw-fallback"):
            fmt.inspect_container(bytes(blob))
