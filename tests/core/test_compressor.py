"""Integration tests for the compression engine (bytes level)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.codecs import CODECS, get_codec
from repro.core.compressor import compress_bytes, decompress_bytes
from repro.errors import CorruptDataError, FormatError


def smooth_bytes(rng, n_values: int, dtype) -> bytes:
    return np.cumsum(rng.normal(scale=0.01, size=n_values)).astype(dtype).tobytes()


@pytest.mark.parametrize("name", sorted(CODECS))
class TestEngineRoundtrip:
    def test_smooth_roundtrip(self, name, rng):
        codec = get_codec(name)
        data = smooth_bytes(rng, 50_000, codec.dtype)
        blob = compress_bytes(data, codec)
        back, info = decompress_bytes(blob)
        assert back == data
        assert info.codec_id == codec.codec_id

    def test_random_roundtrip(self, name, rng):
        codec = get_codec(name)
        data = rng.integers(0, 256, size=70_001, dtype=np.uint8).tobytes()
        blob = compress_bytes(data, codec)
        back, _ = decompress_bytes(blob)
        assert back == data

    def test_empty_input(self, name):
        codec = get_codec(name)
        blob = compress_bytes(b"", codec)
        back, _ = decompress_bytes(blob)
        assert back == b""

    def test_single_value(self, name, rng):
        codec = get_codec(name)
        data = rng.random(1).astype(codec.dtype).tobytes()
        back, _ = decompress_bytes(compress_bytes(data, codec))
        assert back == data

    def test_unaligned_tail(self, name, rng):
        codec = get_codec(name)
        data = rng.integers(0, 256, size=16384 * 2 + 3, dtype=np.uint8).tobytes()
        back, _ = decompress_bytes(compress_bytes(data, codec))
        assert back == data

    def test_expansion_is_bounded(self, name, rng):
        # Adversarial incompressible input must cost at most the header.
        codec = get_codec(name)
        data = rng.integers(0, 256, size=100_000, dtype=np.uint8).tobytes()
        blob = compress_bytes(data, codec)
        assert len(blob) <= len(data) + 64

    def test_chunk_boundary_sizes(self, name, rng):
        codec = get_codec(name)
        for n in (16383, 16384, 16385, 32768):
            data = rng.integers(0, 256, size=n, dtype=np.uint8).tobytes()
            back, _ = decompress_bytes(compress_bytes(data, codec))
            assert back == data, n


class TestEngineValidation:
    def test_garbage_rejected(self):
        with pytest.raises(FormatError):
            decompress_bytes(b"not a container at all")

    def test_truncated_payload_rejected(self, rng):
        codec = get_codec("spratio")
        data = smooth_bytes(rng, 30_000, np.float32)
        blob = compress_bytes(data, codec)
        with pytest.raises((FormatError, CorruptDataError)):
            decompress_bytes(blob[: len(blob) - 10])

    def test_bitflip_detected_or_localised(self, rng):
        # A flipped byte in a chunk payload must never crash with a
        # non-library exception.  With the default per-chunk CRCs it is
        # guaranteed to raise; a checksum-free container may instead
        # decode to different bytes (like the paper's artifact).
        codec = get_codec("spratio")
        data = smooth_bytes(rng, 30_000, np.float32)
        for chunk_checksums in (True, False):
            blob = bytearray(compress_bytes(
                data, codec, checksum=False, chunk_checksums=chunk_checksums
            ))
            blob[len(blob) // 2] ^= 0x01
            try:
                back, _ = decompress_bytes(bytes(blob))
            except (CorruptDataError, FormatError):
                continue
            assert not chunk_checksums  # CRCs may never miss payload damage
            assert back != data

    def test_custom_chunk_size_roundtrip(self, rng):
        codec = get_codec("spspeed")
        data = smooth_bytes(rng, 50_000, np.float32)
        for chunk_size in (1024, 4096, 65536):
            blob = compress_bytes(data, codec, chunk_size=chunk_size)
            back, info = decompress_bytes(blob)
            assert back == data
            assert info.chunk_size in (chunk_size, 0)  # 0 for raw fallback
