"""Unit tests for the codec registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.codecs import CODECS, codec_by_id, codec_for, get_codec
from repro.errors import UnknownCodecError, UnsupportedDtypeError


class TestRegistry:
    def test_four_codecs_registered(self):
        assert sorted(CODECS) == ["dpratio", "dpspeed", "spratio", "spspeed"]

    def test_ids_are_unique(self):
        ids = [c.codec_id for c in CODECS.values()]
        assert len(set(ids)) == len(ids)

    def test_lookup_case_insensitive(self):
        assert get_codec("SPspeed").name == "spspeed"

    def test_lookup_by_id(self):
        for codec in CODECS.values():
            assert codec_by_id(codec.codec_id) is codec

    def test_unknown_name(self):
        with pytest.raises(UnknownCodecError):
            get_codec("lz4")

    def test_unknown_id(self):
        with pytest.raises(UnknownCodecError):
            codec_by_id(250)

    def test_codec_for_dtype_and_mode(self):
        assert codec_for(np.float32, "speed").name == "spspeed"
        assert codec_for(np.float32, "ratio").name == "spratio"
        assert codec_for(np.float64, "speed").name == "dpspeed"
        assert codec_for(np.float64, "ratio").name == "dpratio"

    def test_codec_for_rejects_other_dtypes(self):
        with pytest.raises(UnsupportedDtypeError):
            codec_for(np.int32, "speed")

    def test_codec_for_rejects_bad_mode(self):
        with pytest.raises(UnknownCodecError):
            codec_for(np.float32, "fast")


class TestStagePlans:
    """Pin the Figure 1 stage chains."""

    def test_spspeed_stages(self):
        assert get_codec("spspeed").stage_names == ["diffms", "mplg"]

    def test_spratio_stages(self):
        assert get_codec("spratio").stage_names == ["diffms", "bit", "rze"]

    def test_dpspeed_stages(self):
        assert get_codec("dpspeed").stage_names == ["diffms", "mplg"]

    def test_dpratio_stages(self):
        assert get_codec("dpratio").stage_names == ["fcm", "diffms", "raze", "rare"]

    def test_word_granularity(self):
        assert get_codec("spspeed").word_bits == 32
        assert get_codec("dpspeed").word_bits == 64

    def test_fresh_pipelines_per_call(self):
        codec = get_codec("spratio")
        assert codec.make_pipeline() is not codec.make_pipeline()
