"""Unit tests for stage pipelines and the per-chunk raw fallback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.chunking import CHUNK_COMPRESSED, CHUNK_RAW
from repro.core.pipeline import Pipeline
from repro.errors import CorruptDataError
from repro.stages import MPLG, BitTranspose, DiffMS, RZE


def sp_ratio_pipeline() -> Pipeline:
    return Pipeline([DiffMS(32), BitTranspose(32), RZE()])


class TestPipeline:
    def test_encode_decode_roundtrip(self, rng):
        data = np.cumsum(rng.normal(size=4096)).astype(np.float32).tobytes()
        p = sp_ratio_pipeline()
        assert p.decode(p.encode(data)) == data

    def test_stage_order_reversed_on_decode(self):
        # A pipeline of two asymmetric stages only round-trips when the
        # inverses run in reverse order; this locks that behaviour in.
        p = Pipeline([DiffMS(32), MPLG(32)])
        data = np.arange(1024, dtype=np.uint32).tobytes()
        assert p.decode(p.encode(data)) == data

    def test_compressible_chunk_flagged(self, rng):
        data = np.cumsum(rng.normal(scale=0.01, size=4096)).astype(np.float32).tobytes()
        payload = sp_ratio_pipeline().encode_chunk(data)
        assert payload[0] == CHUNK_COMPRESSED
        assert len(payload) < len(data)

    def test_incompressible_chunk_stored_raw(self, rng):
        data = rng.integers(0, 256, size=16384, dtype=np.uint8).tobytes()
        payload = sp_ratio_pipeline().encode_chunk(data)
        assert payload[0] == CHUNK_RAW
        assert len(payload) == len(data) + 1  # worst case: one flag byte

    def test_decode_chunk_validates_length(self, rng):
        data = bytes(1000)
        p = sp_ratio_pipeline()
        payload = p.encode_chunk(data)
        with pytest.raises(CorruptDataError):
            p.decode_chunk(payload, 999)

    def test_decode_chunk_rejects_unknown_flag(self):
        with pytest.raises(CorruptDataError):
            sp_ratio_pipeline().decode_chunk(b"\x07abc", 3)

    def test_decode_chunk_rejects_empty(self):
        with pytest.raises(CorruptDataError):
            sp_ratio_pipeline().decode_chunk(b"", 0)

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            Pipeline([])
