"""Tests for the plan/execute engine: policies, plans, traces, fallbacks.

The engine's core invariant — compressed output is byte-identical under
every scheduling policy and worker count — is asserted here across all
codecs and input shapes, alongside the thread-locality guarantee a
stateful stage depends on, the laziness of the whole-input raw
fallback, and the per-chunk trace contents.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

import repro
from repro.core import container as fmt
from repro.core.chunking import CHUNK_SIZE
from repro.core.codecs import CODECS, get_codec
from repro.core.compressor import compress_bytes, decompress_bytes
from repro.core.executors import (
    SCHEDULING_POLICIES,
    PooledThreadedExecutor,
    SerialExecutor,
    StaticBlockExecutor,
    ThreadedExecutor,
    get_executor,
    normalize_policy,
    resolve_executor,
    static_block_bounds,
)
from repro.core.plan import plan_decode, plan_encode
from repro.core.trace import TraceCollector
from repro.errors import CorruptDataError


def _sample(rng, dtype, n) -> bytes:
    return np.cumsum(rng.normal(scale=0.01, size=n)).astype(dtype).tobytes()


class TestPolicyNames:
    def test_canonical_names_pass_through(self):
        for name in SCHEDULING_POLICIES:
            assert normalize_policy(name) == name

    def test_simulator_aliases_map_onto_executors(self):
        assert normalize_policy("dynamic") == "threaded"
        assert normalize_policy("worklist") == "threaded"
        assert normalize_policy("static") == "static-blocks"
        assert normalize_policy("STATIC_BLOCKS") == "static-blocks"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            normalize_policy("fibers")

    def test_get_executor_types(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        assert isinstance(get_executor("dynamic", 4), ThreadedExecutor)
        assert isinstance(get_executor("static", 4), StaticBlockExecutor)

    def test_resolve_defaults_follow_workers(self):
        assert resolve_executor(None, 1).policy == "serial"
        assert resolve_executor(None, 4).policy == "threaded"
        prebuilt = StaticBlockExecutor(3)
        assert resolve_executor(prebuilt, 1) is prebuilt


class TestPlans:
    def test_encode_plan_covers_input_exactly(self):
        plan = plan_encode(3 * CHUNK_SIZE + 17, CHUNK_SIZE)
        assert plan.n_chunks == 4
        assert plan.jobs[0].offset == 0
        assert all(
            plan.jobs[i].end == plan.jobs[i + 1].offset
            for i in range(plan.n_chunks - 1)
        )
        assert plan.jobs[-1].end == 3 * CHUNK_SIZE + 17

    def test_empty_input_plans_no_jobs(self):
        assert plan_encode(0, CHUNK_SIZE).n_chunks == 0

    def test_static_bounds_partition_is_contiguous_and_complete(self):
        bounds = static_block_bounds(10, 3)
        assert bounds[0] == 0 and bounds[-1] == 10
        assert all(bounds[i] <= bounds[i + 1] for i in range(len(bounds) - 1))

    def test_decode_plan_rejects_chunk_count_mismatch(self):
        blob = repro.compress(np.arange(9000, dtype=np.float32))
        info = fmt.inspect_container(blob)
        bad = info.__class__(**{**info.__dict__, "n_chunks": info.n_chunks + 1})
        with pytest.raises(CorruptDataError):
            plan_decode(bad)


@pytest.mark.parametrize("name", sorted(CODECS))
class TestPolicyEquivalence:
    """The acceptance invariant: identical bytes under every schedule."""

    @pytest.mark.parametrize("shape", ["empty", "subchunk", "multichunk"])
    def test_byte_identical_across_policies_and_workers(self, name, shape, rng):
        codec = get_codec(name)
        n = {"empty": 0, "subchunk": 64, "multichunk": 60_000}[shape]
        data = _sample(rng, codec.dtype, n)
        reference = compress_bytes(data, codec, executor="serial")
        for policy in SCHEDULING_POLICIES:
            for workers in (1, 2, 7):
                blob = compress_bytes(
                    data, codec, workers=workers, executor=policy
                )
                assert blob == reference, (policy, workers)
                back, _ = decompress_bytes(blob, workers=workers, executor=policy)
                assert back == data, (policy, workers)


class TestThreadLocality:
    """Regression for the shared-pipeline race a stateful stage exposes.

    The old thread-pool mapped ``pool_workers[i % workers]``, handing one
    pipeline instance to several concurrently running futures.  A stage
    with any per-call scratch state then corrupts neighbouring chunks.
    The executor contract — ``make_worker(worker_id)`` runs inside the
    owning thread, one worker per slot — makes that impossible; this
    test fails against the old scheme.
    """

    @pytest.mark.parametrize("policy", ["threaded", "static-blocks"])
    def test_one_worker_per_thread(self, policy):
        n_jobs, workers = 64, 7
        lock = threading.Lock()
        # worker_id -> the thread object that built it (strong refs, so
        # object identity stays meaningful even after threads exit)
        built_in: dict[int, threading.Thread] = {}

        def make_worker(worker_id: int):
            thread = threading.current_thread()
            with lock:
                assert worker_id not in built_in  # one worker per slot
                built_in[worker_id] = thread

            def job(i: int):
                # every job of this worker runs on the thread that built it
                assert threading.current_thread() is thread
                return (worker_id, i)

            return job

        results = get_executor(policy, workers).run(n_jobs, make_worker)
        # every job ran exactly once, results in index order
        assert [i for _, i in results] == list(range(n_jobs))
        # distinct execution slots were built in distinct threads
        threads = list(built_in.values())
        assert len(set(map(id, threads))) == len(threads)

    def test_stateful_stage_survives_concurrency(self, rng):
        """A pipeline whose encode is deliberately non-reentrant."""
        from repro.core.executors import ThreadedExecutor

        class StatefulSquarer:
            def __init__(self):
                self.scratch = None

            def __call__(self, i: int) -> int:
                # classic read-compute-write on shared state: corrupts
                # results if two jobs interleave on one instance
                self.scratch = i
                for _ in range(100):
                    pass
                assert self.scratch == i
                return self.scratch * self.scratch

        def make_worker(worker_id: int):
            return StatefulSquarer()

        results = ThreadedExecutor(8).run(200, make_worker)
        assert results == [i * i for i in range(200)]

    def test_threaded_worker_assignment_recorded_in_trace(self, rng):
        codec = get_codec("spspeed")
        data = _sample(rng, codec.dtype, 120_000)
        collector = TraceCollector()
        # batch=False: this exercises the per-chunk worklist, where every
        # chunk is its own claim (batched runs claim whole blocks).
        compress_bytes(data, codec, workers=4, executor="threaded",
                       trace=collector, batch=False)
        workers_seen = {t.worker for t in collector.chunks}
        assert len(workers_seen) > 1  # the worklist actually fanned out


class TestLazyRawFallback:
    def test_compressible_input_never_builds_raw_container(self, rng, monkeypatch):
        calls = []
        original = fmt.build_raw_container

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(
            "repro.core.compressor.fmt.build_raw_container", counting
        )
        codec = get_codec("spratio")
        data = _sample(rng, codec.dtype, 50_000)
        blob = compress_bytes(data, codec)
        assert len(blob) < len(data)
        assert calls == []  # fallback stayed lazy

    def test_incompressible_input_falls_back_to_raw(self, rng):
        data = rng.bytes(50_000)  # random bytes defeat every stage
        codec = get_codec("spspeed")
        blob = compress_bytes(data, codec)
        info = fmt.inspect_container(blob)
        assert info.raw_fallback
        assert len(blob) == fmt.raw_container_size(
            len(data), checksum=fmt.checksum_of(data)
        )
        back, _ = decompress_bytes(blob)
        assert back == data

    def test_raw_size_prediction_is_exact(self, rng):
        data = rng.bytes(1000)
        raw = fmt.build_raw_container(
            codec_id=get_codec("spspeed").codec_id,
            dtype_code=fmt.DTYPE_BYTES, data=data,
        )
        assert len(raw) == fmt.raw_container_size(len(data))


class TestTraceContents:
    def test_trace_records_stages_sizes_and_fallbacks(self, rng):
        codec = get_codec("dpratio")
        data = _sample(rng, codec.dtype, 30_000)
        collector = TraceCollector()
        blob = compress_bytes(data, codec, trace=collector, batch=False)
        assert collector.direction == "compress"
        assert collector.policy == "serial"
        assert collector.n_chunks == len(fmt.inspect_container(blob).chunk_sizes)
        # DPratio: FCM is global, the chunked stages follow
        assert collector.global_stage is not None
        assert collector.global_stage.stage == "fcm"
        for chunk in collector.chunks:
            assert [e.stage for e in chunk.stages] == ["diffms", "raze", "rare"]
            assert chunk.payload_len >= 1
            assert chunk.seconds >= 0
            assert all(e.out_bytes >= 0 and e.seconds >= 0 for e in chunk.stages)
        # payloads in the trace sum to the container's chunk table
        assert (
            sum(t.payload_len for t in collector.chunks)
            == sum(fmt.inspect_container(blob).chunk_sizes)
        )

    def test_decompress_trace(self, rng):
        codec = get_codec("spratio")
        data = _sample(rng, codec.dtype, 60_000)
        blob = compress_bytes(data, codec)
        collector = TraceCollector()
        decompress_bytes(blob, workers=2, executor="static-blocks",
                         trace=collector)
        assert collector.direction == "decompress"
        assert collector.policy == "static-blocks"
        assert collector.workers == 2
        assert sum(t.original_len for t in collector.chunks) >= len(data)

    def test_untraced_path_unaffected(self, rng):
        codec = get_codec("spspeed")
        data = _sample(rng, codec.dtype, 40_000)
        traced = TraceCollector()
        assert compress_bytes(data, codec, trace=traced) == compress_bytes(data, codec)


class TestAPIPassthrough:
    def test_api_accepts_executor_and_trace(self, smooth_f32):
        collector = TraceCollector()
        blob = repro.compress(smooth_f32, executor="static-blocks", workers=3,
                              trace=collector)
        assert blob == repro.compress(smooth_f32)
        assert collector.n_chunks > 1
        out = TraceCollector()
        restored = repro.decompress(blob, executor="threaded", workers=3,
                                    trace=out)
        assert np.array_equal(restored, smooth_f32)
        assert out.direction == "decompress"


class TestPooledExecutor:
    """The persistent pool the service shares across codec jobs.

    Must honour the full executor contract (results in index order,
    workers built inside their threads, lowest-index error) *and* stay
    correct when several ``run()`` calls race on one pool — the serving
    scenario a per-run thread spawn would make pathological.
    """

    def test_byte_identical_to_serial_compression(self, rng):
        codec = get_codec("spratio")
        data = _sample(rng, codec.dtype, 60_000)
        reference = compress_bytes(data, codec, executor="serial")
        with PooledThreadedExecutor(4) as pool:
            for workers in (1, 4):
                blob = compress_bytes(data, codec, workers=workers, executor=pool)
                assert blob == reference
                back, _ = decompress_bytes(blob, executor=pool)
                assert back == data

    def test_results_in_index_order(self):
        with PooledThreadedExecutor(3) as pool:
            results = pool.run(50, lambda worker_id: (lambda i: i * 10))
        assert results == [i * 10 for i in range(50)]

    def test_zero_jobs(self):
        with PooledThreadedExecutor(2) as pool:
            assert pool.run(0, lambda worker_id: (lambda i: i)) == []

    def test_workers_built_inside_pool_threads(self):
        main = threading.current_thread()
        built_on: list[threading.Thread] = []
        lock = threading.Lock()

        def make_worker(worker_id: int):
            with lock:
                built_on.append(threading.current_thread())
            return lambda i: i

        with PooledThreadedExecutor(4) as pool:
            pool.run(16, make_worker)
        assert all(t is not main for t in built_on)
        assert all(t.name.startswith("repro-pool") for t in built_on)

    def test_concurrent_runs_share_one_pool(self):
        failures: list[BaseException] = []

        def one_run(salt: int) -> None:
            try:
                results = pool.run(
                    40, lambda worker_id: (lambda i: i + salt)
                )
                assert results == [i + salt for i in range(40)]
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                failures.append(exc)

        with PooledThreadedExecutor(4) as pool:
            threads = [
                threading.Thread(target=one_run, args=(salt,))
                for salt in (0, 1000, 2000, 3000)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not failures, failures

    def test_lowest_index_error_wins(self):
        def make_worker(worker_id: int):
            def job(i: int) -> int:
                if i in (9, 4, 13):
                    raise RuntimeError(f"boom {i}")
                return i

            return job

        with PooledThreadedExecutor(4) as pool:
            with pytest.raises(RuntimeError, match="boom 4"):
                pool.run(20, make_worker)
            # The pool survives a failed batch.
            assert pool.run(5, lambda w: (lambda i: i)) == list(range(5))

    def test_close_is_idempotent(self):
        pool = PooledThreadedExecutor(2)
        pool.run(4, lambda w: (lambda i: i))
        pool.close()
        pool.close()


class TestFailureContainment:
    """One bad job must not poison the worklist (threaded or blocked)."""

    @pytest.mark.parametrize("policy", ["threaded", "static-blocks"])
    def test_other_jobs_still_run_after_a_failure(self, policy):
        ran: set[int] = set()
        lock = threading.Lock()

        def make_worker(worker_id: int):
            def job(i: int) -> int:
                if i in (3, 7):
                    raise ValueError(f"job {i} is cursed")
                with lock:
                    ran.add(i)
                return i

            return job

        executor = get_executor(policy, 4)
        with pytest.raises(ValueError, match="cursed"):
            executor.run(16, make_worker)
        # Every healthy job completed despite two failures mid-worklist.
        assert ran == set(range(16)) - {3, 7}

    @pytest.mark.parametrize("policy", ["threaded", "static-blocks"])
    def test_lowest_index_error_wins(self, policy):
        # Serial order raises the first failing index; parallel policies
        # must report the same one for deterministic error messages.
        def make_worker(worker_id: int):
            def job(i: int) -> int:
                if i in (5, 11, 2):
                    raise RuntimeError(f"boom {i}")
                return i

            return job

        executor = get_executor(policy, 4)
        with pytest.raises(RuntimeError, match="boom 2"):
            executor.run(16, make_worker)

    def test_worker_construction_failure_is_fatal(self):
        calls = []

        def make_worker(worker_id: int):
            if worker_id == 1:
                raise OSError("no scratch space for worker 1")

            def job(i: int) -> int:
                calls.append(i)
                return i

            return job

        with pytest.raises(OSError, match="scratch"):
            get_executor("threaded", 2).run(8, make_worker)
