"""Salvage-mode decode: damage containment, recovery, and reporting.

The PR's acceptance property lives here: corrupting exactly one chunk of
an N-chunk container recovers the other N-1 chunks bit-exactly, for
every paper codec under every executor policy.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core import container as fmt
from repro.core.codecs import CODECS, get_codec
from repro.core.compressor import compress_bytes, decompress_bytes
from repro.core.executors import SCHEDULING_POLICIES
from repro.core.salvage import ChunkFailure, SalvageReport, merge_ranges, ranges_cover
from repro.errors import ReproError

ALL_CODECS = sorted(CODECS)


def _walk_bytes(codec_name: str, n_bytes: int = 5 * 16384 + 1224) -> bytes:
    codec = get_codec(codec_name)
    rng = np.random.default_rng(20250330)
    n = n_bytes // codec.dtype.itemsize
    walk = np.cumsum(rng.normal(scale=0.01, size=n)) + 1.0
    return np.ascontiguousarray(walk.astype(codec.dtype)).tobytes()


def _flip_in_chunk(blob: bytes, chunk_index: int) -> bytes:
    """Flip one bit in the middle of the given chunk's payload."""
    info = fmt.inspect_container(blob)
    start = info.payload_offset + sum(info.chunk_sizes[:chunk_index])
    buf = bytearray(blob)
    buf[start + info.chunk_sizes[chunk_index] // 2] ^= 0x40
    return bytes(buf)


def _outside_damage_is_exact(got: bytes, want: bytes, damaged) -> bool:
    assert len(got) == len(want)
    a = np.frombuffer(got, dtype=np.uint8)
    b = np.frombuffer(want, dtype=np.uint8)
    trusted = np.ones(len(a), dtype=bool)
    for start, end in damaged:
        trusted[start:end] = False
    return bool(np.array_equal(a[trusted], b[trusted]))


class TestAcceptance:
    """One corrupt chunk costs one chunk — per codec, per policy."""

    @pytest.mark.parametrize("codec_name", ALL_CODECS)
    @pytest.mark.parametrize("policy", SCHEDULING_POLICIES)
    def test_single_chunk_corruption_recovers_the_rest(self, codec_name, policy):
        data = _walk_bytes(codec_name)
        blob = compress_bytes(data, get_codec(codec_name),
                              checksum=True, chunk_checksums=True)
        info = fmt.inspect_container(blob)
        assert not info.raw_fallback and info.n_chunks >= 4
        target = info.n_chunks // 2
        mutant = _flip_in_chunk(blob, target)

        # Strict mode pinpoints the damaged chunk ...
        with pytest.raises(ReproError, match=f"chunk {target} "):
            decompress_bytes(mutant, executor=policy, workers=4)

        # ... salvage mode loses exactly that chunk and nothing else.
        got, _, report = decompress_bytes(
            mutant, errors="salvage", executor=policy, workers=4
        )
        assert isinstance(report, SalvageReport)
        assert report.n_chunks == info.n_chunks
        assert [f.index for f in report.failures] == [target]
        assert report.failures[0].error_type == "ChecksumError"
        assert report.chunks_recovered == info.n_chunks - 1
        assert not report.global_stage_failed
        assert report.checksum_ok is False  # damage reached the output
        assert len(got) == len(data)
        assert report.damaged_ranges  # something was lost...
        assert _outside_damage_is_exact(got, data, report.damaged_ranges)

    @pytest.mark.parametrize("codec_name", ["spspeed", "spratio", "dpspeed"])
    def test_damage_is_exactly_the_chunk_window_without_global_stage(
        self, codec_name
    ):
        # No global stage -> intermediate coordinates ARE output
        # coordinates, so the report must blame exactly one chunk window.
        data = _walk_bytes(codec_name)
        blob = compress_bytes(data, get_codec(codec_name),
                              checksum=True, chunk_checksums=True)
        info = fmt.inspect_container(blob)
        target = 1
        got, _, report = decompress_bytes(
            _flip_in_chunk(blob, target), errors="salvage"
        )
        window = (target * info.chunk_size, (target + 1) * info.chunk_size)
        assert report.damaged_ranges == (window,)
        failure = report.failures[0]
        assert (failure.output_offset, failure.output_offset + failure.output_length) == window
        # The zero-fill is visible in the output.
        assert got[window[0] : window[1]] == bytes(info.chunk_size)

    def test_dpratio_damage_propagates_only_forward(self):
        # FCM match chains point backward, so corrupting a chunk inside
        # the value array can never damage words decoded before it: the
        # chunk's window [c*16384, (c+1)*16384) covers value entries of
        # words >= 2048*c only, and chains of earlier words stay among
        # earlier words.
        data = _walk_bytes("dpratio")
        blob = compress_bytes(data, get_codec("dpratio"),
                              checksum=True, chunk_checksums=True)
        info = fmt.inspect_container(blob)
        target = 1
        # The whole window must sit inside the value array (first half of
        # the doubled FCM intermediate) for the word arithmetic to hold.
        assert 2 * info.chunk_size <= info.intermediate_len // 2
        got, _, report = decompress_bytes(
            _flip_in_chunk(blob, target), errors="salvage"
        )
        assert not report.global_stage_failed
        first_damaged = report.damaged_ranges[0][0]
        assert first_damaged >= target * info.chunk_size
        assert got[:first_damaged] == data[:first_damaged]

    def test_dpratio_trailer_damage_zero_fills_honestly(self):
        # The last intermediate chunk holds the FCM tail/trailer; losing
        # it makes the framing untrustworthy, so salvage must fall back
        # to full-range damage rather than guess.
        data = _walk_bytes("dpratio")
        blob = compress_bytes(data, get_codec("dpratio"),
                              checksum=True, chunk_checksums=True)
        info = fmt.inspect_container(blob)
        got, _, report = decompress_bytes(
            _flip_in_chunk(blob, info.n_chunks - 1), errors="salvage"
        )
        assert report.global_stage_failed
        assert report.damaged_ranges == ((0, len(data)),)
        assert got == bytes(len(data))


class TestSalvageEdges:
    def test_pristine_container_salvages_clean(self, smooth_f32):
        blob = repro.compress(smooth_f32)
        array, report = repro.decompress(blob, errors="salvage")
        assert report.ok
        assert report.checksum_ok is True
        assert report.damaged_ranges == ()
        assert np.array_equal(array, smooth_f32)

    def test_api_returns_array_and_report(self, smooth_f64):
        blob = repro.compress(smooth_f64)
        array, report = repro.decompress(blob, errors="salvage")
        assert isinstance(report, SalvageReport)
        assert array.dtype == np.float64 and array.shape == smooth_f64.shape

    def test_invalid_errors_value_rejected(self, smooth_f32):
        blob = repro.compress(smooth_f32)
        with pytest.raises(ValueError, match="salvage"):
            decompress_bytes(blob, errors="ignore")

    def test_corrupt_stored_checksum_is_flagged_not_fatal(self, smooth_f32):
        # Flip the stored whole-input CRC: every chunk verifies, output is
        # actually correct, but the verdict must be honest about the
        # mismatch (the CRC field itself is the damaged byte).
        blob = repro.compress(smooth_f32)
        info = fmt.inspect_container(blob)
        crc_offset = info.payload_offset - 8 * info.n_chunks - 4
        buf = bytearray(blob)
        buf[crc_offset] ^= 0xFF
        got, _, report = decompress_bytes(bytes(buf), errors="salvage")
        assert not report.failures
        assert report.checksum_ok is False
        assert not report.ok
        assert got == smooth_f32.tobytes()

    def test_header_damage_still_raises_in_salvage_mode(self, smooth_f32):
        blob = bytearray(repro.compress(smooth_f32))
        blob[0] ^= 0xFF  # magic
        with pytest.raises(ReproError):
            decompress_bytes(bytes(blob), errors="salvage")

    def test_raw_fallback_salvage(self, rng):
        data = rng.bytes(30_000)  # incompressible -> raw container
        blob = repro.compress(data, "spspeed")
        info = fmt.inspect_container(blob)
        assert info.raw_fallback
        got, _, report = decompress_bytes(blob, errors="salvage")
        assert got == data and report.ok and report.n_chunks == 0
        # Damaged raw payload: full-range damage, honest verdict.
        buf = bytearray(blob)
        buf[-1] ^= 0x01
        got, _, report = decompress_bytes(bytes(buf), errors="salvage")
        assert report.checksum_ok is False
        assert report.damaged_ranges == ((0, len(data)),)

    def test_every_chunk_corrupt_zero_fills_everything(self, smooth_f32):
        blob = repro.compress(smooth_f32, "spratio")
        info = fmt.inspect_container(blob)
        mutant = blob
        for i in range(info.n_chunks):
            mutant = _flip_in_chunk(mutant, i)
        got, _, report = decompress_bytes(mutant, errors="salvage")
        assert len(report.failures) == info.n_chunks
        assert report.chunks_recovered == 0
        assert got == bytes(len(smooth_f32.tobytes()))

    def test_without_chunk_crcs_damage_is_not_localised(self, smooth_f32):
        # v1 container: salvage still works, but a decode failure can only
        # be blamed on the chunk whose *stage* noticed, so recovery is
        # best-effort — the report must still never claim damaged-free
        # bytes that differ.
        data = smooth_f32.tobytes()
        blob = compress_bytes(data, get_codec("spratio"),
                              checksum=True, chunk_checksums=False)
        info = fmt.inspect_container(blob)
        assert info.chunk_crcs is None
        got, _, report = decompress_bytes(
            _flip_in_chunk(blob, 1), errors="salvage"
        )
        assert len(got) == len(data)
        assert report.checksum_ok is False


class TestSalvageHelpers:
    def test_merge_ranges(self):
        assert merge_ranges([(5, 9), (0, 3), (8, 12), (3, 4)]) == ((0, 4), (5, 12))
        assert merge_ranges([]) == ()
        assert merge_ranges([(3, 3), (4, 2)]) == ()  # empty/inverted dropped

    def test_ranges_cover(self):
        ranges = ((0, 4), (10, 20))
        assert ranges_cover(ranges, 3, 2)
        assert ranges_cover(ranges, 19, 100)
        assert not ranges_cover(ranges, 4, 6)
        assert not ranges_cover(ranges, 20, 5)

    def test_report_render_mentions_failures(self):
        failure = ChunkFailure(
            index=3, payload_offset=100, payload_length=50,
            output_offset=49152, output_length=16384,
            reason="payload CRC32 mismatch", error_type="ChecksumError",
        )
        report = SalvageReport(
            n_chunks=8, output_len=131072, failures=(failure,),
            damaged_ranges=((49152, 65536),), checksum_ok=False,
        )
        text = report.render()
        assert "7/8 chunks recovered" in text
        assert "chunk 3" in text and "ChecksumError" in text
        assert "MISMATCH" in text
        assert report.damaged_bytes == 16384
