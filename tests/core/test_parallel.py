"""Tests for the threaded chunk executor (the paper's OpenMP analogue)."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.codecs import CODECS, get_codec
from repro.core.compressor import compress_bytes, decompress_bytes


@pytest.mark.parametrize("name", sorted(CODECS))
class TestParallelEquivalence:
    def test_parallel_output_is_byte_identical(self, name, rng):
        codec = get_codec(name)
        data = np.cumsum(rng.normal(scale=0.01, size=60_000)).astype(codec.dtype).tobytes()
        serial = compress_bytes(data, codec, workers=1)
        for workers in (2, 4, 7):
            assert compress_bytes(data, codec, workers=workers) == serial

    def test_parallel_decompress_matches(self, name, rng):
        codec = get_codec(name)
        data = np.cumsum(rng.normal(scale=0.01, size=60_000)).astype(codec.dtype).tobytes()
        blob = compress_bytes(data, codec)
        for workers in (1, 3, 8):
            back, _ = decompress_bytes(blob, workers=workers)
            assert back == data


class TestParallelAPI:
    def test_api_exposes_workers(self, smooth_f32):
        serial = repro.compress(smooth_f32)
        parallel = repro.compress(smooth_f32, workers=4)
        assert serial == parallel
        assert np.array_equal(repro.decompress(parallel, workers=4), smooth_f32)

    def test_single_chunk_input(self, rng):
        data = rng.normal(size=100).astype(np.float32)
        assert repro.compress(data, workers=8) == repro.compress(data)

    def test_empty_input(self):
        data = np.zeros(0, dtype=np.float32)
        assert repro.compress(data, workers=4) == repro.compress(data)
