"""Tests for the optional container integrity checksum."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.errors import CorruptDataError, FormatError


class TestChecksum:
    def test_checksummed_roundtrip(self, smooth_f32):
        blob = repro.compress(smooth_f32, checksum=True)
        assert np.array_equal(repro.decompress(blob), smooth_f32)
        assert repro.inspect(blob).checksum is not None

    def test_default_is_checksummed(self, smooth_f32):
        # The documented defaults (container.DEFAULT_CHECKSUM /
        # DEFAULT_CHUNK_CHECKSUMS) are integrity-on everywhere.
        blob = repro.compress(smooth_f32)
        info = repro.inspect(blob)
        assert info.checksum is not None
        assert info.chunk_crcs is not None

    def test_default_matches_documented_constants(self, smooth_f32):
        from repro.core import container as fmt

        blob = repro.compress(smooth_f32)
        info = repro.inspect(blob)
        assert (info.checksum is not None) == fmt.DEFAULT_CHECKSUM
        assert (info.chunk_crcs is not None) == fmt.DEFAULT_CHUNK_CHECKSUMS

    def test_overhead_is_four_bytes(self, smooth_f32):
        plain = repro.compress(smooth_f32, checksum=False, chunk_checksums=False)
        checked = repro.compress(smooth_f32, checksum=True, chunk_checksums=False)
        assert len(checked) == len(plain) + 4

    def test_chunk_checksum_overhead_is_four_bytes_per_chunk(self, smooth_f32):
        plain = repro.compress(smooth_f32, checksum=False, chunk_checksums=False)
        checked = repro.compress(smooth_f32, checksum=False, chunk_checksums=True)
        n_chunks = repro.inspect(checked).n_chunks
        assert n_chunks > 1
        assert len(checked) == len(plain) + 4 * n_chunks

    def test_checksum_survives_raw_fallback(self, rng):
        data = rng.integers(0, 256, size=50_000, dtype=np.uint8).tobytes()
        blob = repro.compress(data, "spspeed", checksum=True)
        info = repro.inspect(blob)
        assert info.raw_fallback and info.checksum is not None
        assert repro.decompress(blob) == data

    def test_silent_payload_corruption_is_caught(self, smooth_f32):
        # Without checksums a payload bit flip can decode to wrong data
        # silently; with checksums it must raise.
        blob = bytearray(repro.compress(smooth_f32, checksum=True))
        for offset in (len(blob) - 1, len(blob) // 2, len(blob) - 100):
            corrupted = bytearray(blob)
            corrupted[offset] ^= 0x10
            with pytest.raises((CorruptDataError, FormatError)):
                repro.decompress(bytes(corrupted))

    def test_truncated_checksum_block_rejected(self, smooth_f32):
        blob = repro.compress(smooth_f32, checksum=True)
        with pytest.raises(FormatError):
            repro.inspect(blob[:29])
