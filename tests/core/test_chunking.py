"""Unit tests for chunk framing helpers."""

from __future__ import annotations

import pytest

from repro.core.chunking import CHUNK_SIZE, chunk_count, chunk_lengths, iter_chunks


class TestChunking:
    def test_default_chunk_size_matches_paper(self):
        assert CHUNK_SIZE == 16384  # 16 kB, paper §3

    def test_iter_chunks_covers_everything(self):
        data = bytes(range(256)) * 200  # 51200 bytes
        chunks = list(iter_chunks(data))
        assert b"".join(chunks) == data
        assert all(len(c) == CHUNK_SIZE for c in chunks[:-1])

    def test_last_chunk_short(self):
        data = bytes(CHUNK_SIZE + 5)
        chunks = list(iter_chunks(data))
        assert [len(c) for c in chunks] == [CHUNK_SIZE, 5]

    def test_empty_input(self):
        assert list(iter_chunks(b"")) == []
        assert chunk_count(0) == 0
        assert chunk_lengths(0) == []

    def test_exact_multiple(self):
        assert chunk_lengths(2 * CHUNK_SIZE) == [CHUNK_SIZE, CHUNK_SIZE]
        assert chunk_count(2 * CHUNK_SIZE) == 2

    def test_lengths_sum(self):
        for total in (1, 100, CHUNK_SIZE - 1, CHUNK_SIZE, CHUNK_SIZE + 1, 10 * CHUNK_SIZE + 7):
            lengths = chunk_lengths(total)
            assert sum(lengths) == total
            assert len(lengths) == chunk_count(total)

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            list(iter_chunks(b"abc", 0))
