"""Truncation sweep: every prefix of a valid container fails safely.

For each paper codec, every single prefix length of a compressed
container is fed to the decoder; each one must raise a
:class:`~repro.errors.ReproError` subclass — never a foreign exception,
never a silent wrong answer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.codecs import CODECS, get_codec
from repro.core.compressor import compress_bytes, decompress_bytes
from repro.errors import ReproError


def _blob_for(codec_name: str) -> bytes:
    codec = get_codec(codec_name)
    rng = np.random.default_rng(99)
    n = (2 * 16384 + 1000) // codec.dtype.itemsize
    walk = np.cumsum(rng.normal(scale=0.01, size=n)) + 1.0
    data = np.ascontiguousarray(walk.astype(codec.dtype)).tobytes()
    return compress_bytes(data, codec, checksum=True, chunk_checksums=True)


@pytest.mark.parametrize("codec_name", sorted(CODECS))
def test_every_prefix_raises_repro_error(codec_name):
    blob = _blob_for(codec_name)
    for length in range(len(blob)):
        try:
            decompress_bytes(blob[:length])
        except ReproError:
            continue
        except BaseException as exc:  # pragma: no cover - the failure path
            pytest.fail(
                f"prefix of {length}/{len(blob)} bytes raised "
                f"{type(exc).__name__} instead of a ReproError: {exc}"
            )
        pytest.fail(
            f"prefix of {length}/{len(blob)} bytes decoded without an error"
        )


@pytest.mark.parametrize("codec_name", sorted(CODECS))
def test_every_prefix_raises_in_salvage_mode_too(codec_name):
    # Truncation cuts the chunk table / payload geometry itself, so even
    # salvage mode has nothing trustworthy to work from — but it must
    # still fail with a typed error, not crash.
    blob = _blob_for(codec_name)
    for length in range(0, len(blob), 7):  # stride: same classes, less time
        try:
            decompress_bytes(blob[:length], errors="salvage")
        except ReproError:
            continue
        except BaseException as exc:  # pragma: no cover - the failure path
            pytest.fail(
                f"salvage of a {length}-byte prefix raised "
                f"{type(exc).__name__}: {exc}"
            )
        pytest.fail(f"salvage of a {length}-byte prefix reported success")
