"""Range decodes: byte-identity, O(range) chunk touch, salvage locality.

The contract under test (ISSUE 6 acceptance): ``decompress_range`` is
byte-identical to full-decompress-then-slice for every codec across the
boundary sweep, while decoding *only* the chunks overlapping the range —
asserted via trace chunk counts — and damage outside the range is never
even read.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core import container as fmt
from repro.core.chunking import CHUNK_SIZE, chunk_count
from repro.core.codecs import CODECS, get_codec
from repro.core.compressor import (
    compress_bytes,
    decompress_bytes,
    decompress_range_bytes,
)
from repro.core.plan import plan_for_range
from repro.core.trace import TraceCollector
from repro.errors import BoundsError

#: kwargs that make each codec's containers chunk-independent (DPratio
#: needs restart framing; the others are seekable by construction).
SEEKABLE = {"dpratio": {"fcm": "restart"}}


def _sample(rng, codec, n_bytes: int = 160_000) -> bytes:
    n = n_bytes // codec.dtype.itemsize
    return np.cumsum(rng.normal(scale=0.01, size=n)).astype(codec.dtype).tobytes()


def _seekable_blob(rng, name: str, **kwargs) -> tuple[bytes, bytes]:
    codec = get_codec(name)
    data = _sample(rng, codec)
    merged = {**SEEKABLE.get(name, {}), **kwargs}
    return data, compress_bytes(data, codec, **merged)


#: The boundary sweep, as (start, stop) factories over ``n`` total bytes.
#: 160_000 B over 16_384 B chunks = 9 full chunks + a ragged tail.
SWEEP = {
    "empty": lambda n: (n // 2, n // 2),
    "single-byte": lambda n: (CHUNK_SIZE + 7, CHUNK_SIZE + 8),
    "within-chunk": lambda n: (100, 5_000),
    "chunk-aligned": lambda n: (CHUNK_SIZE, 2 * CHUNK_SIZE),
    "spanning-two": lambda n: (CHUNK_SIZE - 10, CHUNK_SIZE + 10),
    "spanning-many": lambda n: (CHUNK_SIZE // 2, 5 * CHUNK_SIZE + 3),
    "prefix": lambda n: (0, 3 * CHUNK_SIZE - 1),
    "suffix": lambda n: (n - 2 * CHUNK_SIZE - 5, n),
    "ragged-tail": lambda n: (n - 100, n),
    "full": lambda n: (0, n),
}


@pytest.mark.parametrize("name", sorted(CODECS))
class TestBoundarySweep:
    def test_byte_identity_vs_full_then_slice(self, name, rng):
        data, blob = _seekable_blob(rng, name)
        full, _ = decompress_bytes(blob)
        assert full == data
        for label, bounds in SWEEP.items():
            start, stop = bounds(len(data))
            got, _ = decompress_range_bytes(blob, start, stop)
            assert got == data[start:stop], f"{name}/{label}"

    def test_only_overlapping_chunks_decode(self, name, rng):
        data, blob = _seekable_blob(rng, name)
        info = fmt.inspect_container(blob)
        if info.raw_fallback:
            pytest.skip("raw containers slice the payload without decoding")
        n_chunks = chunk_count(len(data), CHUNK_SIZE)
        for label, bounds in SWEEP.items():
            start, stop = bounds(len(data))
            first = start // CHUNK_SIZE
            last = (stop - 1) // CHUNK_SIZE if stop > start else first - 1
            expected = list(range(first, min(last, n_chunks - 1) + 1))
            collector = TraceCollector()
            decompress_range_bytes(blob, start, stop, trace=collector,
                                   batch=False)
            assert collector.direction == "decompress-range"
            indices = [chunk.index for chunk in collector.chunks]
            assert indices == expected, f"{name}/{label}"


class TestSubsetPlans:
    def test_jobs_carry_global_indices(self, rng):
        data, blob = _seekable_blob(rng, "spratio")
        info = fmt.inspect_container(blob)
        plan = plan_for_range(info, 3 * CHUNK_SIZE + 1, 5 * CHUNK_SIZE + 1)
        assert [job.index for job in plan.plan.jobs] == [3, 4, 5]
        assert plan.aligned_start == 3 * CHUNK_SIZE
        assert plan.trim == (1, 2 * CHUNK_SIZE + 1)
        # Output offsets are plan-relative: a fresh buffer, not the file's.
        assert plan.plan.out_offsets[0] == 0

    def test_out_of_bounds_rejected(self, rng):
        data, blob = _seekable_blob(rng, "spspeed")
        info = fmt.inspect_container(blob)
        with pytest.raises(BoundsError):
            plan_for_range(info, 0, len(data) + 1)
        with pytest.raises(BoundsError):
            plan_for_range(info, -1, 10)
        with pytest.raises(BoundsError):
            plan_for_range(info, 10, 9)
        with pytest.raises(BoundsError):
            decompress_range_bytes(blob, 0, len(data) + 1)


class TestExecutorsOverRanges:
    @pytest.mark.parametrize("policy", ["threaded", "static-blocks", "process"])
    def test_policies_match_serial(self, policy, rng):
        data, blob = _seekable_blob(rng, "dpratio")
        start, stop = CHUNK_SIZE // 2, 7 * CHUNK_SIZE + 11
        serial, _ = decompress_range_bytes(blob, start, stop)
        parallel, _ = decompress_range_bytes(
            blob, start, stop, workers=3, executor=policy
        )
        assert parallel == serial == data[start:stop]


class TestLegacyFallback:
    def test_global_fcm_falls_back_to_full_decode(self, rng):
        codec = get_codec("dpratio")
        data = _sample(rng, codec)
        blob = compress_bytes(data, codec, fcm="global")
        assert fmt.inspect_container(blob).version <= 2
        start, stop = CHUNK_SIZE + 3, 4 * CHUNK_SIZE
        got, _ = decompress_range_bytes(blob, start, stop)
        assert got == data[start:stop]

    def test_raw_fallback_slices_payload(self, rng):
        data = rng.bytes(50_000)  # random bytes defeat every stage
        blob = compress_bytes(data, get_codec("spspeed"))
        assert fmt.inspect_container(blob).raw_fallback
        got, _ = decompress_range_bytes(blob, 1_000, 30_000)
        assert got == data[1_000:30_000]


def _flip_payload_byte(blob: bytes, chunk: int) -> bytes:
    """Flip one bit in the middle of ``chunk``'s payload window."""
    info = fmt.inspect_container(blob)
    offsets = fmt.payload_offsets(info)
    buf = bytearray(blob)
    buf[offsets[chunk] + info.chunk_sizes[chunk] // 2] ^= 0x40
    return bytes(buf)


@pytest.mark.parametrize("name", ["spratio", "dpratio"])
class TestSalvageLocality:
    def test_damage_outside_range_is_never_read(self, name, rng):
        data, blob = _seekable_blob(rng, name, chunk_checksums=True)
        damaged = _flip_payload_byte(blob, chunk=0)
        start, stop = 2 * CHUNK_SIZE, 4 * CHUNK_SIZE
        # Strict mode succeeds: chunk 0 is outside the plan entirely.
        got, _ = decompress_range_bytes(damaged, start, stop)
        assert got == data[start:stop]
        # And the trace proves the damaged chunk was never decoded.
        collector = TraceCollector()
        decompress_range_bytes(damaged, start, stop, trace=collector,
                               batch=False)
        assert [c.index for c in collector.chunks] == [2, 3]
        # Salvage agrees: nothing in the requested window is damaged.
        got, _, report = decompress_range_bytes(
            damaged, start, stop, errors="salvage"
        )
        assert report.ok and not report.failures
        assert got == data[start:stop]

    def test_damage_inside_range_zero_fills_only_its_chunk(self, name, rng):
        data, blob = _seekable_blob(rng, name, chunk_checksums=True)
        damaged = _flip_payload_byte(blob, chunk=3)
        start, stop = 2 * CHUNK_SIZE + 10, 5 * CHUNK_SIZE - 10
        got, _, report = decompress_range_bytes(
            damaged, start, stop, errors="salvage"
        )
        assert not report.ok
        assert [failure.index for failure in report.failures] == [3]
        # Damaged ranges are relative to the returned slice.
        lo = 3 * CHUNK_SIZE - start
        hi = 4 * CHUNK_SIZE - start
        assert list(report.damaged_ranges) == [(lo, hi)]
        assert got[lo:hi] == bytes(hi - lo)
        # Every byte outside the reported range is exact.
        want = data[start:stop]
        assert got[:lo] == want[:lo] and got[hi:] == want[hi:]

    def test_strict_mode_names_the_global_chunk(self, name, rng):
        data, blob = _seekable_blob(rng, name, chunk_checksums=True)
        damaged = _flip_payload_byte(blob, chunk=3)
        with pytest.raises(repro.ReproError, match="chunk 3"):
            decompress_range_bytes(damaged, 3 * CHUNK_SIZE,
                                   3 * CHUNK_SIZE + 100)


class TestElementAPI:
    def test_slice_semantics(self, smooth_f64):
        blob = repro.compress(smooth_f64, "dpratio", fcm="restart")
        n = smooth_f64.size
        for start, stop in [(None, None), (100, 9_000), (-500, None),
                            (None, -100), (8_000, 2_000), (0, 0)]:
            got = repro.decompress_range(blob, start, stop)
            assert np.array_equal(got, smooth_f64[start:stop])
            assert got.dtype == np.float64
        assert repro.decompress_range(blob, n + 50, n + 90).size == 0

    def test_result_is_flat_even_for_shaped_arrays(self, rng):
        field = rng.normal(size=(100, 80)).astype(np.float32)
        blob = repro.compress(field)
        got = repro.decompress_range(blob, 40, 240)
        assert got.ndim == 1
        assert np.array_equal(got, field.reshape(-1)[40:240])

    def test_bytes_in_bytes_out(self, rng):
        payload = rng.bytes(40_000)
        blob = repro.compress(payload, "spspeed")
        assert repro.decompress_range(blob, 5, 99) == payload[5:99]

    def test_salvage_returns_report(self, smooth_f32):
        blob = repro.compress(smooth_f32, "spratio")
        damaged = _flip_payload_byte(blob, chunk=1)
        # Chunk 1 holds elements 4096..8192 (16 KiB of f32).
        got, report = repro.decompress_range(
            blob=damaged, start=0, stop=5_000, errors="salvage"
        )
        assert not report.ok
        assert got.size == 5_000
