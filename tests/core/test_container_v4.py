"""Container v4: the per-chunk codec table.

Validation must reject every malformed table before a single payload
byte is trusted; concat composes mixed inputs into a correct merged
table; salvage attributes each failure to the member codec that owns
the chunk; and the v4 bytes the selector writes are frozen by golden
digests — a change here means a new wire version, not an updated hash.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

import repro
from repro.core import container as fmt
from repro.core.codecs import get_codec
from repro.core.compressor import compress_bytes, decompress_bytes
from repro.errors import FormatError, ReproError
from repro.fuzzing import (
    CODEC_TABLE_MUST_REJECT,
    FLAG_MUST_REJECT,
    mutate,
)

CHUNK = 8192


def _mixed_f32(seed: int = 0x4D495853) -> bytes:
    rng = np.random.default_rng(seed)
    smooth = np.cumsum(rng.normal(size=3 * CHUNK // 4)).astype("<f4")
    noisy = rng.random(3 * CHUNK // 4).astype("<f4")
    return np.concatenate([smooth, noisy]).tobytes()


def _mixed_v4_blob() -> tuple[bytes, bytes]:
    """A genuinely mixed v4 container built by concat, plus its data."""
    rng = np.random.default_rng(0xC4)
    a = np.cumsum(rng.normal(size=2 * CHUNK // 4)).astype("<f4").tobytes()
    b = rng.random(2 * CHUNK // 4).astype("<f4").tobytes()
    blob = fmt.concat_containers([
        compress_bytes(a, get_codec("spratio"), chunk_size=CHUNK,
                       dtype_code=fmt.DTYPE_F32, chunk_checksums=True),
        compress_bytes(b, get_codec("spspeed"), chunk_size=CHUNK,
                       dtype_code=fmt.DTYPE_F32, chunk_checksums=True),
    ])
    return blob, a + b


class TestBuildValidation:
    def test_table_length_must_match_chunks(self):
        with pytest.raises(ValueError, match="one codec id per chunk"):
            fmt.build_container(
                codec_id=5, dtype_code=fmt.DTYPE_F32, original_len=8,
                intermediate_len=8, chunk_size=8,
                chunk_payloads=[b"\x00ab"], chunk_codecs=[1, 2],
            )

    def test_table_excludes_container_restart_flag(self):
        with pytest.raises(ValueError, match="restart"):
            fmt.build_container(
                codec_id=5, dtype_code=fmt.DTYPE_F64, original_len=8,
                intermediate_len=8, chunk_size=8,
                chunk_payloads=[b"\x00ab"], chunk_codecs=[3],
                fcm_restart=True,
            )

    def test_version_is_4_with_table(self):
        blob = fmt.build_container(
            codec_id=5, dtype_code=fmt.DTYPE_F32, original_len=4,
            intermediate_len=4, chunk_size=4,
            chunk_payloads=[b"\x00abcd"], chunk_codecs=[1],
        )
        info = fmt.inspect_container(blob)
        assert info.version == fmt.VERSION_CHUNK_CODECS
        assert info.chunk_codecs == (1,)


class TestInspectValidation:
    def _v4(self) -> bytes:
        blob, _ = _mixed_v4_blob()
        return blob

    def test_unknown_member_id_rejected(self):
        buf = bytearray(self._v4())
        info = fmt.inspect_container(bytes(buf))
        table_at = info.payload_offset - info.n_chunks
        buf[table_at] = 0xEE
        with pytest.raises(FormatError, match="not a known fixed codec"):
            fmt.inspect_container(bytes(buf))

    def test_selector_id_in_table_rejected(self):
        # The selector's own id can never appear in the table: there is
        # no pipeline behind it.
        buf = bytearray(self._v4())
        info = fmt.inspect_container(bytes(buf))
        buf[info.payload_offset - 1] = get_codec("auto").codec_id
        with pytest.raises(FormatError, match="not a known fixed codec"):
            fmt.inspect_container(bytes(buf))

    def test_restart_flag_with_table_rejected(self):
        buf = bytearray(self._v4())
        buf[7] |= fmt.FLAG_FCM_RESTART
        with pytest.raises(FormatError, match="restart"):
            fmt.inspect_container(bytes(buf))

    def test_intermediate_len_must_equal_original(self):
        buf = bytearray(self._v4())
        info = fmt.inspect_container(bytes(buf))
        # intermediate_len lives at offset 16 in the <4sBBBBQQII header.
        import struct

        struct.pack_into("<Q", buf, 16, info.original_len + 8)
        with pytest.raises(FormatError, match="intermediate length"):
            fmt.inspect_container(bytes(buf))

    def test_raw_fallback_with_table_flag_rejected(self):
        raw = compress_bytes(np.random.default_rng(1).bytes(64),
                             get_codec("auto"))
        info = fmt.inspect_container(raw)
        assert info.raw_fallback
        buf = bytearray(raw)
        buf[7] |= fmt.FLAG_CHUNK_CODECS
        # On the v1 raw container the flag is unknown; claiming version 4
        # instead trips the dedicated raw-fallback rule.  Both reject.
        with pytest.raises(FormatError, match="unknown flag"):
            fmt.inspect_container(bytes(buf))
        buf[4] = fmt.VERSION_CHUNK_CODECS
        with pytest.raises(FormatError, match="codec table"):
            fmt.inspect_container(bytes(buf))

    def test_truncated_table_rejected(self):
        blob = self._v4()
        info = fmt.inspect_container(blob)
        # Drop the final payload byte: the table region then swallows a
        # payload byte and the total payload length no longer matches.
        with pytest.raises(FormatError):
            fmt.inspect_container(blob[:-1])
        # Drop a table byte from the middle instead.
        table_at = info.payload_offset - info.n_chunks
        mutant = blob[: table_at + 1] + blob[table_at + 2 :]
        with pytest.raises(FormatError):
            fmt.inspect_container(mutant)


class TestConcatComposition:
    def test_uniform_inputs_stay_v3(self):
        data = _mixed_f32()
        blobs = [
            compress_bytes(data[: len(data) // 2], get_codec("spratio"),
                           chunk_size=CHUNK, dtype_code=fmt.DTYPE_F32),
            compress_bytes(data[len(data) // 2 :], get_codec("spratio"),
                           chunk_size=CHUNK, dtype_code=fmt.DTYPE_F32),
        ]
        merged = fmt.concat_containers(blobs)
        info = fmt.inspect_container(merged)
        assert info.version == 3
        assert info.chunk_codecs is None
        assert decompress_bytes(merged)[0] == data

    def test_v4_input_composes_into_merged_table(self):
        mixed, mixed_data = _mixed_v4_blob()
        extra = np.random.default_rng(9).random(CHUNK // 4).astype("<f4")
        tail = compress_bytes(extra.tobytes(), get_codec("spspeed"),
                              chunk_size=CHUNK, dtype_code=fmt.DTYPE_F32)
        merged = fmt.concat_containers([mixed, tail])
        info = fmt.inspect_container(merged)
        assert info.version == fmt.VERSION_CHUNK_CODECS
        mixed_info = fmt.inspect_container(mixed)
        assert info.chunk_codecs[: mixed_info.n_chunks] == mixed_info.chunk_codecs
        assert all(
            cid == get_codec("spspeed").codec_id
            for cid in info.chunk_codecs[mixed_info.n_chunks :]
        )
        assert decompress_bytes(merged)[0] == mixed_data + extra.tobytes()

    def test_raw_fallback_selector_member_gets_fixed_id(self):
        noise = np.random.default_rng(3).bytes(2 * CHUNK)
        raw = compress_bytes(noise, get_codec("auto"), chunk_size=CHUNK,
                             dtype_code=fmt.DTYPE_F32)
        assert fmt.inspect_container(raw).raw_fallback
        other = compress_bytes(_mixed_f32(), get_codec("spratio"),
                               chunk_size=CHUNK, dtype_code=fmt.DTYPE_F32)
        merged = fmt.concat_containers([raw, other])
        info = fmt.inspect_container(merged)
        assert info.version == fmt.VERSION_CHUNK_CODECS
        assert get_codec("auto").codec_id not in info.chunk_codecs
        assert decompress_bytes(merged)[0] == noise + _mixed_f32()


class TestMixedSalvageAttribution:
    def test_failure_names_the_member_codec(self):
        blob, data = _mixed_v4_blob()
        info = fmt.inspect_container(blob)
        assert len(set(info.chunk_codecs)) > 1
        for target in range(info.n_chunks):
            start = info.payload_offset + sum(info.chunk_sizes[:target])
            buf = bytearray(blob)
            buf[start + info.chunk_sizes[target] // 2] ^= 0x10
            got, _, report = decompress_bytes(bytes(buf), errors="salvage")
            assert [f.index for f in report.failures] == [target]
            failure = report.failures[0]
            member = get_codec(
                "spratio" if info.chunk_codecs[target] == 2 else "spspeed"
            )
            assert failure.codec == member.name
            assert f"codec {member.name}" in str(failure)
            assert len(got) == len(data)

    def test_clean_mixed_salvage_reports_no_failures(self):
        blob, data = _mixed_v4_blob()
        got, _, report = decompress_bytes(blob, errors="salvage")
        assert got == data
        assert list(report.failures) == []
        assert report.chunks_recovered == report.n_chunks


class TestCodecTableFuzzRegression:
    """The targeted sweep from the fuzz harness, frozen as a test: every
    codec-table mutator that changes the blob must be rejected."""

    def _cases(self):
        mixed, _ = _mixed_v4_blob()
        auto = compress_bytes(_mixed_f32(), get_codec("auto"),
                              chunk_size=CHUNK, dtype_code=fmt.DTYPE_F32)
        assert fmt.inspect_container(auto).chunk_codecs is not None
        return {"mixed-concat": mixed, "auto": auto}

    @pytest.mark.parametrize("mutator", sorted(CODEC_TABLE_MUST_REJECT))
    def test_table_mutators_rejected_on_v4(self, mutator):
        for label, blob in self._cases().items():
            for seed in range(10):
                rng = np.random.default_rng(seed)
                mutant = mutate(blob, mutator, rng)
                if mutant == blob:
                    continue
                with pytest.raises(ReproError):
                    decompress_bytes(mutant)

    @pytest.mark.parametrize("mutator", sorted(FLAG_MUST_REJECT))
    def test_flag_mutator_rejected_everywhere(self, mutator):
        # On v4 the cleared flag breaks geometry; on v1-v3 the set flag
        # is unknown for that version.  Both directions must reject.
        cases = self._cases()
        cases["plain-v1"] = compress_bytes(
            _mixed_f32(), get_codec("spratio"), chunk_size=CHUNK,
            dtype_code=fmt.DTYPE_F32,
        )
        for label, blob in cases.items():
            rng = np.random.default_rng(0)
            mutant = mutate(blob, mutator, rng)
            assert mutant != blob, label
            with pytest.raises(ReproError):
                decompress_bytes(mutant)


#: sha256 of the v4 containers the selector writes over the corpus
#: below, recorded when the adaptive codec landed.  The selection is
#: part of the wire contract: a digest change means the probe, policy,
#: or container writer changed the bytes — bump the container version
#: (or refit deliberately and say so), never silently update a hash.
GOLDEN_V4_SHA256 = {
    "mixed-f32/auto": "bd94b4e4d9ede28796013cfc546f735c37b5a18284033a9dac1bedfff2bfdd79",
    "mixed-f64/auto": "8e22ebe71038f2a4ad55da6019b720a89aa2a4de7beea0683b59ac8a2c3301fa",
    "concat/sp-mixed": "41b4abd4bf7188e57030106c6dd6a92d184a3a8779a16654433f32a27fb4d4e1",
}


def _v4_corpus():
    rng = np.random.default_rng(0x1DEA)
    f32 = np.concatenate([
        np.cumsum(rng.normal(size=3 * CHUNK // 4)).astype("<f4"),
        rng.random(3 * CHUNK // 4).astype("<f4"),
    ])
    f64 = np.concatenate([
        np.cumsum(rng.normal(size=2 * CHUNK // 8)).astype("<f8"),
        rng.random(2 * CHUNK // 8).astype("<f8"),
    ])
    return f32, f64


class TestGoldenV4Digests:
    def test_selector_containers_byte_identical(self):
        f32, f64 = _v4_corpus()
        seen = {}
        blob32 = compress_bytes(f32.tobytes(), get_codec("auto"),
                                chunk_size=CHUNK, dtype_code=fmt.DTYPE_F32)
        blob64 = compress_bytes(f64.tobytes(), get_codec("auto"),
                                chunk_size=CHUNK, dtype_code=fmt.DTYPE_F64)
        assert fmt.inspect_container(blob32).version == 4
        assert fmt.inspect_container(blob64).version == 4
        seen["mixed-f32/auto"] = hashlib.sha256(blob32).hexdigest()
        seen["mixed-f64/auto"] = hashlib.sha256(blob64).hexdigest()
        merged, _ = _mixed_v4_blob()
        seen["concat/sp-mixed"] = hashlib.sha256(merged).hexdigest()
        assert seen == GOLDEN_V4_SHA256

    def test_v4_corpus_round_trips(self):
        from repro.core.compressor import decompress_range_bytes

        f32, f64 = _v4_corpus()
        for arr, code in ((f32, fmt.DTYPE_F32), (f64, fmt.DTYPE_F64)):
            data = arr.tobytes()
            blob = compress_bytes(data, get_codec("auto"),
                                  chunk_size=CHUNK, dtype_code=code)
            out, _ = decompress_bytes(blob)
            assert out == data
            window, _ = decompress_range_bytes(blob, 16, 4096)
            assert window == data[16:4096]
