"""Container v3: the explicit chunk index, FCM restart framing, concat.

The v3 index is *redundant by design* — its offsets must equal the
chunk-size prefix sums exactly — so these tests tamper with stored
indices byte-by-byte and assert the parser rejects every contradiction
(the same contract the ``index-*`` fuzz mutators probe statistically).
"""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.core import container as fmt
from repro.core.chunking import CHUNK_SIZE
from repro.core.codecs import CODECS, get_codec
from repro.core.compressor import compress_bytes, decompress_bytes
from repro.errors import FormatError


def _walk(rng, codec, n_bytes: int = 100_000) -> bytes:
    n = n_bytes // codec.dtype.itemsize
    return np.cumsum(rng.normal(scale=0.01, size=n)).astype(codec.dtype).tobytes()


class TestRestartFraming:
    def test_restart_writes_v3_and_round_trips(self, rng):
        codec = get_codec("dpratio")
        data = _walk(rng, codec)
        blob = compress_bytes(data, codec, fcm="restart")
        info = fmt.inspect_container(blob)
        assert info.version == 3
        assert info.fcm_restart
        assert info.intermediate_len == info.original_len  # no global pass
        back, _ = decompress_bytes(blob)
        assert back == data

    def test_global_still_writes_legacy_versions(self, rng):
        codec = get_codec("dpratio")
        data = _walk(rng, codec)
        v2 = compress_bytes(data, codec, fcm="global")
        v1 = compress_bytes(data, codec, fcm="global",
                            checksum=False, chunk_checksums=False)
        assert fmt.inspect_container(v2).version == 2
        assert fmt.inspect_container(v1).version == 1
        assert decompress_bytes(v2)[0] == data
        assert decompress_bytes(v1)[0] == data

    def test_restart_is_a_no_op_for_codecs_without_fcm(self, rng):
        codec = get_codec("spratio")
        data = _walk(rng, codec)
        assert compress_bytes(data, codec, fcm="restart") == \
            compress_bytes(data, codec)

    @pytest.mark.parametrize("policy", ["serial", "threaded", "static-blocks",
                                        "process"])
    def test_restart_output_identical_under_every_policy(self, policy, rng):
        codec = get_codec("dpratio")
        data = _walk(rng, codec)
        serial = compress_bytes(data, codec, fcm="restart")
        assert compress_bytes(data, codec, fcm="restart", workers=3,
                              executor=policy) == serial
        back, _ = decompress_bytes(serial, workers=3, executor=policy)
        assert back == data

    def test_bad_fcm_value_rejected(self, rng):
        codec = get_codec("dpratio")
        with pytest.raises(ValueError, match="fcm"):
            compress_bytes(b"\0" * 64, codec, fcm="chunked")


def _index_tables(blob: bytes) -> tuple[int, int, int]:
    """(offset_table, length_table, n_chunks) of a v3 index blob."""
    info = fmt.inspect_container(blob)
    assert info.index_offsets is not None
    return (info.payload_offset - 12 * info.n_chunks,
            info.payload_offset - 4 * info.n_chunks,
            info.n_chunks)


class TestChunkIndexValidation:
    @pytest.fixture
    def indexed(self, rng):
        codec = get_codec("spratio")
        data = _walk(rng, codec)
        half = len(data) // 2
        blob = fmt.concat_containers([
            compress_bytes(data[:half], codec),
            compress_bytes(data[half:], codec),
        ])
        return data, blob

    def test_offsets_match_prefix_sums_from_header_alone(self, indexed):
        _, blob = indexed
        info = fmt.inspect_container(blob)
        running = info.payload_offset
        for i, offset in enumerate(fmt.payload_offsets(info)):
            assert offset == running
            running += info.chunk_sizes[i]
        assert sum(info.decoded_lengths()) == info.intermediate_len

    def test_offset_mismatch_rejected(self, indexed):
        _, blob = indexed
        offset_table, _, n = _index_tables(blob)
        buf = bytearray(blob)
        (current,) = struct.unpack_from("<Q", buf, offset_table + 8)
        struct.pack_into("<Q", buf, offset_table + 8, current + 1)
        with pytest.raises(FormatError, match="index"):
            fmt.inspect_container(bytes(buf))

    def test_overlapping_entries_rejected(self, indexed):
        _, blob = indexed
        offset_table, _, n = _index_tables(blob)
        assert n >= 3
        buf = bytearray(blob)
        (first,) = struct.unpack_from("<Q", buf, offset_table)
        struct.pack_into("<Q", buf, offset_table + 8, first)  # alias chunk 0
        with pytest.raises(FormatError, match="index"):
            fmt.inspect_container(bytes(buf))

    def test_zero_or_oversized_out_length_rejected(self, indexed):
        _, blob = indexed
        _, length_table, n = _index_tables(blob)
        for bad in (0, CHUNK_SIZE + 1):
            buf = bytearray(blob)
            struct.pack_into("<I", buf, length_table, bad)
            with pytest.raises(FormatError):
                fmt.inspect_container(bytes(buf))

    def test_out_length_sum_must_match_intermediate_len(self, indexed):
        _, blob = indexed
        _, length_table, n = _index_tables(blob)
        buf = bytearray(blob)
        (current,) = struct.unpack_from("<I", buf, length_table + 4)
        struct.pack_into("<I", buf, length_table + 4, current - 1)
        with pytest.raises(FormatError):
            fmt.inspect_container(bytes(buf))

    def test_index_flag_requires_v3(self, indexed):
        _, blob = indexed
        buf = bytearray(blob)
        buf[4] = 2  # version byte: demote to v2 while keeping the flag
        with pytest.raises(FormatError):
            fmt.inspect_container(bytes(buf))

    def test_build_index_requires_out_lengths(self):
        with pytest.raises(ValueError, match="out_length"):
            fmt.build_container(
                codec_id=1, dtype_code=fmt.DTYPE_F32, original_len=8,
                intermediate_len=8, chunk_size=CHUNK_SIZE,
                chunk_payloads=[b"\1" * 9], chunk_index=True,
            )


class TestConcat:
    @pytest.mark.parametrize("name", sorted(CODECS))
    def test_concat_round_trips_and_is_v3(self, name, rng):
        codec = get_codec(name)
        pieces = [_walk(rng, codec, n) for n in (50_000, 33_296, 16_384)]
        blobs = [compress_bytes(p, codec, fcm="restart") for p in pieces]
        merged = fmt.concat_containers(blobs)
        info = fmt.inspect_container(merged)
        assert info.version == 3
        assert info.index_offsets is not None
        assert info.chunk_crcs is not None
        assert info.checksum is None  # whole-input CRC cannot be combined
        back, _ = decompress_bytes(merged)
        assert back == b"".join(pieces)

    def test_payloads_copied_verbatim(self, rng):
        codec = get_codec("spratio")
        a, b = _walk(rng, codec, 40_000), _walk(rng, codec, 50_000)
        blob_a = compress_bytes(a, codec)
        blob_b = compress_bytes(b, codec)
        merged = fmt.concat_containers([blob_a, blob_b])
        info_a = fmt.inspect_container(blob_a)
        info_m = fmt.inspect_container(merged)
        first_payload = blob_a[info_a.payload_offset:]
        assert merged[info_m.payload_offset:
                      info_m.payload_offset + len(first_payload)] == \
            first_payload

    def test_ragged_interior_chunks_stay_addressable(self, rng):
        # A non-chunk-multiple first input leaves a short chunk in the
        # *middle* of the merged container; only the explicit index can
        # describe that geometry.
        codec = get_codec("spspeed")
        a, b = _walk(rng, codec, 20_000), _walk(rng, codec, 30_000)
        merged = fmt.concat_containers([
            compress_bytes(a, codec), compress_bytes(b, codec),
        ])
        info = fmt.inspect_container(merged)
        lengths = info.decoded_lengths()
        assert lengths[1] == 20_000 - CHUNK_SIZE  # ragged, not tail
        back, _ = decompress_bytes(merged)
        assert back == a + b

    def test_mixed_codecs_merge_to_v4(self, rng):
        # Mixed-codec inputs used to be rejected; the merge now emits a
        # v4 container whose per-chunk codec table records each member.
        data_a = _walk(rng, get_codec("spratio"))
        data_b = _walk(rng, get_codec("spspeed"))
        a = compress_bytes(data_a, get_codec("spratio"))
        b = compress_bytes(data_b, get_codec("spspeed"))
        merged = fmt.concat_containers([a, b])
        info = fmt.inspect_container(merged)
        assert info.version == 4
        assert info.chunk_codecs is not None
        n_a = fmt.inspect_container(a).n_chunks
        assert set(info.chunk_codecs[:n_a]) == {get_codec("spratio").codec_id}
        assert set(info.chunk_codecs[n_a:]) == {get_codec("spspeed").codec_id}
        back, _ = decompress_bytes(merged)
        assert back == data_a + data_b

    def test_cross_chunk_fcm_inputs_rejected(self, rng):
        codec = get_codec("dpratio")
        data = _walk(rng, codec)
        legacy = compress_bytes(data, codec, fcm="global")
        with pytest.raises(FormatError, match="cross-chunk|restart"):
            fmt.concat_containers([legacy, legacy])

    def test_raw_fallback_inputs_are_rechunked(self, rng):
        codec = get_codec("spratio")
        noise = rng.bytes(40_000)  # stays raw under every stage
        raw = compress_bytes(noise, codec)
        assert fmt.inspect_container(raw).raw_fallback
        merged = fmt.concat_containers([raw, raw])
        back, _ = decompress_bytes(merged)
        assert back == noise + noise

    def test_concat_of_concat_chains(self, rng):
        codec = get_codec("spratio")
        pieces = [_walk(rng, codec, 30_000) for _ in range(3)]
        blobs = [compress_bytes(p, codec) for p in pieces]
        once = fmt.concat_containers(blobs[:2])
        twice = fmt.concat_containers([once, blobs[2]])
        back, _ = decompress_bytes(twice)
        assert back == b"".join(pieces)

    def test_empty_and_single_inputs(self, rng):
        with pytest.raises(ValueError, match="at least one"):
            fmt.concat_containers([])
        codec = get_codec("spratio")
        data = _walk(rng, codec, 30_000)
        solo = fmt.concat_containers([compress_bytes(data, codec)])
        assert decompress_bytes(solo)[0] == data
