"""Robustness fuzzing: mutated containers must fail loudly, not weirdly.

The format carries enough length fields that arbitrary corruption should
be caught by the library's own exception hierarchy (or, where the
corruption is semantically silent and no checksum was requested, produce
*different* bytes) — never an unbounded loop, a segfault, or a foreign
exception leaking from numpy internals.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.errors import ReproError

ACCEPTABLE = (ReproError,)


def _mutations(blob: bytes, rng, count: int):
    for _ in range(count):
        kind = rng.integers(0, 4)
        mutated = bytearray(blob)
        if kind == 0 and len(mutated) > 1:  # single bit flip
            pos = int(rng.integers(0, len(mutated)))
            mutated[pos] ^= 1 << int(rng.integers(0, 8))
        elif kind == 1 and len(mutated) > 8:  # truncation
            mutated = mutated[: int(rng.integers(1, len(mutated)))]
        elif kind == 2:  # extension with garbage
            mutated += bytes(rng.integers(0, 256, size=17, dtype=np.uint8))
        else:  # byte-range scramble
            if len(mutated) > 16:
                start = int(rng.integers(0, len(mutated) - 8))
                mutated[start : start + 8] = bytes(
                    rng.integers(0, 256, size=8, dtype=np.uint8)
                )
        yield bytes(mutated)


@pytest.mark.parametrize("codec", ["spspeed", "spratio", "dpspeed", "dpratio"])
def test_mutated_containers_never_misbehave(codec, rng):
    dtype = np.float32 if codec.startswith("sp") else np.float64
    data = np.cumsum(rng.normal(scale=0.01, size=20_000)).astype(dtype)
    blob = repro.compress(data, codec)
    for mutated in _mutations(blob, rng, 120):
        try:
            out = repro.decompress(mutated)
        except ACCEPTABLE:
            continue
        except (ValueError, OverflowError, MemoryError) as exc:
            pytest.fail(f"{codec}: foreign exception leaked: {type(exc).__name__}: {exc}")
        # Decoded without error: silent corruption may change the payload
        # but must never break the container's own bookkeeping.
        if isinstance(out, np.ndarray):
            assert out.dtype in (np.float32, np.float64)


def test_checksummed_mutations_always_raise_or_match(rng):
    data = np.cumsum(rng.normal(scale=0.01, size=20_000)).astype(np.float32)
    blob = repro.compress(data, "spratio", checksum=True)
    silent = 0
    for mutated in _mutations(blob, rng, 120):
        try:
            out = repro.decompress(mutated)
        except ACCEPTABLE:
            continue
        # A mutation may hit dead bytes (e.g. inside the unused reserved
        # space or be reverted by the scramble); then output must be exact.
        if not (isinstance(out, np.ndarray) and np.array_equal(out, data)):
            silent += 1
    assert silent == 0, f"{silent} corruptions slipped past the checksum"


def test_random_garbage_rejected(rng):
    for size in (0, 1, 7, 31, 64, 1000):
        junk = bytes(rng.integers(0, 256, size=size, dtype=np.uint8))
        with pytest.raises(ReproError):
            repro.decompress(junk)


def test_valid_prefix_with_huge_lengths_rejected(rng):
    # A header promising absurd sizes must fail fast, not allocate.
    import struct

    header = struct.pack("<4sBBBBQQII", b"FPRZ", 1, 2, 1, 0,
                         1 << 60, 1 << 60, 16384, 0xFFFFFFF)
    with pytest.raises(ReproError):
        repro.decompress(header)
