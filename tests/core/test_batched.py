"""Batched (columnar) stage execution and the GIL-free process executor.

The batching contract is strict byte-identity: ``batch=True`` must
produce the same container bytes as the per-chunk loop for every codec
and every input geometry, and the process executor must honour the same
contract plus serial error semantics (type, message, lowest failing
chunk).  These tests sweep the geometry space — chunk counts 1/2/17, a
ragged final chunk, empty input — and pin the batch fallback of stages
without a 2D kernel to the per-chunk loop.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core import container as fmt
from repro.core.chunking import CHUNK_SIZE
from repro.core.codecs import CODECS, get_codec
from repro.core.compressor import compress_bytes, decompress_bytes
from repro.core.executors import (
    EXECUTOR_POLICIES,
    SharedMemoryProcessExecutor,
    get_executor,
    normalize_policy,
    resolve_executor,
)
from repro.errors import ChecksumError, ReproError
from repro.stages import ByteShuffle, XorDelta


def _sample(rng, dtype, n) -> bytes:
    return np.cumsum(rng.normal(scale=0.01, size=n)).astype(dtype).tobytes()


def _geometry_bytes(codec, n_chunks: int, ragged: bool) -> int:
    """Input size spanning ``n_chunks`` chunks, optionally ragged."""
    size = n_chunks * CHUNK_SIZE
    if ragged:
        # Knock a partial word-count off the final chunk (but keep the
        # chunk non-empty), so the last chunk exercises tail handling.
        size -= 5 * codec.dtype.itemsize + 3
    return size


@pytest.mark.parametrize("name", sorted(CODECS))
class TestBatchedByteIdentity:
    """The tentpole invariant, swept over the geometry space."""

    # 29 sits above MPLG's _MIN_DECODE_GROUP so the sweep also covers
    # the grouped decode kernels, not just their small-batch fallback.
    @pytest.mark.parametrize("n_chunks", [1, 2, 17, 29])
    @pytest.mark.parametrize("ragged", [False, True])
    def test_batched_matches_serial_loop(self, name, n_chunks, ragged, rng):
        codec = get_codec(name)
        size = _geometry_bytes(codec, n_chunks, ragged)
        data = _sample(rng, codec.dtype, size // codec.dtype.itemsize)
        serial = compress_bytes(data, codec, batch=False)
        batched = compress_bytes(data, codec, batch=True)
        # Golden equality via digest (exact bytes, reported compactly).
        assert (
            hashlib.sha256(batched).hexdigest()
            == hashlib.sha256(serial).hexdigest()
        ), (name, n_chunks, ragged)
        # The chunk count follows the *intermediate* buffer (a global
        # stage may expand it), but it always covers the input.
        assert fmt.inspect_container(batched).n_chunks >= n_chunks
        for batch in (True, False):
            back, _ = decompress_bytes(batched, batch=batch)
            assert back == data, (name, n_chunks, ragged, batch)

    def test_empty_input(self, name, rng):
        codec = get_codec(name)
        serial = compress_bytes(b"", codec, batch=False)
        batched = compress_bytes(b"", codec, batch=True)
        assert batched == serial
        back, _ = decompress_bytes(batched, batch=True)
        assert back == b""

    def test_auto_batching_is_default(self, name, rng):
        """``batch=None`` (the default) batches multi-chunk inputs."""
        codec = get_codec(name)
        data = _sample(rng, codec.dtype, 3 * CHUNK_SIZE // codec.dtype.itemsize)
        assert compress_bytes(data, codec) == compress_bytes(
            data, codec, batch=True
        )


class TestBatchFallbackRegression:
    """A stage without a 2D kernel must batch via the per-chunk loop."""

    @pytest.mark.parametrize("stage_cls", [XorDelta, ByteShuffle])
    def test_default_encode_batch_is_the_loop(self, stage_cls, rng):
        stage = stage_cls(word_bits=32)
        chunks = [
            _sample(rng, np.float32, n) for n in (0, 17, 1024, 1024, 4096)
        ]
        encoded = stage.encode_batch(chunks)
        assert encoded == [stage.encode(c) for c in chunks]
        assert stage.decode_batch(encoded) == [
            stage.decode(p) for p in encoded
        ]


class TestProcessPolicyNames:
    def test_process_in_executor_vocabulary(self):
        assert "process" in EXECUTOR_POLICIES
        assert normalize_policy("process", EXECUTOR_POLICIES) == "process"
        assert normalize_policy("processes", EXECUTOR_POLICIES) == "process"
        assert normalize_policy("multiprocess", EXECUTOR_POLICIES) == "process"

    def test_process_not_a_scheduling_policy(self):
        # The device simulator's vocabulary stays thread-only.
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            normalize_policy("process")

    def test_get_executor_builds_process_pool(self):
        engine = get_executor("process", 2)
        assert isinstance(engine, SharedMemoryProcessExecutor)
        assert engine.policy == "process"
        engine.close()

    def test_resolve_passes_prebuilt_through(self):
        with SharedMemoryProcessExecutor(1) as engine:
            assert resolve_executor(engine, 4) is engine


class TestProcessExecutorIdentity:
    """Mirrors TestPolicyEquivalence for the process policy."""

    @pytest.mark.parametrize("name", sorted(CODECS))
    def test_byte_identical_to_serial(self, name, rng):
        codec = get_codec(name)
        data = _sample(rng, codec.dtype, 60_000)
        reference = compress_bytes(data, codec, executor="serial")
        with SharedMemoryProcessExecutor(2) as engine:
            blob = compress_bytes(data, codec, executor=engine)
            assert blob == reference
            back, _ = decompress_bytes(blob, executor=engine)
            assert back == data

    def test_empty_input(self):
        codec = get_codec("spspeed")
        with SharedMemoryProcessExecutor(2) as engine:
            blob = compress_bytes(b"", codec, executor=engine)
            assert blob == compress_bytes(b"", codec, executor="serial")
            back, _ = decompress_bytes(blob, executor=engine)
            assert back == b""

    def test_policy_string_builds_and_closes_own_pool(self, rng):
        codec = get_codec("spratio")
        data = _sample(rng, codec.dtype, 40_000)
        blob = compress_bytes(data, codec, executor="process", workers=2)
        assert blob == compress_bytes(data, codec, executor="serial")
        back, _ = decompress_bytes(blob, executor="process", workers=2)
        assert back == data

    def test_raw_fallback_roundtrip(self, rng):
        data = rng.bytes(50_000)  # random bytes defeat every stage
        codec = get_codec("spspeed")
        with SharedMemoryProcessExecutor(2) as engine:
            blob = compress_bytes(data, codec, executor=engine)
            assert fmt.inspect_container(blob).raw_fallback
            back, _ = decompress_bytes(blob, executor=engine)
            assert back == data

    def test_closed_executor_rejects_work(self, rng):
        engine = SharedMemoryProcessExecutor(1)
        engine.close()
        engine.close()  # idempotent
        codec = get_codec("spspeed")
        data = _sample(rng, codec.dtype, 40_000)
        with pytest.raises(RuntimeError, match="closed"):
            compress_bytes(data, codec, executor=engine)


def _corrupt_chunk(blob: bytes, chunk_index: int) -> bytes:
    """Flip a payload byte inside one chunk of a v2 container."""
    info = fmt.inspect_container(blob)
    offset = info.payload_offset + sum(info.chunk_sizes[:chunk_index])
    mutated = bytearray(blob)
    mutated[offset + 2] ^= 0xFF
    return bytes(mutated)


class TestProcessErrorSemantics:
    """Errors must cross the process boundary with serial fidelity."""

    @pytest.fixture
    def container(self, rng):
        codec = get_codec("spratio")
        data = _sample(rng, codec.dtype, 60_000)
        blob = compress_bytes(data, codec, checksum=False,
                              chunk_checksums=True)
        assert fmt.inspect_container(blob).n_chunks >= 4
        return blob

    def _error_of(self, blob, **kwargs):
        with pytest.raises(ReproError) as excinfo:
            decompress_bytes(blob, **kwargs)
        return type(excinfo.value), str(excinfo.value)

    def test_same_error_as_serial(self, container):
        bad = _corrupt_chunk(container, 2)
        serial = self._error_of(bad, executor="serial")
        with SharedMemoryProcessExecutor(2) as engine:
            assert self._error_of(bad, executor=engine) == serial
        assert serial[0] is ChecksumError
        assert "chunk 2" in serial[1]

    def test_lowest_failing_chunk_wins(self, container):
        bad = _corrupt_chunk(_corrupt_chunk(container, 3), 1)
        serial = self._error_of(bad, executor="serial")
        assert "chunk 1" in serial[1]
        with SharedMemoryProcessExecutor(2) as engine:
            assert self._error_of(bad, executor=engine) == serial

    def test_batched_blocks_report_serial_errors(self, container):
        bad = _corrupt_chunk(container, 2)
        serial = self._error_of(bad, executor="serial", batch=False)
        assert self._error_of(bad, executor="serial", batch=True) == serial
        assert self._error_of(bad, executor="threaded", workers=3) == serial

    def test_salvage_works_under_process_executor(self, container, rng):
        bad = _corrupt_chunk(container, 2)
        with SharedMemoryProcessExecutor(2) as engine:
            data, info, report = decompress_bytes(
                bad, executor=engine, errors="salvage"
            )
        assert report.damaged_ranges  # chunk 2 was zero-filled
        assert len(data) == info.original_len
