"""Golden-container tests: the on-disk format must stay stable.

These blobs were produced by version 1.0.0 of the library.  If a change
breaks their decoding, it breaks every archive users have written —
bump the container version instead of editing these hex strings.
"""

from __future__ import annotations

import binascii
import hashlib

import numpy as np

import repro

#: float32 [[1.0, 1.5, 2.0], [-3.25, 0.0, inf]] via SPratio, checksummed.
GOLDEN_SPRATIO = binascii.unhexlify(
    "4650525a0102010718000000000000001800000000000000000000000000000002"
    "020000000000000003000000000000000bdde4d00000803f0000c03f0000004000"
    "0050c0000000000000807f"
)

#: float64 linspace(0, 1, 9) via DPratio (FCM + DIFFMS + RAZE + RARE).
GOLDEN_DPRATIO = binascii.unhexlify(
    "4650525a0104020248000000000000009900000000000000004000000100000001"
    "090000000000000038000000010500000003ffff1202010000000008c020040004"
    "0000004e06060010000001203fd030000000014808101020807f02ffffffff7dfc"
    "2020"
)


class TestGoldenContainers:
    def test_spratio_golden_decodes(self):
        out = repro.decompress(GOLDEN_SPRATIO)
        expected = np.array([[1.0, 1.5, 2.0], [-3.25, 0.0, np.inf]],
                            dtype=np.float32)
        assert out.shape == (2, 3)
        assert np.array_equal(out, expected)

    def test_spratio_golden_metadata(self):
        info = repro.inspect(GOLDEN_SPRATIO)
        assert info.codec_id == 2
        assert info.checksum is not None
        assert info.shape == (2, 3)

    def test_dpratio_golden_decodes(self):
        out = repro.decompress(GOLDEN_DPRATIO)
        assert np.array_equal(out, np.linspace(0, 1, 9, dtype=np.float64))

    def test_reencoding_is_reproducible(self):
        # Same input, same library -> byte-identical container (the
        # encoders are fully deterministic).
        arr = np.array([[1.0, 1.5, 2.0], [-3.25, 0.0, np.inf]], dtype=np.float32)
        assert repro.compress(arr, "spratio", checksum=True) == GOLDEN_SPRATIO


#: sha256 of every (dataset, codec) container over the deterministic
#: corpus below, recorded before the word-lane kernel rewrite.  The
#: encoders must stay byte-identical: a digest change here means old
#: containers may no longer round-trip against new ones — bump the
#: container version instead of updating a hash.
GOLDEN_CORPUS_SHA256 = {
    "walk/float32/spspeed": "371d15f639ad589ce0d4a7ec409132dc788b22db6f45983ef75baf3758b34f10",
    "walk/float32/spratio": "c49f65ea69dba7cda2ca8a146d9ebc25b9dfe897e1d928f38e4750bae2b45331",
    "mixed/float32/spspeed": "8ddf1fb030a22c4ae86a270a7b691c57cc33c172508a6de1fe9c6e4d0196c618",
    "mixed/float32/spratio": "6c5fe36741f0d75cd12c4b47e689880c77cd208c403f42e317e9a739080be653",
    "zeros/float32/spspeed": "d5127407b354253ca1fcafb5b373a088984be8a8be4c08f1a27eefb59fba6ee4",
    "zeros/float32/spratio": "a274b4b6f563d9733ba9559dd606cdc253aff9e0b81482c0f904bdedf4b51bfd",
    "rand/float32/spspeed": "4c18bb5d9edec0a9d96cbde17e12f95c08fae2cd3c195a150df81c2debf860d0",
    "rand/float32/spratio": "506e1369cb2d8b2ffe4d9be2ef30b0d0db9e18f54d851353bf9c53f3a9c82a6d",
    "walk/float64/dpspeed": "9703a211b4a295f6136992a081645e2ffbf2f1f8b2f1d9efabb106b178eb17d7",
    "walk/float64/dpratio": "889d2aae333bb8118e716f5fe9b6ed6e8fbb1e5d013cd1ad0f2bf732171fb08c",
    "mixed/float64/dpspeed": "ee3f0ceda3678d0cb2b19288548d602f2f1a925a1f5222f16af822b09f0b7d71",
    "mixed/float64/dpratio": "2409c153fb358e317bebe6388fd923e9da939b70334f81d23f36b734a6b752d2",
    "zeros/float64/dpspeed": "011e7dc0adbc0e8a083302c40597d91c2b5e328797df036320e4cc9206fccb3c",
    "zeros/float64/dpratio": "9311e9c1a856d520be6f985b69afadd5f6b5b63e75ee7ed685f3809a08b99df9",
    "rand/float64/dpspeed": "2f57cbb07a6488458b8b179825dda9e3f21d72215d50cd6f33cce47fa8894dc7",
    "rand/float64/dpratio": "4a24ed39bb7e4b131ab54a77300c41c94c3a06136cecb9be3c62a234808ed00b",
}


def _golden_corpus():
    """Deterministic datasets covering the interesting encoder regimes:
    smooth (deep value reuse), specials (inf/-0.0/nan), all-zero, and
    incompressible random bits — at sizes that leave partial chunks,
    partial subchunks, and partial final bytes everywhere."""
    rng = np.random.default_rng(0xC0FFEE)
    for dtype, n_rand in ((np.dtype(np.float32), 10007), (np.dtype(np.float64), 9001)):
        walk = np.cumsum(rng.normal(size=13001)).astype(dtype)
        mixed = rng.normal(size=5000).astype(dtype)
        mixed[::97] = np.inf
        mixed[1::143] = -0.0
        mixed[2::211] = np.nan
        zeros = np.zeros(4099, dtype=dtype)
        raw = rng.integers(0, 256, size=n_rand, dtype=np.uint8).tobytes()
        rand = np.frombuffer(raw[: len(raw) - len(raw) % dtype.itemsize], dtype=dtype)
        yield dtype, (("walk", walk), ("mixed", mixed), ("zeros", zeros), ("rand", rand))


class TestGoldenCorpusDigests:
    def test_every_container_byte_identical(self):
        seen = {}
        for dtype, datasets in _golden_corpus():
            codecs = ("spspeed", "spratio") if dtype.itemsize == 4 else ("dpspeed", "dpratio")
            for label, arr in datasets:
                for codec in codecs:
                    blob = repro.compress(arr, codec)
                    seen[f"{label}/{dtype.name}/{codec}"] = hashlib.sha256(blob).hexdigest()
        assert seen == GOLDEN_CORPUS_SHA256

    def test_corpus_round_trips(self):
        for dtype, datasets in _golden_corpus():
            codecs = ("spspeed", "spratio") if dtype.itemsize == 4 else ("dpspeed", "dpratio")
            for label, arr in datasets:
                for codec in codecs:
                    back = repro.decompress(repro.compress(arr, codec))
                    assert back.dtype == dtype
                    assert np.array_equal(back, arr, equal_nan=True), f"{label}/{codec}"


#: sha256 of the v3 restart/concat containers over the corpus below,
#: recorded when the seekable v3 format landed (library 1.3.0).  Same
#: contract as above: these bytes are what shipped — a digest change
#: means a new wire version, not an updated hash.
GOLDEN_V3_SHA256 = {
    "smooth/dpratio-restart": "7b63328c26f4c7fe4d21e230c91d9c394be1546f6060d9e9e9147cb6251da4fd",
    "zeros/dpratio-restart": "16f0dc5941b184291f1db073bbb9ec5f1b75d7b6afbc137909e10e37af12b90c",
    "smooth/dpratio-concat": "cec768a8b6634248e2be8d6c1ebd5c4cccb2b029d85590d9c3030560db9bc741",
}


def _v3_corpus():
    rng = np.random.default_rng(0xF00D)
    smooth = np.cumsum(rng.normal(scale=0.01, size=13001)).astype(np.float64)
    zeros = np.zeros(4099, dtype=np.float64)
    return smooth, zeros


class TestGoldenV3Digests:
    def test_restart_and_concat_containers_byte_identical(self):
        smooth, zeros = _v3_corpus()
        seen = {}
        for label, arr in (("smooth", smooth), ("zeros", zeros)):
            blob = repro.compress(arr, "dpratio", fcm="restart")
            assert repro.inspect(blob).version == 3
            seen[f"{label}/dpratio-restart"] = hashlib.sha256(blob).hexdigest()
        merged = repro.concat([
            repro.compress(smooth[:6500], "dpratio", fcm="restart"),
            repro.compress(smooth[6500:], "dpratio", fcm="restart"),
        ])
        seen["smooth/dpratio-concat"] = hashlib.sha256(merged).hexdigest()
        assert seen == GOLDEN_V3_SHA256

    def test_v3_corpus_round_trips(self):
        smooth, zeros = _v3_corpus()
        for arr in (smooth, zeros):
            blob = repro.compress(arr, "dpratio", fcm="restart")
            assert np.array_equal(repro.decompress(blob), arr)
            window = repro.decompress_range(blob, 50, 1_000)
            assert np.array_equal(window, arr[50:1_000])
