"""Golden-container tests: the on-disk format must stay stable.

These blobs were produced by version 1.0.0 of the library.  If a change
breaks their decoding, it breaks every archive users have written —
bump the container version instead of editing these hex strings.
"""

from __future__ import annotations

import binascii

import numpy as np

import repro

#: float32 [[1.0, 1.5, 2.0], [-3.25, 0.0, inf]] via SPratio, checksummed.
GOLDEN_SPRATIO = binascii.unhexlify(
    "4650525a0102010718000000000000001800000000000000000000000000000002"
    "020000000000000003000000000000000bdde4d00000803f0000c03f0000004000"
    "0050c0000000000000807f"
)

#: float64 linspace(0, 1, 9) via DPratio (FCM + DIFFMS + RAZE + RARE).
GOLDEN_DPRATIO = binascii.unhexlify(
    "4650525a0104020248000000000000009900000000000000004000000100000001"
    "090000000000000038000000010500000003ffff1202010000000008c020040004"
    "0000004e06060010000001203fd030000000014808101020807f02ffffffff7dfc"
    "2020"
)


class TestGoldenContainers:
    def test_spratio_golden_decodes(self):
        out = repro.decompress(GOLDEN_SPRATIO)
        expected = np.array([[1.0, 1.5, 2.0], [-3.25, 0.0, np.inf]],
                            dtype=np.float32)
        assert out.shape == (2, 3)
        assert np.array_equal(out, expected)

    def test_spratio_golden_metadata(self):
        info = repro.inspect(GOLDEN_SPRATIO)
        assert info.codec_id == 2
        assert info.checksum is not None
        assert info.shape == (2, 3)

    def test_dpratio_golden_decodes(self):
        out = repro.decompress(GOLDEN_DPRATIO)
        assert np.array_equal(out, np.linspace(0, 1, 9, dtype=np.float64))

    def test_reencoding_is_reproducible(self):
        # Same input, same library -> byte-identical container (the
        # encoders are fully deterministic).
        arr = np.array([[1.0, 1.5, 2.0], [-3.25, 0.0, np.inf]], dtype=np.float32)
        assert repro.compress(arr, "spratio", checksum=True) == GOLDEN_SPRATIO
