"""Backend x executor interplay: byte identity under every combination.

The kernel backend is a process-wide dispatch decision and the executors
run chunk jobs on worker threads — this suite pins the contract that the
two compose: any (backend, policy, workers) combination emits the exact
container bytes the serial numpy reference emits.

The practical payoff of that composition is documented in EXECUTION.md:
numba kernels run ``nogil``, so under the ``threaded`` policy the JIT
backend actually scales with workers where pure-numpy dispatch spends
part of each chunk holding the GIL.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.bitpack import backend as B
from tests.bitpack.test_backend import ALT_BACKENDS, _ensure_pure_backend

_ensure_pure_backend()

POLICIES = ("serial", "threaded", "static-blocks")


def _dataset(dtype):
    rng = np.random.default_rng(0x5EED)
    walk = np.cumsum(rng.normal(size=9001)).astype(dtype)
    walk[::71] = 0.0
    return walk


@pytest.mark.parametrize("backend", ["numpy", *ALT_BACKENDS])
@pytest.mark.parametrize("policy", POLICIES)
def test_policy_backend_byte_identity(backend, policy):
    arr = _dataset(np.float32)
    expect = repro.compress(arr, "spratio")  # serial, numpy, 1 worker
    with B.use_backend(backend):
        blob = repro.compress(arr, "spratio", workers=4, executor=policy)
    assert blob == expect
    assert np.array_equal(repro.decompress(blob), arr)


@pytest.mark.parametrize("backend", ALT_BACKENDS)
def test_decode_under_alt_backend_of_numpy_container(backend):
    # Cross-backend archive exchange: bytes written under one backend
    # must decode under any other.
    arr = _dataset(np.float64)
    blob = repro.compress(arr, "dpratio")
    with B.use_backend(backend):
        assert np.array_equal(repro.decompress(blob), arr)
        reblob = repro.compress(arr, "dpratio", workers=2, executor="threaded")
    assert reblob == blob


def test_pin_is_visible_from_worker_threads():
    # The pin is process-wide module state; worker threads must observe
    # the same resolution the main thread set.  Spy on dispatch (the
    # wrapper modules alias this exact module object, so swapping
    # ``B.kernel`` intercepts every call site) and record which backend
    # each kernel call resolved against while threaded workers ran.
    real_kernel = B.kernel
    seen_names = set()

    def spying_kernel(name):
        seen_names.add(B.active_backend().name)
        return real_kernel(name)

    arr = _dataset(np.float32)
    with B.use_backend("numpy"):
        expect = repro.compress(arr, "spratio")
        try:
            B.kernel = spying_kernel
            blob = repro.compress(arr, "spratio", workers=3, executor="threaded")
        finally:
            B.kernel = real_kernel
    assert blob == expect
    assert seen_names == {"numpy"}
