"""Tests for the corpus verification sweep."""

from __future__ import annotations

import numpy as np

from repro.verify import VerificationReport, verify_corpus


class TestVerifyCorpus:
    def test_our_codecs_all_lossless(self):
        report = verify_corpus(scale=0.02)
        assert report.ok, report.failures
        assert report.files_checked == 110  # 90 SP + 20 DP
        assert set(report.ratios) == {"SPspeed", "SPratio", "DPspeed", "DPratio"}

    def test_sp_only_sweep(self):
        report = verify_corpus(scale=0.02, dtypes=(np.float32,))
        assert report.ok
        assert report.files_checked == 90
        assert set(report.ratios) == {"SPspeed", "SPratio"}

    def test_ratio_mode_beats_speed_mode(self):
        # Needs a scale where files exceed FCM's far-match distance
        # (~4300 values); tiny corpora have no far repeats to find.
        report = verify_corpus(scale=0.5, dtypes=(np.float64,))
        assert report.ratios["DPratio"] > report.ratios["DPspeed"]

    def test_render(self):
        report = verify_corpus(scale=0.02, dtypes=(np.float32,))
        text = report.render()
        assert "ALL LOSSLESS" in text and "SPratio" in text


class TestReportModel:
    def test_failures_flip_ok(self):
        report = VerificationReport()
        assert report.ok
        report.failures.append("X corrupted Y")
        assert not report.ok
        assert "FAIL" in report.render()
