"""Tests for the corpus verification sweep."""

from __future__ import annotations

import numpy as np

from repro.verify import VerificationReport, verify_corpus


class TestVerifyCorpus:
    def test_our_codecs_all_lossless(self):
        report = verify_corpus(scale=0.02)
        assert report.ok, report.failures
        assert report.files_checked == 110  # 90 SP + 20 DP
        assert set(report.ratios) == {"SPspeed", "SPratio", "DPspeed", "DPratio"}

    def test_sp_only_sweep(self):
        report = verify_corpus(scale=0.02, dtypes=(np.float32,))
        assert report.ok
        assert report.files_checked == 90
        assert set(report.ratios) == {"SPspeed", "SPratio"}

    def test_ratio_mode_beats_speed_mode(self):
        # Needs a scale where files exceed FCM's far-match distance
        # (~4300 values); tiny corpora have no far repeats to find.
        report = verify_corpus(scale=0.5, dtypes=(np.float64,))
        assert report.ratios["DPratio"] > report.ratios["DPspeed"]

    def test_render(self):
        report = verify_corpus(scale=0.02, dtypes=(np.float32,))
        text = report.render()
        assert "ALL LOSSLESS" in text and "SPratio" in text


class TestReportModel:
    def test_failures_flip_ok(self):
        report = VerificationReport()
        assert report.ok
        report.failures.append("X corrupted Y")
        assert not report.ok
        assert "FAIL" in report.render()


class TestFailureClassification:
    """Crashes and controlled rejections are reported distinguishably."""

    def _run_with_broken_codec(self, monkeypatch, exc: Exception):
        import repro.verify as verify_mod

        real = verify_mod._build_compressors

        class Broken:
            name = "Broken"

            def set_dimensions(self, shape):
                pass

            def compress(self, data):
                raise exc

            def decompress(self, blob):
                raise AssertionError("unreachable")

        def patched(dtype, include_baselines):
            return real(dtype, include_baselines) + [Broken()]

        monkeypatch.setattr(verify_mod, "_build_compressors", patched)
        return verify_corpus(scale=0.02, dtypes=(np.float32,))

    def test_crash_reported_with_traceback_summary(self, monkeypatch):
        report = self._run_with_broken_codec(
            monkeypatch, ZeroDivisionError("division by zero")
        )
        assert not report.ok
        crash_lines = [f for f in report.failures if "CRASHED" in f]
        assert crash_lines
        assert "ZeroDivisionError" in crash_lines[0]
        assert "test_verify.py" in crash_lines[0]  # the faulting frame
        # The healthy codecs still verified despite the broken one.
        assert set(report.ratios) >= {"SPspeed", "SPratio"}

    def test_repro_error_reported_as_rejection(self, monkeypatch):
        from repro.errors import CorruptDataError

        report = self._run_with_broken_codec(
            monkeypatch, CorruptDataError("synthetic")
        )
        assert not report.ok
        rejected = [f for f in report.failures if "rejected" in f]
        assert rejected
        assert "CorruptDataError" in rejected[0]
        assert not any("CRASHED" in f for f in report.failures)


class TestFreshCompressors:
    def test_each_file_gets_a_fresh_compressor_instance(self, monkeypatch):
        # A compressor poisoned by one file must not contaminate the
        # next: verify_corpus must rebuild the adapters per file.
        import repro.verify as verify_mod

        seen_ids: list[int] = []
        real = verify_mod._build_compressors

        def tracking(dtype, include_baselines):
            comps = real(dtype, include_baselines)
            seen_ids.append(id(comps[0]))
            return comps

        monkeypatch.setattr(verify_mod, "_build_compressors", tracking)
        verify_corpus(scale=0.02, dtypes=(np.float32,))
        # one call for the name list + one per file, all distinct objects
        assert len(seen_ids) == 91
        assert len(set(seen_ids)) > 1


class TestFuzzWiring:
    def test_fuzz_failures_gate_ok(self):
        report = verify_corpus(scale=0.02, dtypes=(np.float32,),
                               fuzz_iterations=15)
        assert report.fuzz is not None
        assert report.fuzz.ok and report.ok
        assert "fuzz: seed=0 iterations=15" in report.render()
