"""Tests for ratio aggregation, Pareto fronts, and timing helpers."""

from __future__ import annotations

import math

import pytest

from repro.metrics import (
    ParetoPoint,
    compression_ratio,
    geo_of_geo,
    geomean,
    measure_throughput,
    pareto_front,
)


class TestRatios:
    def test_compression_ratio(self):
        assert compression_ratio(100, 50) == 2.0

    def test_zero_compressed_rejected(self):
        with pytest.raises(ValueError):
            compression_ratio(100, 0)

    def test_geomean_basics(self):
        assert geomean([2, 8]) == pytest.approx(4.0)
        assert geomean([3]) == pytest.approx(3.0)

    def test_geomean_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_geo_of_geo_weights_domains_equally(self):
        # One domain with many files must not dominate (paper §4).
        many = [2.0] * 100
        few = [8.0]
        assert geo_of_geo([many, few]) == pytest.approx(4.0)
        flat = geomean(many + few)
        assert flat < geo_of_geo([many, few])

    def test_geomean_matches_log_definition(self):
        values = [1.3, 2.7, 0.9, 5.5]
        expected = math.exp(sum(math.log(v) for v in values) / len(values))
        assert geomean(values) == pytest.approx(expected)


class TestPareto:
    def test_single_point_is_front(self):
        p = ParetoPoint("a", 1.0, 1.0)
        assert pareto_front([p]) == [p]

    def test_dominated_point_removed(self):
        strong = ParetoPoint("strong", 10.0, 2.0)
        weak = ParetoPoint("weak", 5.0, 1.5)
        assert pareto_front([strong, weak]) == [strong]

    def test_tradeoff_points_both_kept(self):
        fast = ParetoPoint("fast", 10.0, 1.2)
        dense = ParetoPoint("dense", 1.0, 3.0)
        front = pareto_front([fast, dense])
        assert {p.name for p in front} == {"fast", "dense"}

    def test_ties_are_not_dominating(self):
        a = ParetoPoint("a", 5.0, 2.0)
        b = ParetoPoint("b", 5.0, 2.0)
        assert {p.name for p in pareto_front([a, b])} == {"a", "b"}

    def test_front_sorted_by_throughput(self):
        points = [
            ParetoPoint("slow", 1.0, 3.0),
            ParetoPoint("mid", 5.0, 2.0),
            ParetoPoint("fast", 10.0, 1.0),
        ]
        assert [p.name for p in pareto_front(points)] == ["fast", "mid", "slow"]

    def test_dominates_semantics(self):
        base = ParetoPoint("x", 5.0, 2.0)
        assert ParetoPoint("y", 5.0, 2.1).dominates(base)
        assert ParetoPoint("y", 5.1, 2.0).dominates(base)
        assert not base.dominates(base)
        assert not ParetoPoint("y", 6.0, 1.9).dominates(base)


class TestTiming:
    def test_measures_positive_throughput(self):
        assert measure_throughput(lambda: sum(range(100)), 1000, runs=3) > 0

    def test_run_validation(self):
        with pytest.raises(ValueError):
            measure_throughput(lambda: None, 1, runs=0)
