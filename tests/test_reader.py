"""ContainerReader and the archive's lazy random-access surface."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.archive import Archive, append_archive, write_archive
from repro.reader import ContainerReader


@pytest.fixture
def field(rng) -> np.ndarray:
    return np.cumsum(rng.normal(scale=0.01, size=30_000)).astype(np.float64)


@pytest.fixture
def blob(field) -> bytes:
    return repro.compress(field, "dpratio", fcm="restart")


class TestContainerReader:
    def test_metadata_without_decoding(self, field, blob):
        with ContainerReader(blob) as reader:
            assert len(reader) == field.size
            assert reader.dtype == np.float64
            assert reader.itemsize == 8
            assert reader.shape == (30_000,)
            assert reader.info.version == 3

    def test_slices_match_the_array(self, field, blob):
        reader = ContainerReader(blob)
        for key in [slice(None), slice(100, 9_000), slice(-500, None),
                    slice(2_000, 2_001), slice(5, 5), slice(9_000, 1_000),
                    slice(10, 5_000, 7), slice(5_000, 10, -3),
                    slice(None, None, -1)]:
            assert np.array_equal(reader[key], field[key]), key

    def test_int_indexing(self, field, blob):
        reader = ContainerReader(blob)
        assert reader[0] == field[0]
        assert reader[12_345] == field[12_345]
        assert reader[-1] == field[-1]
        with pytest.raises(IndexError):
            reader[30_000]
        with pytest.raises(IndexError):
            reader[-30_001]

    def test_read_with_salvage(self, field, blob):
        reader = ContainerReader(blob)
        got, report = reader.read(100, 200, errors="salvage")
        assert report.ok
        assert np.array_equal(got, field[100:200])

    @pytest.mark.parametrize("mmap", [True, False])
    def test_file_sources(self, field, blob, tmp_path, mmap):
        path = tmp_path / "field.fprz"
        path.write_bytes(blob)
        with ContainerReader(path, mmap=mmap) as reader:
            assert np.array_equal(reader[4_000:8_500], field[4_000:8_500])
        # Closed readers refuse reads but tolerate repeated close().
        reader.close()
        with pytest.raises(ValueError, match="closed"):
            reader[0:1]

    def test_mmap_with_process_executor(self, field, blob, tmp_path):
        path = tmp_path / "field.fprz"
        path.write_bytes(blob)
        with ContainerReader(path, workers=2, executor="process") as reader:
            assert np.array_equal(reader[1_000:21_000], field[1_000:21_000])

    def test_raw_bytes_container(self, rng):
        payload = rng.bytes(25_000)
        reader = ContainerReader(repro.compress(payload, "spspeed"))
        assert reader.dtype is None
        assert len(reader) == 25_000
        assert reader[100:900] == payload[100:900]
        assert reader[10:100:9] == payload[10:100:9]
        assert reader[7] == payload[7]

    def test_rejects_other_sources(self):
        with pytest.raises(TypeError, match="bytes-like or a path"):
            ContainerReader(123)


class TestArchiveRandomAccess:
    @pytest.fixture
    def members(self, rng):
        t = rng.normal(size=(120, 100)).astype(np.float32)
        p = np.cumsum(rng.normal(scale=0.01, size=20_000)).astype(np.float64)
        return {"T": t, "P": p}

    @pytest.fixture
    def archive(self, members) -> Archive:
        return Archive.from_bytes(write_archive(members))

    def test_read_accepts_executor_policies(self, archive, members):
        for policy in ["serial", "threaded", "static-blocks", "process"]:
            got = archive.read("P", workers=2, policy=policy)
            assert np.array_equal(got, members["P"])

    def test_read_range(self, archive, members):
        got = archive.read("P", start=3_000, stop=7_000)
        assert np.array_equal(got, members["P"][3_000:7_000])

    def test_lazy_reader(self, archive, members):
        with archive.reader("P") as reader:
            assert np.array_equal(reader[100:300], members["P"][100:300])
        with pytest.raises(KeyError):
            archive.reader("missing")

    def test_append_copies_old_members_verbatim(self, archive, members, rng):
        blob = write_archive(members)
        extra = np.cumsum(rng.normal(size=5_000)).astype(np.float64)
        grown = append_archive(blob, {"Q": extra})
        archive2 = Archive.from_bytes(grown)
        assert archive2.members() == ["T", "P", "Q"]
        for name in members:
            assert archive2._member_blob(name) == archive._member_blob(name)
        assert np.array_equal(archive2.read("Q"), extra)
        with pytest.raises(ValueError, match="duplicate"):
            append_archive(grown, {"T": extra})

    def test_member_concat_is_v3_with_verbatim_payloads(self, rng):
        a = np.cumsum(rng.normal(scale=0.01, size=9_000)).astype(np.float64)
        b = np.cumsum(rng.normal(scale=0.01, size=7_000)).astype(np.float64)
        blob = write_archive({"a": a, "b": b}, codec="dpspeed")
        archive = Archive.from_bytes(blob)
        merged = archive.concat(["a", "b"])
        info = repro.inspect(merged)
        assert info.version == 3 and info.index_offsets is not None
        assert np.array_equal(repro.decompress(merged), np.concatenate([a, b]))

    def test_package_exports(self):
        for name in ["decompress_range", "concat", "ContainerReader",
                     "append_archive"]:
            assert name in repro.__all__ and hasattr(repro, name)
