"""Audit a dataset's compressibility, pick a codec, archive it.

Ties together the analysis, archive, and streaming APIs: inspect why
each field compresses (or doesn't), follow the per-stage waterfall of the
chosen codec, then pack everything into one random-access archive.

Run with:  python examples/dataset_audit.py
"""

import numpy as np

from repro.analysis import byte_plane_entropy, explain, recommend, repeat_profile
from repro.archive import Archive, write_archive
from repro.datasets import dp_suite


def main() -> None:
    msg = next(d for d in dp_suite() if d.name == "msg")
    fields = {file.name.split("/")[-1]: file.load(scale=0.5) for file in msg.files[:3]}

    print("== compressibility audit ==")
    for name, data in fields.items():
        codec, reason = recommend(data)
        repeats = repeat_profile(data)
        entropy = byte_plane_entropy(data)
        print(f"\n{name}:")
        print(f"  repeats: {repeats.repeat_fraction:.0%} total, "
              f"{repeats.far_repeat_fraction:.0%} beyond the LZ window")
        print(f"  byte-plane entropy (MSB->LSB): "
              + " ".join(f"{e:.1f}" for e in entropy))
        print(f"  recommendation: {codec} — {reason}")

    name, data = next(iter(fields.items()))
    print(f"\n== stage waterfall for {name} ==")
    codec, _ = recommend(data)
    print(explain(data, codec).render())

    print("\n== archive ==")
    blob = write_archive(fields, mode="ratio", checksum=True)
    archive = Archive.from_bytes(blob)
    raw = sum(v.nbytes for v in fields.values())
    print(f"{len(archive)} members, {raw} -> {len(blob)} bytes "
          f"(ratio {archive.total_ratio():.2f})")
    for member in archive.members():
        restored = archive.read(member)
        assert np.array_equal(restored, fields[member])
    print("every member verified bit-exact (checksums on)")


if __name__ == "__main__":
    main()
