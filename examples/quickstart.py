"""Quickstart: compress and decompress scientific floating-point arrays.

Run with:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    rng = np.random.default_rng(42)

    # A smooth single-precision field, the kind the codecs target.
    field = np.cumsum(rng.normal(scale=0.01, size=(256, 512)), axis=1).astype(np.float32)

    # Default mode is "ratio" (SPratio for float32)...
    blob = repro.compress(field)
    restored = repro.decompress(blob)
    assert np.array_equal(restored, field) and restored.shape == field.shape
    print(f"SPratio: {field.nbytes} -> {len(blob)} bytes "
          f"(ratio {field.nbytes / len(blob):.2f})")

    # ... and mode="speed" trades some ratio for throughput (SPspeed).
    fast = repro.compress(field, mode="speed")
    assert np.array_equal(repro.decompress(fast), field)
    print(f"SPspeed: ratio {field.nbytes / len(fast):.2f}")

    # Double precision picks the DP codecs automatically.
    doubles = np.cumsum(rng.normal(size=100_000)).astype(np.float64)
    for codec in ("dpspeed", "dpratio"):
        blob = repro.compress(doubles, codec)
        assert np.array_equal(repro.decompress(blob), doubles)
        print(f"{codec}: ratio {doubles.nbytes / len(blob):.2f}")

    # Lossless means bit-exact — NaN payloads, infinities, -0.0 included.
    awkward = np.array([0.0, -0.0, np.inf, -np.inf, np.nan], dtype=np.float32)
    assert repro.decompress(repro.compress(awkward)).tobytes() == awkward.tobytes()
    print("special values round-trip bit-exactly")

    # Containers are self-describing.
    info = repro.inspect(repro.compress(field))
    print(f"container: codec id {info.codec_id}, {info.n_chunks} chunks of "
          f"{info.chunk_size} B, shape {info.shape}, ratio {info.ratio:.2f}")


if __name__ == "__main__":
    main()
