"""Rediscover the paper's stage chains with the mini LC framework.

The four algorithms were found by generating and scoring candidate stage
pipelines (paper §3: "over 100,000 algorithms, the best of which we then
analyzed").  This example runs the same search over our component
catalogue on two representative inputs and shows that the winners are
the paper's own chains (or close neighbours).

Run with:  python examples/synthesize_codec.py
"""

import numpy as np

from repro.datasets import dp_suite, sp_suite
from repro.lc import synthesize


def report(title: str, data: bytes, word_bits: int, *, allow_global: bool) -> None:
    print(f"\n== {title} ({len(data)} bytes) ==")
    results = synthesize(
        data,
        max_stages=3,
        word_bits=word_bits,
        allow_global=allow_global,
        stage_penalty=0.01,
        top=5,
    )
    for rank, result in enumerate(results, 1):
        chain = " -> ".join(result.stages)
        print(f"  {rank}. {chain:<34} ratio {result.ratio:5.3f}")


def main() -> None:
    climate = next(d for d in sp_suite() if d.name == "CESM-ATM").files[0]
    sp_data = climate.load(scale=0.25).tobytes()
    report("single-precision climate field", sp_data, 32, allow_global=False)
    print("  (paper: SPspeed = diffms -> mplg, SPratio = diffms -> bit -> rze)")

    messages = next(d for d in dp_suite() if d.name == "msg").files[0]
    dp_data = messages.load(scale=0.25).tobytes()
    report("double-precision MPI trace", dp_data, 64, allow_global=True)
    print("  (paper: DPratio = fcm -> diffms -> raze -> rare)")


if __name__ == "__main__":
    main()
