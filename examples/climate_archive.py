"""Archive a climate-model output losslessly and audit the result.

Scenario from the paper's introduction: climate simulations produce data
that must be preserved *exactly* — "lossy compression could introduce
errors that affect the validity of the scientific findings" — yet storage
budgets demand compression.  This example archives the synthetic
CESM-ATM dataset with SPratio, verifies every field bit-for-bit, and
compares the archive size against gzip.

Run with:  python examples/climate_archive.py
"""

import time
import zlib

import numpy as np

import repro
from repro.datasets import sp_suite


def main() -> None:
    cesm = next(d for d in sp_suite() if d.name == "CESM-ATM")
    print(f"archiving {len(cesm.files)} CESM-ATM fields with SPratio\n")

    total_raw = total_fprz = total_gzip = 0
    start = time.perf_counter()
    archive: dict[str, bytes] = {}
    for file in cesm.files[:12]:  # a dozen fields keeps the demo quick
        field = file.load(scale=0.5)
        blob = repro.compress(field, "spratio")
        archive[file.name] = blob

        restored = repro.decompress(blob)
        assert restored.tobytes() == field.tobytes(), f"{file.name}: not lossless!"

        gz = zlib.compress(field.tobytes(), 6)
        total_raw += field.nbytes
        total_fprz += len(blob)
        total_gzip += len(gz)
        print(f"  {file.name:<24} {field.nbytes:>8} B  "
              f"SPratio {field.nbytes / len(blob):5.2f}x   "
              f"gzip {field.nbytes / len(gz):5.2f}x")

    elapsed = time.perf_counter() - start
    print(f"\narchive: {total_raw} -> {total_fprz} bytes "
          f"({total_raw / total_fprz:.2f}x; gzip reaches {total_raw / total_gzip:.2f}x)")
    print(f"every field verified bit-exact in {elapsed:.2f}s")

    # Random access: each container is independent; decode one field only.
    name, blob = next(iter(archive.items()))
    field = repro.decompress(blob)
    print(f"random access: {name} restored alone, shape {field.shape}")


if __name__ == "__main__":
    main()
