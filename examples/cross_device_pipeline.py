"""Cross-device workflow: compress on a GPU system, analyse on a CPU system.

"Since scientific data is often generated and compressed on one system
and decompressed and analyzed on another, it is important to support
compatible compression and decompression across CPUs and GPUs" (paper
§1).  The FPRZ container is device-agnostic by construction; this example
walks a producer/consumer hand-off and uses the device model to check
whether each codec keeps up with an LCLS-II-class instrument (250 GB/s
acquisition, §1).

Run with:  python examples/cross_device_pipeline.py
"""

import numpy as np

import repro
from repro.datasets import dp_suite
from repro.device import ALL_DEVICES
from repro.device.model import modeled_throughput

ACQUISITION_GBPS = 250.0  # LCLS-II data rate from the paper's introduction


def main() -> None:
    # --- producer: an instrument pipeline on the GPU system -------------
    detector = next(d for d in dp_suite() if d.name == "obs").files[0]
    frames = detector.load(scale=1.0)
    blob = repro.compress(frames, "dpspeed")
    print(f"producer compressed {frames.nbytes} B of detector data "
          f"-> {len(blob)} B (ratio {frames.nbytes / len(blob):.2f})")

    # --- consumer: a CPU analysis node decodes the very same bytes ------
    restored = repro.decompress(blob)
    assert np.array_equal(restored, frames)
    print("consumer (CPU) restored the stream bit-exactly — one format, "
          "both device kinds\n")

    # --- capacity planning with the device model ------------------------
    print(f"can each codec keep up with a {ACQUISITION_GBPS:.0f} GB/s instrument?")
    for device_name in ("RTX 4090", "A100", "Ryzen 2950X", "Xeon 6226R (2x)"):
        device = ALL_DEVICES[device_name]
        line = [f"  {device_name:<16}"]
        for codec in ("dpspeed", "dpratio"):
            gbps = modeled_throughput(codec, device, "compress")
            verdict = "yes" if gbps >= ACQUISITION_GBPS else "no "
            line.append(f"{codec}: {gbps:8.1f} GB/s [{verdict}]")
        print("  ".join(line))

    print("\nnote: an interconnect stops being the bottleneck only when the "
          "compressor runs ratio-times faster than the link (paper §1)")
    nvlink = 900.0
    device = ALL_DEVICES["RTX 4090"]
    ratio = frames.nbytes / len(blob)
    needed = nvlink  # compressed stream must saturate the link
    achieved = modeled_throughput("dpspeed", device, "compress")
    print(f"NVLink at {nvlink:.0f} GB/s with ratio {ratio:.2f}: DPspeed "
          f"models {achieved:.0f} GB/s of input bandwidth on the RTX 4090")


if __name__ == "__main__":
    main()
