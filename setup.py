"""Legacy setuptools shim.

The offline evaluation environment has no ``wheel`` package, so the
PEP 660 editable path is unavailable; this shim lets
``pip install -e .`` fall back to the classic ``setup.py develop``
route.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
