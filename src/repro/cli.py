"""Command-line interface: compress, decompress, inspect, and benchmark.

Mirrors the original artifact's workflow scripts (compile/run_experiments/
chart) in one binary::

    fprz compress  input.f32 output.fprz --codec spratio --dtype float32
    fprz decompress output.fprz restored.f32
    fprz inspect   output.fprz
    fprz bench --figure fig08 --scale 0.25
    fprz table1

``compress`` treats the input file as a flat array of the given dtype
(SDRBench's own .f32/.d64 convention).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

import numpy as np

import repro
from repro.errors import ReproError
from repro.service.protocol import DEFAULT_MAX_FRAME, DEFAULT_PORT
from repro.service.router import DEFAULT_ROUTER_PORT


def _pin_backend(args: argparse.Namespace):
    """Pin the kernel backend named by ``--backend`` for a command's run.

    A no-pin pass-through when the flag was not given, so a process-level
    pin (or the ``FPRZ_KERNEL_BACKEND`` environment variable) stays in
    charge.  Yields the active :class:`~repro.bitpack.backend.KernelBackend`
    either way.
    """
    import contextlib

    from repro.bitpack import backend as kernel_backend

    name = getattr(args, "backend", None)
    if name is not None:
        return kernel_backend.use_backend(name)

    @contextlib.contextmanager
    def _current():
        yield kernel_backend.active_backend()

    return _current()


def _cmd_compress(args: argparse.Namespace) -> int:
    data = Path(args.input).read_bytes()
    if args.dtype != "bytes":
        array = np.frombuffer(data, dtype=np.dtype(args.dtype))
        blob = repro.compress(array, args.codec, fcm=args.fcm,
                              selector=args.selector)
    else:
        if args.codec is None:
            raise ReproError("--codec is required for raw byte input")
        blob = repro.compress(data, args.codec, fcm=args.fcm,
                              selector=args.selector)
    Path(args.output).write_bytes(blob)
    ratio = len(data) / len(blob) if blob else 0.0
    print(f"{args.input}: {len(data)} -> {len(blob)} bytes (ratio {ratio:.3f})")
    return 0


def _parse_range(spec: str) -> tuple[int | None, int | None]:
    """Parse ``A:B`` (either end optional) into slice endpoints."""
    lo, sep, hi = spec.partition(":")
    if not sep:
        raise ReproError(f"--range {spec!r} must look like START:STOP")
    try:
        return (int(lo) if lo else None, int(hi) if hi else None)
    except ValueError as exc:
        raise ReproError(f"--range {spec!r} must use integer endpoints") from exc


def _cmd_decompress(args: argparse.Namespace) -> int:
    blob = Path(args.input).read_bytes()
    if args.range is not None:
        start, stop = _parse_range(args.range)
        if args.salvage:
            out, report = repro.decompress_range(blob, start, stop,
                                                 errors="salvage")
            data = out.tobytes() if isinstance(out, np.ndarray) else out
            Path(args.output).write_bytes(data)
            print(report.render())
            print(f"{args.input}: salvaged elements [{args.range}] "
                  f"({len(data)} bytes)")
            return 0 if report.ok else 1
        out = repro.decompress_range(blob, start, stop)
        data = out.tobytes() if isinstance(out, np.ndarray) else out
        Path(args.output).write_bytes(data)
        print(f"{args.input}: restored elements [{args.range}] "
              f"({len(data)} bytes)")
        return 0
    if args.salvage:
        out, report = repro.decompress(blob, errors="salvage")
        data = out.tobytes() if isinstance(out, np.ndarray) else out
        Path(args.output).write_bytes(data)
        print(report.render())
        print(f"{args.input}: salvaged {len(data)} bytes")
        return 0 if report.ok else 1
    out = repro.decompress(blob)
    data = out.tobytes() if isinstance(out, np.ndarray) else out
    Path(args.output).write_bytes(data)
    print(f"{args.input}: restored {len(data)} bytes")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    info = repro.inspect(Path(args.input).read_bytes())
    from repro.core import codec_by_id
    from repro.core.container import payload_offsets

    print(f"version:      {info.version}")
    print(f"codec:        {codec_by_id(info.codec_id).name}")
    print(f"dtype code:   {info.dtype_code}")
    print(f"original:     {info.original_len} bytes")
    print(f"compressed:   {info.total_len} bytes")
    print(f"ratio:        {info.ratio:.4f}")
    print(f"chunks:       {info.n_chunks} x {info.chunk_size} bytes")
    print(f"raw fallback: {info.raw_fallback}")
    print(f"checksum:     "
          f"{'crc32' if info.checksum is not None else 'none'}")
    print(f"chunk crcs:   "
          f"{'yes' if info.chunk_crcs is not None else 'no'}")
    print(f"chunk index:  "
          f"{'explicit (v3)' if info.index_offsets is not None else 'derived'}")
    print(f"fcm restarts: {'yes' if info.fcm_restart else 'no'}")
    if info.chunk_codecs is not None:
        members = sorted({codec_by_id(cid).name for cid in info.chunk_codecs})
        print(f"chunk codecs: per-chunk table (v4): {', '.join(members)}")
    if info.shape is not None:
        print(f"shape:        {tuple(info.shape)}")
    if args.chunks:
        # Everything below comes from the header tables alone — no
        # payload is ever decoded (that is the point of the v3 index).
        offsets = payload_offsets(info)
        decoded = info.decoded_lengths()
        print()
        codec_col = info.chunk_codecs is not None
        header = (f"{'chunk':>5} {'offset':>10} {'payload B':>10} "
                  f"{'decoded B':>10} {'crc32':>10}"
                  + (f" {'codec':>8}" if codec_col else ""))
        print(header)
        print("-" * len(header))
        for i in range(info.n_chunks):
            crc = (f"{info.chunk_crcs[i]:08x}" if info.chunk_crcs is not None
                   else "-")
            row = (f"{i:>5} {offsets[i]:>10} {info.chunk_sizes[i]:>10} "
                   f"{decoded[i]:>10} {crc:>10}")
            if codec_col:
                row += f" {codec_by_id(info.chunk_codecs[i]).name:>8}"
            print(row)
    return 0


def _cmd_concat(args: argparse.Namespace) -> int:
    blobs = [Path(path).read_bytes() for path in args.inputs]
    merged = repro.concat(blobs)
    Path(args.output).write_bytes(merged)
    info = repro.inspect(merged)
    total_in = sum(len(blob) for blob in blobs)
    print(f"{args.output}: {len(args.inputs)} containers -> "
          f"{info.n_chunks} chunks, {total_in} -> {len(merged)} bytes "
          f"(v{info.version}, no payload re-encoded)")
    return 0


def _bench_sample(codec_name: str, scale: float) -> bytes:
    """A deterministic corpus sample matching the codec's dtype.

    The adaptive ``auto`` codec gets the single-precision sample (the
    larger suite); its selector probes route each chunk regardless.
    """
    from repro.datasets import dp_suite, sp_suite

    suite = dp_suite() if codec_name.startswith("dp") else sp_suite()
    return suite[0].files[0].load(scale).tobytes()


def _resolve_workers(args: argparse.Namespace) -> int:
    """The ``--workers`` value, defaulting to ``min(cpu_count, 8)``."""
    if args.workers is None:
        return min(os.cpu_count() or 1, 8)
    if args.workers < 1:
        raise ReproError("--workers must be at least 1")
    return args.workers


def _cmd_bench_measured(args: argparse.Namespace) -> int:
    """The measured path: real engine runs, per-executor and per-chunk."""
    from repro.core.executors import (
        EXECUTOR_POLICIES,
        SCHEDULING_POLICIES,
        normalize_policy,
    )
    from repro.harness import format_measured, measure_executors

    workers = _resolve_workers(args)
    codec = args.codec or "spratio"
    data = _bench_sample(codec, args.scale)
    if args.policy:
        try:
            policies = (normalize_policy(args.policy, EXECUTOR_POLICIES),)
        except ValueError as exc:
            raise ReproError(str(exc)) from exc
    else:
        policies = SCHEDULING_POLICIES
    with _pin_backend(args) as active:
        print(f"measured engine runs: codec {codec}, {len(data)} input bytes, "
              f"{workers} worker(s), kernel backend {active.describe()}")
        print()
        print(format_measured(measure_executors(
            data, codec, policies=policies, workers=workers,
        )))
        if not args.trace:
            return 0
        return _bench_trace(data, codec, workers, policies)


def _bench_trace(data, codec, workers, policies) -> int:
    """Print per-chunk stage traces (runs under the caller's backend pin)."""
    from repro.core.trace import TraceCollector
    from repro.metrics import summarize_trace

    # The process policy runs chunks in other address spaces, so
    # per-chunk traces cannot be collected there; trace the threaded
    # schedule instead (same batched kernels, same bytes).
    traced_policy = policies[0]
    if traced_policy == "process":
        traced_policy = "threaded"
        print()
        print("(per-chunk traces are unavailable under the process "
              "policy; tracing the threaded schedule instead)")
    collector = TraceCollector()
    repro.compress(data, codec, workers=workers,
                   executor=traced_policy, trace=collector)
    print()
    print(summarize_trace(collector).render())
    print()
    header = (f"{'chunk':>5} {'worker':>6} {'in B':>8} {'out B':>8} "
              f"{'raw':>3} {'ms':>8}  stages (ms, out B)")
    print(header)
    print("-" * len(header))
    for chunk in collector.chunks:
        stages = "  ".join(
            f"{e.stage}={e.seconds * 1e3:.3f}ms/{e.out_bytes}B"
            for e in chunk.stages
        )
        print(f"{chunk.index:>5} {chunk.worker:>6} "
              f"{chunk.original_len:>8} {chunk.payload_len:>8} "
              f"{'y' if chunk.raw_fallback else '-':>3} "
              f"{chunk.seconds * 1e3:>8.3f}  {stages}")
    return 0


def _cmd_bench_trajectory(args: argparse.Namespace) -> int:
    """Record a benchmark-trajectory point; optionally gate on a baseline."""
    from repro.harness.trajectory import (
        compare_trajectories,
        format_trajectory,
        load_trajectory,
        record_trajectory,
        save_trajectory,
    )

    workers = _resolve_workers(args)
    point = record_trajectory(
        tag=args.tag, scale=args.scale, workers=workers,
        policy=args.policy, backend=getattr(args, "backend", None),
    )
    print(f"kernel backend: {point['config']['kernel_backend']}")
    print()
    print(format_trajectory(point))
    if args.save:
        save_trajectory(point, args.save)
        print(f"\nsaved trajectory point to {args.save}")
    if args.baseline:
        baseline = load_trajectory(args.baseline)
        regressions = compare_trajectories(
            baseline, point, threshold=args.threshold
        )
        print()
        if regressions:
            print(f"REGRESSIONS vs {args.baseline} "
                  f"(threshold {args.threshold * 100:.0f}%):")
            for reg in regressions:
                print(f"  {reg.render()}")
            return 1
        print(f"no codec regressions vs {args.baseline} "
              f"(threshold {args.threshold * 100:.0f}%)")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness import FIGURES, format_figure, run_figure

    if args.save or args.baseline:
        return _cmd_bench_trajectory(args)
    if args.trace or args.policy or args.codec:
        return _cmd_bench_measured(args)
    figure_ids = [args.figure] if args.figure else sorted(FIGURES)
    for figure_id in figure_ids:
        if figure_id not in FIGURES:
            raise ReproError(
                f"unknown figure {figure_id!r}; choose from {', '.join(sorted(FIGURES))}"
            )
        print(format_figure(run_figure(figure_id, scale=args.scale)))
        print()
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.analysis import explain

    data = Path(args.input).read_bytes()
    array = np.frombuffer(data, dtype=np.dtype(args.dtype))
    print(explain(array, args.codec).render())
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    from repro.analysis import recommend

    data = Path(args.input).read_bytes()
    array = np.frombuffer(data, dtype=np.dtype(args.dtype))
    codec, reason = recommend(array)
    print(f"recommended codec: {codec}")
    print(f"why: {reason}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify import verify_corpus

    report = verify_corpus(
        scale=args.scale, include_baselines=args.baselines,
        fuzz_iterations=args.fuzz or 0, fuzz_seed=args.seed,
    )
    print(report.render())
    return 0 if report.ok else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    if args.frames:
        from repro.fuzzing import run_frame_fuzz

        report = run_frame_fuzz(seed=args.seed, iterations=args.iterations)
    else:
        from repro.fuzzing import run_fuzz

        codecs = args.codec or None
        report = run_fuzz(seed=args.seed, iterations=args.iterations,
                          codecs=codecs, batched=args.batched)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.server import CompressionServer, ServiceConfig

    config = ServiceConfig(
        host=args.host, port=args.port, max_frame=args.max_frame,
        queue_high_water=args.queue_high_water,
        request_timeout=args.deadline, drain_timeout=args.drain_timeout,
        job_threads=args.job_threads, codec_workers=args.codec_workers,
        codec_policy=args.policy, kernel_backend=args.backend,
        stream_window=args.stream_window,
        quota_rate=args.quota_rate, quota_burst=args.quota_burst,
    )
    server = CompressionServer(config)

    def announce() -> None:
        print(f"fprz service listening on {config.host}:{server.port} "
              f"(queue high-water {config.queue_high_water}, "
              f"deadline {config.request_timeout:g}s, "
              f"{config.job_threads} job threads x "
              f"{config.codec_workers} codec workers "
              f"[{config.codec_policy}], "
              f"kernel backend {server._kernel_backend})",
              flush=True)

    # ``run`` installs SIGTERM/SIGINT handlers for graceful drain.
    asyncio.run(server.run(install_signals=True, on_started=announce))
    print("fprz service drained and stopped")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from repro.service.client import ServiceClient
    from repro.service.metrics import render_snapshot

    with ServiceClient(host=args.host, port=args.port) as client:
        stats = client.stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    if "router" in stats:
        router = stats["router"]
        print(f"uptime:       {router.get('uptime_seconds', 0.0):.1f} s")
        print(f"draining:     {router.get('draining')}")
        print(f"in flight:    {router.get('inflight')} "
              f"(high-water {router.get('inflight_high_water')})")
        print("backends:")
        for b in router.get("backends", ()):
            print(f"  {b['address']:<22} breaker={b['breaker']:<9} "
                  f"failures={b['consecutive_failures']} "
                  f"inflight={b['inflight']} pooled={b['pooled_connections']}")
    else:
        server = stats.get("server", {})
        print(f"uptime:       {server.get('uptime_seconds', 0.0):.1f} s")
        print(f"draining:     {server.get('draining')}")
        print(f"queue depth:  {server.get('queue_depth')} "
              f"(high-water {server.get('queue_high_water')})")
        print(f"kernels:      {server.get('kernel_backend') or 'unknown'}")
    print()
    print(render_snapshot(stats.get("metrics", {})))
    return 0


def _open_remote_client(args: argparse.Namespace):
    """A plain or resilient client, depending on ``--addr``/``--retries``."""
    if args.addr or args.retries:
        from repro.service.resilience import ResilientClient, RetryPolicy

        addresses = args.addr or [f"{args.host}:{args.port}"]
        return ResilientClient(
            addresses, policy=RetryPolicy(attempts=args.retries or 5)
        )
    from repro.service.client import ServiceClient

    return ServiceClient(host=args.host, port=args.port)


def _remote_pipelined(client, action: str, parts: list, codec):
    """Run ``parts`` through the service with all of them in flight.

    Uses the resilient batch maps when the client has them, else the
    plain client's submit/collect pipelining.
    """
    depth = len(parts)
    if action == "compress":
        if hasattr(client, "compress_many"):
            return client.compress_many(parts, codec, depth=depth)
        rids = [client.submit_compress(p, codec) for p in parts]
        return [client.collect(rid) for rid in rids]
    if hasattr(client, "decompress_many"):
        return client.decompress_many(parts, depth=depth)
    rids = [client.submit_decompress(p) for p in parts]
    return [client.collect_decompress(rid) for rid in rids]


def _cmd_remote(args: argparse.Namespace) -> int:
    data = Path(args.input).read_bytes()
    via = ",".join(args.addr) if args.addr else f"{args.host}:{args.port}"
    depth = args.pipeline_depth
    if depth > 1 and args.streamed:
        raise ReproError("--pipeline-depth and --streamed are exclusive: "
                         "a streamed transfer is already windowed")
    with _open_remote_client(args) as client:
        if args.action == "compress":
            if args.dtype != "bytes":
                payload = np.frombuffer(data, dtype=np.dtype(args.dtype))
            else:
                if args.codec is None:
                    raise ReproError("--codec is required for raw byte input")
                payload = data
            if depth > 1:
                # Pipelined burst: the payload splits into `depth`
                # independent containers, all in flight on one
                # connection, packed as an FPRA archive.
                from repro.archive import _pack_archive

                if isinstance(payload, np.ndarray):
                    parts = [p for p in np.array_split(payload, depth) if p.size]
                else:
                    step = max(1, (len(payload) + depth - 1) // depth)
                    parts = [payload[i:i + step]
                             for i in range(0, len(payload), step)]
                blobs = _remote_pipelined(client, "compress", parts, args.codec)
                blob = _pack_archive(
                    [(f"part{i:04d}", b) for i, b in enumerate(blobs)]
                )
            elif args.streamed:
                blob = client.compress_streamed(payload, args.codec)
            else:
                blob = client.compress(payload, args.codec)
            Path(args.output).write_bytes(blob)
            ratio = len(data) / len(blob) if blob else 0.0
            mode = (f"pipelined x{depth}" if depth > 1
                    else "streamed" if args.streamed else "unary")
            print(f"{args.input}: {len(data)} -> {len(blob)} bytes "
                  f"(ratio {ratio:.3f}, {mode}, via {via})")
            return 0
        if args.action == "decompress":
            if depth > 1 or data[:4] == b"FPRA":
                from repro.archive import Archive

                archive = Archive.from_bytes(data)
                parts = [archive._member_blob(name)
                         for name in archive.members()]
                outs = _remote_pipelined(client, "decompress", parts, None)
                raw = b"".join(
                    o.tobytes() if isinstance(o, np.ndarray) else o
                    for o in outs
                )
            elif args.streamed:
                out = client.decompress_streamed(data)
                raw = out.tobytes() if isinstance(out, np.ndarray) else out
            else:
                out = client.decompress(data)
                raw = out.tobytes() if isinstance(out, np.ndarray) else out
            Path(args.output).write_bytes(raw)
            print(f"{args.input}: restored {len(raw)} bytes "
                  f"(via {via})")
            return 0
    raise ReproError(f"unknown remote action {args.action!r}")


def _cmd_route(args: argparse.Namespace) -> int:
    import asyncio
    import contextlib

    from repro.service.router import RouterConfig, ShardRouter
    from repro.service.server import ServerThread, ServiceConfig

    with contextlib.ExitStack() as stack:
        backends = list(args.backend or [])
        if args.spawn:
            # In-process worker fleet: N servers on ephemeral ports, all
            # torn down with the router.  For remote fleets, list each
            # worker with --backend instead.
            for _ in range(args.spawn):
                server = stack.enter_context(ServerThread(ServiceConfig(
                    port=0, job_threads=args.job_threads,
                )))
                backends.append(("127.0.0.1", server.port))
        if not backends:
            raise ReproError("need --backend HOST:PORT (repeatable) "
                             "or --spawn N")
        config = RouterConfig(
            host=args.host, port=args.port, backends=tuple(backends),
            max_frame=args.max_frame,
            health_interval=args.health_interval,
            backend_timeout=args.backend_timeout,
            failure_threshold=args.failure_threshold,
            open_seconds=args.open_seconds,
            dispatch_attempts=args.dispatch_attempts,
            inflight_high_water=args.inflight_high_water,
        )
        router = ShardRouter(config)

        def announce() -> None:
            labels = ", ".join(f"{h}:{p}" for h, p in map(_as_addr, backends))
            print(f"fprz router listening on {config.host}:{router.port} "
                  f"over {len(backends)} backend(s): {labels}",
                  flush=True)

        asyncio.run(router.run(install_signals=True, on_started=announce))
        print("fprz router drained and stopped")
    return 0


def _as_addr(spec) -> tuple[str, int]:
    from repro.service.resilience import parse_address

    return parse_address(spec)


def _cmd_chaos(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.faults import (
        ChaosConfig,
        ChaosProxy,
        schedule_preview,
        stream_schedule_preview,
    )

    config = ChaosConfig(
        upstream=args.upstream, host=args.host, port=args.port,
        seed=args.seed,
        reset_rate=args.reset_rate, truncate_rate=args.truncate_rate,
        corrupt_rate=args.corrupt_rate, delay_rate=args.delay_rate,
        blackhole_rate=args.blackhole_rate,
        delay_ms=(args.delay_min_ms, args.delay_max_ms),
        kill_after_frames=args.kill_after,
        direction=args.direction,
    )
    if args.describe:
        # The schedule is a pure function of (seed, index): print what
        # the proxy WILL do, without moving a byte.
        if args.streams:
            print(f"{'event':>6}  {'stream':>6}  {'frame':<14} "
                  f"{'direction':<9} action")
            for index, stream, kind, direction, action in (
                stream_schedule_preview(
                    config, streams=args.streams,
                    data_frames=args.stream_frames,
                )[: args.describe]
            ):
                print(f"{index:>6}  {stream:>6}  {kind:<14} "
                      f"{direction:<9} {action}")
        else:
            for index, action in schedule_preview(config, args.describe):
                print(f"{index:>6}  {action}")
        return 0
    proxy = ChaosProxy(config)

    def announce() -> None:
        up = _as_addr(args.upstream)
        print(f"fprz chaos proxy on {config.host}:{proxy.port} -> "
              f"{up[0]}:{up[1]} (seed {config.seed}, rates: "
              f"reset {config.reset_rate:g} truncate {config.truncate_rate:g} "
              f"corrupt {config.corrupt_rate:g} delay {config.delay_rate:g} "
              f"blackhole {config.blackhole_rate:g})",
              flush=True)

    asyncio.run(proxy.run(install_signals=True, on_started=announce))
    print("fprz chaos proxy stopped")
    return 0


def _cmd_archive(args: argparse.Namespace) -> int:
    from repro.archive import Archive, write_archive

    if args.action == "create":
        members = {}
        for spec in args.members:
            name, _, path = spec.partition("=")
            if not path:
                raise ReproError(f"member spec {spec!r} must be NAME=FILE")
            array = np.frombuffer(Path(path).read_bytes(), dtype=np.dtype(args.dtype))
            members[name] = array
        Path(args.archive).write_bytes(write_archive(members, codec=args.codec))
        print(f"wrote {args.archive} with {len(members)} members")
        return 0
    archive = Archive.from_bytes(Path(args.archive).read_bytes())
    if args.action == "list":
        for name in archive.members():
            info = archive.info(name)
            print(f"{name:<30} {info.original_len:>10} B  ratio {info.ratio:6.3f}")
        print(f"total ratio {archive.total_ratio():.3f}")
        return 0
    if args.action == "extract":
        for spec in args.members:
            name, _, path = spec.partition("=")
            out = archive.read(name)
            data = out.tobytes() if isinstance(out, np.ndarray) else out
            Path(path or name.replace("/", "_")).write_bytes(data)
            print(f"extracted {name} ({len(data)} B)")
        return 0
    raise ReproError(f"unknown archive action {args.action!r}")


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.baselines import baseline_registry

    print(f"{'Device':<8} {'Compressor':<12} {'Datatype':<12} {'Version':<8} Source")
    print("-" * 56)
    for spec in sorted(baseline_registry(), key=lambda s: (s.device, s.name)):
        print(f"{spec.device:<8} {spec.name:<12} {spec.datatype:<12} "
              f"{spec.version:<8} {spec.source}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fprz",
        description="Lossless scientific floating-point compression "
        "(SPspeed/SPratio/DPspeed/DPratio, ASPLOS'25 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compress", help="compress a flat float file")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--codec", default=None,
                   help="spspeed | spratio | dpspeed | dpratio | auto "
                        "(default: by dtype; auto probes each chunk and "
                        "routes it to the best fixed codec, emitting a v4 "
                        "mixed-codec container)")
    p.add_argument("--dtype", default="float32",
                   choices=["float32", "float64", "bytes"])
    p.add_argument("--fcm", default="global", choices=["global", "restart"],
                   help="FCM predictor mode (DPratio): global is the "
                        "best-ratio cross-chunk pass (v1/v2, default); "
                        "restart re-seeds per chunk (v3, seekable, "
                        "range-decodable, parallel)")
    p.add_argument("--selector", default=None, metavar="POLICY",
                   help="decision policy for --codec auto: 'heuristic' "
                        "(default), 'trained' (thresholds fitted by "
                        "scripts/fit_selector.py), or a path to a "
                        "thresholds .json file")
    p.set_defaults(func=_cmd_compress)

    p = sub.add_parser("decompress", help="decompress an FPRZ container")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--salvage", action="store_true",
                   help="best-effort decode of a damaged container: recover "
                        "every verifiable chunk, zero-fill the rest, and "
                        "print the damage report (exit 1 if any byte was lost)")
    p.add_argument("--range", default=None, metavar="START:STOP",
                   help="decode only this element range (Python slice "
                        "semantics; only the overlapping chunks are read)")
    p.set_defaults(func=_cmd_decompress)

    p = sub.add_parser("inspect", help="print container metadata")
    p.add_argument("input")
    p.add_argument("--chunks", action="store_true",
                   help="also print the per-chunk offset/length/CRC table "
                        "(from the v3 chunk index when present; never "
                        "decodes a payload)")
    p.set_defaults(func=_cmd_inspect)

    p = sub.add_parser(
        "concat",
        help="concatenate compressed containers without re-encoding "
             "(same codec and dtype; output is a seekable v3 container)",
    )
    p.add_argument("output")
    p.add_argument("inputs", nargs="+")
    p.set_defaults(func=_cmd_concat)

    p = sub.add_parser(
        "bench",
        help="regenerate paper figures, or measure the real engine "
             "(--codec/--executor/--trace)",
    )
    p.add_argument("--figure", default=None, help="fig08 ... fig19 (default: all)")
    p.add_argument("--scale", type=float, default=0.25,
                   help="corpus scale factor (1.0 = 256 KiB files)")
    p.add_argument("--codec", default=None,
                   help="measure the real engine on this codec instead of "
                        "replaying a figure")
    p.add_argument("--policy", "--executor", dest="policy", default=None,
                   help="executor policy for measured runs: serial | "
                        "threaded | static-blocks | process "
                        "(default: all three thread schedules)")
    p.add_argument("--workers", type=int, default=None,
                   help="workers for measured parallel policies "
                        "(default: CPU count, capped at 8)")
    p.add_argument("--trace", action="store_true",
                   help="print per-chunk stage timings and sizes from a "
                        "traced engine run")
    p.add_argument("--save", default=None, metavar="FILE",
                   help="record a benchmark-trajectory point (codec, stage, "
                        "and kernel throughputs) and write it as JSON")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="compare the recorded point against a saved "
                        "trajectory point; exit 1 on codec regressions")
    p.add_argument("--threshold", type=float, default=0.30,
                   help="allowed fractional throughput drop vs --baseline "
                        "(default 0.30)")
    p.add_argument("--tag", default=None,
                   help="tag stored inside the trajectory point (e.g. pr3)")
    p.add_argument("--backend", default=None,
                   help="kernel backend for measured/trajectory runs: "
                        "numpy | numba | cupy (default: auto — numba "
                        "when importable, else numpy)")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("table1", help="print the Table 1 compressor inventory")
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("explain", help="per-stage size waterfall for a codec")
    p.add_argument("input")
    p.add_argument("--codec", required=True)
    p.add_argument("--dtype", default="float32", choices=["float32", "float64"])
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser("recommend", help="suggest a codec from the data's statistics")
    p.add_argument("input")
    p.add_argument("--dtype", default="float32", choices=["float32", "float64"])
    p.set_defaults(func=_cmd_recommend)

    p = sub.add_parser("verify", help="round-trip every codec over the corpus")
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--baselines", action="store_true",
                   help="also verify the 18 Table 1 baselines")
    p.add_argument("--fuzz", type=int, nargs="?", const=200, default=0,
                   metavar="N",
                   help="also run N seeded fault-injection iterations "
                        "(default 200 when the flag is given bare)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for the --fuzz iterations")
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser(
        "fuzz",
        help="fault-injection harness: mutate valid containers and assert "
             "decode only ever fails with typed errors",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--iterations", type=int, default=500)
    p.add_argument("--codec", action="append", default=None,
                   help="restrict the corpus to this codec (repeatable; "
                        "default: all four)")
    p.add_argument("--frames", action="store_true",
                   help="fuzz the FPRW wire-frame parser instead of the "
                        "container decoder")
    p.add_argument("--batched", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="route container mutants through the batched "
                        "decode path (default on; --no-batched pins the "
                        "per-chunk path)")
    p.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser(
        "serve",
        help="run the framed compression service (SIGTERM drains gracefully)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=DEFAULT_PORT,
                   help=f"TCP port (default {DEFAULT_PORT}; 0 = ephemeral)")
    p.add_argument("--queue-high-water", type=int, default=32,
                   help="admitted-jobs bound; beyond it requests get BUSY")
    p.add_argument("--deadline", type=float, default=30.0,
                   help="per-request deadline in seconds")
    p.add_argument("--max-frame", type=int, default=DEFAULT_MAX_FRAME,
                   help="frame body limit in bytes (both directions)")
    p.add_argument("--job-threads", type=int, default=4,
                   help="concurrent codec jobs")
    p.add_argument("--codec-workers", type=int, default=1,
                   help="chunk-level workers inside each codec job "
                        "(>1 uses the pooled threaded executor)")
    p.add_argument("--policy", default="threaded",
                   help="chunk-executor policy inside codec jobs: "
                        "threaded (pooled worklist) | process (shared "
                        "GIL-free process pool)")
    p.add_argument("--drain-timeout", type=float, default=10.0,
                   help="seconds to wait for in-flight jobs on shutdown")
    p.add_argument("--backend", default=None,
                   help="kernel backend the service pins at startup: "
                        "numpy | numba | cupy (default: auto)")
    p.add_argument("--stream-window", type=int, default=4 * 1024 * 1024,
                   help="per-stream flow-control window in bytes: the "
                        "server never buffers more than this per "
                        "streamed transfer (default 4 MiB)")
    p.add_argument("--quota-rate", type=float, default=0.0,
                   help="per-tenant admission quota in bytes/second "
                        "(token bucket; 0 = unlimited)")
    p.add_argument("--quota-burst", type=int, default=0,
                   help="per-tenant burst allowance in bytes "
                        "(default: one second of --quota-rate)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("stats", help="print a running server's live metrics")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=DEFAULT_PORT)
    p.add_argument("--json", action="store_true",
                   help="raw JSON snapshot instead of the rendered table")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser(
        "remote",
        help="compress/decompress through a running fprz service",
    )
    p.add_argument("action", choices=["compress", "decompress"])
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=DEFAULT_PORT)
    p.add_argument("--codec", default=None,
                   help="spspeed | spratio | dpspeed | dpratio "
                        "(compress only; default: by dtype)")
    p.add_argument("--dtype", default="float32",
                   choices=["float32", "float64", "bytes"])
    p.add_argument("--addr", action="append", default=None,
                   metavar="HOST:PORT",
                   help="resilient mode: retry with backoff and fail over "
                        "across these addresses (repeatable; overrides "
                        "--host/--port)")
    p.add_argument("--retries", type=int, default=0,
                   help="resilient mode against --host/--port: total "
                        "attempts per request (default: plain client, "
                        "no retries)")
    p.add_argument("--pipeline-depth", type=int, default=1, metavar="N",
                   help="split the payload into N independent requests "
                        "kept in flight on one connection (output is an "
                        "FPRA archive; decompress detects it)")
    p.add_argument("--streamed", action="store_true",
                   help="chunk-streamed transfer: server memory stays "
                        "bounded by its --stream-window, not payload size")
    p.set_defaults(func=_cmd_remote)

    p = sub.add_parser(
        "route",
        help="run the shard router: consistent hashing over N backends, "
             "health-checked failover, circuit breakers, load shedding",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=DEFAULT_ROUTER_PORT,
                   help=f"TCP port (default {DEFAULT_ROUTER_PORT}; "
                        f"0 = ephemeral)")
    p.add_argument("--backend", action="append", default=None,
                   metavar="HOST:PORT",
                   help="a backend fprz server (repeatable)")
    p.add_argument("--spawn", type=int, default=0, metavar="N",
                   help="also spawn N in-process backend servers on "
                        "ephemeral ports")
    p.add_argument("--job-threads", type=int, default=4,
                   help="job threads per --spawn backend")
    p.add_argument("--max-frame", type=int, default=DEFAULT_MAX_FRAME)
    p.add_argument("--health-interval", type=float, default=0.5,
                   help="seconds between backend PING health checks")
    p.add_argument("--backend-timeout", type=float, default=30.0,
                   help="deadline for one forwarded backend exchange")
    p.add_argument("--failure-threshold", type=int, default=3,
                   help="consecutive failures that open a breaker")
    p.add_argument("--open-seconds", type=float, default=1.0,
                   help="open-breaker wait before a half-open probe")
    p.add_argument("--dispatch-attempts", type=int, default=3,
                   help="distinct backends tried per request")
    p.add_argument("--inflight-high-water", type=int, default=128,
                   help="global in-flight bound; past it requests are "
                        "shed with BUSY + retry_after_ms")
    p.set_defaults(func=_cmd_route)

    p = sub.add_parser(
        "chaos",
        help="seeded fault-injection TCP proxy for the FPRW protocol "
             "(resets, truncation, header corruption, latency, black-holes)",
    )
    p.add_argument("--upstream", required=True, metavar="HOST:PORT",
                   help="the real server (or router) to forward to")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="listen port (default: ephemeral, printed on start)")
    p.add_argument("--seed", type=int, default=0,
                   help="fault schedule seed (default_rng([seed, frame]))")
    p.add_argument("--reset-rate", type=float, default=0.0)
    p.add_argument("--truncate-rate", type=float, default=0.0)
    p.add_argument("--corrupt-rate", type=float, default=0.0)
    p.add_argument("--delay-rate", type=float, default=0.0)
    p.add_argument("--blackhole-rate", type=float, default=0.0)
    p.add_argument("--delay-min-ms", type=float, default=5.0)
    p.add_argument("--delay-max-ms", type=float, default=50.0)
    p.add_argument("--kill-after", type=int, default=None, metavar="N",
                   help="abort every connection after N observed frames "
                        "(simulates a backend dying mid-run)")
    p.add_argument("--direction", default="both",
                   choices=["request", "response", "both"],
                   help="which flow direction faults apply to")
    p.add_argument("--describe", type=int, default=0, metavar="N",
                   help="print the first N seeded fault decisions and "
                        "exit (no traffic)")
    p.add_argument("--streams", type=int, default=0, metavar="S",
                   help="with --describe: annotate the schedule for S "
                        "serial streamed transfers (per-stream frame "
                        "kinds and directions)")
    p.add_argument("--stream-frames", type=int, default=8, metavar="K",
                   help="DATA frames per stream in the --streams "
                        "describe ladder (default 8)")
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser("archive", help="create / list / extract member archives")
    p.add_argument("action", choices=["create", "list", "extract"])
    p.add_argument("archive")
    p.add_argument("members", nargs="*",
                   help="NAME=FILE pairs (create/extract)")
    p.add_argument("--codec", default=None)
    p.add_argument("--dtype", default="float32", choices=["float32", "float64"])
    p.set_defaults(func=_cmd_archive)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a consumer that closed early (e.g. `| head`):
        # the POSIX-polite exit, not a crash.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
