"""Frame-level fuzzing for the FPRW wire protocol.

The service's robustness contract mirrors the container's: a hostile
frame arriving on the socket either parses or fails with a typed
:class:`~repro.errors.ProtocolError` — never a crash, never a hang,
and never an allocation sized from an unvalidated declared length.
``run_frame_fuzz`` is the executable form of that contract, driving the
*exact* functions the server calls (:func:`repro.service.protocol.parse_frame`
and the per-opcode body decoders) with seeded mutants of valid frames:

1. **Typed failure or success** — ``parse_frame`` on a mutant either
   returns a :class:`~repro.service.protocol.Frame` or raises
   ``ProtocolError``; the same holds for the body decoders of whatever
   opcode the mutant claims.  Any other exception is a harness failure.
2. **No allocation bombs** — a parsed frame's body never exceeds the
   ``max_frame`` the parser was given; oversize declarations must die at
   the header, before a buffer is sized from them.
3. **Definitional rejections** — mutants that by construction violate
   the frame contract (bad magic, bad version, nonzero reserved fields,
   truncation, declared/actual length mismatch, unknown opcode) must be
   rejected whenever they changed any byte.

Everything derives from ``(seed, iteration)`` via
``np.random.default_rng([seed, iteration])``; failures replay in
isolation with :func:`replay_frame`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import container as fmt
from repro.core.codecs import CODECS, get_codec
from repro.core.compressor import compress_bytes
from repro.errors import ProtocolError, traceback_summary
from repro.fuzzing.harness import FuzzFailure, FuzzReport, _smooth
from repro.fuzzing.mutators import (
    FRAME_MUST_REJECT,
    FRAME_MUTATORS,
    STREAM_MUST_REJECT,
    STREAM_MUTATORS,
    mutate_frame,
    mutate_stream,
)
from repro.service import protocol as wire

#: Frame limit the fuzzer hands ``parse_frame`` — small enough that the
#: oversize mutator's declarations always land past it.
FUZZ_MAX_FRAME = 1 << 20


@dataclass(frozen=True)
class FrameCase:
    """One valid wire frame the mutators start from."""

    label: str
    opcode: int
    frame: bytes


def build_frame_corpus(seed: int, *, size: int = 16_384) -> list[FrameCase]:
    """Valid frames covering every request and response opcode."""
    rng = np.random.default_rng([seed, 0xF4])
    codec_name = sorted(CODECS)[0]
    codec = get_codec(codec_name)
    data = _smooth(rng, codec.dtype, size)
    container = compress_bytes(data, codec, checksum=True, chunk_checksums=True)
    n = len(data) // codec.dtype.itemsize
    dtype_code = fmt.DTYPE_F32 if codec.dtype.itemsize == 4 else fmt.DTYPE_F64

    def case(label: str, opcode: int, request_id: int, body: bytes) -> FrameCase:
        return FrameCase(label, opcode, wire.encode_frame(opcode, request_id, body))

    return [
        case("compress-array", wire.OP_COMPRESS, 1, wire.encode_compress_body(
            data, codec=codec_name, dtype_code=dtype_code, shape=(n,))),
        case("compress-raw", wire.OP_COMPRESS, 2, wire.encode_compress_body(
            rng.bytes(size // 4), codec=codec_name)),
        case("decompress", wire.OP_DECOMPRESS, 3, container),
        case("inspect", wire.OP_INSPECT, 4, container),
        case("stats", wire.OP_STATS, 5, b""),
        case("ping", wire.OP_PING, 6, b""),
        case("result-array", wire.OP_RESULT, 1, wire.encode_array_body(
            data, dtype_code=dtype_code, shape=(n,))),
        case("error", wire.OP_ERROR, 7, wire.encode_error_body(
            wire.ERR_FORMAT, "synthetic failure")),
        case("busy", wire.OP_BUSY, 8, b""),
        case("busy-hint", wire.OP_BUSY, 9, wire.encode_busy_body(250)),
        case("stream-begin", wire.OP_STREAM_BEGIN, 10, wire.encode_stream_begin(
            wire.STREAM_COMPRESS, total_len=size, codec=codec_name,
            dtype_code=dtype_code, shape=(n,))),
        case("stream-data", wire.OP_STREAM_DATA, 10, data[: size // 4]),
        case("stream-end", wire.OP_STREAM_END, 10, b""),
        case("stream-ack", wire.OP_STREAM_ACK, 10, wire.encode_stream_ack(65536)),
        case("stream-result", wire.OP_STREAM_RESULT, 10,
             wire.encode_stream_result(0, container[:512])),
        case("stream-done", wire.OP_STREAM_DONE, 10, wire.encode_stream_trailer(
            dtype_code, (n,), container[:64])),
    ]


def _decode_body(frame: wire.Frame) -> None:
    """Run the body decoder the server/client would for this opcode."""
    if frame.opcode == wire.OP_COMPRESS:
        wire.decode_compress_body(frame.body)
    elif frame.opcode == wire.OP_RESULT:
        # The corpus RESULT frame carries an array body (decompress
        # path); compress-path RESULT bodies are FPRZ containers, which
        # the container fuzzer owns.
        wire.decode_array_body(frame.body)
    elif frame.opcode == wire.OP_ERROR:
        wire.decode_error_body(frame.body)
    elif frame.opcode == wire.OP_BUSY:
        wire.decode_busy_body(frame.body)
    elif frame.opcode == wire.OP_STREAM_BEGIN:
        wire.decode_stream_begin(frame.body)
    elif frame.opcode == wire.OP_STREAM_ACK:
        wire.decode_stream_ack(frame.body)
    elif frame.opcode == wire.OP_STREAM_RESULT:
        wire.decode_stream_result(frame.body)
    elif frame.opcode == wire.OP_STREAM_DONE:
        wire.decode_stream_trailer(frame.body)
    # DECOMPRESS/INSPECT bodies are FPRZ containers — the container
    # fuzzer (`run_fuzz`) owns that layer; STATS/PING carry none;
    # STREAM-DATA/END bodies are raw payload slices / empty.


@dataclass(frozen=True)
class StreamCase:
    """One valid stream frame sequence the stream mutators start from."""

    label: str
    frames: tuple[bytes, ...]
    #: The ledger window the sequence was built against; every case sends
    #: more total bytes than this, so the window-violation mutant always
    #: exceeds any credit a well-behaved sender could hold.
    window: int


#: Ledger window the stream corpus is framed against.
FUZZ_STREAM_WINDOW = 4096


def build_stream_corpus(seed: int) -> list[StreamCase]:
    """Valid stream sequences: single, multi-chunk, and interleaved ids."""
    rng = np.random.default_rng([seed, 0xF5])
    codec_name = sorted(CODECS)[0]
    codec = get_codec(codec_name)
    window = FUZZ_STREAM_WINDOW
    total = window * 4
    data = _smooth(rng, codec.dtype, total)
    n = len(data) // codec.dtype.itemsize
    dtype_code = fmt.DTYPE_F32 if codec.dtype.itemsize == 4 else fmt.DTYPE_F64
    container = compress_bytes(data, codec, checksum=True, chunk_checksums=True)

    def stream(rid: int, begin: bytes, payload: bytes) -> list[bytes]:
        frames = [wire.encode_frame(wire.OP_STREAM_BEGIN, rid, begin)]
        for off in range(0, len(payload), window):
            frames.append(wire.encode_frame(
                wire.OP_STREAM_DATA, rid, payload[off : off + window]))
        frames.append(wire.encode_frame(wire.OP_STREAM_END, rid, b""))
        return frames

    compress_frames = stream(21, wire.encode_stream_begin(
        wire.STREAM_COMPRESS, total_len=total, codec=codec_name,
        dtype_code=dtype_code, shape=(n,)), data)
    decompress_frames = stream(22, wire.encode_stream_begin(
        wire.STREAM_DECOMPRESS, total_len=len(container)), container)
    # A legal interleave of two live correlation ids on one connection:
    # BEGIN a, BEGIN b, then alternating DATA, then both ENDs.
    a = stream(31, wire.encode_stream_begin(
        wire.STREAM_COMPRESS, total_len=total, codec=codec_name), data)
    b = stream(32, wire.encode_stream_begin(
        wire.STREAM_DECOMPRESS, total_len=len(container)), container)
    interleaved = [a[0], b[0]]
    body_a, body_b = a[1:-1], b[1:-1]
    for i in range(max(len(body_a), len(body_b))):
        if i < len(body_a):
            interleaved.append(body_a[i])
        if i < len(body_b):
            interleaved.append(body_b[i])
    interleaved += [a[-1], b[-1]]
    return [
        StreamCase("stream-compress", tuple(compress_frames), window),
        StreamCase("stream-decompress", tuple(decompress_frames), window),
        StreamCase("stream-interleaved", tuple(interleaved), window),
    ]


def _drive_ledger(frames, window: int) -> None:
    """Replay a frame sequence through a fresh StreamLedger.

    Models an instantly-consuming server: every buffered byte is consumed
    (and credit regranted) right after each DATA frame, so a sequence
    framed within ``window`` always passes while cross-frame violations
    (unknown ids, early DATA, overlap, window bursts, truncation) raise
    ProtocolError — the identical checks the live server runs.
    """
    ledger = wire.StreamLedger(window=window)
    for raw in frames:
        frame = wire.parse_frame(raw, max_frame=FUZZ_MAX_FRAME)
        if frame.opcode == wire.OP_STREAM_BEGIN:
            ledger.on_begin(frame.request_id, frame.body)
        elif frame.opcode == wire.OP_STREAM_DATA:
            ledger.on_data(frame.request_id, len(frame.body))
            ledger.consume(frame.request_id, len(frame.body))
        elif frame.opcode == wire.OP_STREAM_END:
            ledger.on_end(frame.request_id)
            ledger.close(frame.request_id)
        else:
            raise ProtocolError(
                f"non-stream opcode 0x{frame.opcode:02x} in stream sequence"
            )


def _probe_stream(
    case: StreamCase,
    mutator: str,
    mutant: list[bytes],
    iteration: int,
    report: FuzzReport,
) -> str:
    def fail(kind: str, detail: str) -> None:
        report.failures.append(FuzzFailure(
            iteration=iteration, case=case.label, mutator=mutator,
            kind=kind, detail=detail,
        ))

    changed = tuple(mutant) != case.frames
    try:
        _drive_ledger(mutant, case.window)
    except ProtocolError:
        if not changed:
            fail("rejected-valid", f"{mutator} left the sequence unchanged "
                 f"but the ledger rejected it")
            return "crashed"
        return "stream-rejected"
    except BaseException as exc:
        fail("crash", traceback_summary(exc))
        return "crashed"
    if changed and mutator in STREAM_MUST_REJECT:
        fail("accepted-invalid",
             f"{mutator} stream mutant replayed cleanly through the ledger")
    return "stream-parsed" if changed else "stream-unchanged"


def _probe_frame(
    case: FrameCase,
    mutator: str,
    mutant: bytes,
    iteration: int,
    report: FuzzReport,
) -> str:
    def fail(kind: str, detail: str) -> None:
        report.failures.append(FuzzFailure(
            iteration=iteration, case=case.label, mutator=mutator,
            kind=kind, detail=detail,
        ))

    changed = mutant != case.frame
    try:
        frame = wire.parse_frame(mutant, max_frame=FUZZ_MAX_FRAME)
    except ProtocolError:
        return "rejected"
    except BaseException as exc:
        fail("crash", traceback_summary(exc))
        return "crashed"

    # Invariant 3: contract-violating mutants must not parse.
    if changed and mutator in FRAME_MUST_REJECT:
        fail("accepted-invalid",
             f"{mutator} mutant parsed as opcode 0x{frame.opcode:02x}")
    # Invariant 2: nothing past the frame limit survives the parser.
    if len(frame.body) > FUZZ_MAX_FRAME:
        fail("over-allocation",
             f"parsed frame carries a {len(frame.body)}-byte body past the "
             f"{FUZZ_MAX_FRAME}-byte limit")

    try:
        _decode_body(frame)
    except ProtocolError:
        return "body-rejected"
    except BaseException as exc:
        fail("crash", traceback_summary(exc))
        return "crashed"
    return "parsed" if changed else "unchanged"


def run_frame_fuzz(
    seed: int = 0,
    iterations: int = 500,
    *,
    mutators=None,
    on_progress=None,
) -> FuzzReport:
    """Run the frame harness; returns a :class:`FuzzReport` (ok == clean).

    Each iteration probes one mutated single frame *and* one mutated
    stream sequence (both derived from the same ``(seed, iteration)``
    rng), so the stream state machine is fuzzed at the same cadence as
    the frame parser.  Before the loop, every valid stream case is
    replayed unmutated through the ledger — a valid sequence being
    rejected is a harness failure, not a fuzz finding.
    """
    cases = build_frame_corpus(seed)
    stream_cases = build_stream_corpus(seed)
    mutator_names = sorted(mutators) if mutators else sorted(FRAME_MUTATORS)
    stream_names = sorted(STREAM_MUTATORS)
    report = FuzzReport(seed=seed, iterations=iterations)
    for scase in stream_cases:
        try:
            _drive_ledger(list(scase.frames), scase.window)
        except BaseException as exc:
            report.failures.append(FuzzFailure(
                iteration=-1, case=scase.label, mutator="(none)",
                kind="rejected-valid", detail=traceback_summary(exc),
            ))
    for iteration in range(iterations):
        rng = np.random.default_rng([seed, iteration])
        case = cases[int(rng.integers(0, len(cases)))]
        mutator = mutator_names[int(rng.integers(0, len(mutator_names)))]
        mutant = mutate_frame(case.frame, mutator, rng)
        outcome = _probe_frame(case, mutator, mutant, iteration, report)
        report.outcomes[outcome] += 1
        scase = stream_cases[int(rng.integers(0, len(stream_cases)))]
        smutator = stream_names[int(rng.integers(0, len(stream_names)))]
        smutant = mutate_stream(list(scase.frames), smutator, rng)
        soutcome = _probe_stream(scase, smutator, smutant, iteration, report)
        report.outcomes[soutcome] += 1
        if on_progress is not None:
            on_progress(iteration + 1, iterations)
    return report


def replay_frame(seed: int, iteration: int, *, mutators=None):
    """Rebuild the exact (case, mutator, mutant) of one failing iteration."""
    cases = build_frame_corpus(seed)
    mutator_names = sorted(mutators) if mutators else sorted(FRAME_MUTATORS)
    rng = np.random.default_rng([seed, iteration])
    case = cases[int(rng.integers(0, len(cases)))]
    mutator = mutator_names[int(rng.integers(0, len(mutator_names)))]
    return case, mutator, mutate_frame(case.frame, mutator, rng)


def replay_stream(seed: int, iteration: int):
    """Rebuild the exact stream (case, mutator, mutant) of one iteration.

    Replays the iteration's single-frame draws first so the rng state
    matches :func:`run_frame_fuzz` exactly at the stream probe.
    """
    cases = build_frame_corpus(seed)
    stream_cases = build_stream_corpus(seed)
    mutator_names = sorted(FRAME_MUTATORS)
    stream_names = sorted(STREAM_MUTATORS)
    rng = np.random.default_rng([seed, iteration])
    case = cases[int(rng.integers(0, len(cases)))]
    mutator = mutator_names[int(rng.integers(0, len(mutator_names)))]
    mutate_frame(case.frame, mutator, rng)
    scase = stream_cases[int(rng.integers(0, len(stream_cases)))]
    smutator = stream_names[int(rng.integers(0, len(stream_names)))]
    return scase, smutator, mutate_stream(list(scase.frames), smutator, rng)
