"""Frame-level fuzzing for the FPRW wire protocol.

The service's robustness contract mirrors the container's: a hostile
frame arriving on the socket either parses or fails with a typed
:class:`~repro.errors.ProtocolError` — never a crash, never a hang,
and never an allocation sized from an unvalidated declared length.
``run_frame_fuzz`` is the executable form of that contract, driving the
*exact* functions the server calls (:func:`repro.service.protocol.parse_frame`
and the per-opcode body decoders) with seeded mutants of valid frames:

1. **Typed failure or success** — ``parse_frame`` on a mutant either
   returns a :class:`~repro.service.protocol.Frame` or raises
   ``ProtocolError``; the same holds for the body decoders of whatever
   opcode the mutant claims.  Any other exception is a harness failure.
2. **No allocation bombs** — a parsed frame's body never exceeds the
   ``max_frame`` the parser was given; oversize declarations must die at
   the header, before a buffer is sized from them.
3. **Definitional rejections** — mutants that by construction violate
   the frame contract (bad magic, bad version, nonzero reserved fields,
   truncation, declared/actual length mismatch, unknown opcode) must be
   rejected whenever they changed any byte.

Everything derives from ``(seed, iteration)`` via
``np.random.default_rng([seed, iteration])``; failures replay in
isolation with :func:`replay_frame`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import container as fmt
from repro.core.codecs import CODECS, get_codec
from repro.core.compressor import compress_bytes
from repro.errors import ProtocolError, traceback_summary
from repro.fuzzing.harness import FuzzFailure, FuzzReport, _smooth
from repro.fuzzing.mutators import FRAME_MUST_REJECT, FRAME_MUTATORS, mutate_frame
from repro.service import protocol as wire

#: Frame limit the fuzzer hands ``parse_frame`` — small enough that the
#: oversize mutator's declarations always land past it.
FUZZ_MAX_FRAME = 1 << 20


@dataclass(frozen=True)
class FrameCase:
    """One valid wire frame the mutators start from."""

    label: str
    opcode: int
    frame: bytes


def build_frame_corpus(seed: int, *, size: int = 16_384) -> list[FrameCase]:
    """Valid frames covering every request and response opcode."""
    rng = np.random.default_rng([seed, 0xF4])
    codec_name = sorted(CODECS)[0]
    codec = get_codec(codec_name)
    data = _smooth(rng, codec.dtype, size)
    container = compress_bytes(data, codec, checksum=True, chunk_checksums=True)
    n = len(data) // codec.dtype.itemsize
    dtype_code = fmt.DTYPE_F32 if codec.dtype.itemsize == 4 else fmt.DTYPE_F64

    def case(label: str, opcode: int, request_id: int, body: bytes) -> FrameCase:
        return FrameCase(label, opcode, wire.encode_frame(opcode, request_id, body))

    return [
        case("compress-array", wire.OP_COMPRESS, 1, wire.encode_compress_body(
            data, codec=codec_name, dtype_code=dtype_code, shape=(n,))),
        case("compress-raw", wire.OP_COMPRESS, 2, wire.encode_compress_body(
            rng.bytes(size // 4), codec=codec_name)),
        case("decompress", wire.OP_DECOMPRESS, 3, container),
        case("inspect", wire.OP_INSPECT, 4, container),
        case("stats", wire.OP_STATS, 5, b""),
        case("ping", wire.OP_PING, 6, b""),
        case("result-array", wire.OP_RESULT, 1, wire.encode_array_body(
            data, dtype_code=dtype_code, shape=(n,))),
        case("error", wire.OP_ERROR, 7, wire.encode_error_body(
            wire.ERR_FORMAT, "synthetic failure")),
        case("busy", wire.OP_BUSY, 8, b""),
        case("busy-hint", wire.OP_BUSY, 9, wire.encode_busy_body(250)),
    ]


def _decode_body(frame: wire.Frame) -> None:
    """Run the body decoder the server/client would for this opcode."""
    if frame.opcode == wire.OP_COMPRESS:
        wire.decode_compress_body(frame.body)
    elif frame.opcode == wire.OP_RESULT:
        # The corpus RESULT frame carries an array body (decompress
        # path); compress-path RESULT bodies are FPRZ containers, which
        # the container fuzzer owns.
        wire.decode_array_body(frame.body)
    elif frame.opcode == wire.OP_ERROR:
        wire.decode_error_body(frame.body)
    elif frame.opcode == wire.OP_BUSY:
        wire.decode_busy_body(frame.body)
    # DECOMPRESS/INSPECT bodies are FPRZ containers — the container
    # fuzzer (`run_fuzz`) owns that layer; STATS/PING carry none.


def _probe_frame(
    case: FrameCase,
    mutator: str,
    mutant: bytes,
    iteration: int,
    report: FuzzReport,
) -> str:
    def fail(kind: str, detail: str) -> None:
        report.failures.append(FuzzFailure(
            iteration=iteration, case=case.label, mutator=mutator,
            kind=kind, detail=detail,
        ))

    changed = mutant != case.frame
    try:
        frame = wire.parse_frame(mutant, max_frame=FUZZ_MAX_FRAME)
    except ProtocolError:
        return "rejected"
    except BaseException as exc:
        fail("crash", traceback_summary(exc))
        return "crashed"

    # Invariant 3: contract-violating mutants must not parse.
    if changed and mutator in FRAME_MUST_REJECT:
        fail("accepted-invalid",
             f"{mutator} mutant parsed as opcode 0x{frame.opcode:02x}")
    # Invariant 2: nothing past the frame limit survives the parser.
    if len(frame.body) > FUZZ_MAX_FRAME:
        fail("over-allocation",
             f"parsed frame carries a {len(frame.body)}-byte body past the "
             f"{FUZZ_MAX_FRAME}-byte limit")

    try:
        _decode_body(frame)
    except ProtocolError:
        return "body-rejected"
    except BaseException as exc:
        fail("crash", traceback_summary(exc))
        return "crashed"
    return "parsed" if changed else "unchanged"


def run_frame_fuzz(
    seed: int = 0,
    iterations: int = 500,
    *,
    mutators=None,
    on_progress=None,
) -> FuzzReport:
    """Run the frame harness; returns a :class:`FuzzReport` (ok == clean)."""
    cases = build_frame_corpus(seed)
    mutator_names = sorted(mutators) if mutators else sorted(FRAME_MUTATORS)
    report = FuzzReport(seed=seed, iterations=iterations)
    for iteration in range(iterations):
        rng = np.random.default_rng([seed, iteration])
        case = cases[int(rng.integers(0, len(cases)))]
        mutator = mutator_names[int(rng.integers(0, len(mutator_names)))]
        mutant = mutate_frame(case.frame, mutator, rng)
        outcome = _probe_frame(case, mutator, mutant, iteration, report)
        report.outcomes[outcome] += 1
        if on_progress is not None:
            on_progress(iteration + 1, iterations)
    return report


def replay_frame(seed: int, iteration: int, *, mutators=None):
    """Rebuild the exact (case, mutator, mutant) of one failing iteration."""
    cases = build_frame_corpus(seed)
    mutator_names = sorted(mutators) if mutators else sorted(FRAME_MUTATORS)
    rng = np.random.default_rng([seed, iteration])
    case = cases[int(rng.integers(0, len(cases)))]
    mutator = mutator_names[int(rng.integers(0, len(mutator_names)))]
    return case, mutator, mutate_frame(case.frame, mutator, rng)
