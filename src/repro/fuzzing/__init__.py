"""Fault-injection fuzzing for the container decode paths.

The robustness contract of :func:`repro.decompress` is: on *any* input —
valid, truncated, bit-flipped, adversarial — it either returns correct
data or raises a :class:`~repro.errors.ReproError` subclass, without
crashing and without allocating beyond the documented bomb guards; and
``errors="salvage"`` contains payload damage to the chunks that own it.
This package is the executable form of that contract:

* :mod:`repro.fuzzing.mutators` — deterministic, seeded corruption
  models (bit flips, span stomps, truncation, header-field damage,
  chunk-table splices);
* :mod:`repro.fuzzing.harness` — the invariant-checking loop, replayable
  per iteration from ``(seed, iteration)``.

Exposed on the command line as ``fprz fuzz`` and wired into corpus
verification (``fprz verify --fuzz``).
"""

from repro.fuzzing.harness import (
    FuzzCase,
    FuzzFailure,
    FuzzReport,
    build_corpus,
    replay,
    run_fuzz,
)
from repro.fuzzing.mutators import MUTATORS, Mutator, mutate

__all__ = [
    "FuzzCase",
    "FuzzFailure",
    "FuzzReport",
    "MUTATORS",
    "Mutator",
    "build_corpus",
    "mutate",
    "replay",
    "run_fuzz",
]
