"""Fault-injection fuzzing for the container decode paths.

The robustness contract of :func:`repro.decompress` is: on *any* input —
valid, truncated, bit-flipped, adversarial — it either returns correct
data or raises a :class:`~repro.errors.ReproError` subclass, without
crashing and without allocating beyond the documented bomb guards; and
``errors="salvage"`` contains payload damage to the chunks that own it.
This package is the executable form of that contract:

* :mod:`repro.fuzzing.mutators` — deterministic, seeded corruption
  models (bit flips, span stomps, truncation, header-field damage,
  chunk-table splices);
* :mod:`repro.fuzzing.harness` — the invariant-checking loop, replayable
  per iteration from ``(seed, iteration)``;
* :mod:`repro.fuzzing.frames` — the same discipline applied to the FPRW
  wire protocol of ``fprz serve``: hostile frames must fail with a typed
  :class:`~repro.errors.ProtocolError`, never a crash or an allocation
  sized from an unvalidated length.

Exposed on the command line as ``fprz fuzz`` (``--frames`` for the wire
layer) and wired into corpus verification (``fprz verify --fuzz``).
"""

from repro.fuzzing.frames import (
    FrameCase,
    StreamCase,
    build_frame_corpus,
    build_stream_corpus,
    replay_frame,
    replay_stream,
    run_frame_fuzz,
)
from repro.fuzzing.harness import (
    FuzzCase,
    FuzzFailure,
    FuzzReport,
    build_corpus,
    replay,
    run_fuzz,
)
from repro.fuzzing.mutators import (
    CODEC_TABLE_MUST_REJECT,
    CONTAINER_MUST_REJECT,
    FLAG_MUST_REJECT,
    FRAME_MUTATORS,
    MUTATORS,
    STREAM_MUST_REJECT,
    STREAM_MUTATORS,
    Mutator,
    StreamMutator,
    mutate,
    mutate_frame,
    mutate_stream,
)

__all__ = [
    "CODEC_TABLE_MUST_REJECT",
    "CONTAINER_MUST_REJECT",
    "FLAG_MUST_REJECT",
    "FRAME_MUTATORS",
    "FrameCase",
    "FuzzCase",
    "FuzzFailure",
    "FuzzReport",
    "MUTATORS",
    "Mutator",
    "STREAM_MUST_REJECT",
    "STREAM_MUTATORS",
    "StreamCase",
    "StreamMutator",
    "build_corpus",
    "build_frame_corpus",
    "build_stream_corpus",
    "mutate",
    "mutate_frame",
    "mutate_stream",
    "replay",
    "replay_frame",
    "replay_stream",
    "run_frame_fuzz",
    "run_fuzz",
]
