"""Deterministic container mutators for the fault-injection harness.

Each mutator is a pure function ``(blob, rng) -> bytes`` taking a *valid*
container and a seeded :class:`numpy.random.Generator`; same blob + same
generator state gives the same mutant, so every harness failure is
reproducible from ``(seed, iteration)`` alone.

The catalogue covers the damage classes a stored container actually
meets: radiation-style bit flips, overwritten or zeroed spans, truncated
and over-long files, targeted header-field damage (the bytes that size
allocations), and chunk-table splices (swapped / inflated / zeroed size
entries — the geometry the decompression-bomb guards exist for).
"""

from __future__ import annotations

import struct
from collections.abc import Callable

import numpy as np

from repro.core import container as fmt

#: ``(blob, rng) -> mutated blob``
Mutator = Callable[[bytes, np.random.Generator], bytes]


def _rand_offset(rng: np.random.Generator, n: int) -> int:
    return int(rng.integers(0, max(n, 1)))


def bit_flip(blob: bytes, rng: np.random.Generator) -> bytes:
    """Flip 1..8 random bits anywhere in the container."""
    buf = bytearray(blob)
    if not buf:
        return bytes(buf)
    for _ in range(int(rng.integers(1, 9))):
        pos = _rand_offset(rng, len(buf))
        buf[pos] ^= 1 << int(rng.integers(0, 8))
    return bytes(buf)


def byte_stomp(blob: bytes, rng: np.random.Generator) -> bytes:
    """Overwrite a random span (1..64 bytes) with random garbage."""
    buf = bytearray(blob)
    if not buf:
        return bytes(buf)
    start = _rand_offset(rng, len(buf))
    length = min(int(rng.integers(1, 65)), len(buf) - start)
    buf[start : start + length] = rng.bytes(length)
    return bytes(buf)


def zero_span(blob: bytes, rng: np.random.Generator) -> bytes:
    """Zero-fill a random span — the signature of a lost storage sector."""
    buf = bytearray(blob)
    if not buf:
        return bytes(buf)
    start = _rand_offset(rng, len(buf))
    length = min(int(rng.integers(1, 257)), len(buf) - start)
    buf[start : start + length] = bytes(length)
    return bytes(buf)


def truncate(blob: bytes, rng: np.random.Generator) -> bytes:
    """Cut the container at a random byte length (possibly zero)."""
    return blob[: _rand_offset(rng, len(blob) + 1)]


def extend(blob: bytes, rng: np.random.Generator) -> bytes:
    """Append 1..256 random trailing bytes."""
    return blob + rng.bytes(int(rng.integers(1, 257)))


#: (offset, size) of every fixed header field, from the wire layout
#: ``<4sBBBBQQII`` — the bytes allocations are sized from.
_HEADER_FIELDS = (
    (0, 4),    # magic
    (4, 1),    # version
    (5, 1),    # codec_id
    (6, 1),    # dtype_code
    (7, 1),    # flags
    (8, 8),    # original_len
    (16, 8),   # intermediate_len
    (24, 4),   # chunk_size
    (28, 4),   # n_chunks
)


def header_field(blob: bytes, rng: np.random.Generator) -> bytes:
    """Rewrite one header field with an adversarial value.

    Half the time the field becomes an extreme (all-zero or all-ones —
    the decompression-bomb shapes), otherwise random bytes.
    """
    buf = bytearray(blob)
    if len(buf) < 32:
        return bit_flip(blob, rng)
    offset, size = _HEADER_FIELDS[int(rng.integers(0, len(_HEADER_FIELDS)))]
    choice = int(rng.integers(0, 4))
    if choice == 0:
        value = bytes(size)
    elif choice == 1:
        value = b"\xff" * size
    else:
        value = rng.bytes(size)
    buf[offset : offset + size] = value
    return bytes(buf)


def _trailing_table_bytes(info: fmt.ContainerInfo) -> int:
    """Bytes between the chunk-CRC table and the payloads: the v3 chunk
    index (12 per chunk) and the v4 codec table (1 per chunk)."""
    trailing = 0
    if info.index_offsets is not None:
        trailing += 12 * info.n_chunks
    if info.chunk_codecs is not None:
        trailing += info.n_chunks
    return trailing


def _table_geometry(blob: bytes) -> tuple[int, int, int] | None:
    """(size_table_offset, crc_table_offset_or_-1, n_chunks) of a valid blob."""
    try:
        info = fmt.inspect_container(blob)
    except Exception:
        return None
    if info.n_chunks == 0:
        return None
    tables = 2 if info.chunk_crcs is not None else 1
    base = info.payload_offset - _trailing_table_bytes(info)
    size_off = base - 4 * info.n_chunks * tables
    crc_off = base - 4 * info.n_chunks if tables == 2 else -1
    return size_off, crc_off, info.n_chunks


def chunk_table_entry(blob: bytes, rng: np.random.Generator) -> bytes:
    """Rewrite one chunk-size table entry with an adversarial length."""
    geometry = _table_geometry(blob)
    if geometry is None:
        return bit_flip(blob, rng)
    size_off, _, n_chunks = geometry
    buf = bytearray(blob)
    i = int(rng.integers(0, n_chunks))
    choice = int(rng.integers(0, 4))
    if choice == 0:
        value = 0
    elif choice == 1:
        value = 0xFFFFFFFF
    elif choice == 2:
        value = int(rng.integers(0, 1 << 31))
    else:  # off-by-one on the real entry
        (current,) = struct.unpack_from("<I", buf, size_off + 4 * i)
        value = max(0, current + int(rng.integers(-2, 3)))
    struct.pack_into("<I", buf, size_off + 4 * i, value)
    return bytes(buf)


def chunk_table_splice(blob: bytes, rng: np.random.Generator) -> bytes:
    """Swap two chunk-size entries — sizes stay plausible, sum unchanged,
    but every payload window between them shifts onto the wrong bytes."""
    geometry = _table_geometry(blob)
    if geometry is None or geometry[2] < 2:
        return chunk_table_entry(blob, rng)
    size_off, _, n_chunks = geometry
    buf = bytearray(blob)
    i, j = rng.choice(n_chunks, size=2, replace=False)
    a = slice(size_off + 4 * int(i), size_off + 4 * int(i) + 4)
    b = slice(size_off + 4 * int(j), size_off + 4 * int(j) + 4)
    buf[a], buf[b] = buf[b], buf[a]
    return bytes(buf)


def _index_geometry(blob: bytes) -> tuple[int, int, int, int] | None:
    """(offset_table, length_table, n_chunks, payload_offset) of the v3
    chunk index, or ``None`` when the container carries no index."""
    try:
        info = fmt.inspect_container(blob)
    except Exception:
        return None
    if info.index_offsets is None or info.n_chunks == 0:
        return None
    codec_bytes = (info.n_chunks if info.chunk_codecs is not None else 0)
    offset_table = info.payload_offset - codec_bytes - 12 * info.n_chunks
    length_table = info.payload_offset - codec_bytes - 4 * info.n_chunks
    return offset_table, length_table, info.n_chunks, info.payload_offset


def index_offset_mismatch(blob: bytes, rng: np.random.Generator) -> bytes:
    """Rewrite one v3 index offset so it disagrees with the size table.

    The stored offsets are redundant with the chunk-size prefix sums by
    design; a decoder trusting the index without cross-checking it would
    read payload windows from the wrong bytes (or far past the blob).
    Every mutant that changes a byte must be rejected at parse time.
    """
    geometry = _index_geometry(blob)
    if geometry is None:
        return bit_flip(blob, rng)
    offset_table, _, n_chunks, payload_offset = geometry
    buf = bytearray(blob)
    i = int(rng.integers(0, n_chunks))
    (current,) = struct.unpack_from("<Q", buf, offset_table + 8 * i)
    choice = int(rng.integers(0, 4))
    if choice == 0:
        value = 0
    elif choice == 1:
        value = 0xFFFFFFFFFFFFFFFF
    elif choice == 2:
        value = int(rng.integers(0, len(blob) * 2 + 1))
    else:  # off-by-a-little on the real entry
        value = max(0, current + int(rng.integers(-64, 65)))
    struct.pack_into("<Q", buf, offset_table + 8 * i, value)
    return bytes(buf)


def index_overlap(blob: bytes, rng: np.random.Generator) -> bytes:
    """Make two v3 index entries overlap the same payload bytes.

    One chunk's offset is pulled back inside its predecessor's window
    (or two offsets are swapped), so the declared windows alias — the
    shape an attacker would use to make one stored span decode as many
    chunks.  Must be rejected at parse time.
    """
    geometry = _index_geometry(blob)
    if geometry is None or geometry[2] < 2:
        return index_offset_mismatch(blob, rng)
    offset_table, _, n_chunks, _ = geometry
    buf = bytearray(blob)
    if rng.integers(0, 2):
        i, j = rng.choice(n_chunks, size=2, replace=False)
        a = slice(offset_table + 8 * int(i), offset_table + 8 * int(i) + 8)
        b = slice(offset_table + 8 * int(j), offset_table + 8 * int(j) + 8)
        buf[a], buf[b] = buf[b], buf[a]
    else:
        i = int(rng.integers(1, n_chunks))
        (previous,) = struct.unpack_from("<Q", buf, offset_table + 8 * (i - 1))
        (current,) = struct.unpack_from("<Q", buf, offset_table + 8 * i)
        span = max(1, current - previous)
        value = previous + int(rng.integers(0, span))
        struct.pack_into("<Q", buf, offset_table + 8 * i, value)
    return bytes(buf)


def _codec_table_geometry(blob: bytes) -> tuple[int, int] | None:
    """(codec_table_offset, n_chunks) of a v4 blob, or ``None``."""
    try:
        info = fmt.inspect_container(blob)
    except Exception:
        return None
    if info.chunk_codecs is None or info.n_chunks == 0:
        return None
    return info.payload_offset - info.n_chunks, info.n_chunks


def codec_table_id(blob: bytes, rng: np.random.Generator) -> bytes:
    """Rewrite one v4 codec-table entry with an unknown codec id.

    The per-chunk table routes each payload to a decode pipeline; an
    entry naming a codec this build does not know (including the
    selector's own id, which never encodes a chunk) must be rejected at
    parse time — before any pipeline or allocation is chosen from it.
    """
    from repro.core.codecs import fixed_codec_ids

    geometry = _codec_table_geometry(blob)
    if geometry is None:
        return bit_flip(blob, rng)
    table_off, n_chunks = geometry
    buf = bytearray(blob)
    i = int(rng.integers(0, n_chunks))
    known = fixed_codec_ids()
    while True:
        value = int(rng.integers(0, 256))
        if value not in known:
            break
    buf[table_off + i] = value
    return bytes(buf)


def codec_table_flag(blob: bytes, rng: np.random.Generator) -> bytes:
    """Flip the ``FLAG_CHUNK_CODECS`` header bit.

    Both directions must be rejected: cleared on a v4 container, the
    declared tables no longer account for the codec-table bytes (and a
    selector header codec without a table is meaningless); set on a
    v1-v3 container, the flag is unknown for that version.
    """
    buf = bytearray(blob)
    if len(buf) < 8:
        return bit_flip(blob, rng)
    buf[7] ^= fmt.FLAG_CHUNK_CODECS
    return bytes(buf)


def codec_table_truncate(blob: bytes, rng: np.random.Generator) -> bytes:
    """Delete one byte of the v4 codec table (shortening the blob).

    Every payload window shifts one byte early and the declared
    geometry no longer matches the blob length — the truncation check
    must reject the container before any chunk is read.
    """
    geometry = _codec_table_geometry(blob)
    if geometry is None:
        return truncate(blob, rng)
    table_off, n_chunks = geometry
    i = int(rng.integers(0, n_chunks))
    return blob[: table_off + i] + blob[table_off + i + 1 :]


def payload_flip(blob: bytes, rng: np.random.Generator) -> bytes:
    """Flip one bit strictly inside the payload region.

    The harness's salvage-recovery invariant keys off this mutator:
    header and tables stay intact, so salvage must contain the damage to
    the one chunk that owns the flipped bit.
    """
    try:
        info = fmt.inspect_container(blob)
    except Exception:
        return bit_flip(blob, rng)
    if info.payload_offset >= len(blob):
        return bit_flip(blob, rng)
    buf = bytearray(blob)
    pos = int(rng.integers(info.payload_offset, len(buf)))
    buf[pos] ^= 1 << int(rng.integers(0, 8))
    return bytes(buf)


def pad_bit_set(blob: bytes, rng: np.random.Generator) -> bytes:
    """OR 1..7 low bits into the final byte of one chunk payload.

    Every packed bit stream a chunk ends with (``pack_words`` output,
    bitmap levels) zero-pads its final byte, and the decoders reject
    nonzero padding as corruption.  Before that check, damage landing on
    pad bits was silently discarded by the unpack slice; this mutator
    pins the new behaviour — a typed failure (or a CRC rejection on v2
    containers), never a silent pass-through of a damaged stream.
    """
    try:
        info = fmt.inspect_container(blob)
    except Exception:
        return bit_flip(blob, rng)
    if info.n_chunks == 0 or info.payload_offset >= len(blob):
        return bit_flip(blob, rng)
    buf = bytearray(blob)
    i = int(rng.integers(0, info.n_chunks))
    if info.chunk_sizes[i] == 0:
        return bit_flip(blob, rng)
    end = info.payload_offset + sum(info.chunk_sizes[: i + 1])
    if end > len(buf):
        return bit_flip(blob, rng)
    buf[end - 1] |= (1 << int(rng.integers(1, 8))) - 1
    return bytes(buf)


# ---------------------------------------------------------------------------
# FPRW frame mutators.
#
# These operate on one complete wire frame (header + body) of the FPRW
# protocol spoken by ``fprz serve`` — layout ``<4sBBBBQI`` + body, see
# :mod:`repro.service.protocol`.  The frame fuzzer feeds the mutants to
# the exact ``parse_frame``/``decode_*`` functions the server calls, so
# every damage class here is a damage class a listening socket meets.

#: Frame header offsets, from the ``<4sBBBBQI`` wire layout.
_F_MAGIC = 0
_F_VERSION = 4
_F_OPCODE = 5
_F_FLAGS = 6
_F_RESERVED = 7
_F_BODY_LEN = 16
_FRAME_HEADER_SIZE = 20


def frame_truncate(frame: bytes, rng: np.random.Generator) -> bytes:
    """Cut the frame at a random byte — a dropped connection mid-send."""
    return frame[: _rand_offset(rng, len(frame) + 1)]


def frame_oversize_length(frame: bytes, rng: np.random.Generator) -> bytes:
    """Declare a body far past any sane frame limit (allocation-bomb shape)."""
    buf = bytearray(frame)
    if len(buf) < _FRAME_HEADER_SIZE:
        return bit_flip(frame, rng)
    extremes = (0xFFFFFFFF, 1 << 31, (1 << 30) + 1)
    value = extremes[int(rng.integers(0, len(extremes)))]
    struct.pack_into("<I", buf, _F_BODY_LEN, value)
    return bytes(buf)


def frame_bad_magic(frame: bytes, rng: np.random.Generator) -> bytes:
    """Replace the magic with something that is not ``FPRW``."""
    buf = bytearray(frame)
    if len(buf) < _FRAME_HEADER_SIZE:
        return bit_flip(frame, rng)
    while True:
        magic = rng.bytes(4)
        if magic != bytes(buf[_F_MAGIC : _F_MAGIC + 4]):
            break
    buf[_F_MAGIC : _F_MAGIC + 4] = magic
    return bytes(buf)


def frame_bad_version(frame: bytes, rng: np.random.Generator) -> bytes:
    """Claim a wire protocol version this library does not speak."""
    buf = bytearray(frame)
    if len(buf) < _FRAME_HEADER_SIZE:
        return bit_flip(frame, rng)
    current = buf[_F_VERSION]
    buf[_F_VERSION] = (current + int(rng.integers(1, 256))) % 256
    return bytes(buf)


def frame_flags_garbage(frame: bytes, rng: np.random.Generator) -> bytes:
    """Set the reserved flags/reserved bytes nonzero."""
    buf = bytearray(frame)
    if len(buf) < _FRAME_HEADER_SIZE:
        return bit_flip(frame, rng)
    field = _F_FLAGS if rng.integers(0, 2) else _F_RESERVED
    buf[field] = int(rng.integers(1, 256))
    return bytes(buf)


def frame_opcode_invalid(frame: bytes, rng: np.random.Generator) -> bytes:
    """Flip the opcode to a value outside every opcode table."""
    from repro.service.protocol import OPCODE_NAMES

    buf = bytearray(frame)
    if len(buf) < _FRAME_HEADER_SIZE:
        return bit_flip(frame, rng)
    while True:
        opcode = int(rng.integers(0, 256))
        if opcode not in OPCODE_NAMES:
            break
    buf[_F_OPCODE] = opcode
    return bytes(buf)


def frame_opcode_swap(frame: bytes, rng: np.random.Generator) -> bytes:
    """Swap the opcode for a *different valid* one.

    The header stays well-formed, so the body now parses under the wrong
    opcode's layout — the cross-opcode confusion a buggy client sends.
    """
    from repro.service.protocol import OPCODE_NAMES

    buf = bytearray(frame)
    if len(buf) < _FRAME_HEADER_SIZE:
        return bit_flip(frame, rng)
    others = sorted(code for code in OPCODE_NAMES if code != buf[_F_OPCODE])
    buf[_F_OPCODE] = others[int(rng.integers(0, len(others)))]
    return bytes(buf)


def frame_length_mismatch(frame: bytes, rng: np.random.Generator) -> bytes:
    """Nudge ``body_len`` so the declaration no longer matches the body."""
    buf = bytearray(frame)
    if len(buf) < _FRAME_HEADER_SIZE:
        return bit_flip(frame, rng)
    (current,) = struct.unpack_from("<I", buf, _F_BODY_LEN)
    while True:
        delta = int(rng.integers(-16, 17))
        value = max(0, current + delta)
        if value != current:
            break
    struct.pack_into("<I", buf, _F_BODY_LEN, value)
    return bytes(buf)


def frame_body_stomp(frame: bytes, rng: np.random.Generator) -> bytes:
    """Corrupt body bytes only — the header stays intact and truthful.

    The frame parses; the damage must be caught (or tolerated) by the
    per-opcode body decoders, never by an unchecked allocation.
    """
    buf = bytearray(frame)
    if len(buf) <= _FRAME_HEADER_SIZE:
        return frame_flags_garbage(frame, rng)
    start = _FRAME_HEADER_SIZE + _rand_offset(rng, len(buf) - _FRAME_HEADER_SIZE)
    length = min(int(rng.integers(1, 33)), len(buf) - start)
    buf[start : start + length] = rng.bytes(length)
    return bytes(buf)


FRAME_MUTATORS: dict[str, Mutator] = {
    "frame-truncate": frame_truncate,
    "frame-oversize": frame_oversize_length,
    "frame-bad-magic": frame_bad_magic,
    "frame-bad-version": frame_bad_version,
    "frame-flags": frame_flags_garbage,
    "frame-opcode-invalid": frame_opcode_invalid,
    "frame-opcode-swap": frame_opcode_swap,
    "frame-length-mismatch": frame_length_mismatch,
    "frame-body-stomp": frame_body_stomp,
}

#: Mutators whose mutants (when they changed any byte) definitionally
#: violate the frame contract — the parser accepting one is a failure.
FRAME_MUST_REJECT = frozenset({
    "frame-truncate",
    "frame-oversize",
    "frame-bad-magic",
    "frame-bad-version",
    "frame-flags",
    "frame-opcode-invalid",
    "frame-length-mismatch",
})


def mutate_frame(frame: bytes, name: str, rng: np.random.Generator) -> bytes:
    """Apply the named frame mutator."""
    return FRAME_MUTATORS[name](frame, rng)


# ---------------------------------------------------------------------------
# Stream-sequence mutators
# ---------------------------------------------------------------------------
# These operate on a *sequence* of frames forming one or more valid
# streams (STREAM-BEGIN / DATA / END sharing a correlation id).  Each
# models a protocol violation only visible across frames — exactly the
# state machine :class:`repro.service.protocol.StreamLedger` (and through
# it the server) enforces, so the frame fuzzer probes mutants against
# the same ledger production traffic hits.

_F_REQUEST_ID = 8

_OP_STREAM_BEGIN = 0x06
_OP_STREAM_DATA = 0x07
_OP_STREAM_END = 0x08


def _frame_opcode(frame: bytes) -> int:
    return frame[_F_OPCODE]


def _frame_rid(frame: bytes) -> int:
    return struct.unpack_from("<Q", frame, _F_REQUEST_ID)[0]


def _with_rid(frame: bytes, rid: int) -> bytes:
    buf = bytearray(frame)
    struct.pack_into("<Q", buf, _F_REQUEST_ID, rid)
    return bytes(buf)


def _frame_body(frame: bytes) -> bytes:
    return frame[_FRAME_HEADER_SIZE:]


def _pick(rng: np.random.Generator, items: list[int]) -> int:
    return items[int(rng.integers(0, len(items)))]


def stream_unknown_id(frames: list[bytes], rng: np.random.Generator) -> list[bytes]:
    """Retarget a DATA or END frame at a correlation id nothing ever began."""
    idxs = [i for i, f in enumerate(frames)
            if _frame_opcode(f) in (_OP_STREAM_DATA, _OP_STREAM_END)]
    if not idxs:
        return list(frames)
    used = {_frame_rid(f) for f in frames}
    rid = max(used) + 1 + int(rng.integers(0, 1000))
    out = list(frames)
    i = _pick(rng, idxs)
    out[i] = _with_rid(out[i], rid)
    return out


def stream_data_before_begin(
    frames: list[bytes], rng: np.random.Generator
) -> list[bytes]:
    """Move a stream's first DATA frame ahead of its BEGIN."""
    begins = [i for i, f in enumerate(frames)
              if _frame_opcode(f) == _OP_STREAM_BEGIN]
    if not begins:
        return list(frames)
    b = _pick(rng, begins)
    rid = _frame_rid(frames[b])
    data = [i for i, f in enumerate(frames)
            if i > b and _frame_opcode(f) == _OP_STREAM_DATA
            and _frame_rid(f) == rid]
    if not data:
        return list(frames)
    d = data[0]
    out = list(frames)
    moved = out.pop(d)
    out.insert(b, moved)
    return out


def stream_overlap_begin(
    frames: list[bytes], rng: np.random.Generator
) -> list[bytes]:
    """Re-open an already-open stream: a second BEGIN with a live id."""
    begins = [i for i, f in enumerate(frames)
              if _frame_opcode(f) == _OP_STREAM_BEGIN]
    if not begins:
        return list(frames)
    b = _pick(rng, begins)
    rid = _frame_rid(frames[b])
    # Insert the duplicate before the stream's END (after END the id is
    # retired and may legitimately be reused), strictly after the original.
    end = next((i for i, f in enumerate(frames)
                if i > b and _frame_opcode(f) == _OP_STREAM_END
                and _frame_rid(f) == rid), len(frames))
    at = b + 1 + int(rng.integers(0, end - b))
    out = list(frames)
    out.insert(at, frames[b])
    return out


def stream_window_violation(
    frames: list[bytes], rng: np.random.Generator
) -> list[bytes]:
    """Merge one stream's DATA frames into a single burst past any window.

    The corpus streams more total bytes than the ledger window, so the
    merged frame always exceeds the credit a well-behaved sender could
    hold at once.
    """
    begins = [i for i, f in enumerate(frames)
              if _frame_opcode(f) == _OP_STREAM_BEGIN]
    if not begins:
        return list(frames)
    b = _pick(rng, begins)
    rid = _frame_rid(frames[b])
    data = [i for i, f in enumerate(frames)
            if _frame_opcode(f) == _OP_STREAM_DATA and _frame_rid(f) == rid]
    if len(data) < 2:
        return list(frames)
    merged = b"".join(_frame_body(frames[i]) for i in data)
    from repro.service.protocol import encode_frame

    out = [f for i, f in enumerate(frames) if i not in data[1:]]
    out[out.index(frames[data[0]])] = encode_frame(_OP_STREAM_DATA, rid, merged)
    return out


def stream_truncate(frames: list[bytes], rng: np.random.Generator) -> list[bytes]:
    """Drop one DATA frame but keep the END — a silently shortened stream."""
    data = [i for i, f in enumerate(frames)
            if _frame_opcode(f) == _OP_STREAM_DATA]
    if not data:
        return list(frames)
    drop = _pick(rng, data)
    return [f for i, f in enumerate(frames) if i != drop]


StreamMutator = Callable[[list[bytes], np.random.Generator], list[bytes]]

STREAM_MUTATORS: dict[str, StreamMutator] = {
    "stream-unknown-id": stream_unknown_id,
    "stream-data-before-begin": stream_data_before_begin,
    "stream-overlap-begin": stream_overlap_begin,
    "stream-window-violation": stream_window_violation,
    "stream-truncate": stream_truncate,
}

#: Every stream mutant (when it changed the sequence) violates the stream
#: state machine by construction — the ledger accepting one is a failure.
STREAM_MUST_REJECT = frozenset(STREAM_MUTATORS)


def mutate_stream(
    frames: list[bytes], name: str, rng: np.random.Generator
) -> list[bytes]:
    """Apply the named stream-sequence mutator."""
    return STREAM_MUTATORS[name](list(frames), rng)


MUTATORS: dict[str, Mutator] = {
    "bit-flip": bit_flip,
    "byte-stomp": byte_stomp,
    "zero-span": zero_span,
    "truncate": truncate,
    "extend": extend,
    "header-field": header_field,
    "chunk-table-entry": chunk_table_entry,
    "chunk-table-splice": chunk_table_splice,
    "index-offset": index_offset_mismatch,
    "index-overlap": index_overlap,
    "codec-table-id": codec_table_id,
    "codec-table-flag": codec_table_flag,
    "codec-table-truncate": codec_table_truncate,
    "payload-flip": payload_flip,
    "pad-bit-set": pad_bit_set,
}

#: Container mutators whose mutants (when applied to an index-carrying
#: container and any byte changed) definitionally violate the format
#: contract — the decoder accepting one is a harness failure.
CONTAINER_MUST_REJECT = frozenset({
    "index-offset",
    "index-overlap",
})

#: Mutators targeting the v4 per-chunk codec table whose mutants (when
#: applied to a codec-table-carrying container and any byte changed)
#: must be rejected at parse time.
CODEC_TABLE_MUST_REJECT = frozenset({
    "codec-table-id",
    "codec-table-truncate",
})

#: The flag flip is unconditionally a contract violation on *every*
#: valid container: set, the flag is unknown below v4 (and undeclared
#: table bytes above); cleared, a v4 geometry no longer adds up.
FLAG_MUST_REJECT = frozenset({"codec-table-flag"})


def mutate(blob: bytes, name: str, rng: np.random.Generator) -> bytes:
    """Apply the named mutator."""
    return MUTATORS[name](blob, rng)
