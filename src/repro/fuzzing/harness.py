"""The fault-injection harness: decode must survive anything.

``run_fuzz`` builds a small corpus of valid containers (every paper
codec in v1, v2, and v3-with-chunk-index framing, a raw-fallback
container, and v4 mixed-codec containers carrying a per-chunk codec
table), then runs ``iterations`` seeded mutations through both decode
paths, checking the robustness invariants the container format
promises:

1. **Typed failure or success, never a crash** — ``decompress`` on a
   mutant either returns, or raises a :class:`~repro.errors.ReproError`
   subclass.  Any other exception is a harness failure, recorded with a
   traceback summary.
2. **No over-allocation** — when a mutant's header still parses, every
   declared length obeys the documented bomb guards
   (:data:`~repro.core.container.MAX_DECLARED_EXPANSION`,
   :data:`~repro.core.container.MAX_CHUNK_SIZE`), so no allocation is
   ever sized beyond them.
3. **Salvage containment** — for same-length mutants that only touch
   payload bytes of a chunk-CRC container, ``errors="salvage"`` must
   succeed and every output byte outside the report's damaged ranges
   must be bit-exact against the original data.
4. **Index consistency** — mutants from the ``index-*`` mutators (a v3
   chunk index contradicting the size table, or index entries aliasing
   the same payload bytes) must be *rejected*: the stored index is
   redundant by design, and a decode that accepts a contradictory one
   is reading payload windows from attacker-chosen offsets.
5. **Codec-table consistency** — mutants from the ``codec-table-*``
   mutators (an unknown codec id in a v4 per-chunk table, a deleted
   table byte, a flipped ``FLAG_CHUNK_CODECS`` bit) must be rejected at
   parse time: the table routes payloads to decode pipelines, so an
   accepted lie routes bytes through the wrong codec.

Everything is derived from ``(seed, iteration)`` via
``np.random.default_rng([seed, iteration])``, so any failure replays in
isolation with :func:`replay`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.core import container as fmt
from repro.core.codecs import CODECS, get_codec
from repro.core.compressor import compress_bytes, decompress_bytes
from repro.errors import ReproError, traceback_summary
from repro.fuzzing.mutators import (
    CODEC_TABLE_MUST_REJECT,
    CONTAINER_MUST_REJECT,
    FLAG_MUST_REJECT,
    MUTATORS,
    mutate,
)


@dataclass(frozen=True)
class FuzzCase:
    """One valid container the mutators start from."""

    label: str
    codec: str
    data: bytes
    blob: bytes
    payload_offset: int
    has_chunk_crcs: bool
    has_index: bool = False
    has_codec_table: bool = False


@dataclass(frozen=True)
class FuzzFailure:
    """One violated invariant, replayable from (seed, iteration)."""

    iteration: int
    case: str
    mutator: str
    kind: str  # "crash" | "over-allocation" | "salvage-crash" | ...
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"iteration {self.iteration} [{self.case} x {self.mutator}] "
            f"{self.kind}: {self.detail}"
        )


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzzing run."""

    seed: int
    iterations: int
    outcomes: Counter = field(default_factory=Counter)
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            f"fuzz: seed={self.seed} iterations={self.iterations} "
            f"failures={len(self.failures)}"
        ]
        for kind in sorted(self.outcomes):
            lines.append(f"  {kind}: {self.outcomes[kind]}")
        lines.extend(f"  FAIL {failure}" for failure in self.failures)
        return "\n".join(lines)


def _smooth(rng: np.random.Generator, dtype: np.dtype, n_bytes: int) -> bytes:
    n = n_bytes // dtype.itemsize
    walk = np.cumsum(rng.normal(0.0, 0.01, size=n)) + 1.0
    return np.ascontiguousarray(walk.astype(dtype)).tobytes()


def build_corpus(seed: int, *, codecs=None, size: int = 72_000) -> list[FuzzCase]:
    """Valid containers to mutate: each codec in v1, v2, and v3 framing.

    ``size`` (~4.5 default chunks) keeps several chunks per container so
    table splices and salvage containment have structure to work on.
    The v1/v2 cases pin the legacy framing explicitly with
    ``fcm="global"``; the v3 case is built with restart framing and
    :func:`~repro.core.container.concat_containers`, so it carries the
    explicit chunk index the ``index-*`` mutators target.
    """
    rng = np.random.default_rng([seed, 0xF0])
    names = sorted(codecs) if codecs else sorted(CODECS)
    cases: list[FuzzCase] = []

    def record(label: str, codec_name: str, data: bytes, blob: bytes) -> None:
        info = fmt.inspect_container(blob)
        cases.append(FuzzCase(
            label=label, codec=codec_name, data=data, blob=blob,
            payload_offset=info.payload_offset,
            has_chunk_crcs=info.chunk_crcs is not None,
            has_index=info.index_offsets is not None,
            has_codec_table=info.chunk_codecs is not None,
        ))

    def add(label: str, codec_name: str, data: bytes, **kwargs) -> None:
        record(label, codec_name, data,
               compress_bytes(data, get_codec(codec_name), **kwargs))

    for name in names:
        codec = get_codec(name)
        data = _smooth(rng, codec.dtype, size)
        add(f"{name}-v2", name, data, checksum=True, chunk_checksums=True,
            fcm="global")
        add(f"{name}-v1", name, data, checksum=False, chunk_checksums=False,
            fcm="global")
        # v3 with an explicit chunk index, via zero-re-encode concat of
        # two independently compressed halves (restart framing).
        half = len(data) // 2
        record(f"{name}-v3", name, data, fmt.concat_containers([
            compress_bytes(data[:half], codec, chunk_checksums=True,
                           fcm="restart"),
            compress_bytes(data[half:], codec, chunk_checksums=True,
                           fcm="restart"),
        ]))
    # Raw fallback: random bytes defeat every stage.
    add("raw-fallback", names[0], rng.bytes(size // 4),
        checksum=True, chunk_checksums=True)
    # v4 mixed-codec containers, for the codec-table mutators: a concat
    # of differently-encoded halves (sp and, restart-framed, dp), and an
    # adaptively selected container (auto writes the table even when
    # every chunk routes the same way).
    if {"spspeed", "spratio"} <= set(names):
        data = _smooth(rng, get_codec("spspeed").dtype, size)
        half = len(data) // 2
        record("mixed-sp-v4", "spspeed", data, fmt.concat_containers([
            compress_bytes(data[:half], get_codec("spspeed"),
                           chunk_checksums=True),
            compress_bytes(data[half:], get_codec("spratio"),
                           chunk_checksums=True),
        ]))
        record("auto-v4", "auto", data,
               compress_bytes(data, get_codec("auto"), chunk_checksums=True))
    if {"dpspeed", "dpratio"} <= set(names):
        data = _smooth(rng, get_codec("dpspeed").dtype, size)
        half = len(data) // 2
        record("mixed-dp-v4", "dpspeed", data, fmt.concat_containers([
            compress_bytes(data[:half], get_codec("dpspeed"),
                           chunk_checksums=True),
            compress_bytes(data[half:], get_codec("dpratio"),
                           chunk_checksums=True, fcm="restart"),
        ]))
    return cases


def _changed_spans(original: bytes, mutant: bytes) -> np.ndarray | None:
    """Indices of changed bytes, or None when lengths differ."""
    if len(original) != len(mutant):
        return None
    a = np.frombuffer(original, dtype=np.uint8)
    b = np.frombuffer(mutant, dtype=np.uint8)
    return np.nonzero(a != b)[0]


def _undamaged_bytes_match(
    data: bytes, original: bytes, damaged_ranges
) -> bool:
    """True when every byte outside ``damaged_ranges`` is bit-exact."""
    if len(data) != len(original):
        return False
    got = np.frombuffer(data, dtype=np.uint8)
    want = np.frombuffer(original, dtype=np.uint8)
    trusted = np.ones(len(got), dtype=bool)
    for start, end in damaged_ranges:
        trusted[max(0, int(start)) : max(0, int(end))] = False
    return bool(np.array_equal(got[trusted], want[trusted]))


def _check_declared_bounds(mutant: bytes) -> str | None:
    """Re-assert the bomb guards on a parseable mutant header."""
    try:
        info = fmt.inspect_container(mutant)
    except ReproError:
        return None  # rejected before any allocation: fine
    limit = max(len(mutant), 64) * fmt.MAX_DECLARED_EXPANSION
    if info.original_len > limit or info.intermediate_len > limit:
        return (
            f"accepted header declares {info.original_len}/"
            f"{info.intermediate_len} bytes from a {len(mutant)}-byte blob"
        )
    if info.chunk_size > fmt.MAX_CHUNK_SIZE:
        return f"accepted chunk_size {info.chunk_size}"
    return None


def run_fuzz(
    seed: int = 0,
    iterations: int = 500,
    *,
    codecs=None,
    mutators=None,
    on_progress=None,
    batched: bool = True,
) -> FuzzReport:
    """Run the harness; returns a :class:`FuzzReport` (ok == no failures).

    ``batched`` routes every mutant through the engine's batched decode
    path (``batch=True``), so the 2D stage kernels face the same hostile
    inputs the per-chunk path does; ``batched=False`` pins the serial
    per-chunk path instead.
    """
    cases = build_corpus(seed, codecs=codecs)
    mutator_names = sorted(mutators) if mutators else sorted(MUTATORS)
    report = FuzzReport(seed=seed, iterations=iterations)
    for iteration in range(iterations):
        rng = np.random.default_rng([seed, iteration])
        case = cases[int(rng.integers(0, len(cases)))]
        mutator = mutator_names[int(rng.integers(0, len(mutator_names)))]
        mutant = mutate(case.blob, mutator, rng)
        outcome = _probe(case, mutator, mutant, iteration, report,
                         batched=batched)
        report.outcomes[outcome] += 1
        if on_progress is not None:
            on_progress(iteration + 1, iterations)
    return report


def replay(seed: int, iteration: int, *, codecs=None, mutators=None):
    """Rebuild the exact (case, mutator, mutant) of one failing iteration."""
    cases = build_corpus(seed, codecs=codecs)
    mutator_names = sorted(mutators) if mutators else sorted(MUTATORS)
    rng = np.random.default_rng([seed, iteration])
    case = cases[int(rng.integers(0, len(cases)))]
    mutator = mutator_names[int(rng.integers(0, len(mutator_names)))]
    return case, mutator, mutate(case.blob, mutator, rng)


def _probe(
    case: FuzzCase,
    mutator: str,
    mutant: bytes,
    iteration: int,
    report: FuzzReport,
    *,
    batched: bool = True,
) -> str:
    def fail(kind: str, detail: str) -> None:
        report.failures.append(FuzzFailure(
            iteration=iteration, case=case.label, mutator=mutator,
            kind=kind, detail=detail,
        ))

    # Invariant 2: the bomb guards hold on whatever still parses.
    bound_violation = _check_declared_bounds(mutant)
    if bound_violation is not None:
        fail("over-allocation", bound_violation)

    # Invariant 1: strict decode returns or raises ReproError, nothing else.
    outcome = "rejected"
    try:
        data, _ = decompress_bytes(mutant, batch=batched)
        outcome = "decoded-intact" if data == case.data else "decoded-differs"
    except ReproError:
        pass
    except MemoryError as exc:
        fail("over-allocation", traceback_summary(exc))
        outcome = "crashed"
    except BaseException as exc:
        fail("crash", traceback_summary(exc))
        outcome = "crashed"

    # Invariants 4 and 5: a contradictory chunk index or codec table
    # must never decode.
    must_reject = (
        (mutator in CONTAINER_MUST_REJECT and case.has_index)
        or (mutator in CODEC_TABLE_MUST_REJECT and case.has_codec_table)
        or mutator in FLAG_MUST_REJECT
    )
    if must_reject and mutant != case.blob and outcome.startswith("decoded"):
        fail("must-reject",
             f"{mutator} mutant decoded instead of being rejected")

    # Invariant 3: salvage never crashes; payload-only damage to a
    # chunk-CRC container is contained to the reported ranges.
    changed = _changed_spans(case.blob, mutant)
    payload_only = (
        changed is not None
        and case.has_chunk_crcs
        and (len(changed) == 0 or int(changed.min()) >= case.payload_offset)
    )
    try:
        data, _, salvage = decompress_bytes(
            mutant, errors="salvage", batch=batched
        )
    except ReproError as exc:
        if payload_only:
            fail("salvage-rejected",
                 f"payload-only damage refused: {traceback_summary(exc)}")
        return outcome
    except BaseException as exc:
        fail("salvage-crash", traceback_summary(exc))
        return outcome
    if len(data) != len(case.data) and _changed_spans(case.blob, mutant) is not None:
        # Same-length mutant kept the original header geometry, so the
        # salvage output must honour the declared original length.
        fail("salvage-length",
             f"salvaged {len(data)} bytes from a header declaring {len(case.data)}")
    if payload_only and not _undamaged_bytes_match(
        data, case.data, salvage.damaged_ranges
    ):
        fail("salvage-mismatch",
             f"bytes outside {salvage.damaged_ranges} differ from the original")
    return outcome
