"""Corpus-wide losslessness verification.

Runs every paper codec (and optionally every baseline) over the synthetic
corpus, confirming bit-exact round trips, and reports per-domain ratios.
Used by ``fprz verify`` and the release checklist: a reproduction of a
*lossless* compression paper should be able to prove the adjective on
demand.

Failures are classified, not just counted: a compressor that raises a
:class:`~repro.errors.ReproError` on pristine data *rejected* the file
(wrong, but a controlled failure), while any other exception is a
*crash*, reported with :func:`~repro.errors.traceback_summary` so the
faulting frame is visible without a debugger.  Every file gets a fresh
compressor instance — a stateful adapter poisoned by one file must not
contaminate the verdict on the next.

``fuzz_iterations`` chains the fault-injection harness
(:func:`repro.fuzzing.run_fuzz`) onto the sweep, so one command checks
both directions: pristine data round-trips, corrupted data fails safely.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines import competitors_for
from repro.datasets import dp_suite, sp_suite
from repro.errors import ReproError, traceback_summary
from repro.harness.runner import our_codecs_for
from repro.metrics import geomean


@dataclass
class VerificationReport:
    """Outcome of a verification sweep."""

    files_checked: int = 0
    compressors_checked: int = 0
    failures: list[str] = field(default_factory=list)
    #: compressor name -> geo-mean ratio over everything verified
    ratios: dict[str, float] = field(default_factory=dict)
    #: attached fault-injection outcome (``fuzz_iterations > 0``).
    fuzz: object | None = None

    @property
    def ok(self) -> bool:
        return not self.failures and (self.fuzz is None or self.fuzz.ok)

    def render(self) -> str:
        lines = [
            f"verified {self.compressors_checked} compressors over "
            f"{self.files_checked} files: "
            + ("ALL LOSSLESS" if not self.failures
               else f"{len(self.failures)} FAILURES")
        ]
        for name in sorted(self.ratios, key=lambda n: -self.ratios[n]):
            lines.append(f"  {name:<16} geo-mean ratio {self.ratios[name]:6.3f}")
        lines.extend(f"  FAIL: {failure}" for failure in self.failures)
        if self.fuzz is not None:
            lines.append(self.fuzz.render())
        return "\n".join(lines)


def _build_compressors(dtype, include_baselines: bool) -> list:
    """Fresh compressor adapters — never reused across corpus files."""
    compressors = list(our_codecs_for(dtype))
    if include_baselines:
        seen = {c.name for c in compressors}
        for kind in ("gpu", "cpu"):
            for comp in competitors_for(dtype, kind):
                if comp.name not in seen:
                    seen.add(comp.name)
                    compressors.append(comp)
    return compressors


def verify_corpus(
    *,
    scale: float = 0.1,
    include_baselines: bool = False,
    dtypes: tuple = (np.float32, np.float64),
    fuzz_iterations: int = 0,
    fuzz_seed: int = 0,
) -> VerificationReport:
    """Round-trip every compressor over every corpus file at ``scale``.

    With ``fuzz_iterations > 0`` the seeded fault-injection harness runs
    afterwards and its failures gate :attr:`VerificationReport.ok` too.
    """
    report = VerificationReport()
    for dtype in dtypes:
        domains = sp_suite() if np.dtype(dtype) == np.float32 else dp_suite()
        names = [c.name for c in _build_compressors(dtype, include_baselines)]
        per_comp: dict[str, list[float]] = {name: [] for name in names}
        files = 0
        for domain in domains:
            for file in domain.files:
                array = file.load(scale)
                data = array.tobytes()
                files += 1
                for comp in _build_compressors(dtype, include_baselines):
                    comp.set_dimensions(array.shape)
                    try:
                        blob = comp.compress(data)
                        back = comp.decompress(blob)
                    except ReproError as exc:
                        # Controlled failure type — but pristine corpus
                        # data must never be rejected.
                        report.failures.append(
                            f"{comp.name} rejected {file.name} "
                            f"({type(exc).__name__}: {exc})"
                        )
                        continue
                    except Exception as exc:  # deliberate: report, don't abort
                        report.failures.append(
                            f"{comp.name} CRASHED on {file.name}: "
                            f"{traceback_summary(exc)}"
                        )
                        continue
                    if back != data:
                        report.failures.append(f"{comp.name} corrupted {file.name}")
                        continue
                    per_comp[comp.name].append(len(data) / len(blob))
        report.files_checked += files
        for name, ratios in per_comp.items():
            if ratios:
                combined = report.ratios.get(name)
                value = geomean(ratios)
                report.ratios[name] = value if combined is None else geomean([combined, value])
    report.compressors_checked = len(report.ratios)
    if fuzz_iterations > 0:
        from repro.fuzzing import run_fuzz

        report.fuzz = run_fuzz(seed=fuzz_seed, iterations=fuzz_iterations)
    return report
