"""Corpus-wide losslessness verification.

Runs every paper codec (and optionally every baseline) over the synthetic
corpus, confirming bit-exact round trips, and reports per-domain ratios.
Used by ``fprz verify`` and the release checklist: a reproduction of a
*lossless* compression paper should be able to prove the adjective on
demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines import competitors_for
from repro.datasets import dp_suite, sp_suite
from repro.harness.runner import our_codecs_for
from repro.metrics import geomean


@dataclass
class VerificationReport:
    """Outcome of a verification sweep."""

    files_checked: int = 0
    compressors_checked: int = 0
    failures: list[str] = field(default_factory=list)
    #: compressor name -> geo-mean ratio over everything verified
    ratios: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            f"verified {self.compressors_checked} compressors over "
            f"{self.files_checked} files: "
            + ("ALL LOSSLESS" if self.ok else f"{len(self.failures)} FAILURES")
        ]
        for name in sorted(self.ratios, key=lambda n: -self.ratios[n]):
            lines.append(f"  {name:<16} geo-mean ratio {self.ratios[name]:6.3f}")
        lines.extend(f"  FAIL: {failure}" for failure in self.failures)
        return "\n".join(lines)


def verify_corpus(
    *,
    scale: float = 0.1,
    include_baselines: bool = False,
    dtypes: tuple = (np.float32, np.float64),
) -> VerificationReport:
    """Round-trip every compressor over every corpus file at ``scale``."""
    report = VerificationReport()
    for dtype in dtypes:
        domains = sp_suite() if np.dtype(dtype) == np.float32 else dp_suite()
        compressors = list(our_codecs_for(dtype))
        if include_baselines:
            seen = {c.name for c in compressors}
            for kind in ("gpu", "cpu"):
                for comp in competitors_for(dtype, kind):
                    if comp.name not in seen:
                        seen.add(comp.name)
                        compressors.append(comp)
        per_comp: dict[str, list[float]] = {c.name: [] for c in compressors}
        files = 0
        for domain in domains:
            for file in domain.files:
                array = file.load(scale)
                data = array.tobytes()
                files += 1
                for comp in compressors:
                    comp.set_dimensions(array.shape)
                    try:
                        blob = comp.compress(data)
                        back = comp.decompress(blob)
                    except Exception as exc:  # deliberate: report, don't abort
                        report.failures.append(f"{comp.name} crashed on {file.name}: {exc}")
                        continue
                    if back != data:
                        report.failures.append(f"{comp.name} corrupted {file.name}")
                        continue
                    per_comp[comp.name].append(len(data) / len(blob))
        report.files_checked += files
        for name, ratios in per_comp.items():
            if ratios:
                combined = report.ratios.get(name)
                value = geomean(ratios)
                report.ratios[name] = value if combined is None else geomean([combined, value])
    report.compressors_checked = len(report.ratios)
    return report
