"""Exception hierarchy for the repro compression library.

All errors raised by the public API derive from :class:`ReproError`, so
callers can catch a single base class.  Internal invariant violations use
plain ``AssertionError`` and indicate bugs, not bad input.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class FormatError(ReproError):
    """The byte stream is not a valid compressed container.

    Raised when a magic number, version, codec id, or length field does not
    match the container format described in ``core/container.py``.
    """


class UnsupportedDtypeError(ReproError):
    """The input array dtype is not float32/float64 (or their bit-views)."""


class UnknownCodecError(ReproError):
    """The requested codec name or id is not registered."""


class CorruptDataError(FormatError):
    """The container parsed, but a payload failed internal consistency checks."""


class ChecksumError(CorruptDataError):
    """A stored CRC32 (whole-input or per-chunk) did not match the data.

    Messages carry the chunk index and byte range when the mismatch is
    chunk-local, so corruption can be located without re-decoding.
    """


class BoundsError(FormatError):
    """A declared length is implausible for the actual buffer.

    Raised by the decompression-bomb guards: a header or table field
    promising an allocation far beyond what the container could
    legitimately decode to is rejected *before* any buffer is sized
    from it.
    """


class ServiceError(ReproError):
    """Base class for failures of the ``repro.service`` layer.

    Raised on both sides of the wire: by the server when a request cannot
    be admitted or completed, and by the client when a server reply says
    so.  Every service failure a caller can see is one of the subclasses
    below — the serving analogue of the container-decode guarantee that
    corruption only ever surfaces as a typed :class:`ReproError`.
    """


class ProtocolError(ServiceError):
    """A wire frame violated the FPRW framed protocol.

    Raised by the frame parser for bad magic, unsupported protocol
    version, unknown opcodes, nonzero reserved fields, truncated frames,
    and declared body lengths beyond the frame limit.  The declared-length
    check runs *before* any buffer is sized from the field, so a hostile
    frame can never be an allocation bomb — the same discipline as the
    container's bounds checks.
    """


class BusyError(ServiceError):
    """The server's job queue is past its high-water mark.

    Explicit backpressure: the request was rejected up front instead of
    buffered without bound.  Safe to retry after a backoff.

    ``retry_after_ms`` carries the server's backoff hint when the BUSY
    frame included one (older servers send an empty body; the attribute
    is then None).  :class:`~repro.service.resilience.RetryPolicy`
    honours it as a lower bound on the next delay.
    """

    def __init__(self, message: str, *, retry_after_ms: int | None = None) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class DeadlineExceededError(ServiceError):
    """The request did not complete within the server's per-request deadline."""


class QuotaExceededError(ServiceError):
    """A per-tenant token-bucket quota rejected the request at admission.

    Unlike :class:`BusyError` (a transient whole-server condition), a
    quota rejection is tenant-local: the bucket refills at a configured
    byte rate, so ``retry_after_ms`` — when the server could compute it —
    says how long until enough tokens exist for *this* request.  Safe to
    retry after the hint; hammering sooner just burns admission cycles.
    """

    def __init__(self, message: str, *, retry_after_ms: int | None = None) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class ConnectionBrokenError(ServiceError):
    """The client connection is desynchronized and must not be reused.

    Set after a mid-frame timeout, a protocol violation, or a socket
    failure: the stream position can no longer be trusted, so any
    further frame on the same socket could be answered with bytes that
    belong to an earlier request.  Callers must open a fresh connection;
    :class:`~repro.service.resilience.ResilientClient` does so
    automatically.

    Carries ``request_sent``: False when the failed request provably
    never put a byte on the wire (safe to retry even when
    non-idempotent), True otherwise.
    """

    def __init__(self, message: str, *, request_sent: bool = True) -> None:
        super().__init__(message)
        self.request_sent = request_sent


class RemoteError(ServiceError):
    """The server hit an unexpected internal failure processing a request.

    Carries the server-side traceback summary; the connection itself
    stays usable.
    """


def traceback_summary(exc: BaseException, frames: int = 3) -> str:
    """One-line summary of an exception with its innermost frames.

    Used wherever an *unexpected* exception (not a :class:`ReproError`)
    must be reported compactly — the corpus verifier and the fuzzing
    harness — so a crash site is identifiable without a full traceback
    dump: ``ZeroDivisionError: division by zero [fcm.py:42 in decode <-
    pipeline.py:88 in decode_chunk]``.
    """
    import traceback

    parts = [f"{type(exc).__name__}: {exc}".strip().rstrip(":")]
    tb = traceback.extract_tb(exc.__traceback__)
    if tb:
        frames_txt = " <- ".join(
            f"{frame.filename.rsplit('/', 1)[-1]}:{frame.lineno} in {frame.name}"
            for frame in reversed(tb[-frames:])
        )
        parts.append(f"[{frames_txt}]")
    return " ".join(parts)
