"""Exception hierarchy for the repro compression library.

All errors raised by the public API derive from :class:`ReproError`, so
callers can catch a single base class.  Internal invariant violations use
plain ``AssertionError`` and indicate bugs, not bad input.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class FormatError(ReproError):
    """The byte stream is not a valid compressed container.

    Raised when a magic number, version, codec id, or length field does not
    match the container format described in ``core/container.py``.
    """


class UnsupportedDtypeError(ReproError):
    """The input array dtype is not float32/float64 (or their bit-views)."""


class UnknownCodecError(ReproError):
    """The requested codec name or id is not registered."""


class CorruptDataError(FormatError):
    """The container parsed, but a payload failed internal consistency checks."""
