"""Exception hierarchy for the repro compression library.

All errors raised by the public API derive from :class:`ReproError`, so
callers can catch a single base class.  Internal invariant violations use
plain ``AssertionError`` and indicate bugs, not bad input.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class FormatError(ReproError):
    """The byte stream is not a valid compressed container.

    Raised when a magic number, version, codec id, or length field does not
    match the container format described in ``core/container.py``.
    """


class UnsupportedDtypeError(ReproError):
    """The input array dtype is not float32/float64 (or their bit-views)."""


class UnknownCodecError(ReproError):
    """The requested codec name or id is not registered."""


class CorruptDataError(FormatError):
    """The container parsed, but a payload failed internal consistency checks."""


class ChecksumError(CorruptDataError):
    """A stored CRC32 (whole-input or per-chunk) did not match the data.

    Messages carry the chunk index and byte range when the mismatch is
    chunk-local, so corruption can be located without re-decoding.
    """


class BoundsError(FormatError):
    """A declared length is implausible for the actual buffer.

    Raised by the decompression-bomb guards: a header or table field
    promising an allocation far beyond what the container could
    legitimately decode to is rejected *before* any buffer is sized
    from it.
    """


def traceback_summary(exc: BaseException, frames: int = 3) -> str:
    """One-line summary of an exception with its innermost frames.

    Used wherever an *unexpected* exception (not a :class:`ReproError`)
    must be reported compactly — the corpus verifier and the fuzzing
    harness — so a crash site is identifiable without a full traceback
    dump: ``ZeroDivisionError: division by zero [fcm.py:42 in decode <-
    pipeline.py:88 in decode_chunk]``.
    """
    import traceback

    parts = [f"{type(exc).__name__}: {exc}".strip().rstrip(":")]
    tb = traceback.extract_tb(exc.__traceback__)
    if tb:
        frames_txt = " <- ".join(
            f"{frame.filename.rsplit('/', 1)[-1]}:{frame.lineno} in {frame.name}"
            for frame in reversed(tb[-frames:])
        )
        parts.append(f"[{frames_txt}]")
    return " ".join(parts)
