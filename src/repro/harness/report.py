"""Text rendering of figure results and the EXPERIMENTS.md writer."""

from __future__ import annotations

from repro.harness.runner import FigureResult, MeasuredRow


def format_figure(result: FigureResult, *, markdown: bool = False) -> str:
    """Render one figure as an aligned table, Pareto front annotated.

    Rows are sorted by descending throughput so the table reads like the
    paper's scatter plots read left-to-right mirrored.
    """
    lines = [f"{result.figure_id}: {result.title}"]
    header = f"{'compressor':<16} {'ratio':>7} {'GB/s':>10}  {'Pareto':<6} {'ours':<4}"
    rule = "-" * len(header)
    if markdown:
        lines.append("")
        lines.append("| compressor | ratio | throughput (GB/s) | Pareto | ours |")
        lines.append("|---|---:|---:|:---:|:---:|")
        for row in result.rows:
            lines.append(
                f"| {row.name} | {row.ratio:.3f} | {row.throughput:.2f} "
                f"| {'*' if row.on_front else ''} | {'*' if row.ours else ''} |"
            )
    else:
        lines.append(header)
        lines.append(rule)
        for row in result.rows:
            lines.append(
                f"{row.name:<16} {row.ratio:>7.3f} {row.throughput:>10.2f}  "
                f"{'front' if row.on_front else '':<6} {'ours' if row.ours else '':<4}"
            )
    return "\n".join(lines)


def format_measured(rows: list[MeasuredRow]) -> str:
    """Render measured per-executor rows as an aligned table.

    These are this reproduction's own wall-clock numbers (median-of-runs,
    MB/s) and each row names the scheduling policy and worker count that
    produced it — never to be confused with the device-model throughputs
    in :func:`format_figure`.
    """
    header = (f"{'codec':<10} {'executor':<14} {'workers':>7} "
              f"{'comp MB/s':>10} {'decomp MB/s':>12} {'ratio':>7}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.codec:<10} {row.policy:<14} {row.workers:>7} "
            f"{row.throughput / 1e6:>10.1f} "
            f"{row.decompress_throughput / 1e6:>12.1f} "
            f"{row.ratio:>7.3f}"
        )
    return "\n".join(lines)


def render_experiments(results: list[FigureResult], preamble: str = "") -> str:
    """Assemble a full EXPERIMENTS.md body from figure results."""
    parts = []
    if preamble:
        parts.append(preamble.rstrip())
    for result in results:
        parts.append(f"## {result.figure_id.upper()} — {result.title}")
        parts.append(format_figure(result, markdown=True).split("\n", 1)[1])
        front = ", ".join(result.front_names())
        parts.append(f"\nPareto front: {front}\n")
    return "\n\n".join(parts) + "\n"
