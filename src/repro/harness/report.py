"""Text rendering of figure results and the EXPERIMENTS.md writer."""

from __future__ import annotations

from repro.harness.runner import FigureResult


def format_figure(result: FigureResult, *, markdown: bool = False) -> str:
    """Render one figure as an aligned table, Pareto front annotated.

    Rows are sorted by descending throughput so the table reads like the
    paper's scatter plots read left-to-right mirrored.
    """
    lines = [f"{result.figure_id}: {result.title}"]
    header = f"{'compressor':<16} {'ratio':>7} {'GB/s':>10}  {'Pareto':<6} {'ours':<4}"
    rule = "-" * len(header)
    if markdown:
        lines.append("")
        lines.append("| compressor | ratio | throughput (GB/s) | Pareto | ours |")
        lines.append("|---|---:|---:|:---:|:---:|")
        for row in result.rows:
            lines.append(
                f"| {row.name} | {row.ratio:.3f} | {row.throughput:.2f} "
                f"| {'*' if row.on_front else ''} | {'*' if row.ours else ''} |"
            )
    else:
        lines.append(header)
        lines.append(rule)
        for row in result.rows:
            lines.append(
                f"{row.name:<16} {row.ratio:>7.3f} {row.throughput:>10.2f}  "
                f"{'front' if row.on_front else '':<6} {'ours' if row.ours else '':<4}"
            )
    return "\n".join(lines)


def render_experiments(results: list[FigureResult], preamble: str = "") -> str:
    """Assemble a full EXPERIMENTS.md body from figure results."""
    parts = []
    if preamble:
        parts.append(preamble.rstrip())
    for result in results:
        parts.append(f"## {result.figure_id.upper()} — {result.title}")
        parts.append(format_figure(result, markdown=True).split("\n", 1)[1])
        front = ", ".join(result.front_names())
        parts.append(f"\nPareto front: {front}\n")
    return "\n\n".join(parts) + "\n"
