"""The twelve figure configurations of the paper's evaluation (§5).

Each spec names the machine, precision, and throughput direction of one
ratio-vs-throughput scatter plot.  Figures 8-13 cover the 90-file
single-precision corpus, 14-19 the 20-file double-precision corpus.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device import A100, RTX4090, RYZEN_2950X, XEON_6226R, Device


@dataclass(frozen=True)
class FigureSpec:
    figure_id: str
    device: Device
    dtype: np.dtype
    direction: str  # "compress" or "decompress"

    @property
    def title(self) -> str:
        what = "compression" if self.direction == "compress" else "decompression"
        precision = "single" if self.dtype == np.dtype(np.float32) else "double"
        return (
            f"{self.device.name}: compression ratio vs. {what} throughput, "
            f"{precision}-precision data"
        )


F32 = np.dtype(np.float32)
F64 = np.dtype(np.float64)

FIGURES: dict[str, FigureSpec] = {
    spec.figure_id: spec
    for spec in (
        FigureSpec("fig08", RTX4090, F32, "compress"),
        FigureSpec("fig09", RTX4090, F32, "decompress"),
        FigureSpec("fig10", A100, F32, "compress"),
        FigureSpec("fig11", A100, F32, "decompress"),
        FigureSpec("fig12", RYZEN_2950X, F32, "compress"),
        FigureSpec("fig13", RYZEN_2950X, F32, "decompress"),
        FigureSpec("fig14", RTX4090, F64, "compress"),
        FigureSpec("fig15", RTX4090, F64, "decompress"),
        FigureSpec("fig16", A100, F64, "compress"),
        FigureSpec("fig17", A100, F64, "decompress"),
        FigureSpec("fig18", RYZEN_2950X, F64, "compress"),
        FigureSpec("fig19", RYZEN_2950X, F64, "decompress"),
    )
}

#: §5.1/§5.2: the Xeon results "are qualitatively very similar" to the
#: Ryzen's; these extra configs back the parity benchmark.
XEON_CONFIGS = (
    FigureSpec("xeon_sp_comp", XEON_6226R, F32, "compress"),
    FigureSpec("xeon_sp_decomp", XEON_6226R, F32, "decompress"),
    FigureSpec("xeon_dp_comp", XEON_6226R, F64, "compress"),
    FigureSpec("xeon_dp_decomp", XEON_6226R, F64, "decompress"),
)
