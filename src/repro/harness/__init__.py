"""Benchmark harness regenerating the paper's evaluation (Figures 8-19).

* :mod:`repro.harness.runner` — runs every compressor of a figure's
  comparison set over the corpus, aggregates geo-mean-of-geo-mean ratios,
  attaches modeled throughputs.
* :mod:`repro.harness.figures` — the twelve figure configurations.
* :mod:`repro.harness.report` — text tables with Pareto annotation and
  the EXPERIMENTS.md writer.
"""

from repro.harness.figures import FIGURES, FigureSpec
from repro.harness.runner import (
    FigureResult,
    MeasuredRow,
    ResultRow,
    measure_executors,
    run_figure,
    run_suite,
)
from repro.harness.report import format_figure, format_measured, render_experiments

__all__ = [
    "FIGURES",
    "FigureResult",
    "FigureSpec",
    "MeasuredRow",
    "ResultRow",
    "format_figure",
    "format_measured",
    "measure_executors",
    "render_experiments",
    "run_figure",
    "run_suite",
]
