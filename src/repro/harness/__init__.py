"""Benchmark harness regenerating the paper's evaluation (Figures 8-19).

* :mod:`repro.harness.runner` — runs every compressor of a figure's
  comparison set over the corpus, aggregates geo-mean-of-geo-mean ratios,
  attaches modeled throughputs.
* :mod:`repro.harness.figures` — the twelve figure configurations.
* :mod:`repro.harness.report` — text tables with Pareto annotation and
  the EXPERIMENTS.md writer.
* :mod:`repro.harness.trajectory` — measured benchmark-trajectory points
  (``BENCH_<tag>.json``): per-codec, per-stage, and kernel throughputs
  in a stable schema, with baseline regression comparison.
"""

from repro.harness.figures import FIGURES, FigureSpec
from repro.harness.runner import (
    FigureResult,
    MeasuredRow,
    ResultRow,
    measure_executors,
    run_figure,
    run_suite,
)
from repro.harness.report import format_figure, format_measured, render_experiments
from repro.harness.trajectory import (
    Regression,
    compare_trajectories,
    format_trajectory,
    load_trajectory,
    record_trajectory,
    save_trajectory,
)

__all__ = [
    "FIGURES",
    "FigureResult",
    "FigureSpec",
    "MeasuredRow",
    "Regression",
    "ResultRow",
    "compare_trajectories",
    "format_figure",
    "format_measured",
    "format_trajectory",
    "load_trajectory",
    "measure_executors",
    "record_trajectory",
    "render_experiments",
    "run_figure",
    "run_suite",
]
