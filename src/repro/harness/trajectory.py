"""Benchmark-trajectory points: measured performance in a stable schema.

Each point records, for one commit of this repository, the *measured*
throughput of the real implementation (never the device model):

* per-codec compress/decompress throughput and ratio on a deterministic
  corpus sample (serial executor, so numbers are comparable across runs);
* per-stage encode/decode throughput on a representative chunk;
* kernel microbenchmarks (``pack_words``/``unpack_words`` at a grid of
  representative widths, the BIT transpose, and count-leading-zeros);
* service throughput: the same codec work through a live ``fprz serve``
  socket vs in process, plus the small-request rate (requests/s);
* random-access reads: ``decompress_range`` MB/s against slice size on
  seekable (v3 restart) containers, vs the full-decode baseline;
* parallel FCM: DPratio with restart framing under the serial, threaded,
  and process policies — the measured speedup chunk-independent FCM buys
  — next to the legacy global-FCM ratio it trades away;
* resilience: goodput and p99 latency under seeded fault injection
  (0/5/20% of frames reset or corrupted by the chaos proxy), retrying
  client direct vs through the shard router;
* codec selection: the adaptive ``auto`` codec's geo-mean compression
  ratio across one representative file per corpus domain vs every fixed
  codec, the per-chunk probe overhead as a fraction of the full auto
  compress, and the histogram of codecs the selector chose.

Points are saved as ``BENCH_<tag>.json`` files; committing one per perf
PR grows a throughput trajectory of the repository itself, and
:func:`compare_trajectories` turns any two points into a regression
report (used by ``fprz bench --baseline`` and the CI ``bench-smoke``
job).  The schema is stable: new sections may be added, existing keys
are never renamed.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import dataclass
from pathlib import Path

import numpy as np

import repro
from repro.bitpack import backend as kernel_backend_registry
from repro.bitpack import bit_transpose, bit_untranspose, count_leading_zeros
from repro.bitpack.packing import pack_words, unpack_words
from repro.errors import ReproError
from repro.metrics.timing import measure_throughput

SCHEMA_VERSION = 1

#: Representative packed widths per word size (8-52 bits, 16 KiB chunks).
KERNEL_WIDTHS = {32: (8, 13, 23, 29), 64: (8, 13, 29, 52)}

KERNEL_CHUNK_BYTES = 16384

ALL_CODECS = ("spspeed", "spratio", "dpspeed", "dpratio")


@dataclass(frozen=True)
class Regression:
    """One metric that moved past the allowed threshold vs the baseline."""

    section: str
    key: str
    metric: str
    baseline: float
    current: float
    #: Display unit: ``"bytes_per_s"`` renders as MB/s; anything else
    #: (``"req/s"``, ``"x"``) renders the raw values with that suffix.
    unit: str = "bytes_per_s"

    @property
    def change(self) -> float:
        if self.baseline <= 0:
            return 0.0
        return self.current / self.baseline - 1.0

    def render(self) -> str:
        if self.unit == "bytes_per_s":
            values = (f"{self.baseline / 1e6:.2f} -> "
                      f"{self.current / 1e6:.2f} MB/s")
        else:
            values = (f"{self.baseline:.2f} -> "
                      f"{self.current:.2f} {self.unit}")
        return (
            f"{self.section}/{self.key} {self.metric}: "
            f"{values} ({self.change * 100:+.1f}%)"
        )


def _sample_words(word_bits: int, width: int) -> np.ndarray:
    rng = np.random.default_rng(0x5EED + width)
    n = KERNEL_CHUNK_BYTES // (word_bits // 8)
    limit = 1 << width
    return rng.integers(0, limit, size=n, dtype=np.uint64).astype(
        np.dtype(f"u{word_bits // 8}")
    )


def _kernel_section(runs: int) -> dict:
    kernels: dict[str, dict] = {}
    for word_bits, widths in KERNEL_WIDTHS.items():
        n = KERNEL_CHUNK_BYTES // (word_bits // 8)
        for width in widths:
            words = _sample_words(word_bits, width)
            packed = pack_words(words, width, word_bits)
            key = f"pack_words/w{word_bits}/width{width}"
            kernels[key] = {
                "bytes_per_s": measure_throughput(
                    lambda: pack_words(words, width, word_bits),
                    KERNEL_CHUNK_BYTES, runs=runs,
                )
            }
            key = f"unpack_words/w{word_bits}/width{width}"
            kernels[key] = {
                "bytes_per_s": measure_throughput(
                    lambda: unpack_words(packed, n, width, word_bits),
                    KERNEL_CHUNK_BYTES, runs=runs,
                )
            }
        words = _sample_words(word_bits, word_bits - 1)
        blob = bit_transpose(words, word_bits)
        kernels[f"bit_transpose/w{word_bits}"] = {
            "bytes_per_s": measure_throughput(
                lambda: bit_transpose(words, word_bits),
                KERNEL_CHUNK_BYTES, runs=runs,
            )
        }
        kernels[f"bit_untranspose/w{word_bits}"] = {
            "bytes_per_s": measure_throughput(
                lambda: bit_untranspose(blob, n, word_bits),
                KERNEL_CHUNK_BYTES, runs=runs,
            )
        }
        kernels[f"count_leading_zeros/w{word_bits}"] = {
            "bytes_per_s": measure_throughput(
                lambda: count_leading_zeros(words, word_bits),
                KERNEL_CHUNK_BYTES, runs=runs,
            )
        }
    return kernels


#: (word_bits, width) cells the per-backend kernel comparison times —
#: one unaligned width per word size (aligned widths share numpy's
#: byte-slice path across backends, so they would compare a kernel to
#: itself).
BACKEND_KERNEL_CELLS = ((32, 13), (64, 29))

#: The real (importable) backends the kernel_backend section measures.
#: Test-only parity backends (``numba-py``) and explicitly-opt-in GPU
#: backends are excluded: the section compares deployable CPU defaults.
_MEASURED_BACKENDS = ("numpy", "numba")


def _kernel_backend_section(scale: float, runs: int) -> dict:
    """Per-backend kernel and end-to-end codec throughput.

    For every measurable registered backend: the pack/unpack kernels at
    one unaligned width per word size, the BIT transpose, CLZ, and one
    end-to-end compress/decompress per float width (spratio/dpratio).
    Rows are keyed ``<backend>/...`` so two trajectory points can be
    compared per backend; the section only carries backends that are
    actually importable on the recording machine.
    """
    rows: dict[str, dict] = {}
    registered = kernel_backend_registry.available_backends()
    for name in _MEASURED_BACKENDS:
        if name not in registered:
            continue
        with kernel_backend_registry.use_backend(name):
            for word_bits, width in BACKEND_KERNEL_CELLS:
                n = KERNEL_CHUNK_BYTES // (word_bits // 8)
                words = _sample_words(word_bits, width)
                packed = pack_words(words, width, word_bits)
                rows[f"{name}/pack_words/w{word_bits}/width{width}"] = {
                    "bytes_per_s": measure_throughput(
                        lambda: pack_words(words, width, word_bits),
                        KERNEL_CHUNK_BYTES, runs=runs,
                    )
                }
                rows[f"{name}/unpack_words/w{word_bits}/width{width}"] = {
                    "bytes_per_s": measure_throughput(
                        lambda: unpack_words(packed, n, width, word_bits),
                        KERNEL_CHUNK_BYTES, runs=runs,
                    )
                }
                full = _sample_words(word_bits, word_bits - 1)
                blob = bit_transpose(full, word_bits)
                rows[f"{name}/bit_transpose/w{word_bits}"] = {
                    "bytes_per_s": measure_throughput(
                        lambda: bit_transpose(full, word_bits),
                        KERNEL_CHUNK_BYTES, runs=runs,
                    )
                }
                rows[f"{name}/bit_untranspose/w{word_bits}"] = {
                    "bytes_per_s": measure_throughput(
                        lambda: bit_untranspose(blob, n, word_bits),
                        KERNEL_CHUNK_BYTES, runs=runs,
                    )
                }
                rows[f"{name}/count_leading_zeros/w{word_bits}"] = {
                    "bytes_per_s": measure_throughput(
                        lambda: count_leading_zeros(full, word_bits),
                        KERNEL_CHUNK_BYTES, runs=runs,
                    )
                }
            for codec in ("spratio", "dpratio"):
                data = _bench_sample(codec, scale)
                blob = repro.compress(data, codec)
                rows[f"{name}/codec/{codec}"] = {
                    "compress_bytes_per_s": measure_throughput(
                        lambda d=data, c=codec: repro.compress(d, c),
                        len(data), runs=runs,
                    ),
                    "decompress_bytes_per_s": measure_throughput(
                        lambda b=blob: repro.decompress(b), len(data), runs=runs
                    ),
                    "input_bytes": len(data),
                }
    return rows


def _bench_sample(codec_name: str, scale: float) -> bytes:
    from repro.datasets import dp_suite, sp_suite

    suite = dp_suite() if codec_name.startswith("dp") else sp_suite()
    return suite[0].files[0].load(scale).tobytes()


def _codec_section(
    scale: float, runs: int, workers: int, policy: str | None = None
) -> dict:
    from repro.harness.runner import measure_executors

    codecs: dict[str, dict] = {}
    if policy is None:
        policy = "serial" if workers <= 1 else "threaded"
    for name in (*ALL_CODECS, "auto"):
        data = _bench_sample(name, scale)
        row = measure_executors(
            data, name, policies=(policy,), workers=workers, runs=runs
        )[0]
        codecs[name] = {
            "compress_bytes_per_s": row.throughput,
            "decompress_bytes_per_s": row.decompress_throughput,
            "ratio": row.ratio,
            "policy": row.policy,
            "workers": row.workers,
            "input_bytes": len(data),
        }
    return codecs


def _codec_selection_section(scale: float, runs: int) -> dict:
    """Adaptive-selection quality and cost across the bundled corpus.

    For one representative file per corpus domain (7 SP + 5 DP), the
    section records the compressed size under ``auto`` and under every
    fixed codec, aggregated to geo-mean compression ratios — the number
    the selector must win: no single fixed codec handles both float
    widths, so ``auto``'s combined geo-mean should beat all four.  It
    also records the per-chunk probe cost as a fraction of the full
    ``auto`` compress (the selection overhead the ratio win pays for)
    and the histogram of codecs the selector actually chose.
    """
    import math as _math
    import time as _time

    from repro.core.codecs import codec_by_id, selection_candidates
    from repro.core.container import DTYPE_F32, DTYPE_F64
    from repro.datasets import dp_suite, sp_suite
    from repro.selection import probe_chunks

    chunk_size = 16384
    names = (*ALL_CODECS, "auto")
    files = []
    for suite_name, suite, code in (
        ("sp", sp_suite(), DTYPE_F32), ("dp", dp_suite(), DTYPE_F64)
    ):
        for domain in suite:
            files.append((suite_name, domain.files[0], code))

    log_ratio_sums = {name: 0.0 for name in names}
    suite_log_sums = {"sp": dict.fromkeys(names, 0.0),
                      "dp": dict.fromkeys(names, 0.0)}
    suite_counts = {"sp": 0, "dp": 0}
    histogram: dict[str, int] = {}
    compress_seconds = dict.fromkeys(names, 0.0)
    probe_seconds = 0.0
    total_bytes = 0
    for suite_name, dataset, code in files:
        array = dataset.load(scale)
        raw = array.nbytes
        suite_counts[suite_name] += 1
        total_bytes += raw
        for name in names:
            blob = repro.compress(array, name)
            best = float("inf")
            for _ in range(runs):
                t0 = _time.perf_counter()
                repro.compress(array, name)
                best = min(best, _time.perf_counter() - t0)
            compress_seconds[name] += best
            if name == "auto":
                info = repro.inspect(blob)
                if info.chunk_codecs is None:
                    key = "raw" if info.raw_fallback else name
                    histogram[key] = histogram.get(key, 0) + max(info.n_chunks, 1)
                else:
                    for cid in info.chunk_codecs:
                        key = codec_by_id(cid).name
                        histogram[key] = histogram.get(key, 0) + 1
            ratio = raw / len(blob)
            log_ratio_sums[name] += _math.log(ratio)
            suite_log_sums[suite_name][name] += _math.log(ratio)
        data = array.tobytes()
        chunks = [data[i:i + chunk_size]
                  for i in range(0, len(data), chunk_size)]
        candidates = selection_candidates(code)
        t0 = _time.perf_counter()
        for _ in range(runs):
            probe_chunks(chunks, candidates, with_stats=False)
        probe_seconds += (_time.perf_counter() - t0) / runs

    n_files = len(files)
    geomean = {
        name: _math.exp(total / n_files)
        for name, total in log_ratio_sums.items()
    }
    throughput = {
        name: (total_bytes / secs if secs > 0 else 0.0)
        for name, secs in compress_seconds.items()
    }
    # The fixed codec auto must beat: highest combined geo-mean ratio.
    best_fixed = max(ALL_CODECS, key=lambda name: geomean[name])
    auto_seconds = compress_seconds["auto"]
    return {
        "files": n_files,
        "chunk_size": chunk_size,
        "geomean_ratio": geomean,
        "suite_geomean_ratio": {
            suite: {
                name: _math.exp(total / suite_counts[suite])
                for name, total in sums.items()
            }
            for suite, sums in suite_log_sums.items()
        },
        "compress_bytes_per_s": throughput,
        "chosen_histogram": dict(sorted(histogram.items())),
        "probe_overhead": {
            "probe_s": probe_seconds,
            "auto_compress_s": auto_seconds,
            "fraction": (probe_seconds / auto_seconds
                         if auto_seconds > 0 else 0.0),
            "probe_bytes_per_s": (total_bytes / probe_seconds
                                  if probe_seconds > 0 else 0.0),
        },
        # The PR acceptance gate, recorded where the CI smoke can see it:
        # auto beats every fixed codec on combined geo-mean ratio, at a
        # bounded throughput cost vs the best-ratio fixed codec.
        "best_fixed": best_fixed,
        "auto_beats_every_fixed": all(
            geomean["auto"] > geomean[name] for name in ALL_CODECS
        ),
        "throughput_cost_vs_best_fixed": (
            1.0 - throughput["auto"] / throughput[best_fixed]
            if throughput[best_fixed] > 0 else 0.0
        ),
    }


def _stage_section(scale: float, runs: int) -> dict:
    """Per-stage encode/decode throughput on the first 16 KiB chunk."""
    stages: dict[str, dict] = {}
    for name in ALL_CODECS:
        codec = repro.get_codec(name)
        chunk = _bench_sample(name, scale)[:KERNEL_CHUNK_BYTES]
        per_codec: dict[str, dict] = {}
        payload = chunk
        for stage in codec.stage_factory():
            encoded = stage.encode(payload)
            per_codec[stage.name] = {
                "encode_bytes_per_s": measure_throughput(
                    lambda s=stage, p=payload: s.encode(p), len(chunk), runs=runs
                ),
                "decode_bytes_per_s": measure_throughput(
                    lambda s=stage, e=encoded: s.decode(e), len(chunk), runs=runs
                ),
                "out_bytes": len(encoded),
            }
            payload = encoded
        stages[name] = per_codec
    return stages


def _service_section(scale: float, runs: int) -> dict:
    """Socket-vs-in-process serving throughput (``fprz serve``).

    Runs a live :class:`~repro.service.server.ServerThread` on an
    ephemeral port and measures the same compress/decompress work both
    through the FPRW socket and in process, plus the small-request rate
    (PING round trips and tiny COMPRESS jobs).  The socket/in-process
    gap is the wire + scheduling overhead of the service layer.
    """
    from repro.service import ServerThread, ServiceClient, ServiceConfig

    data = _bench_sample("spspeed", scale)
    array = np.frombuffer(data, dtype=np.float32)
    small = array[: max(len(array) // 64, 256)]
    with ServerThread(ServiceConfig(port=0)) as srv:
        with ServiceClient(port=srv.port) as client:
            blob = client.compress(array, "spspeed")
            compress = {
                "socket_bytes_per_s": measure_throughput(
                    lambda: client.compress(array, "spspeed"),
                    len(data), runs=runs,
                ),
                "inprocess_bytes_per_s": measure_throughput(
                    lambda: repro.compress(array, "spspeed"),
                    len(data), runs=runs,
                ),
                "input_bytes": len(data),
            }
            decompress = {
                "socket_bytes_per_s": measure_throughput(
                    lambda: client.decompress(blob), len(data), runs=runs
                ),
                "inprocess_bytes_per_s": measure_throughput(
                    lambda: repro.decompress(blob), len(data), runs=runs
                ),
                "input_bytes": len(data),
            }
            batch = 100

            def pings() -> None:
                for _ in range(batch):
                    client.ping()

            def small_compresses() -> None:
                for _ in range(batch):
                    client.compress(small, "spspeed")

            requests = {
                "ping_per_s": measure_throughput(pings, batch, runs=runs),
                "small_compress_per_s": measure_throughput(
                    small_compresses, batch, runs=runs
                ),
                "small_request_bytes": int(small.nbytes),
            }
    return {
        "compress": compress,
        "decompress": decompress,
        "requests": requests,
    }


#: Slice sizes (bytes) the range-read section sweeps, smallest first.
RANGE_SLICES = (4_096, 65_536, 262_144)


def _v3_sample(scale: float, dtype: str) -> bytes:
    """Deterministic smooth walk for the restart-framing sections.

    The corpus suite samples are noisy enough that per-chunk FCM loses
    its long-range matches and the whole container raw-falls back —
    which would make the "parallel FCM" rows time a memcpy and the
    range-read rows a payload slice.  A low-noise random walk keeps the
    restart pipeline genuinely engaged so the recorded numbers are the
    codec's, not the fallback's.
    """
    rng = np.random.default_rng(0x5EED3)
    n = max(int(500_000 * scale), 8_192)
    return np.cumsum(rng.normal(scale=0.01, size=n)).astype(dtype).tobytes()


def _range_read_section(scale: float, runs: int) -> dict:
    """``decompress_range`` throughput vs slice size on v3 containers.

    Throughput is normalised to *returned* bytes, so small slices show
    the per-read planning overhead and large slices converge toward the
    full-decode rate.  The ``full`` row is the whole-container decode of
    the same blob — the O(file) cost a range read avoids.
    """
    rows: dict[str, dict] = {}
    for name, dtype in (("spratio", "f4"), ("dpratio", "f8")):
        data = _v3_sample(scale, dtype)
        blob = repro.compress(data, name, fcm="restart")
        for slice_bytes in RANGE_SLICES:
            size = min(slice_bytes, len(data))
            start = (len(data) - size) // 2
            stop = start + size
            rows[f"{name}/slice{slice_bytes}"] = {
                "bytes_per_s": measure_throughput(
                    lambda b=blob, a=start, z=stop: repro.decompress_range(b, a, z),
                    size, runs=runs,
                ),
                "slice_bytes": size,
                "input_bytes": len(data),
            }
        rows[f"{name}/full"] = {
            "bytes_per_s": measure_throughput(
                lambda b=blob: repro.decompress(b), len(data), runs=runs
            ),
            "slice_bytes": len(data),
            "input_bytes": len(data),
        }
    return rows


def _fcm_parallel_section(scale: float, runs: int, workers: int) -> dict:
    """DPratio restart framing under every executor policy, vs legacy.

    The ``global`` row is the legacy serial cross-chunk FCM pass — its
    ratio is the ceiling restart trades away; the policy rows are the
    parallelism restart buys (speedup = row / serial row).
    """
    data = _v3_sample(scale, "f8")
    rows: dict[str, dict] = {}
    for policy in ("serial", "threaded", "process"):
        n_workers = 1 if policy == "serial" else max(workers, 2)
        blob = repro.compress(data, "dpratio", fcm="restart",
                              workers=n_workers, executor=policy)
        rows[policy] = {
            "compress_bytes_per_s": measure_throughput(
                lambda w=n_workers, p=policy: repro.compress(
                    data, "dpratio", fcm="restart", workers=w, executor=p
                ),
                len(data), runs=runs,
            ),
            "decompress_bytes_per_s": measure_throughput(
                lambda b=blob, w=n_workers, p=policy: repro.decompress(
                    b, workers=w, executor=p
                ),
                len(data), runs=runs,
            ),
            "ratio": len(data) / len(blob),
            "workers": n_workers,
        }
    legacy = repro.compress(data, "dpratio", fcm="global")
    rows["global"] = {
        "compress_bytes_per_s": measure_throughput(
            lambda: repro.compress(data, "dpratio", fcm="global"),
            len(data), runs=runs,
        ),
        "decompress_bytes_per_s": measure_throughput(
            lambda: repro.decompress(legacy), len(data), runs=runs
        ),
        "ratio": len(data) / len(legacy),
        "workers": 1,
    }
    return rows


#: Fault rates the resilience section sweeps (fraction of frames hit).
RESILIENCE_FAULT_RATES = (0.0, 0.05, 0.20)

#: Requests measured per resilience cell.
RESILIENCE_REQUESTS = 40


def _resilience_cell(client, array, n: int) -> dict:
    """Goodput and latency tail of ``n`` small compresses on ``client``."""
    import time as _time

    latencies: list[float] = []
    failures = 0
    started = _time.perf_counter()
    for _ in range(n):
        t0 = _time.perf_counter()
        try:
            client.compress(array, "spspeed")
        except ReproError:
            failures += 1
            continue
        latencies.append(_time.perf_counter() - t0)
    elapsed = _time.perf_counter() - started
    latencies.sort()
    p99 = latencies[int(len(latencies) * 0.99)] if latencies else 0.0
    return {
        "goodput_per_s": len(latencies) / elapsed if elapsed > 0 else 0.0,
        "p99_ms": p99 * 1e3,
        "requests": n,
        "failures": failures,
    }


def _resilience_section(scale: float, runs: int) -> dict:
    """Goodput under injected faults: router + retries vs a direct client.

    For each fault rate, every backend sits behind a seeded chaos proxy
    injecting connection resets and header corruption on that fraction
    of frames.  The ``direct`` rows drive one proxied backend through a
    :class:`~repro.service.resilience.ResilientClient`; the ``router``
    rows put a :class:`~repro.service.router.ShardRouter` over two
    proxied backends.  Failures count requests the retry budget could
    not save — goodput is successful requests per wall-clock second.
    ``runs`` is unused (one sweep is already ~240 socket requests).
    """
    del runs
    from repro.service import (
        ChaosConfig,
        ChaosProxyThread,
        ResilientClient,
        RetryPolicy,
        RouterConfig,
        RouterThread,
        ServerThread,
        ServiceConfig,
    )

    data = _bench_sample("spspeed", scale)
    array = np.frombuffer(data, dtype=np.float32)
    small = array[: max(len(array) // 64, 256)]
    policy = RetryPolicy(attempts=8, base_ms=2.0, cap_ms=50.0)
    rows: dict[str, dict] = {}
    with ServerThread(ServiceConfig(port=0)) as a, \
            ServerThread(ServiceConfig(port=0)) as b:
        for rate in RESILIENCE_FAULT_RATES:
            label = f"fault{int(rate * 100)}"

            def chaos(upstream_port: int, seed: int, rate: float = rate):
                return ChaosProxyThread(ChaosConfig(
                    upstream=("127.0.0.1", upstream_port), seed=seed,
                    reset_rate=rate / 2, corrupt_rate=rate / 2,
                ))

            with chaos(a.port, 11) as pa, chaos(b.port, 12) as pb:
                with ResilientClient(
                    f"127.0.0.1:{pa.port}", policy=policy, seed=0
                ) as direct:
                    rows[f"direct/{label}"] = dict(
                        _resilience_cell(direct, small, RESILIENCE_REQUESTS),
                        fault_rate=rate,
                    )
                with RouterThread(RouterConfig(
                    port=0,
                    backends=(("127.0.0.1", pa.port), ("127.0.0.1", pb.port)),
                    health_interval=0.2, failure_threshold=3,
                    open_seconds=0.3,
                )) as rt:
                    with ResilientClient(
                        f"127.0.0.1:{rt.port}", policy=policy, seed=0
                    ) as routed:
                        rows[f"router/{label}"] = dict(
                            _resilience_cell(
                                routed, small, RESILIENCE_REQUESTS
                            ),
                            fault_rate=rate,
                        )
    return rows


#: Fixed service demand (seconds) every saturation request carries: a
#: GIL-free sleep in the worker thread, so the measured curves isolate
#: the service architecture (wire turnarounds, pipelining, fan-out)
#: from shared-CPU contention between in-process backends.
SATURATION_JOB_DELAY = 0.003

#: Requests measured per saturation cell.
SATURATION_REQUESTS = 48

#: In-flight depths the single-connection pipelining sweep measures.
SATURATION_DEPTHS = (1, 2, 4, 8)

#: Connection counts the serial multi-connection sweep measures.
SATURATION_CONNECTIONS = (2, 4)

#: Router fan-out cells: per-backend demand (seconds × threads) chosen
#: so ONE backend is the bottleneck (50 req/s per thread, 2 threads =
#: 100 req/s) while four stay far below the wire's ~600 req/s ceiling —
#: the regime where fan-out, not the socket, sets the slope.
ROUTER_JOB_DELAY = 0.020
ROUTER_JOB_THREADS = 2
ROUTER_DEPTH = 32
ROUTER_REQUESTS = 64


def _saturation_payload(scale: float) -> np.ndarray:
    data = _bench_sample("spspeed", scale)
    array = np.frombuffer(data, dtype=np.float32)
    return array[: max(len(array) // 64, 256)]


def _saturation_variants(array: np.ndarray, count: int) -> list[np.ndarray]:
    """``count`` byte-distinct copies, so consistent hashing spreads
    them over the ring instead of pinning every request to one shard."""
    variants = []
    for i in range(count):
        v = array.copy()
        v[0] = np.float32(i)
        variants.append(v)
    return variants


def _balanced_saturation_variants(
    router, array: np.ndarray, n_backends: int, total: int
) -> list[np.ndarray]:
    """``total`` payload variants that land ``total / n_backends`` on
    each shard of ``router``'s ring.

    The fan-out cell measures scaling under the uniform-key assumption
    consistent hashing is built for; sampling 64 random keys would
    measure multinomial placement noise instead (the max-loaded shard
    of a small sample runs ~25% hot, which is workload variance, not a
    property of the service).  Placement is computed with the router's
    own ring, so the balance is exact by construction.
    """
    from repro.service import protocol as sat_proto
    from repro.service.client import ServiceClient as _Client

    per = total // n_backends
    buckets: dict[int, list[np.ndarray]] = {}
    i = 0
    while sum(len(b) for b in buckets.values()) < per * n_backends:
        v = array.copy()
        v[0] = np.float32(i)
        i += 1
        raw, code, shape = _Client._array_payload(v)
        body = sat_proto.encode_compress_body(
            raw, codec="spspeed", dtype_code=code, shape=shape
        )
        shard = id(router._candidates(body)[0])
        bucket = buckets.setdefault(shard, [])
        if len(bucket) < per:
            bucket.append(v)
    # Interleave round-robin so the in-flight window always spans
    # every shard, not one bucket at a time.
    return [
        bucket[j] for j in range(per) for bucket in buckets.values()
    ]


def _saturation_pipelined(client, payloads, n: int, depth: int) -> dict:
    """``n`` small compresses with up to ``depth`` in flight.

    Latency is submit-to-collect per correlation id — under pipelining
    each request's clock keeps running while it queues behind its
    window peers, which is exactly the tail the p99 column is for.
    """
    import time as _time
    from collections import deque

    if not isinstance(payloads, list):
        payloads = [payloads]
    latencies: list[float] = []
    outstanding: deque = deque()
    submitted = 0
    started = _time.perf_counter()
    while len(latencies) < n:
        while submitted < n and len(outstanding) < depth:
            rid = client.submit_compress(
                payloads[submitted % len(payloads)], "spspeed"
            )
            outstanding.append((rid, _time.perf_counter()))
            submitted += 1
        rid, t0 = outstanding.popleft()
        client.collect(rid)
        latencies.append(_time.perf_counter() - t0)
    elapsed = _time.perf_counter() - started
    latencies.sort()
    return {
        "requests_per_s": n / elapsed if elapsed > 0 else 0.0,
        "p99_ms": latencies[int(len(latencies) * 0.99)] * 1e3,
        "requests": n,
        "depth": depth,
        "connections": 1,
    }


def _saturation_multiconn(make_client, array, n: int, conns: int) -> dict:
    """``n`` serial compresses spread over ``conns`` connections."""
    import threading as _threading
    import time as _time

    per_conn = n // conns
    all_latencies: list[list[float]] = [[] for _ in range(conns)]

    def drive(slot: int) -> None:
        with make_client() as client:
            for _ in range(per_conn):
                t0 = _time.perf_counter()
                client.compress(array, "spspeed")
                all_latencies[slot].append(_time.perf_counter() - t0)

    threads = [
        _threading.Thread(target=drive, args=(slot,)) for slot in range(conns)
    ]
    started = _time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = _time.perf_counter() - started
    latencies = sorted(lat for sub in all_latencies for lat in sub)
    total = len(latencies)
    return {
        "requests_per_s": total / elapsed if elapsed > 0 else 0.0,
        "p99_ms": (latencies[int(total * 0.99)] * 1e3) if latencies else 0.0,
        "requests": total,
        "depth": 1,
        "connections": conns,
    }


def _service_saturation_section(scale: float, runs: int) -> dict:
    """Requests/s and p99 vs in-flight depth, connections, and fan-out.

    Every request carries the same fixed :data:`SATURATION_JOB_DELAY`
    service demand, so the section measures what the PR changed: how
    much of the wire/turnaround latency pipelining hides on one
    connection, and how close to linear the router's fan-out over four
    backends gets.  The ``direct/*`` rows drive one server; the
    ``router*/*`` rows put the shard router over one and four backends
    with a depth-16 pipelined client.  Derived ratios
    (``pipelined_speedup``, ``router_scaling``) are the bench-smoke
    gates.  ``runs`` is unused: one sweep is already ~400 requests.
    """
    del runs
    from repro.service import (
        RouterConfig,
        RouterThread,
        ServerThread,
        ServiceClient,
        ServiceConfig,
    )

    array = _saturation_payload(scale)
    n = SATURATION_REQUESTS
    rows: dict[str, dict] = {}

    def server_config() -> "ServiceConfig":
        return ServiceConfig(
            port=0, job_delay=SATURATION_JOB_DELAY,
            job_threads=16, queue_high_water=256,
        )

    with ServerThread(server_config()) as srv:
        for depth in SATURATION_DEPTHS:
            with ServiceClient(port=srv.port) as client:
                rows[f"direct/c1/d{depth}"] = _saturation_pipelined(
                    client, array, n, depth
                )
        for conns in SATURATION_CONNECTIONS:
            rows[f"direct/c{conns}/d1"] = _saturation_multiconn(
                lambda srv=srv: ServiceClient(port=srv.port), array, n, conns
            )

    for label, n_backends in (("router1", 1), ("router4", 4)):
        import contextlib as _contextlib

        with _contextlib.ExitStack() as stack:
            backends = tuple(
                ("127.0.0.1",
                 stack.enter_context(ServerThread(ServiceConfig(
                     port=0, job_delay=ROUTER_JOB_DELAY,
                     job_threads=ROUTER_JOB_THREADS, queue_high_water=256,
                 ))).port)
                for _ in range(n_backends)
            )
            rt = stack.enter_context(RouterThread(RouterConfig(
                port=0, backends=backends, inflight_high_water=512,
            )))
            payloads = _balanced_saturation_variants(
                rt.router, array, n_backends, ROUTER_REQUESTS
            )
            with ServiceClient(port=rt.port) as client:
                row = _saturation_pipelined(
                    client, payloads, ROUTER_REQUESTS, ROUTER_DEPTH
                )
                row["backends"] = n_backends
                rows[f"{label}/c1/d{ROUTER_DEPTH}"] = row

    serial = rows["direct/c1/d1"]["requests_per_s"]
    pipelined = max(
        rows[f"direct/c1/d{depth}"]["requests_per_s"]
        for depth in SATURATION_DEPTHS if depth >= 4
    )
    single = rows[f"router1/c1/d{ROUTER_DEPTH}"]["requests_per_s"]
    fanned = rows[f"router4/c1/d{ROUTER_DEPTH}"]["requests_per_s"]
    rows["derived"] = {
        "job_delay_ms": SATURATION_JOB_DELAY * 1e3,
        "router_job_delay_ms": ROUTER_JOB_DELAY * 1e3,
        # The acceptance gates: pipelining at depth >= 4 vs serial on
        # one connection (best depth — the saturating one), and
        # 4-backend fan-out vs 1 at the same depth.
        "pipelined_speedup": pipelined / serial if serial > 0 else 0.0,
        "router_scaling": fanned / single if single > 0 else 0.0,
    }
    return rows


def record_trajectory(
    *,
    tag: str | None = None,
    scale: float = 0.25,
    workers: int = 1,
    runs: int = 3,
    policy: str | None = None,
    backend: str | None = None,
) -> dict:
    """Measure a full trajectory point; returns the JSON-ready dict.

    ``workers`` must be the caller's *resolved* worker count (the CLI
    resolves its capped-CPU-count default before calling) — the value is
    recorded verbatim in the point's config so any two points state
    their execution configuration.  ``policy`` pins the measured
    executor policy; ``None`` keeps the historical rule (serial for one
    worker, threaded otherwise).  ``backend`` pins the kernel backend
    every section runs under (``None`` keeps the process default); the
    resolved name and registered backend versions land in the config so
    points recorded under different backends never compare silently.
    The ``kernel_backend`` section always measures every importable
    backend side by side, regardless of the pin.
    """
    with kernel_backend_registry.use_backend(backend) as active:
        return {
            "schema": SCHEMA_VERSION,
            "tag": tag,
            "config": {
                "scale": scale,
                "workers": workers,
                "policy": policy or ("serial" if workers <= 1 else "threaded"),
                "runs": runs,
                "kernel_chunk_bytes": KERNEL_CHUNK_BYTES,
                "python": platform.python_version(),
                "numpy": np.__version__,
                "machine": platform.machine(),
                "cpu_count": os.cpu_count(),
                "kernel_backend": active.name,
                "backend_versions": kernel_backend_registry.backend_versions(),
            },
            "kernels": _kernel_section(runs),
            "codecs": _codec_section(scale, runs, workers, policy),
            "stages": _stage_section(scale, runs),
            "service": _service_section(scale, runs),
            "service_saturation": _service_saturation_section(scale, runs),
            "range_read": _range_read_section(scale, runs),
            "fcm_parallel": _fcm_parallel_section(scale, runs, workers),
            "resilience": _resilience_section(scale, runs),
            "kernel_backend": _kernel_backend_section(scale, runs),
            "codec_selection": _codec_selection_section(scale, runs),
        }


def save_trajectory(point: dict, path: str | Path) -> None:
    Path(path).write_text(json.dumps(point, indent=2, sort_keys=True) + "\n")


def load_trajectory(path: str | Path) -> dict:
    try:
        point = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        raise ReproError(f"cannot load trajectory point {path}: {exc}") from exc
    if not isinstance(point, dict) or "schema" not in point or "codecs" not in point:
        raise ReproError(f"{path} is not a benchmark trajectory point")
    if point["schema"] > SCHEMA_VERSION:
        raise ReproError(
            f"{path} uses schema {point['schema']}, newer than supported "
            f"{SCHEMA_VERSION}"
        )
    return point


def compare_trajectories(
    baseline: dict, current: dict, *, threshold: float = 0.30
) -> list[Regression]:
    """Codec-throughput regressions beyond ``threshold`` (0.30 = -30%).

    The per-codec compress/decompress throughputs gate, plus one
    random-access point (the largest slice in the ``range_read``
    section, when both points carry it) so a planning-layer regression
    cannot hide behind healthy full-decode numbers.  Kernel and stage
    numbers are informational (they vary more between machines).
    """
    regressions = []
    for name, base_row in baseline.get("codecs", {}).items():
        cur_row = current.get("codecs", {}).get(name)
        if cur_row is None:
            continue
        for metric in ("compress_bytes_per_s", "decompress_bytes_per_s"):
            base = float(base_row.get(metric, 0.0))
            cur = float(cur_row.get(metric, 0.0))
            if base > 0 and cur < base * (1.0 - threshold):
                regressions.append(
                    Regression("codecs", name, metric, base, cur)
                )
    gate_key = f"dpratio/slice{max(RANGE_SLICES)}"
    base_row = baseline.get("range_read", {}).get(gate_key)
    cur_row = current.get("range_read", {}).get(gate_key)
    if base_row and cur_row:
        base = float(base_row.get("bytes_per_s", 0.0))
        cur = float(cur_row.get("bytes_per_s", 0.0))
        if base > 0 and cur < base * (1.0 - threshold):
            regressions.append(
                Regression("range_read", gate_key, "bytes_per_s", base, cur)
            )
    # Saturation gates: the pipelining and fan-out ratios are relative
    # measurements on the same machine, so they are stable enough to
    # gate — a drop means the service layer re-serialized something.
    base_derived = baseline.get("service_saturation", {}).get("derived")
    cur_derived = current.get("service_saturation", {}).get("derived")
    if base_derived and cur_derived:
        for metric in ("pipelined_speedup", "router_scaling"):
            base = float(base_derived.get(metric, 0.0))
            cur = float(cur_derived.get(metric, 0.0))
            if base > 0 and cur < base * (1.0 - threshold):
                regressions.append(Regression(
                    "service_saturation", "derived", metric, base, cur,
                    unit="x",
                ))
    return regressions


def format_trajectory(point: dict) -> str:
    """Human-readable summary table of a trajectory point."""
    lines = []
    tag = point.get("tag") or "-"
    lines.append(f"benchmark trajectory point (tag {tag}, schema {point['schema']})")
    lines.append("")
    lines.append(f"{'codec':>8} {'compress':>12} {'decompress':>12} {'ratio':>8}")
    for name, row in sorted(point.get("codecs", {}).items()):
        lines.append(
            f"{name:>8} "
            f"{row['compress_bytes_per_s'] / 1e6:>9.2f} MB/s "
            f"{row['decompress_bytes_per_s'] / 1e6:>9.2f} MB/s "
            f"{row['ratio']:>8.3f}"
        )
    kernels = point.get("kernels", {})
    if kernels:
        lines.append("")
        lines.append(f"{'kernel':>32} {'throughput':>12}")
        for key, row in sorted(kernels.items()):
            lines.append(f"{key:>32} {row['bytes_per_s'] / 1e6:>9.2f} MB/s")
    backends = point.get("kernel_backend", {})
    if backends:
        lines.append("")
        lines.append(f"{'backend kernel':>40} {'throughput':>12}")
        for key, row in sorted(backends.items()):
            if "bytes_per_s" in row:
                lines.append(f"{key:>40} {row['bytes_per_s'] / 1e6:>9.2f} MB/s")
            else:
                lines.append(
                    f"{key:>40} {row['compress_bytes_per_s'] / 1e6:>9.2f} MB/s c "
                    f"{row['decompress_bytes_per_s'] / 1e6:>8.2f} MB/s d"
                )
    service = point.get("service", {})
    if service:
        lines.append("")
        lines.append(f"{'service':>12} {'socket':>12} {'in-process':>12}")
        for op in ("compress", "decompress"):
            row = service.get(op)
            if row:
                lines.append(
                    f"{op:>12} "
                    f"{row['socket_bytes_per_s'] / 1e6:>9.2f} MB/s "
                    f"{row['inprocess_bytes_per_s'] / 1e6:>9.2f} MB/s"
                )
        requests = service.get("requests")
        if requests:
            lines.append(
                f"{'requests':>12} {requests['ping_per_s']:>9.0f} ping/s "
                f"{requests['small_compress_per_s']:>7.0f} compress/s"
            )
    saturation = point.get("service_saturation", {})
    if saturation:
        lines.append("")
        lines.append(
            f"{'saturation':>18} {'req/s':>10} {'p99':>10} "
            f"{'conns':>6} {'depth':>6}"
        )
        for key, row in sorted(saturation.items()):
            if key == "derived":
                continue
            lines.append(
                f"{key:>18} {row['requests_per_s']:>8.1f}/s "
                f"{row['p99_ms']:>7.1f} ms "
                f"{row['connections']:>6} {row['depth']:>6}"
            )
        derived = saturation.get("derived")
        if derived:
            lines.append(
                f"{'derived':>18} pipelined x{derived['pipelined_speedup']:.2f} "
                f"router x{derived['router_scaling']:.2f} "
                f"(demand {derived['job_delay_ms']:.1f} ms/req)"
            )
    range_read = point.get("range_read", {})
    if range_read:
        lines.append("")
        lines.append(f"{'range read':>24} {'slice':>12} {'throughput':>12}")
        for key, row in sorted(range_read.items()):
            lines.append(
                f"{key:>24} {row['slice_bytes']:>10} B "
                f"{row['bytes_per_s'] / 1e6:>9.2f} MB/s"
            )
    resilience = point.get("resilience", {})
    if resilience:
        lines.append("")
        lines.append(
            f"{'resilience':>16} {'goodput':>12} {'p99':>10} {'failed':>7}"
        )
        for key, row in sorted(resilience.items()):
            lines.append(
                f"{key:>16} {row['goodput_per_s']:>8.1f} req/s "
                f"{row['p99_ms']:>7.1f} ms "
                f"{row['failures']:>3}/{row['requests']}"
            )
    selection = point.get("codec_selection", {})
    if selection:
        lines.append("")
        lines.append(
            f"{'codec selection':>16} geo-mean ratio over "
            f"{selection.get('files', 0)} corpus files"
        )
        combined = selection.get("geomean_ratio", {})
        suites = selection.get("suite_geomean_ratio", {})
        for name in sorted(combined, key=lambda n: -combined[n]):
            sp = suites.get("sp", {}).get(name)
            dp = suites.get("dp", {}).get(name)
            lines.append(
                f"{name:>16} {combined[name]:>8.4f}  "
                f"(sp {sp:.4f}, dp {dp:.4f})" if sp and dp
                else f"{name:>16} {combined[name]:>8.4f}"
            )
        overhead = selection.get("probe_overhead", {})
        if overhead:
            lines.append(
                f"{'probe overhead':>16} {overhead['fraction'] * 100:>7.2f}% "
                f"of auto compress "
                f"({overhead['probe_bytes_per_s'] / 1e6:.1f} MB/s)"
            )
        histogram = selection.get("chosen_histogram", {})
        if histogram:
            picks = ", ".join(f"{k}:{v}" for k, v in histogram.items())
            lines.append(f"{'chunks routed':>16} {picks}")
        best = selection.get("best_fixed")
        if best is not None:
            tput = selection.get("compress_bytes_per_s", {})
            cost = selection.get("throughput_cost_vs_best_fixed", 0.0)
            wins = selection.get("auto_beats_every_fixed")
            lines.append(
                f"{'vs best fixed':>16} {best} "
                f"(auto {tput.get('auto', 0) / 1e6:.1f} MB/s vs "
                f"{tput.get(best, 0) / 1e6:.1f} MB/s, "
                f"cost {cost * 100:+.1f}%, "
                f"ratio win {'yes' if wins else 'NO'})"
            )
    fcm = point.get("fcm_parallel", {})
    if fcm:
        lines.append("")
        lines.append(
            f"{'fcm dpratio':>12} {'compress':>12} {'decompress':>12} "
            f"{'ratio':>8} {'workers':>8}"
        )
        for key in ("serial", "threaded", "process", "global"):
            row = fcm.get(key)
            if row:
                lines.append(
                    f"{key:>12} "
                    f"{row['compress_bytes_per_s'] / 1e6:>9.2f} MB/s "
                    f"{row['decompress_bytes_per_s'] / 1e6:>9.2f} MB/s "
                    f"{row['ratio']:>8.3f} {row['workers']:>8}"
                )
    return "\n".join(lines)
