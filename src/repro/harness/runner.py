"""Run comparison sets over the corpus and aggregate results.

Ratios come from the real implementations over the synthetic corpus,
aggregated as geometric means per domain and a geometric mean of those
(paper §4).  Ratios depend only on (compressor, dtype, scale), never on
the device, so they are computed once and cached; throughputs come from
the device model per machine.

:func:`measure_executors` is the *measured* complement: it times this
reproduction's own engine under each real scheduling policy (serial /
threaded worklist / static blocks) and reports per-policy throughput
rows, so the recorded numbers always say which executor produced them.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

import repro
from repro.baselines import BaselineCompressor, competitors_for
from repro.core.compressor import compress_bytes, decompress_bytes
from repro.core.executors import (
    EXECUTOR_POLICIES,
    SCHEDULING_POLICIES,
    get_executor,
    normalize_policy,
)
from repro.datasets import dp_suite, sp_suite
from repro.device import Device
from repro.device.model import modeled_throughput
from repro.metrics import geomean
from repro.metrics.timing import measure_throughput

#: Default corpus scale for harness runs (fraction of the base file size).
DEFAULT_SCALE = 0.25


class _OurCodec(BaselineCompressor):
    """Adapter exposing a paper codec through the baseline interface."""

    _DISPLAY = {"spspeed": "SPspeed", "spratio": "SPratio",
                "dpspeed": "DPspeed", "dpratio": "DPratio"}

    def __init__(self, codec_name: str) -> None:
        self.codec_name = codec_name
        self.name = self._DISPLAY[repro.get_codec(codec_name).name]
        self.device = "CPU+GPU"

    def compress(self, data: bytes) -> bytes:
        return repro.compress(data, self.codec_name)

    def decompress(self, blob: bytes) -> bytes:
        return repro.decompress(blob)


def our_codecs_for(dtype: np.dtype) -> list[BaselineCompressor]:
    if np.dtype(dtype) == np.float32:
        return [_OurCodec("spspeed"), _OurCodec("spratio")]
    return [_OurCodec("dpspeed"), _OurCodec("dpratio")]


@dataclass(frozen=True)
class ResultRow:
    """One compressor's aggregate position in one figure."""

    name: str
    ratio: float
    throughput: float
    on_front: bool
    ours: bool


@dataclass(frozen=True)
class FigureResult:
    figure_id: str
    title: str
    device_name: str
    dtype_name: str
    direction: str
    rows: tuple[ResultRow, ...]

    def front_names(self) -> list[str]:
        return [r.name for r in self.rows if r.on_front]

    def row(self, name: str) -> ResultRow:
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(name)


@lru_cache(maxsize=16)
def _suite_ratios(dtype_name: str, device_kind: str, scale: float) -> dict[str, float]:
    """Geo-of-geo ratio per compressor name (cached; device independent)."""
    dtype = np.dtype(dtype_name)
    domains = sp_suite() if dtype == np.float32 else dp_suite()
    compressors = our_codecs_for(dtype) + competitors_for(dtype, device_kind)
    per_domain: dict[str, list[float]] = {c.name: [] for c in compressors}
    for domain in domains:
        per_file: dict[str, list[float]] = {c.name: [] for c in compressors}
        for file in domain.files:
            array = file.load(scale)
            data = array.tobytes()
            for comp in compressors:
                comp.set_dimensions(array.shape)
                blob = comp.compress(data)
                if comp.decompress(blob) != data:
                    raise AssertionError(
                        f"{comp.name} failed to round-trip {file.name}"
                    )
                per_file[comp.name].append(len(data) / len(blob))
        for name, ratios in per_file.items():
            per_domain[name].append(geomean(ratios))
    # per_domain holds per-domain geometric means; the aggregate is their
    # geometric mean — the paper's geo-mean-of-geo-means.
    return {name: geomean(groups) for name, groups in per_domain.items()}


def run_suite(
    dtype: np.dtype, device: Device, direction: str, *, scale: float = DEFAULT_SCALE
) -> list[ResultRow]:
    """Aggregate rows (ratio + modeled throughput) for one figure."""
    from repro.metrics.pareto import ParetoPoint, pareto_front

    ratios = _suite_ratios(np.dtype(dtype).name, device.kind, scale)
    our_names = {c.name for c in our_codecs_for(dtype)}
    dtype_name = np.dtype(dtype).name
    points = {
        name: ParetoPoint(
            name, modeled_throughput(name, device, direction, dtype_name), ratio
        )
        for name, ratio in ratios.items()
    }
    front = {p.name for p in pareto_front(list(points.values()))}
    rows = [
        ResultRow(
            name=name,
            ratio=point.ratio,
            throughput=point.throughput,
            on_front=name in front,
            ours=name in our_names,
        )
        for name, point in points.items()
    ]
    rows.sort(key=lambda r: -r.throughput)
    return rows


@dataclass(frozen=True)
class MeasuredRow:
    """One (codec, executor policy) pair's measured performance."""

    codec: str
    policy: str
    workers: int
    #: compression throughput in bytes/second (median of ``runs``).
    throughput: float
    decompress_throughput: float
    ratio: float


def measure_executors(
    data: bytes,
    codec_name: str,
    *,
    policies: tuple[str, ...] = SCHEDULING_POLICIES,
    workers: int = 4,
    runs: int = 3,
) -> list[MeasuredRow]:
    """Time the real engine under each scheduling policy on ``data``.

    Every row records the executor policy and worker count that produced
    it — measured numbers are never reported without their execution
    configuration.  The compressed output is byte-identical across rows
    (asserted here, cheaply, since it is the engine's core invariant).
    """
    codec = repro.get_codec(codec_name)
    rows = []
    reference: bytes | None = None
    for policy in policies:
        policy = normalize_policy(policy, EXECUTOR_POLICIES)
        n_workers = 1 if policy == "serial" else workers
        # The process policy owns worker OS processes; build the executor
        # once per row so the pool warm-up is not timed into every run.
        engine = get_executor(policy, n_workers) if policy == "process" else policy
        try:
            blob = compress_bytes(data, codec, workers=n_workers,
                                  executor=engine)
            if reference is None:
                reference = blob
            elif blob != reference:
                raise AssertionError(
                    f"executor {policy!r} produced different bytes than "
                    f"{policies[0]!r} for codec {codec_name!r}"
                )
            compress_bps = measure_throughput(
                lambda: compress_bytes(data, codec, workers=n_workers,
                                       executor=engine),
                len(data), runs=runs,
            )
            decompress_bps = measure_throughput(
                lambda: decompress_bytes(blob, workers=n_workers,
                                         executor=engine),
                len(data), runs=runs,
            )
        finally:
            if engine is not policy:
                engine.close()
        rows.append(MeasuredRow(
            codec=codec.name,
            policy=policy,
            workers=n_workers,
            throughput=compress_bps,
            decompress_throughput=decompress_bps,
            ratio=len(data) / len(blob) if len(blob) else 0.0,
        ))
    return rows


def run_figure(figure_id: str, *, scale: float = DEFAULT_SCALE) -> FigureResult:
    """Regenerate one of the paper's figures by id ('fig08' ... 'fig19')."""
    from repro.harness.figures import FIGURES

    spec = FIGURES[figure_id]
    rows = run_suite(spec.dtype, spec.device, spec.direction, scale=scale)
    return FigureResult(
        figure_id=figure_id,
        title=spec.title,
        device_name=spec.device.name,
        dtype_name=np.dtype(spec.dtype).name,
        direction=spec.direction,
        rows=tuple(rows),
    )
