"""The synthetic single-precision corpus: 90 files in 7 SDRBench domains.

File names follow the real SDRBench field names so that harness output
reads like the paper's.  Grid shapes are genuinely 2-D/3-D where the
real datasets are: the paper hands the true dimensionality to FPzip,
ZFP, Ndzip, and MPC (§4), and multi-dimensional prediction is precisely
where those codecs earn their ratios.  Per-domain generator choices
encode what makes each real dataset compress the way it does:

* **CESM-ATM** (climate, 33 3-D fields): smooth spectral fields with a
  mantissa noise floor, many with constant fill regions (the 1e35
  land/ocean sentinel).
* **Hurricane ISABEL** (weather, 13 3-D fields): smooth fields; the
  hydrometeor fields (QGRAUP, QRAIN, ...) are mostly zero.
* **NYX** (cosmology, 6 3-D fields): log-normal densities and smooth
  velocities.
* **SCALE-LETKF** (climate ensemble, 24 3-D fields): rough-to-smooth
  spectra with additive sensor noise.
* **HACC** (cosmology particles, 6 1-D fields): cell-ordered particle
  positions/velocities — locally coherent, mantissa-hot.
* **QMCPack** (quantum Monte Carlo, 2 spline tables): smooth oscillations.
* **EXAALT** (molecular dynamics, Copper, 6 1-D fields): atom coordinates
  and velocities.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import fields as gen
from repro.datasets.registry import DatasetFile, Domain

F32 = np.dtype(np.float32)

#: Base grids (65 536 elements = 256 KiB at scale 1.0).
GRID_3D = (16, 64, 64)
GRID_1D = (65_536,)

#: Relative mantissa noise floor applied to simulation fields.
NOISE = 1.2e-4

#: 3-D fields need steeper spectra than 1-D ones for the same *local*
#: smoothness (spectral energy integrates over more modes per |k| shell).
SLOPE_3D_SHIFT = 1.3

_CESM_FIELDS = [
    # (name, spectral slope, amplitude, offset, fill fraction)
    ("CLDHGH", 2.6, 0.3, 0.4, 0.15), ("CLDLOW", 2.4, 0.3, 0.5, 0.15),
    ("CLDMED", 2.5, 0.3, 0.45, 0.15), ("CLDTOT", 2.7, 0.25, 0.6, 0.1),
    ("CLOUD", 2.8, 0.2, 0.3, 0.2), ("FLDS", 2.9, 40.0, 350.0, 0.0),
    ("FLDSC", 2.9, 40.0, 345.0, 0.0), ("FLNS", 2.5, 30.0, 60.0, 0.0),
    ("FLNSC", 2.5, 30.0, 65.0, 0.0), ("FLNT", 2.8, 25.0, 230.0, 0.0),
    ("FLUT", 2.8, 30.0, 235.0, 0.0), ("FREQSH", 2.2, 0.2, 0.2, 0.3),
    ("FSDS", 2.6, 80.0, 250.0, 0.1), ("FSDSC", 2.7, 70.0, 260.0, 0.1),
    ("FSNS", 2.6, 70.0, 180.0, 0.1), ("FSNSC", 2.7, 60.0, 190.0, 0.1),
    ("FSNT", 2.8, 60.0, 240.0, 0.0), ("FSNTOA", 2.8, 60.0, 245.0, 0.0),
    ("ICEFRAC", 2.0, 0.4, 0.2, 0.5), ("LHFLX", 2.3, 50.0, 80.0, 0.0),
    ("OMEGA", 2.1, 0.05, 0.0, 0.0), ("PHIS", 3.0, 2000.0, 1500.0, 0.25),
    ("PRECL", 1.9, 1e-8, 1e-8, 0.3), ("PRECSC", 1.9, 5e-9, 5e-9, 0.4),
    ("PRECSL", 1.9, 5e-9, 5e-9, 0.4), ("PS", 3.1, 3000.0, 98_000.0, 0.0),
    ("PSL", 3.1, 1500.0, 101_000.0, 0.0), ("QREFHT", 2.4, 0.004, 0.008, 0.0),
    ("SHFLX", 2.3, 40.0, 20.0, 0.0), ("SNOWHLND", 2.0, 0.1, 0.05, 0.6),
    ("T010", 3.0, 5.0, 220.0, 0.0), ("TREFHT", 2.9, 15.0, 285.0, 0.0),
    ("TS", 2.9, 18.0, 288.0, 0.0),
]

_ISABEL_FIELDS = [
    # (name, slope, amplitude, offset, zero fraction)
    ("CLOUDf48", 2.2, 0.001, 0.0005, 0.5), ("PRECIPf48", 2.0, 0.002, 0.001, 0.55),
    ("Pf48", 3.0, 500.0, 0.0, 0.0), ("QCLOUDf48", 2.1, 0.001, 0.0005, 0.55),
    ("QGRAUPf48", 1.9, 0.002, 0.001, 0.7), ("QICEf48", 2.0, 0.001, 0.0005, 0.6),
    ("QRAINf48", 2.0, 0.002, 0.001, 0.6), ("QSNOWf48", 2.0, 0.001, 0.0005, 0.6),
    ("QVAPORf48", 2.6, 0.005, 0.008, 0.0), ("TCf48", 2.8, 20.0, 10.0, 0.0),
    ("Uf48", 2.5, 15.0, 0.0, 0.0), ("Vf48", 2.5, 15.0, 0.0, 0.0),
    ("Wf48", 2.2, 2.0, 0.0, 0.0),
]

_SCALE_FIELDS = [
    ("QC", 2.0, 0.001, 0.0005, 0.5), ("QR", 2.0, 0.001, 0.0005, 0.55),
    ("QI", 2.0, 0.0005, 0.0002, 0.6), ("QS", 2.0, 0.0008, 0.0004, 0.55),
    ("QG", 1.9, 0.001, 0.0005, 0.65), ("QV", 2.5, 0.004, 0.007, 0.0),
    ("RH", 2.6, 20.0, 60.0, 0.0), ("T", 2.9, 15.0, 280.0, 0.0),
    ("U", 2.5, 12.0, 0.0, 0.0), ("V", 2.5, 12.0, 0.0, 0.0),
    ("W", 2.2, 1.5, 0.0, 0.0), ("PRES", 3.1, 2500.0, 90_000.0, 0.0),
    ("QADT", 2.1, 1e-6, 0.0, 0.2), ("QAHL", 2.1, 1e-6, 0.0, 0.25),
    ("RAIN", 1.9, 0.5, 0.2, 0.5), ("SNOW", 1.9, 0.3, 0.1, 0.6),
    ("GRAUPEL", 1.9, 0.2, 0.1, 0.65), ("CCN", 2.2, 1e8, 5e7, 0.0),
    ("CIN", 2.3, 30.0, 10.0, 0.3), ("CAPE", 2.3, 400.0, 300.0, 0.25),
    ("TKE", 2.1, 0.5, 0.3, 0.3), ("LWP", 2.2, 0.1, 0.05, 0.35),
    ("IWP", 2.2, 0.08, 0.04, 0.4), ("PW", 2.7, 8.0, 30.0, 0.0),
]

_NYX_FIELDS = [
    ("baryon_density", "density"), ("dark_matter_density", "density"),
    ("temperature", "temperature"), ("velocity_x", "velocity"),
    ("velocity_y", "velocity"), ("velocity_z", "velocity"),
]

_HACC_FIELDS = ["xx", "yy", "zz", "vx", "vy", "vz"]
_EXAALT_FIELDS = ["copper_x", "copper_y", "copper_z", "copper_vx", "copper_vy", "copper_vz"]
_QMC_FIELDS = ["einspline_288", "einspline_115"]


def _climate(slope: float, amplitude: float, offset: float, fill_fraction: float):
    def build(rng: np.random.Generator, grid: tuple[int, ...]) -> np.ndarray:
        data = gen.spectral_field(rng, grid, slope=slope + SLOPE_3D_SHIFT,
                                  amplitude=amplitude, offset=offset,
                                  dtype=np.float32)
        data = gen.with_noise_floor(rng, data, relative=NOISE)
        if fill_fraction > 0:
            data = gen.with_fill_regions(rng, data, fill_value=np.float32(1.0e35),
                                         fraction=fill_fraction)
        return data

    return build


def _sparse_hydro(slope: float, amplitude: float, offset: float, zero_fraction: float):
    def build(rng: np.random.Generator, grid: tuple[int, ...]) -> np.ndarray:
        data = gen.spectral_field(rng, grid, slope=slope + SLOPE_3D_SHIFT,
                                  amplitude=amplitude, offset=offset,
                                  dtype=np.float32)
        data = gen.with_noise_floor(rng, data, relative=NOISE)
        if zero_fraction > 0:
            data = gen.with_fill_regions(rng, data, fill_value=np.float32(0.0),
                                         fraction=zero_fraction, patch=128)
        return data

    return build


def _nyx(kind: str):
    def build(rng: np.random.Generator, grid: tuple[int, ...]) -> np.ndarray:
        base = gen.spectral_field(rng, grid, slope=2.4 + SLOPE_3D_SHIFT, dtype=np.float64)
        if kind == "density":
            data = np.exp(base * 1.5) * 1.0e9  # log-normal, positive
        elif kind == "temperature":
            data = np.exp(base * 0.8) * 1.0e4
        else:
            data = base * 250.0e5  # cm/s velocities
        data = gen.with_noise_floor(rng, data, relative=NOISE)
        return data.astype(np.float32)

    return build


def _hacc(name: str):
    def build(rng: np.random.Generator, grid: tuple[int, ...]) -> np.ndarray:
        n = grid[0]
        if name.startswith("v"):
            out = gen.spectral_field(rng, (n,), slope=1.2, amplitude=300.0,
                                     dtype=np.float32)
        else:
            out = gen.particle_positions(rng, n, box=256.0, stride=0.02,
                                         dtype=np.float32)
        return gen.with_noise_floor(rng, out, relative=NOISE / 4)

    return build


def _exaalt(name: str):
    def build(rng: np.random.Generator, grid: tuple[int, ...]) -> np.ndarray:
        n = grid[0]
        if "v" in name.split("_")[1]:
            return gen.spectral_field(rng, (n,), slope=1.5, amplitude=5.0,
                                      dtype=np.float32)
        return gen.particle_positions(rng, n, box=50.0, stride=0.005, dtype=np.float32)

    return build


def _qmc():
    def build(rng: np.random.Generator, grid: tuple[int, ...]) -> np.ndarray:
        n = 1
        for dim in grid:
            n *= dim
        return gen.oscillatory(rng, n, modes=12, noise=1e-5,
                               dtype=np.float32).reshape(grid)

    return build


def build_sp_domains() -> list[Domain]:
    domains: list[Domain] = []

    cesm = tuple(
        DatasetFile(f"CESM-ATM/{name}", "CESM-ATM", F32, GRID_3D,
                    _climate(slope, amp, off, fill))
        for name, slope, amp, off, fill in _CESM_FIELDS
    )
    domains.append(Domain("CESM-ATM", cesm))

    isabel = tuple(
        DatasetFile(f"ISABEL/{name}", "ISABEL", F32, GRID_3D,
                    _sparse_hydro(slope, amp, off, zf))
        for name, slope, amp, off, zf in _ISABEL_FIELDS
    )
    domains.append(Domain("ISABEL", isabel))

    nyx = tuple(
        DatasetFile(f"NYX/{name}", "NYX", F32, GRID_3D, _nyx(kind))
        for name, kind in _NYX_FIELDS
    )
    domains.append(Domain("NYX", nyx))

    scale = tuple(
        DatasetFile(f"SCALE-LETKF/{name}", "SCALE-LETKF", F32, GRID_3D,
                    _sparse_hydro(slope, amp, off, zf))
        for name, slope, amp, off, zf in _SCALE_FIELDS
    )
    domains.append(Domain("SCALE-LETKF", scale))

    hacc = tuple(
        DatasetFile(f"HACC/{name}", "HACC", F32, GRID_1D, _hacc(name))
        for name in _HACC_FIELDS
    )
    domains.append(Domain("HACC", hacc))

    qmc = tuple(
        DatasetFile(f"QMCPack/{name}", "QMCPack", F32, GRID_3D, _qmc())
        for name in _QMC_FIELDS
    )
    domains.append(Domain("QMCPack", qmc))

    exaalt = tuple(
        DatasetFile(f"EXAALT/{name}", "EXAALT", F32, GRID_1D, _exaalt(name))
        for name in _EXAALT_FIELDS
    )
    domains.append(Domain("EXAALT", exaalt))

    total = sum(len(d.files) for d in domains)
    assert total == 90, f"SP corpus must hold 90 files, found {total}"
    return domains
