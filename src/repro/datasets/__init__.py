"""Synthetic stand-ins for the paper's evaluation corpora.

The paper evaluates on 90 single-precision files from the SDRBench suite
(7 scientific domains) and 20 double-precision files (SDRBench plus the
FPdouble collection; 5 domains).  Those corpora total ~100 GB and are
downloaded by the original artifact; offline, we synthesise fields with
the same statistical fingerprints instead — smooth, normal, zero-centred
(the properties the paper's §3 explicitly targets, citing SDRBench's own
characterisation [38]) with per-domain twists: constant ocean masks in
climate data, exact value repeats in MPI message logs, quantised
mantissas in instrument observations, near-random mantissas in
long-running simulations.

The public surface:

* :func:`sp_suite` / :func:`dp_suite` — the two corpora, grouped by
  domain exactly like the paper's geo-mean-of-geo-means aggregation.
* :class:`DatasetFile` — a named, lazily generated file.
"""

from repro.datasets.registry import DatasetFile, Domain, dp_suite, sp_suite

__all__ = ["DatasetFile", "Domain", "dp_suite", "sp_suite"]
