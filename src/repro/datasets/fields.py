"""Random-field generators with controllable compressibility fingerprints.

Each generator produces a float array whose *bit-level* statistics mimic a
class of scientific data:

* :func:`random_walk` — 1-D Brownian signal: neighbouring values differ by
  tiny amounts, so integer differences of their IEEE words are small
  (DIFFMS's best case).
* :func:`spectral_field` — n-D Gaussian field with a power-law spectrum
  (FFT filtering); steeper slopes give smoother fields.  This is the shape
  of climate / fluid / cosmology grids.
* :func:`particle_positions` — space-filling-curve-ordered positions:
  locally coherent but with high mantissa entropy (HACC/EXAALT style).
* :func:`quantized` — limits mantissa precision, zeroing trailing bits the
  way instrument pipelines do (obs_* style).
* :func:`with_fill_regions` — overwrites patches with a constant fill
  value (ocean masks and sensor dropouts in climate data).
* :func:`repeating_messages` — draws from a small value vocabulary with
  strong serial correlation (msg_* MPI traces; FCM's best case).
"""

from __future__ import annotations

import numpy as np


def random_walk(
    rng: np.random.Generator,
    n: int,
    *,
    scale: float = 1.0,
    drift: float = 0.0,
    dtype=np.float32,
) -> np.ndarray:
    """A 1-D Brownian path: the archetypal smooth signal."""
    steps = rng.normal(loc=drift, scale=scale, size=n)
    return np.cumsum(steps).astype(dtype)


def spectral_field(
    rng: np.random.Generator,
    shape: tuple[int, ...],
    *,
    slope: float = 2.0,
    amplitude: float = 1.0,
    offset: float = 0.0,
    dtype=np.float32,
) -> np.ndarray:
    """Gaussian random field with an isotropic power-law spectrum k^-slope.

    ``slope`` ~1 is rough (turbulence-like), ~3 is very smooth
    (large-scale climate fields).  Values are zero-centred unless
    ``offset`` shifts them.
    """
    white = rng.normal(size=shape)
    spectrum = np.fft.fftn(white)
    grids = np.meshgrid(*[np.fft.fftfreq(dim) * dim for dim in shape], indexing="ij")
    k2 = sum(g.astype(np.float64) ** 2 for g in grids)
    k2[(0,) * len(shape)] = 1.0  # keep the DC mode finite
    spectrum *= k2 ** (-slope / 2.0)
    field = np.fft.ifftn(spectrum).real
    std = field.std()
    if std > 0:
        field = field / std
    return (field * amplitude + offset).astype(dtype)


def particle_positions(
    rng: np.random.Generator,
    n: int,
    *,
    box: float = 256.0,
    stride: float = 0.01,
    dtype=np.float32,
) -> np.ndarray:
    """Particle coordinates visited in a locally coherent order.

    Simulations store particles in cell/tree order, so consecutive
    coordinates are near each other even though the global distribution
    fills the box.  Modelled as a reflected random walk across the box.
    """
    steps = rng.normal(scale=box * stride, size=n)
    path = np.cumsum(steps)
    period = 2.0 * box
    folded = np.mod(path, period)
    positions = np.where(folded > box, period - folded, folded)
    return positions.astype(dtype)


def quantized(values: np.ndarray, mantissa_bits: int) -> np.ndarray:
    """Zero out trailing mantissa bits, mimicking limited-precision sources.

    FP32 keeps the top ``mantissa_bits`` of 23; FP64 of 52.  The result
    stays in the input dtype and remains bit-exactly reproducible.
    """
    if values.dtype == np.float32:
        total, itype = 23, np.uint32
    elif values.dtype == np.float64:
        total, itype = 52, np.uint64
    else:
        raise ValueError(f"unsupported dtype {values.dtype}")
    drop = max(0, total - mantissa_bits)
    if drop == 0:
        return values.copy()
    bits = values.view(itype)
    mask = itype(~((1 << drop) - 1) & ((1 << (np.dtype(itype).itemsize * 8)) - 1))
    return (bits & mask).view(values.dtype)


def quantized_step(values: np.ndarray, step: float) -> np.ndarray:
    """Round to a fixed value step, the way instrument ADCs report.

    Unlike :func:`quantized` (which masks mantissa bits) this keeps full
    mantissa entropy in each word while making *values* recur exactly
    whenever the signal revisits a level — the repeat structure
    hash-prediction compressors exploit on the obs_* files.
    """
    return (np.round(values / step) * step).astype(values.dtype)


def with_fill_regions(
    rng: np.random.Generator,
    values: np.ndarray,
    *,
    fill_value: float,
    fraction: float = 0.2,
    patch: int = 64,
) -> np.ndarray:
    """Overwrite contiguous patches with a constant fill value.

    Climate grids carry land/ocean masks and instrument grids carry
    dropouts, stored as a repeated sentinel (1e35 in CESM).  Constant
    runs are a major source of compressibility in SDRBench files.

    On multi-dimensional grids the patches are axis-aligned *boxes* of
    roughly ``patch`` cells, matching the spatial coherence of real
    masks (a flattened stripe would put a region boundary on every y/z
    neighbour pair, which no real dataset does).
    """
    out = values.copy()
    n = out.size
    target = int(n * fraction)
    if out.ndim == 1:
        covered = 0
        while covered < target and n > patch:
            start = int(rng.integers(0, n - patch))
            out[start : start + patch] = fill_value
            covered += patch
        return out
    side = max(2, int(round((patch * 8) ** (1.0 / out.ndim))))
    box = tuple(min(side, dim) for dim in out.shape)
    box_cells = 1
    for extent in box:
        box_cells *= extent
    covered = 0
    while covered < target:
        corner = tuple(
            int(rng.integers(0, dim - extent + 1))
            for dim, extent in zip(out.shape, box)
        )
        region = tuple(slice(c, c + e) for c, e in zip(corner, box))
        out[region] = fill_value
        covered += box_cells
    return out


def with_noise_floor(
    rng: np.random.Generator,
    values: np.ndarray,
    *,
    relative: float = 1e-6,
) -> np.ndarray:
    """Multiply by (1 + eps) noise, randomising the low mantissa bits.

    Real simulation outputs carry rounding noise in their least
    significant mantissa bits (paper §3.2 cites [8] on this); perfectly
    smooth synthetic fields would otherwise make byte-shuffle+LZ codecs
    look unrealistically strong.
    """
    if relative <= 0:
        return values.copy()
    eps = rng.uniform(-relative, relative, size=values.shape)
    return (values * (1.0 + eps)).astype(values.dtype)


def with_recurrences(
    rng: np.random.Generator,
    values: np.ndarray,
    *,
    fraction: float = 0.2,
    segment: int = 16,
    min_distance: int = 8192,
) -> np.ndarray:
    """Copy earlier segments to far-away later positions.

    Scientific streams re-visit earlier states: periodic boundary
    snapshots, repeated message payloads, checkpoint echoes.  The copies
    land at least ``min_distance`` values back, beyond the 32-64 KiB
    windows of LZ4/DEFLATE but in reach of hash-table predictors (FPC)
    and the sort-based FCM — the paper's stated motivation for FCM:
    finding "repeating values ... even when they are far apart".
    """
    out = values.copy().reshape(-1)
    n = out.size
    if n <= min_distance + segment:
        return out.reshape(values.shape)
    target = int(n * fraction)
    covered = 0
    while covered < target:
        dst = int(rng.integers(min_distance + segment, n - segment))
        distance = int(rng.integers(min_distance, dst - segment + 1))
        src = dst - distance
        out[dst : dst + segment] = out[src : src + segment]
        covered += segment
    return out.reshape(values.shape)


def with_plateaus(
    rng: np.random.Generator,
    values: np.ndarray,
    *,
    fraction: float = 0.3,
    run: int = 32,
) -> np.ndarray:
    """Replace random runs with their first value repeated.

    Simulation outputs hold large regions still at their exact initial or
    ambient value (unburnt fuel in S3D, vacuum in plasma codes); these
    produce the exact value repeats that hash-prediction compressors (FPC)
    and FCM exploit.
    """
    out = values.copy().reshape(-1)
    n = out.size
    target = int(n * fraction)
    covered = 0
    while covered < target and n > run:
        start = int(rng.integers(0, n - run))
        out[start : start + run] = out[start]
        covered += run
    return out.reshape(values.shape)


def repeating_messages(
    rng: np.random.Generator,
    n: int,
    *,
    period: int = 10_000,
    fresh_fraction: float = 0.3,
    dtype=np.float64,
) -> np.ndarray:
    """A long repeated cycle of distinct doubles with fresh insertions.

    MPI message traces (the msg_* FPdouble files) re-send buffers whose
    payloads recur with a long period — typically farther back than the
    32-64 KiB windows of LZ-family codecs can see, but trivially found by
    hash-table predictors (FPC) and DPratio's sort-based FCM.
    ``fresh_fraction`` of positions carry never-repeated values (payload
    fields that change every iteration).
    """
    period = min(period, max(1024, n // 2))  # keep repeats at every scale
    base = (np.cumsum(rng.normal(size=period)) * 1e3).astype(dtype)
    reps = n // period + 1
    out = np.tile(base, reps)[:n].copy()
    # Freshness is blocky — whole payload fields change per iteration, not
    # isolated scalars — so repeated stretches keep clean match contexts.
    block = 64
    n_blocks = (n + block - 1) // block
    fresh_blocks = rng.random(n_blocks) < fresh_fraction
    fresh = np.repeat(fresh_blocks, block)[:n]
    out[fresh] = (rng.normal(size=int(fresh.sum())) * 1e3).astype(dtype)
    return out


def oscillatory(
    rng: np.random.Generator,
    n: int,
    *,
    modes: int = 8,
    noise: float = 1e-4,
    dtype=np.float32,
) -> np.ndarray:
    """Superposed smooth oscillations (QMCPack spline-table style)."""
    t = np.linspace(0.0, 1.0, n)
    field = np.zeros(n)
    for _ in range(modes):
        freq = rng.uniform(0.5, 40.0)
        phase = rng.uniform(0.0, 2 * np.pi)
        amp = rng.uniform(0.1, 1.0)
        field += amp * np.sin(2 * np.pi * freq * t + phase)
    field += rng.normal(scale=noise, size=n)
    return field.astype(dtype)


def high_entropy_simulation(
    rng: np.random.Generator,
    n: int,
    *,
    smooth_scale: float = 1.0,
    dtype=np.float64,
) -> np.ndarray:
    """Smooth trajectory whose mantissa bits are effectively random.

    Long-running double-precision simulations accumulate rounding noise:
    "as floating-point values undergo arithmetic operations ... their
    bits tend to become more random" (paper §3.2).  The exponent stream
    stays compressible; the low mantissa does not.
    """
    base = np.cumsum(rng.normal(scale=smooth_scale, size=n))
    jitter = rng.uniform(1.0 - 1e-9, 1.0 + 1e-9, size=n)
    return (base * jitter).astype(dtype)
