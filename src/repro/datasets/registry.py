"""Dataset registry: named files, domains, and suite assembly.

A :class:`DatasetFile` is a lazily generated, deterministically seeded
array with a name and a domain.  Suites mirror the paper's corpora:
:func:`sp_suite` yields 90 single-precision files in 7 domains,
:func:`dp_suite` 20 double-precision files in 5 domains.  Generation is
seeded by the file name, so every run (and every test) sees identical
bytes.

``scale`` multiplies each file's element count: tests run at small scale
for speed, benchmarks at a larger one; the *relative* compressibility is
scale-invariant by construction.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np


def _seed_for(name: str) -> int:
    digest = hashlib.sha256(name.encode()).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass(frozen=True)
class DatasetFile:
    """One synthetic corpus file.

    ``base_grid`` is the file's grid shape at scale 1.0; multi-dimensional
    files exist because the paper supplies the true dimensionality to the
    baselines that require it (FPzip, ZFP, Ndzip, MPC — §4), while its own
    codecs deliberately need none.
    """

    name: str
    domain: str
    dtype: np.dtype
    base_grid: tuple[int, ...]
    generator: Callable[[np.random.Generator, tuple[int, ...]], np.ndarray] = field(repr=False)

    def grid_at(self, scale: float = 1.0) -> tuple[int, ...]:
        """The grid shape at ``scale`` (each axis scaled isotropically)."""
        if scale == 1.0:
            return self.base_grid
        factor = scale ** (1.0 / len(self.base_grid))
        return tuple(max(4, int(round(dim * factor))) for dim in self.base_grid)

    def load(self, scale: float = 1.0) -> np.ndarray:
        """Generate the file's array (deterministic for a given scale)."""
        grid = self.grid_at(scale)
        rng = np.random.default_rng(_seed_for(self.name))
        data = self.generator(rng, grid)
        assert data.dtype == self.dtype, f"{self.name}: generator dtype mismatch"
        assert data.shape == grid, f"{self.name}: generator shape mismatch"
        return data

    @property
    def base_elements(self) -> int:
        out = 1
        for dim in self.base_grid:
            out *= dim
        return out


@dataclass(frozen=True)
class Domain:
    """A scientific domain grouping several files (geo-mean aggregation unit)."""

    name: str
    files: tuple[DatasetFile, ...]


def sp_suite() -> list[Domain]:
    """The 7-domain, 90-file single-precision corpus."""
    from repro.datasets.sdrbench import build_sp_domains

    return build_sp_domains()


def dp_suite() -> list[Domain]:
    """The 5-domain, 20-file double-precision corpus."""
    from repro.datasets.fpdouble import build_dp_domains

    return build_dp_domains()
