"""The synthetic double-precision corpus: 20 files in 5 domains.

Modelled on the FPdouble collection (msg_*/num_*/obs_*) the paper adds to
SDRBench's sparse double-precision offerings, plus S3D and Miranda:

* **msg** — MPI message traces: a modest vocabulary of doubles with long
  repeated stretches (DPratio/FCM's showcase).
* **num** — numeric simulation states: smooth at the exponent level but
  with effectively random low mantissa bits.
* **obs** — instrument observations: quantised mantissas (trailing zero
  bits) from fixed-precision acquisition pipelines.
* **S3D** — combustion simulation fields: smooth 3-D spectra.
* **Miranda** — hydrodynamics fields: very smooth large-scale structure.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import fields as gen
from repro.datasets.registry import DatasetFile, Domain

F64 = np.dtype(np.float64)

#: Base grids (32 Ki values = 256 KiB at scale 1.0).
DP_GRID_1D = (32_768,)
DP_GRID_3D = (32, 32, 32)

_MSG_FILES = [
    # (name, cycle period in values, fraction of never-repeated payloads)
    ("msg_bt", 9000, 0.35), ("msg_lu", 11000, 0.30), ("msg_sp", 8000, 0.40),
    ("msg_sppm", 6000, 0.15), ("msg_sweep3d", 7000, 0.25),
]

_NUM_FILES = [
    # (name, smooth scale, plateau fraction) — num_plasma is famously
    # repetitive (FPC compresses it >10x), num_control barely at all.
    ("num_brain", 1.0, 0.25), ("num_comet", 10.0, 0.35), ("num_control", 0.1, 0.05),
    ("num_plasma", 100.0, 0.9),
]

_OBS_FILES = [
    # (name, quantisation step relative to the field amplitude)
    ("obs_error", 3e-5), ("obs_info", 1e-4), ("obs_spitzer", 1e-5),
    ("obs_temp", 5e-5),
]

_S3D_FILES = [
    ("s3d_pressure", 3.0, 1.0e5, 1.0e6), ("s3d_temperature", 2.8, 300.0, 1200.0),
    ("s3d_velocity", 2.3, 40.0, 0.0), ("s3d_species", 2.1, 0.01, 0.05),
]

_MIRANDA_FILES = [
    ("miranda_density", 3.2, 0.5, 1.0), ("miranda_pressure", 3.3, 0.2, 1.0),
    ("miranda_viscosity", 3.0, 0.05, 0.1),
]


def _msg(period: int, fresh_fraction: float):
    def build(rng: np.random.Generator, grid: tuple[int, ...]) -> np.ndarray:
        n = grid[0]
        # Re-sent buffers recur with a long period — beyond LZ windows,
        # visible to FPC's hash tables and DPratio's FCM.
        return gen.repeating_messages(rng, n, period=period,
                                      fresh_fraction=fresh_fraction,
                                      dtype=np.float64)

    return build


def _num(scale: float, plateaus: float):
    def build(rng: np.random.Generator, grid: tuple[int, ...]) -> np.ndarray:
        n = grid[0]
        data = gen.high_entropy_simulation(rng, n, smooth_scale=scale, dtype=np.float64)
        data = gen.with_plateaus(rng, data, fraction=plateaus * 0.3, run=8)
        return gen.with_recurrences(rng, data, fraction=plateaus * 1.5,
                                    segment=32, min_distance=4300)

    return build


def _obs(step_rel: float):
    def build(rng: np.random.Generator, grid: tuple[int, ...]) -> np.ndarray:
        n = grid[0]
        # Real obs_* files are only mildly compressible (gzip 1.2-1.5,
        # FPC 1.2-2.3): smooth-ish readings, mantissa noise, and a share
        # of exactly repeated records.
        amplitude = 50.0
        raw = gen.spectral_field(rng, (n,), slope=2.0, amplitude=amplitude,
                                 offset=250.0, dtype=np.float64)
        raw = gen.with_noise_floor(rng, raw, relative=max(step_rel, 1e-6))
        return gen.with_recurrences(rng, raw, fraction=0.3, segment=32,
                                    min_distance=4300)

    return build


def _smooth(slope: float, amplitude: float, offset: float, plateaus: float = 0.25):
    def build(rng: np.random.Generator, grid: tuple[int, ...]) -> np.ndarray:
        data = gen.spectral_field(rng, grid, slope=slope, amplitude=amplitude,
                                  offset=offset, dtype=np.float64)
        data = gen.with_noise_floor(rng, data, relative=1e-5)
        # Ambient regions at exactly repeated values, plus far-apart
        # state echoes (checkpoint/boundary re-visits).
        data = gen.with_plateaus(rng, data, fraction=plateaus * 0.25, run=8)
        return gen.with_recurrences(rng, data, fraction=plateaus * 1.6,
                                    segment=32, min_distance=4300)

    return build


def build_dp_domains() -> list[Domain]:
    domains = [
        Domain("msg", tuple(
            DatasetFile(f"msg/{name}", "msg", F64, DP_GRID_1D, _msg(v, rb))
            for name, v, rb in _MSG_FILES
        )),
        Domain("num", tuple(
            DatasetFile(f"num/{name}", "num", F64, DP_GRID_1D, _num(s, p))
            for name, s, p in _NUM_FILES
        )),
        Domain("obs", tuple(
            DatasetFile(f"obs/{name}", "obs", F64, DP_GRID_1D, _obs(step))
            for name, step in _OBS_FILES
        )),
        Domain("S3D", tuple(
            DatasetFile(f"S3D/{name}", "S3D", F64, DP_GRID_3D, _smooth(sl, a, o))
            for name, sl, a, o in _S3D_FILES
        )),
        Domain("Miranda", tuple(
            DatasetFile(f"Miranda/{name}", "Miranda", F64, DP_GRID_3D,
                        _smooth(sl, a, o))
            for name, sl, a, o in _MIRANDA_FILES
        )),
    ]
    total = sum(len(d.files) for d in domains)
    assert total == 20, f"DP corpus must hold 20 files, found {total}"
    return domains
