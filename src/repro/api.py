"""High-level public API: compress/decompress numpy arrays or raw bytes.

Quickstart::

    import numpy as np
    import repro

    field = np.random.default_rng(0).normal(size=(256, 256)).astype(np.float32)
    blob = repro.compress(field)               # SPratio by default for FP32
    restored = repro.decompress(blob)          # exact, shape-preserving
    assert np.array_equal(restored, field)

    fast = repro.compress(field, mode="speed")  # SPspeed

The codec is chosen from the array dtype (float32 -> SP*, float64 -> DP*)
and the requested mode ("ratio", the default, or "speed"), or can be
named explicitly (``codec="dpratio"``).  Compression is bit-exact
lossless, including NaN payloads, infinities, negative zero, and
denormals: the values are never converted, only their IEEE-754 bit
patterns are transformed (paper §3).
"""

from __future__ import annotations

import numpy as np

from repro.core import codecs as codec_registry
from repro.core import container as fmt
from repro.core.chunking import CHUNK_SIZE
from repro.core.compressor import (
    compress_bytes,
    decompress_bytes,
    decompress_range_bytes,
)
from repro.core.executors import Executor
from repro.core.trace import TraceCollector
from repro.errors import UnsupportedDtypeError

_DTYPE_BY_CODE = {
    fmt.DTYPE_BYTES: None,
    fmt.DTYPE_F32: np.dtype(np.float32),
    fmt.DTYPE_F64: np.dtype(np.float64),
}


def _coerce_input(
    data: np.ndarray | bytes | bytearray | memoryview,
) -> tuple[bytes, int, tuple[int, ...] | None, np.dtype | None]:
    """Normalise API input to (raw bytes, dtype code, shape, numpy dtype)."""
    if isinstance(data, (bytes, bytearray, memoryview)):
        return bytes(data), fmt.DTYPE_BYTES, None, None
    array = np.asarray(data)
    if array.dtype == np.float32:
        code = fmt.DTYPE_F32
    elif array.dtype == np.float64:
        code = fmt.DTYPE_F64
    else:
        raise UnsupportedDtypeError(
            f"dtype {array.dtype} is not supported; use float32, float64, or bytes"
        )
    return np.ascontiguousarray(array).tobytes(), code, array.shape, array.dtype


def compress(
    data: np.ndarray | bytes | bytearray | memoryview,
    codec: str | None = None,
    *,
    mode: str = "ratio",
    chunk_size: int = CHUNK_SIZE,
    workers: int = 1,
    checksum: bool = fmt.DEFAULT_CHECKSUM,
    chunk_checksums: bool = fmt.DEFAULT_CHUNK_CHECKSUMS,
    executor: str | Executor | None = None,
    trace: TraceCollector | None = None,
    fcm: str = "global",
    selector: str | None = None,
) -> bytes:
    """Losslessly compress a float array (or raw bytes) into one container.

    Parameters
    ----------
    data:
        A float32/float64 numpy array of any shape, or raw bytes.  Raw
        bytes require an explicit ``codec``.
    codec:
        Codec name (``"spspeed"``, ``"spratio"``, ``"dpspeed"``,
        ``"dpratio"``), or ``"auto"`` to probe every chunk and route it
        to the best fixed codec for its statistics (container v4 with a
        per-chunk codec table).  When omitted, the codec is picked from
        the array dtype and ``mode``.
    mode:
        ``"ratio"`` (default) or ``"speed"``; ignored when ``codec`` is
        given.
    chunk_size:
        Chunk granularity in bytes; the paper's (and default) value is
        16384.  Exposed for the chunk-size ablation benchmark.
    workers:
        Threads compressing independent chunks concurrently (the paper's
        OpenMP worklist).  Output bytes are identical for any value.
    checksum:
        Embed a CRC32 of the original data; :func:`decompress` then
        verifies integrity end to end (4 bytes of overhead).  Defaults
        to :data:`repro.core.container.DEFAULT_CHECKSUM` — the single
        integrity default shared by every entry point.
    chunk_checksums:
        Embed a CRC32 per chunk payload (container v2, 4 bytes per
        chunk).  Localises corruption to one chunk on decode and is what
        makes ``decompress(..., errors="salvage")`` able to recover the
        undamaged chunks.  Defaults to
        :data:`repro.core.container.DEFAULT_CHUNK_CHECKSUMS`.
    executor:
        Scheduling policy for the chunk jobs — ``"serial"``,
        ``"threaded"`` (the paper's dynamic worklist), ``"static-blocks"``
        (contiguous blocked partition), or a prebuilt
        :class:`~repro.core.executors.Executor`.  Defaults from
        ``workers``.  Output bytes are identical under every policy.
    trace:
        A :class:`~repro.core.trace.TraceCollector` to fill with
        per-chunk instrumentation (stage timings, stage output sizes,
        raw-fallback flags, worker assignment).
    fcm:
        How a codec's FCM stage runs (DPratio only; ignored elsewhere).
        ``"global"`` (default) is the serial whole-input FCM pass with
        the v1/v2 cross-chunk layout — the paper's best-ratio mode.
        ``"restart"`` re-seeds the predictor at every chunk boundary —
        container v3, every chunk independently decodable, enabling
        O(range) :func:`decompress_range`, :func:`concat`, and parallel
        DPratio under every executor policy.  The price is that matches
        cannot reach past one chunk: ~1-2% ratio on smooth fields, much
        more when repeats sit further back than ``chunk_size``
        (measured numbers in ALGORITHMS.md).  Ignored by ``codec="auto"``
        — member codecs with an FCM stage always run it restart-framed
        so every chunk stays independently decodable.
    selector:
        Decision policy for ``codec="auto"`` (ignored otherwise):
        ``"heuristic"`` (default, calibrated bias constants),
        ``"trained"`` (thresholds fitted offline by
        ``scripts/fit_selector.py``), or a path to a compatible
        thresholds ``.json`` file.

    Returns
    -------
    bytes
        A self-describing ``FPRZ`` container (see
        :mod:`repro.core.container`).
    """
    raw, dtype_code, shape, dtype = _coerce_input(data)
    if codec is not None:
        chosen = codec_registry.get_codec(codec)
    elif dtype is not None:
        chosen = codec_registry.codec_for(dtype, mode)
    else:
        raise UnsupportedDtypeError("raw bytes input requires an explicit codec name")
    return compress_bytes(
        raw, chosen, chunk_size=chunk_size, dtype_code=dtype_code, shape=shape,
        workers=workers, checksum=checksum, chunk_checksums=chunk_checksums,
        executor=executor, trace=trace, fcm=fcm, selector=selector,
    )


def _reassemble(data: bytes, info: fmt.ContainerInfo) -> np.ndarray | bytes:
    dtype = _DTYPE_BY_CODE.get(info.dtype_code)
    if dtype is None:
        return data
    array = np.frombuffer(data, dtype=dtype)
    if info.shape is not None:
        array = array.reshape(info.shape)
    return array


def decompress(
    blob: bytes,
    *,
    workers: int = 1,
    executor: str | Executor | None = None,
    trace: TraceCollector | None = None,
    errors: str = "raise",
):
    """Decompress a container produced by :func:`compress`.

    Returns a numpy array with the original dtype and shape when the
    container was built from an array, or raw bytes otherwise.
    ``workers``/``executor`` schedule the independent chunk decodes just
    like :func:`compress`; ``trace`` collects per-chunk instrumentation.

    ``errors`` selects the failure policy:

    * ``"raise"`` (default) — any corruption raises a
      :class:`~repro.errors.ReproError` subclass naming the damaged
      chunk and its byte range.
    * ``"salvage"`` — best-effort decode: chunks that verify are decoded
      normally, chunks that do not are zero-filled, and the call returns
      a ``(result, report)`` tuple where ``report`` is a
      :class:`~repro.core.salvage.SalvageReport` mapping the untrusted
      output byte ranges.  Requires the container to parse far enough to
      locate its chunks (header damage still raises).
    """
    if errors == "salvage":
        data, info, report = decompress_bytes(
            blob, workers=workers, executor=executor, trace=trace,
            errors="salvage",
        )
        return _reassemble(data, info), report
    data, info = decompress_bytes(blob, workers=workers, executor=executor,
                                  trace=trace, errors=errors)
    return _reassemble(data, info)


def decompress_range(
    blob: bytes,
    start: int | None = None,
    stop: int | None = None,
    *,
    workers: int = 1,
    executor: str | Executor | None = None,
    trace: TraceCollector | None = None,
    errors: str = "raise",
):
    """Decompress only the elements ``[start, stop)`` of a container.

    Plans and decodes just the chunks overlapping the requested range —
    an O(range) read out of an O(file) container (the ROADMAP's
    random-access archive scenario).  ``start``/``stop`` follow Python
    slice semantics (negative indices and ``None`` endpoints included)
    and count *elements* for array containers, bytes for raw-bytes
    containers.  Array results are 1-D (a flat element range has no
    natural multi-dimensional shape); bytes in, bytes out.

    The result is byte-identical to ``decompress(blob)[start:stop]``
    flattened.  ``errors="salvage"`` returns ``(result, report)`` with
    damage outside the requested range never even read; the report's
    ranges are relative to the returned slice.

    Legacy containers whose codec ran a whole-input FCM pass (v1/v2
    DPratio, ``fcm="global"``) cannot decode partially; they fall back
    to a full decode and slice — correct, but without the O(range) cost.
    """
    info = fmt.inspect_container(blob)
    dtype = _DTYPE_BY_CODE.get(info.dtype_code)
    itemsize = 1 if dtype is None else dtype.itemsize
    n_items = info.original_len // itemsize
    a, b, _ = slice(start, stop).indices(n_items)
    b = max(a, b)
    if errors == "salvage":
        data, _, report = decompress_range_bytes(
            blob, a * itemsize, b * itemsize, workers=workers,
            executor=executor, trace=trace, errors="salvage",
        )
        result = data if dtype is None else np.frombuffer(data, dtype=dtype)
        return result, report
    data, _ = decompress_range_bytes(
        blob, a * itemsize, b * itemsize, workers=workers, executor=executor,
        trace=trace, errors=errors,
    )
    return data if dtype is None else np.frombuffer(data, dtype=dtype)


def concat(blobs) -> bytes:
    """Concatenate compressed containers without re-encoding any payload.

    All inputs must share a dtype; the result's decompressed content is
    the concatenation of the inputs' (flattened) content, and chunk
    payloads are copied verbatim — no stage ever re-runs.  Inputs that
    share one fixed codec merge into a version-3 container with an
    explicit chunk index; inputs with different codecs (including v4
    mixed containers) merge into a version-4 container whose per-chunk
    codec table records each member.  DPratio containers carrying
    cross-chunk FCM state (the ``fcm="global"`` default) are rejected;
    recompress them with ``fcm="restart"`` first.
    """
    return fmt.concat_containers(blobs)


def inspect(blob: bytes) -> fmt.ContainerInfo:
    """Parse a container's metadata without decompressing its payload."""
    return fmt.inspect_container(blob)


def available_codecs() -> list[str]:
    """Names of the registered codecs (fixed paper codecs plus ``auto``)."""
    return sorted([*codec_registry.CODECS, codec_registry.AUTO.name])


def connect(host: str = "127.0.0.1", port: int | None = None, *,
            timeout: float = 60.0):
    """Open a blocking connection to a running ``fprz serve`` daemon.

    Returns a :class:`~repro.service.client.ServiceClient` whose
    ``compress``/``decompress`` mirror this module's functions but run
    on the server — and whose compressed bytes are byte-identical to
    :func:`compress` on the same input, because the wire payload *is*
    the FPRZ container.  Usable as a context manager::

        with repro.connect(port=9753) as remote:
            blob = remote.compress(field)
    """
    from repro.service.client import ServiceClient
    from repro.service.protocol import DEFAULT_PORT

    return ServiceClient(
        host=host, port=DEFAULT_PORT if port is None else port, timeout=timeout
    )
