"""The ``FPRZ`` container: a contiguous, self-describing compressed block.

Unlike the nvCOMP compressors the paper criticises for leaving chunks
"separately stored ... not concatenated" (§5.1), our container always
concatenates everything into one contiguous byte block, exactly like the
paper's codes.  The layout is:

===========  =====  =====================================================
field        bytes  meaning
===========  =====  =====================================================
magic            4  ``b"FPRZ"``
version          1  container format version (1 or 2)
codec_id         1  registry id of the codec that produced the block
dtype_code       1  0 = raw bytes, 1 = float32, 2 = float64
flags            1  bit 0: whole-input raw fallback; bit 1: shape present;
                    bit 2: whole-input CRC32 present; bit 3 (v2 only):
                    per-chunk CRC32 table present
orig_len         8  length of the original data in bytes
inter_len        8  length after the codec's global stage (== orig_len
                    when the codec has no global stage)
chunk_size       4  chunk size used (0 for raw fallback)
n_chunks         4  number of chunk payloads
shape block      v  present iff flags bit 1: u8 ndim, then ndim x u64
checksum         4  present iff flags bit 2: CRC32 of the original data
chunk table   4*n   compressed payload size of each chunk
chunk CRCs    4*n   present iff flags bit 3: CRC32 of each chunk payload
payloads         v  the chunk payloads, concatenated (prefix sums of the
                    chunk table give each payload's offset, mirroring the
                    decoupled-look-back write positions of the GPU code)
===========  =====  =====================================================

Version 2 adds exactly one feature over version 1: the optional per-chunk
CRC32 table (flags bit 3), which localises corruption to a single 16 KiB
chunk instead of merely detecting it end-to-end.  Containers that do not
use the table are still written as version 1, byte-identical to what
earlier releases produced; both versions decode.

For the raw fallback (an input the codec expands overall), the payload
section holds the original bytes verbatim and ``n_chunks`` is 0.

Every declared length is validated against the actual buffer before any
allocation is sized from it (see :func:`inspect_container`), so a
corrupted header cannot make the decoder over-allocate — the
decompression-bomb guard the fuzz harness (:mod:`repro.fuzzing`)
exercises.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.errors import BoundsError, FormatError

MAGIC = b"FPRZ"
#: Current container format version (written when v2 features are used).
VERSION = 2
#: Versions this library can decode.
WIRE_VERSIONS = (1, 2)

FLAG_RAW = 0x01
FLAG_SHAPE = 0x02
#: When set, a CRC32 of the original data follows the shape block; the
#: decompressor verifies it after reconstruction.
FLAG_CHECKSUM = 0x04
#: (v2) When set, a CRC32 per chunk payload follows the chunk table; the
#: decompressor verifies each chunk before decoding it, localising any
#: corruption to one chunk.
FLAG_CHUNK_CRCS = 0x08

_KNOWN_FLAGS = {1: FLAG_RAW | FLAG_SHAPE | FLAG_CHECKSUM,
                2: FLAG_RAW | FLAG_SHAPE | FLAG_CHECKSUM | FLAG_CHUNK_CRCS}

#: The one documented integrity default: both the public API
#: (:func:`repro.compress`) and the streaming layer (:mod:`repro.io`)
#: embed the whole-input CRC32 unless told otherwise.  4 bytes per
#: container buys end-to-end bit-exactness proof on every decode.
DEFAULT_CHECKSUM = True
#: Per-chunk CRC table default: on.  4 bytes per 16 KiB chunk (+0.02%)
#: buys corruption *localisation* — a damaged archive loses one chunk,
#: not the file — and is what makes salvage-mode recovery provable.
DEFAULT_CHUNK_CHECKSUMS = True

DTYPE_BYTES = 0
DTYPE_F32 = 1
DTYPE_F64 = 2

_DTYPE_ITEMSIZE = {DTYPE_BYTES: 1, DTYPE_F32: 4, DTYPE_F64: 8}

#: Bomb guards: reject declared geometry no real container can carry.
#: A chunk payload is at least 2 bytes (flag byte + body) and decodes to
#: at most ``chunk_size`` bytes, so no legitimate container expands by
#: more than ~``chunk_size``:2; 16384x is far above any real ratio.
MAX_DECLARED_EXPANSION = 1 << 14
#: Largest accepted chunk size (the paper's value is 16 KiB; the ablation
#: benchmark goes to a few MiB — 64 MiB leaves 4096x headroom).
MAX_CHUNK_SIZE = 1 << 26
#: Largest accepted array rank (numpy itself stops at 64).
MAX_NDIM = 64

_HEADER = struct.Struct("<4sBBBBQQII")


@dataclass(frozen=True)
class ContainerInfo:
    """Parsed container metadata (no payload decoding)."""

    version: int
    codec_id: int
    dtype_code: int
    raw_fallback: bool
    original_len: int
    intermediate_len: int
    chunk_size: int
    n_chunks: int
    shape: tuple[int, ...] | None
    chunk_sizes: tuple[int, ...]
    payload_offset: int
    total_len: int
    checksum: int | None = None
    #: (v2) CRC32 of each compressed chunk payload, or ``None``.
    chunk_crcs: tuple[int, ...] | None = None

    @property
    def compressed_len(self) -> int:
        return self.total_len

    @property
    def ratio(self) -> float:
        """Compression ratio (original / compressed), the paper's metric."""
        if self.total_len == 0:
            return 0.0
        return self.original_len / self.total_len


def checksum_of(data) -> int:
    """The container's integrity checksum (CRC32, also used per chunk)."""
    return zlib.crc32(data) & 0xFFFFFFFF


def _meta_blocks(
    shape: tuple[int, ...] | None, checksum: int | None
) -> tuple[int, bytes]:
    flags = 0
    block = b""
    if shape is not None:
        flags |= FLAG_SHAPE
        block += struct.pack("<B", len(shape)) + b"".join(
            struct.pack("<Q", dim) for dim in shape
        )
    if checksum is not None:
        flags |= FLAG_CHECKSUM
        block += struct.pack("<I", checksum)
    return flags, block


def build_container(
    *,
    codec_id: int,
    dtype_code: int,
    original_len: int,
    intermediate_len: int,
    chunk_size: int,
    chunk_payloads: list[bytes],
    shape: tuple[int, ...] | None = None,
    checksum: int | None = None,
    chunk_crcs: bool = False,
) -> bytes:
    """Assemble a compressed container from chunk payloads.

    The payload section is written into one preallocated buffer at the
    prefix-sum offsets of the chunk table — the serial rendering of the
    decoupled-look-back write positions the GPU code communicates.

    ``chunk_crcs=True`` writes the version-2 per-chunk CRC32 table;
    containers without it stay version 1, byte-identical to earlier
    releases.
    """
    flags, meta = _meta_blocks(shape, checksum)
    sizes = [len(p) for p in chunk_payloads]
    with_crcs = chunk_crcs and bool(sizes)
    version = VERSION if with_crcs else 1
    if with_crcs:
        flags |= FLAG_CHUNK_CRCS
    table_offset = _HEADER.size + len(meta)
    crc_offset = table_offset + 4 * len(sizes)
    payload_offset = crc_offset + (4 * len(sizes) if with_crcs else 0)
    buf = bytearray(payload_offset + sum(sizes))
    _HEADER.pack_into(
        buf,
        0,
        MAGIC,
        version,
        codec_id,
        dtype_code,
        flags,
        original_len,
        intermediate_len,
        chunk_size,
        len(chunk_payloads),
    )
    buf[_HEADER.size : table_offset] = meta
    if sizes:
        struct.pack_into(f"<{len(sizes)}I", buf, table_offset, *sizes)
    if with_crcs:
        struct.pack_into(
            f"<{len(sizes)}I", buf, crc_offset,
            *(checksum_of(p) for p in chunk_payloads),
        )
    pos = payload_offset
    for payload, size in zip(chunk_payloads, sizes):
        buf[pos : pos + size] = payload
        pos += size
    return bytes(buf)


def raw_container_size(
    data_len: int,
    *,
    shape: tuple[int, ...] | None = None,
    checksum: int | None = None,
) -> int:
    """Size of the raw-fallback container, without materialising it.

    Lets the engine decide *lazily* whether the fallback is needed: the
    full-input copy in :func:`build_raw_container` only happens when the
    compressed container failed to beat this number.
    """
    flags_meta = _meta_blocks(shape, checksum)[1]
    return _HEADER.size + len(flags_meta) + data_len


def build_raw_container(
    *,
    codec_id: int,
    dtype_code: int,
    data: bytes,
    shape: tuple[int, ...] | None = None,
    checksum: int | None = None,
) -> bytes:
    """Assemble the whole-input raw-fallback container (always version 1)."""
    flags, meta = _meta_blocks(shape, checksum)
    flags |= FLAG_RAW
    header = _HEADER.pack(
        MAGIC, 1, codec_id, dtype_code, flags, len(data), len(data), 0, 0
    )
    return header + meta + data


def inspect_container(blob: bytes) -> ContainerInfo:
    """Parse and validate a container's header, tables, and geometry.

    Every declared length is checked against the actual buffer *before*
    anything is allocated from it: truncated blocks, oversized chunk
    tables, zero-length chunk entries, shape/dtype mismatches, and
    headers promising implausible expansion (more than
    :data:`MAX_DECLARED_EXPANSION` x the container size) all raise
    :class:`FormatError` / :class:`BoundsError` with the offending byte
    offset in the message.
    """
    if len(blob) < _HEADER.size:
        raise FormatError(
            f"container shorter than its fixed {_HEADER.size}-byte header "
            f"({len(blob)} bytes)"
        )
    magic, version, codec_id, dtype_code, flags, orig_len, inter_len, chunk_size, n_chunks = (
        _HEADER.unpack_from(blob, 0)
    )
    if magic != MAGIC:
        raise FormatError(f"bad magic {magic!r} at offset 0; not an FPRZ container")
    if version not in WIRE_VERSIONS:
        raise FormatError(
            f"unsupported container version {version} at offset 4 "
            f"(this library reads versions {WIRE_VERSIONS})"
        )
    if flags & ~_KNOWN_FLAGS[version]:
        raise FormatError(
            f"unknown flag bits 0x{flags & ~_KNOWN_FLAGS[version]:02x} at "
            f"offset 7 for container version {version}"
        )
    if dtype_code not in _DTYPE_ITEMSIZE:
        raise FormatError(f"unknown dtype code {dtype_code} at offset 6")
    # Bomb guard: a header may not promise more output than the container
    # could legitimately encode (each >=2-byte payload decodes to at most
    # chunk_size bytes, far under MAX_DECLARED_EXPANSION x).
    plausible = max(len(blob), _HEADER.size) * MAX_DECLARED_EXPANSION
    if orig_len > plausible:
        raise BoundsError(
            f"declared original length {orig_len} at offset 8 is implausible "
            f"for a {len(blob)}-byte container"
        )
    if inter_len > plausible:
        raise BoundsError(
            f"declared intermediate length {inter_len} at offset 16 is "
            f"implausible for a {len(blob)}-byte container"
        )
    if chunk_size > MAX_CHUNK_SIZE:
        raise BoundsError(
            f"declared chunk size {chunk_size} at offset 24 exceeds the "
            f"maximum {MAX_CHUNK_SIZE}"
        )
    pos = _HEADER.size
    shape: tuple[int, ...] | None = None
    if flags & FLAG_SHAPE:
        if pos + 1 > len(blob):
            raise FormatError(f"truncated shape block at offset {pos}")
        (ndim,) = struct.unpack_from("<B", blob, pos)
        pos += 1
        if ndim > MAX_NDIM:
            raise FormatError(
                f"shape block at offset {pos - 1} declares {ndim} dimensions "
                f"(maximum {MAX_NDIM})"
            )
        need = ndim * 8
        if pos + need > len(blob):
            raise FormatError(f"truncated shape block at offset {pos}")
        shape = struct.unpack_from(f"<{ndim}Q", blob, pos)
        pos += need
        elements = 1
        for dim in shape:
            elements *= dim
        if elements * _DTYPE_ITEMSIZE[dtype_code] != orig_len:
            raise FormatError(
                f"shape {tuple(shape)} x itemsize {_DTYPE_ITEMSIZE[dtype_code]} "
                f"does not cover the declared original length {orig_len}"
            )
    checksum: int | None = None
    if flags & FLAG_CHECKSUM:
        if pos + 4 > len(blob):
            raise FormatError(f"truncated checksum block at offset {pos}")
        (checksum,) = struct.unpack_from("<I", blob, pos)
        pos += 4
    raw_fallback = bool(flags & FLAG_RAW)
    if raw_fallback:
        if n_chunks != 0:
            raise FormatError(
                f"raw-fallback container must not carry chunks "
                f"(n_chunks={n_chunks} at offset 28)"
            )
        if flags & FLAG_CHUNK_CRCS:
            raise FormatError("raw-fallback container must not carry a chunk CRC table")
        if len(blob) - pos != orig_len:
            raise FormatError(
                f"raw-fallback payload length mismatch: header says {orig_len}, "
                f"container has {len(blob) - pos} bytes after offset {pos}"
            )
        if inter_len != orig_len:
            raise FormatError(
                f"raw-fallback intermediate length {inter_len} must equal "
                f"the original length {orig_len}"
            )
        return ContainerInfo(
            version=version,
            codec_id=codec_id,
            dtype_code=dtype_code,
            raw_fallback=True,
            original_len=orig_len,
            intermediate_len=inter_len,
            chunk_size=0,
            n_chunks=0,
            shape=shape,
            chunk_sizes=(),
            payload_offset=pos,
            total_len=len(blob),
            checksum=checksum,
        )
    table_bytes = n_chunks * 4
    crc_bytes = table_bytes if flags & FLAG_CHUNK_CRCS else 0
    if pos + table_bytes + crc_bytes > len(blob):
        raise FormatError(
            f"truncated chunk table: {n_chunks} chunks need "
            f"{table_bytes + crc_bytes} bytes at offset {pos}, container has "
            f"{len(blob) - pos}"
        )
    chunk_sizes = struct.unpack_from(f"<{n_chunks}I", blob, pos)
    pos += table_bytes
    chunk_crcs: tuple[int, ...] | None = None
    if flags & FLAG_CHUNK_CRCS:
        chunk_crcs = struct.unpack_from(f"<{n_chunks}I", blob, pos)
        pos += crc_bytes
    for i, size in enumerate(chunk_sizes):
        if size == 0:
            raise FormatError(
                f"chunk {i} declares a zero-length payload in the chunk table "
                f"(every payload carries at least its flag byte)"
            )
    if pos + sum(chunk_sizes) != len(blob):
        raise FormatError(
            f"payload length mismatch: chunk table says {sum(chunk_sizes)}, "
            f"container has {len(blob) - pos} bytes after offset {pos}"
        )
    return ContainerInfo(
        version=version,
        codec_id=codec_id,
        dtype_code=dtype_code,
        raw_fallback=False,
        original_len=orig_len,
        intermediate_len=inter_len,
        chunk_size=chunk_size,
        n_chunks=n_chunks,
        shape=shape,
        chunk_sizes=tuple(chunk_sizes),
        payload_offset=pos,
        total_len=len(blob),
        checksum=checksum,
        chunk_crcs=chunk_crcs,
    )


def payload_offsets(info: ContainerInfo) -> list[int]:
    """Absolute offset of each chunk payload (prefix sum over the table)."""
    offsets = []
    pos = info.payload_offset
    for size in info.chunk_sizes:
        offsets.append(pos)
        pos += size
    return offsets
