"""The ``FPRZ`` container: a contiguous, self-describing compressed block.

Unlike the nvCOMP compressors the paper criticises for leaving chunks
"separately stored ... not concatenated" (§5.1), our container always
concatenates everything into one contiguous byte block, exactly like the
paper's codes.  The layout is:

===========  =====  =====================================================
field        bytes  meaning
===========  =====  =====================================================
magic            4  ``b"FPRZ"``
version          1  container format version (currently 1)
codec_id         1  registry id of the codec that produced the block
dtype_code       1  0 = raw bytes, 1 = float32, 2 = float64
flags            1  bit 0: whole-input raw fallback; bit 1: shape present
orig_len         8  length of the original data in bytes
inter_len        8  length after the codec's global stage (== orig_len
                    when the codec has no global stage)
chunk_size       4  chunk size used (0 for raw fallback)
n_chunks         4  number of chunk payloads
shape block      v  present iff flags bit 1: u8 ndim, then ndim x u64
chunk table   4*n   compressed payload size of each chunk
payloads         v  the chunk payloads, concatenated (prefix sums of the
                    chunk table give each payload's offset, mirroring the
                    decoupled-look-back write positions of the GPU code)
===========  =====  =====================================================

For the raw fallback (an input the codec expands overall), the payload
section holds the original bytes verbatim and ``n_chunks`` is 0.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.errors import FormatError

MAGIC = b"FPRZ"
VERSION = 1

FLAG_RAW = 0x01
FLAG_SHAPE = 0x02
#: When set, a CRC32 of the original data follows the shape block; the
#: decompressor verifies it after reconstruction.
FLAG_CHECKSUM = 0x04

DTYPE_BYTES = 0
DTYPE_F32 = 1
DTYPE_F64 = 2

_HEADER = struct.Struct("<4sBBBBQQII")


@dataclass(frozen=True)
class ContainerInfo:
    """Parsed container metadata (no payload decoding)."""

    version: int
    codec_id: int
    dtype_code: int
    raw_fallback: bool
    original_len: int
    intermediate_len: int
    chunk_size: int
    n_chunks: int
    shape: tuple[int, ...] | None
    chunk_sizes: tuple[int, ...]
    payload_offset: int
    total_len: int
    checksum: int | None = None

    @property
    def compressed_len(self) -> int:
        return self.total_len

    @property
    def ratio(self) -> float:
        """Compression ratio (original / compressed), the paper's metric."""
        if self.total_len == 0:
            return 0.0
        return self.original_len / self.total_len


def checksum_of(data: bytes) -> int:
    """The container's integrity checksum (CRC32 of the original bytes)."""
    return zlib.crc32(data) & 0xFFFFFFFF


def _meta_blocks(
    shape: tuple[int, ...] | None, checksum: int | None
) -> tuple[int, bytes]:
    flags = 0
    block = b""
    if shape is not None:
        flags |= FLAG_SHAPE
        block += struct.pack("<B", len(shape)) + b"".join(
            struct.pack("<Q", dim) for dim in shape
        )
    if checksum is not None:
        flags |= FLAG_CHECKSUM
        block += struct.pack("<I", checksum)
    return flags, block


def build_container(
    *,
    codec_id: int,
    dtype_code: int,
    original_len: int,
    intermediate_len: int,
    chunk_size: int,
    chunk_payloads: list[bytes],
    shape: tuple[int, ...] | None = None,
    checksum: int | None = None,
) -> bytes:
    """Assemble a compressed container from chunk payloads.

    The payload section is written into one preallocated buffer at the
    prefix-sum offsets of the chunk table — the serial rendering of the
    decoupled-look-back write positions the GPU code communicates.
    """
    flags, meta = _meta_blocks(shape, checksum)
    sizes = [len(p) for p in chunk_payloads]
    table_offset = _HEADER.size + len(meta)
    payload_offset = table_offset + 4 * len(sizes)
    buf = bytearray(payload_offset + sum(sizes))
    _HEADER.pack_into(
        buf,
        0,
        MAGIC,
        VERSION,
        codec_id,
        dtype_code,
        flags,
        original_len,
        intermediate_len,
        chunk_size,
        len(chunk_payloads),
    )
    buf[_HEADER.size : table_offset] = meta
    if sizes:
        struct.pack_into(f"<{len(sizes)}I", buf, table_offset, *sizes)
    pos = payload_offset
    for payload, size in zip(chunk_payloads, sizes):
        buf[pos : pos + size] = payload
        pos += size
    return bytes(buf)


def raw_container_size(
    data_len: int,
    *,
    shape: tuple[int, ...] | None = None,
    checksum: int | None = None,
) -> int:
    """Size of the raw-fallback container, without materialising it.

    Lets the engine decide *lazily* whether the fallback is needed: the
    full-input copy in :func:`build_raw_container` only happens when the
    compressed container failed to beat this number.
    """
    flags_meta = _meta_blocks(shape, checksum)[1]
    return _HEADER.size + len(flags_meta) + data_len


def build_raw_container(
    *,
    codec_id: int,
    dtype_code: int,
    data: bytes,
    shape: tuple[int, ...] | None = None,
    checksum: int | None = None,
) -> bytes:
    """Assemble the whole-input raw-fallback container."""
    flags, meta = _meta_blocks(shape, checksum)
    flags |= FLAG_RAW
    header = _HEADER.pack(
        MAGIC, VERSION, codec_id, dtype_code, flags, len(data), len(data), 0, 0
    )
    return header + meta + data


def inspect_container(blob: bytes) -> ContainerInfo:
    """Parse and validate a container's header and chunk table."""
    if len(blob) < _HEADER.size:
        raise FormatError("container shorter than its fixed header")
    magic, version, codec_id, dtype_code, flags, orig_len, inter_len, chunk_size, n_chunks = (
        _HEADER.unpack_from(blob, 0)
    )
    if magic != MAGIC:
        raise FormatError(f"bad magic {magic!r}; not an FPRZ container")
    if version != VERSION:
        raise FormatError(f"unsupported container version {version}")
    pos = _HEADER.size
    shape: tuple[int, ...] | None = None
    if flags & FLAG_SHAPE:
        if pos + 1 > len(blob):
            raise FormatError("truncated shape block")
        (ndim,) = struct.unpack_from("<B", blob, pos)
        pos += 1
        need = ndim * 8
        if pos + need > len(blob):
            raise FormatError("truncated shape block")
        shape = struct.unpack_from(f"<{ndim}Q", blob, pos)
        pos += need
    checksum: int | None = None
    if flags & FLAG_CHECKSUM:
        if pos + 4 > len(blob):
            raise FormatError("truncated checksum block")
        (checksum,) = struct.unpack_from("<I", blob, pos)
        pos += 4
    raw_fallback = bool(flags & FLAG_RAW)
    if raw_fallback:
        if n_chunks != 0:
            raise FormatError("raw-fallback container must not carry chunks")
        if len(blob) - pos != orig_len:
            raise FormatError("raw-fallback payload length mismatch")
        return ContainerInfo(
            version=version,
            codec_id=codec_id,
            dtype_code=dtype_code,
            raw_fallback=True,
            original_len=orig_len,
            intermediate_len=inter_len,
            chunk_size=0,
            n_chunks=0,
            shape=shape,
            chunk_sizes=(),
            payload_offset=pos,
            total_len=len(blob),
            checksum=checksum,
        )
    table_bytes = n_chunks * 4
    if pos + table_bytes > len(blob):
        raise FormatError("truncated chunk table")
    chunk_sizes = struct.unpack_from(f"<{n_chunks}I", blob, pos)
    pos += table_bytes
    if pos + sum(chunk_sizes) != len(blob):
        raise FormatError(
            f"payload length mismatch: table says {sum(chunk_sizes)}, "
            f"container has {len(blob) - pos}"
        )
    return ContainerInfo(
        version=version,
        codec_id=codec_id,
        dtype_code=dtype_code,
        raw_fallback=False,
        original_len=orig_len,
        intermediate_len=inter_len,
        chunk_size=chunk_size,
        n_chunks=n_chunks,
        shape=shape,
        chunk_sizes=tuple(chunk_sizes),
        payload_offset=pos,
        total_len=len(blob),
        checksum=checksum,
    )


def payload_offsets(info: ContainerInfo) -> list[int]:
    """Absolute offset of each chunk payload (prefix sum over the table)."""
    offsets = []
    pos = info.payload_offset
    for size in info.chunk_sizes:
        offsets.append(pos)
        pos += size
    return offsets
