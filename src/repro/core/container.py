"""The ``FPRZ`` container: a contiguous, self-describing compressed block.

Unlike the nvCOMP compressors the paper criticises for leaving chunks
"separately stored ... not concatenated" (§5.1), our container always
concatenates everything into one contiguous byte block, exactly like the
paper's codes.  The layout is:

===========  =====  =====================================================
field        bytes  meaning
===========  =====  =====================================================
magic            4  ``b"FPRZ"``
version          1  container format version (1 through 4)
codec_id         1  registry id of the codec that produced the block
dtype_code       1  0 = raw bytes, 1 = float32, 2 = float64
flags            1  bit 0: whole-input raw fallback; bit 1: shape present;
                    bit 2: whole-input CRC32 present; bit 3 (v2+):
                    per-chunk CRC32 table present; bit 4 (v3): explicit
                    chunk index present; bit 5 (v3): FCM restart markers
orig_len         8  length of the original data in bytes
inter_len        8  length after the codec's global stage (== orig_len
                    when the codec has no global stage, and always for
                    FCM-restart containers, where FCM runs per chunk)
chunk_size       4  chunk size used (0 for raw fallback)
n_chunks         4  number of chunk payloads
shape block      v  present iff flags bit 1: u8 ndim, then ndim x u64
checksum         4  present iff flags bit 2: CRC32 of the original data
chunk table   4*n   compressed payload size of each chunk
chunk CRCs    4*n   present iff flags bit 3: CRC32 of each chunk payload
chunk index  12*n   present iff flags bit 4: n x u64 absolute payload
                    offsets, then n x u32 decoded chunk lengths
codec table    1*n  present iff flags bit 6 (v4): the registry id of the
                    fixed codec that encoded each chunk
payloads         v  the chunk payloads, concatenated (prefix sums of the
                    chunk table give each payload's offset, mirroring the
                    decoupled-look-back write positions of the GPU code)
===========  =====  =====================================================

Version 2 adds exactly one feature over version 1: the optional per-chunk
CRC32 table (flags bit 3), which localises corruption to a single 16 KiB
chunk instead of merely detecting it end-to-end.  Containers that do not
use the table are still written as version 1, byte-identical to what
earlier releases produced; both versions decode.

Version 3 adds two independent features, each gated by its own flag:

* ``FLAG_CHUNK_INDEX`` (bit 4) — an explicit per-chunk index of absolute
  payload offsets plus *decoded* lengths.  The offsets are redundant with
  the prefix sums of the chunk table (and validated against them), but
  make every chunk seekable from a single header read; the decoded
  lengths allow *ragged interior chunks* (shorter than ``chunk_size``
  anywhere, not just at the tail), which is what lets
  :func:`concat_containers` append compressed containers without
  re-encoding a single payload.
* ``FLAG_FCM_RESTART`` (bit 5) — the codec's FCM predictor was re-seeded
  at every chunk boundary and ran *inside* the per-chunk pipeline rather
  than as a serial whole-input pass, so ``inter_len == orig_len`` and
  every chunk decodes independently.  Old cross-chunk containers (v1/v2)
  still decode via the retained global-stage path.

Version 4 adds mixed-codec containers, gated by one new flag:

* ``FLAG_CHUNK_CODECS`` (bit 6) — a per-chunk codec-id table (one u8 per
  chunk) follows the chunk index, and each chunk was encoded by the fixed
  codec its entry names rather than by the header codec (which then holds
  the *selector* codec's id).  Every entry must name a known fixed codec
  (a selector id or an unknown id is a :class:`FormatError` before any
  allocation), member codecs with a global FCM stage always use restart
  framing inside the chunk pipeline (so ``inter_len == orig_len`` and the
  redundant ``FLAG_FCM_RESTART`` must be clear), and every chunk decodes
  independently — salvage, range reads, and concatenation compose
  unchanged.

For the raw fallback (an input the codec expands overall), the payload
section holds the original bytes verbatim and ``n_chunks`` is 0.

Every declared length is validated against the actual buffer before any
allocation is sized from it (see :func:`inspect_container`), so a
corrupted header cannot make the decoder over-allocate — the
decompression-bomb guard the fuzz harness (:mod:`repro.fuzzing`)
exercises.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.errors import BoundsError, FormatError

MAGIC = b"FPRZ"
#: Container version carrying the v3 feature set (index, FCM restart).
VERSION = 3
#: Current container format version (written for mixed-codec containers).
VERSION_CHUNK_CODECS = 4
#: Versions this library can decode.
WIRE_VERSIONS = (1, 2, 3, 4)

FLAG_RAW = 0x01
FLAG_SHAPE = 0x02
#: When set, a CRC32 of the original data follows the shape block; the
#: decompressor verifies it after reconstruction.
FLAG_CHECKSUM = 0x04
#: (v2) When set, a CRC32 per chunk payload follows the chunk table; the
#: decompressor verifies each chunk before decoding it, localising any
#: corruption to one chunk.
FLAG_CHUNK_CRCS = 0x08
#: (v3) When set, an explicit chunk index follows the CRC table: n x u64
#: absolute payload offsets, then n x u32 decoded chunk lengths.  The
#: offsets must agree with the prefix sums of the chunk table; the
#: decoded lengths allow ragged interior chunks (container concatenation).
FLAG_CHUNK_INDEX = 0x10
#: (v3) When set, the codec's FCM predictor restarted at every chunk
#: boundary (ran inside the chunk pipeline, not as a global pass), so
#: every chunk decodes independently and ``inter_len == orig_len``.
FLAG_FCM_RESTART = 0x20
#: (v4) When set, a per-chunk codec-id table (one u8 per chunk) follows
#: the chunk index and each chunk decodes under the fixed codec its entry
#: names; the header ``codec_id`` then holds the selector codec's id.
#: Member codecs with a global stage use restart framing inside the chunk
#: pipeline, so ``inter_len == orig_len`` and ``FLAG_FCM_RESTART`` (which
#: would be redundant) must be clear.
FLAG_CHUNK_CODECS = 0x40

_KNOWN_FLAGS = {1: FLAG_RAW | FLAG_SHAPE | FLAG_CHECKSUM,
                2: FLAG_RAW | FLAG_SHAPE | FLAG_CHECKSUM | FLAG_CHUNK_CRCS,
                3: FLAG_RAW | FLAG_SHAPE | FLAG_CHECKSUM | FLAG_CHUNK_CRCS
                   | FLAG_CHUNK_INDEX | FLAG_FCM_RESTART}
_KNOWN_FLAGS[4] = _KNOWN_FLAGS[3] | FLAG_CHUNK_CODECS

#: The one documented integrity default: both the public API
#: (:func:`repro.compress`) and the streaming layer (:mod:`repro.io`)
#: embed the whole-input CRC32 unless told otherwise.  4 bytes per
#: container buys end-to-end bit-exactness proof on every decode.
DEFAULT_CHECKSUM = True
#: Per-chunk CRC table default: on.  4 bytes per 16 KiB chunk (+0.02%)
#: buys corruption *localisation* — a damaged archive loses one chunk,
#: not the file — and is what makes salvage-mode recovery provable.
DEFAULT_CHUNK_CHECKSUMS = True

DTYPE_BYTES = 0
DTYPE_F32 = 1
DTYPE_F64 = 2

_DTYPE_ITEMSIZE = {DTYPE_BYTES: 1, DTYPE_F32: 4, DTYPE_F64: 8}

#: Bomb guards: reject declared geometry no real container can carry.
#: A chunk payload is at least 2 bytes (flag byte + body) and decodes to
#: at most ``chunk_size`` bytes, so no legitimate container expands by
#: more than ~``chunk_size``:2; 16384x is far above any real ratio.
MAX_DECLARED_EXPANSION = 1 << 14
#: Largest accepted chunk size (the paper's value is 16 KiB; the ablation
#: benchmark goes to a few MiB — 64 MiB leaves 4096x headroom).
MAX_CHUNK_SIZE = 1 << 26
#: Largest accepted array rank (numpy itself stops at 64).
MAX_NDIM = 64

_HEADER = struct.Struct("<4sBBBBQQII")


@dataclass(frozen=True)
class ContainerInfo:
    """Parsed container metadata (no payload decoding)."""

    version: int
    codec_id: int
    dtype_code: int
    raw_fallback: bool
    original_len: int
    intermediate_len: int
    chunk_size: int
    n_chunks: int
    shape: tuple[int, ...] | None
    chunk_sizes: tuple[int, ...]
    payload_offset: int
    total_len: int
    checksum: int | None = None
    #: (v2) CRC32 of each compressed chunk payload, or ``None``.
    chunk_crcs: tuple[int, ...] | None = None
    #: (v3) Absolute payload offset of each chunk from the explicit chunk
    #: index, or ``None`` when the container carries no index.
    index_offsets: tuple[int, ...] | None = None
    #: (v3) Decoded (pre-pipeline) length of each chunk from the explicit
    #: chunk index, or ``None``.  Unlike the uniform derivation, interior
    #: entries may be shorter than ``chunk_size`` (ragged chunks).
    index_out_lengths: tuple[int, ...] | None = None
    #: (v3) True when the FCM predictor restarted at every chunk boundary.
    fcm_restart: bool = False
    #: (v4) Registry id of the fixed codec that encoded each chunk, or
    #: ``None`` for single-codec containers.  Every entry is validated to
    #: name a known fixed codec before this object is built.
    chunk_codecs: tuple[int, ...] | None = None

    @property
    def compressed_len(self) -> int:
        return self.total_len

    def decoded_lengths(self) -> tuple[int, ...]:
        """Decoded length of each chunk: the explicit v3 index when
        present, else the uniform derivation (all ``chunk_size`` except a
        ragged tail)."""
        if self.index_out_lengths is not None:
            return self.index_out_lengths
        if self.n_chunks == 0:
            return ()
        from repro.core.chunking import chunk_lengths

        return tuple(chunk_lengths(self.intermediate_len, self.chunk_size))

    @property
    def ratio(self) -> float:
        """Compression ratio (original / compressed), the paper's metric."""
        if self.total_len == 0:
            return 0.0
        return self.original_len / self.total_len


def checksum_of(data) -> int:
    """The container's integrity checksum (CRC32, also used per chunk)."""
    return zlib.crc32(data) & 0xFFFFFFFF


def _meta_blocks(
    shape: tuple[int, ...] | None, checksum: int | None
) -> tuple[int, bytes]:
    flags = 0
    block = b""
    if shape is not None:
        flags |= FLAG_SHAPE
        block += struct.pack("<B", len(shape)) + b"".join(
            struct.pack("<Q", dim) for dim in shape
        )
    if checksum is not None:
        flags |= FLAG_CHECKSUM
        block += struct.pack("<I", checksum)
    return flags, block


def build_container(
    *,
    codec_id: int,
    dtype_code: int,
    original_len: int,
    intermediate_len: int,
    chunk_size: int,
    chunk_payloads: list[bytes],
    shape: tuple[int, ...] | None = None,
    checksum: int | None = None,
    chunk_crcs: bool = False,
    chunk_index: bool = False,
    out_lengths: list[int] | None = None,
    fcm_restart: bool = False,
    chunk_codecs: list[int] | None = None,
) -> bytes:
    """Assemble a compressed container from chunk payloads.

    The payload section is written into one preallocated buffer at the
    prefix-sum offsets of the chunk table — the serial rendering of the
    decoupled-look-back write positions the GPU code communicates.

    ``chunk_crcs=True`` writes the version-2 per-chunk CRC32 table;
    containers without it stay version 1, byte-identical to earlier
    releases.

    ``chunk_index=True`` writes the version-3 explicit chunk index
    (absolute payload offsets + decoded lengths); ``out_lengths`` then
    supplies the decoded length of every chunk (required — interior
    entries may be ragged).  ``fcm_restart=True`` marks the payloads as
    carrying per-chunk FCM state (also version 3).

    ``chunk_codecs`` writes the version-4 per-chunk codec-id table (one
    registry id per chunk); member codecs with a global stage must use
    restart framing inside the chunk pipeline, so combining the table
    with ``fcm_restart=True`` is rejected.
    """
    sizes = [len(p) for p in chunk_payloads]
    prefix = build_container_prefix(
        codec_id=codec_id,
        dtype_code=dtype_code,
        original_len=original_len,
        intermediate_len=intermediate_len,
        chunk_size=chunk_size,
        chunk_sizes=sizes,
        payload_crcs=(
            [checksum_of(p) for p in chunk_payloads] if chunk_crcs else None
        ),
        shape=shape,
        checksum=checksum,
        chunk_crcs=chunk_crcs,
        chunk_index=chunk_index,
        out_lengths=out_lengths,
        fcm_restart=fcm_restart,
        chunk_codecs=chunk_codecs,
    )
    buf = bytearray(len(prefix) + sum(sizes))
    buf[: len(prefix)] = prefix
    pos = len(prefix)
    for payload, size in zip(chunk_payloads, sizes):
        buf[pos : pos + size] = payload
        pos += size
    return bytes(buf)


def build_container_prefix(
    *,
    codec_id: int,
    dtype_code: int,
    original_len: int,
    intermediate_len: int,
    chunk_size: int,
    chunk_sizes: list[int],
    payload_crcs: list[int] | None = None,
    shape: tuple[int, ...] | None = None,
    checksum: int | None = None,
    chunk_crcs: bool = False,
    chunk_index: bool = False,
    out_lengths: list[int] | None = None,
    fcm_restart: bool = False,
    chunk_codecs: list[int] | None = None,
) -> bytes:
    """Assemble a container's prefix (header + metadata + tables) alone.

    Takes chunk payload *lengths* (plus, for ``chunk_crcs=True``, each
    payload's CRC32) instead of the payloads themselves, so it can run
    before — or long after — the payload bytes exist.  The invariant the
    streamed service path rests on::

        build_container_prefix(chunk_sizes=[len(p) for p in ps],
                               payload_crcs=[checksum_of(p) for p in ps],
                               ...) + b"".join(ps)
        == build_container(chunk_payloads=ps, ...)

    byte for byte.  :func:`build_container` itself is implemented on top
    of this function, so the two can never drift.
    """
    flags, meta = _meta_blocks(shape, checksum)
    sizes = list(chunk_sizes)
    with_crcs = chunk_crcs and bool(sizes)
    with_index = chunk_index and bool(sizes)
    with_codecs = chunk_codecs is not None and bool(sizes)
    if with_crcs and (payload_crcs is None or len(payload_crcs) != len(sizes)):
        raise ValueError("chunk_crcs=True requires one payload CRC per chunk")
    if with_index and (out_lengths is None or len(out_lengths) != len(sizes)):
        raise ValueError("chunk_index=True requires one out_length per chunk")
    if with_codecs and len(chunk_codecs) != len(sizes):
        raise ValueError("chunk_codecs requires one codec id per chunk")
    if with_codecs and fcm_restart:
        raise ValueError(
            "chunk_codecs containers frame FCM restart per member codec; "
            "the container-level flag would be redundant"
        )
    if with_codecs:
        version = VERSION_CHUNK_CODECS
    elif fcm_restart or with_index:
        version = VERSION
    elif with_crcs:
        version = 2
    else:
        version = 1
    if with_crcs:
        flags |= FLAG_CHUNK_CRCS
    if with_index:
        flags |= FLAG_CHUNK_INDEX
    if fcm_restart:
        flags |= FLAG_FCM_RESTART
    if with_codecs:
        flags |= FLAG_CHUNK_CODECS
    table_offset = _HEADER.size + len(meta)
    crc_offset = table_offset + 4 * len(sizes)
    index_offset = crc_offset + (4 * len(sizes) if with_crcs else 0)
    codec_offset = index_offset + (12 * len(sizes) if with_index else 0)
    payload_offset = codec_offset + (len(sizes) if with_codecs else 0)
    buf = bytearray(payload_offset)
    _HEADER.pack_into(
        buf,
        0,
        MAGIC,
        version,
        codec_id,
        dtype_code,
        flags,
        original_len,
        intermediate_len,
        chunk_size,
        len(sizes),
    )
    buf[_HEADER.size : table_offset] = meta
    if sizes:
        struct.pack_into(f"<{len(sizes)}I", buf, table_offset, *sizes)
    if with_crcs:
        struct.pack_into(f"<{len(sizes)}I", buf, crc_offset, *payload_crcs)
    if with_index:
        offsets = []
        pos = payload_offset
        for size in sizes:
            offsets.append(pos)
            pos += size
        struct.pack_into(f"<{len(sizes)}Q", buf, index_offset, *offsets)
        struct.pack_into(
            f"<{len(sizes)}I", buf, index_offset + 8 * len(sizes), *out_lengths
        )
    if with_codecs:
        struct.pack_into(f"<{len(sizes)}B", buf, codec_offset, *chunk_codecs)
    return bytes(buf)


def raw_container_size(
    data_len: int,
    *,
    shape: tuple[int, ...] | None = None,
    checksum: int | None = None,
) -> int:
    """Size of the raw-fallback container, without materialising it.

    Lets the engine decide *lazily* whether the fallback is needed: the
    full-input copy in :func:`build_raw_container` only happens when the
    compressed container failed to beat this number.
    """
    flags_meta = _meta_blocks(shape, checksum)[1]
    return _HEADER.size + len(flags_meta) + data_len


def build_raw_container(
    *,
    codec_id: int,
    dtype_code: int,
    data: bytes,
    shape: tuple[int, ...] | None = None,
    checksum: int | None = None,
) -> bytes:
    """Assemble the whole-input raw-fallback container (always version 1)."""
    flags, meta = _meta_blocks(shape, checksum)
    flags |= FLAG_RAW
    header = _HEADER.pack(
        MAGIC, 1, codec_id, dtype_code, flags, len(data), len(data), 0, 0
    )
    return header + meta + data


def inspect_container(blob: bytes) -> ContainerInfo:
    """Parse and validate a container's header, tables, and geometry.

    Every declared length is checked against the actual buffer *before*
    anything is allocated from it: truncated blocks, oversized chunk
    tables, zero-length chunk entries, shape/dtype mismatches, and
    headers promising implausible expansion (more than
    :data:`MAX_DECLARED_EXPANSION` x the container size) all raise
    :class:`FormatError` / :class:`BoundsError` with the offending byte
    offset in the message.
    """
    return _inspect(blob, total_len=len(blob), partial=False)


def inspect_container_prefix(
    blob: bytes, *, total_len: int
) -> ContainerInfo | None:
    """Parse a container whose payload section may not have arrived yet.

    The streamed-DECOMPRESS entry point: ``blob`` is the bytes received
    so far and ``total_len`` the full container size the peer declared up
    front.  Returns ``None`` when the prefix (header + metadata +
    tables) is still incomplete but could yet become valid — the caller
    buffers more bytes and retries — and the fully validated
    :class:`ContainerInfo` once the prefix is whole.  Definitive
    violations (bad magic, bomb-guard trips, a prefix that cannot fit in
    ``total_len``, table inconsistencies) raise exactly the
    :class:`FormatError` / :class:`BoundsError` the non-streamed
    :func:`inspect_container` would, so a hostile stream fails as early
    as its first poisoned byte, never after buffering the payload.

    All bomb guards use ``total_len`` (not the bytes in hand) as the
    plausibility base, matching what the whole container will be.
    """
    if total_len < _HEADER.size:
        raise FormatError(
            f"container shorter than its fixed {_HEADER.size}-byte header "
            f"({total_len} bytes)"
        )
    return _inspect(blob, total_len=total_len, partial=True)


def _inspect(
    blob: bytes, *, total_len: int, partial: bool
) -> ContainerInfo | None:
    if len(blob) < _HEADER.size:
        if partial:
            return None
        raise FormatError(
            f"container shorter than its fixed {_HEADER.size}-byte header "
            f"({len(blob)} bytes)"
        )
    magic, version, codec_id, dtype_code, flags, orig_len, inter_len, chunk_size, n_chunks = (
        _HEADER.unpack_from(blob, 0)
    )
    if magic != MAGIC:
        raise FormatError(f"bad magic {magic!r} at offset 0; not an FPRZ container")
    if version not in WIRE_VERSIONS:
        raise FormatError(
            f"unsupported container version {version} at offset 4 "
            f"(this library reads versions {WIRE_VERSIONS})"
        )
    if flags & ~_KNOWN_FLAGS[version]:
        raise FormatError(
            f"unknown flag bits 0x{flags & ~_KNOWN_FLAGS[version]:02x} at "
            f"offset 7 for container version {version}"
        )
    if dtype_code not in _DTYPE_ITEMSIZE:
        raise FormatError(f"unknown dtype code {dtype_code} at offset 6")
    # Bomb guard: a header may not promise more output than the container
    # could legitimately encode (each >=2-byte payload decodes to at most
    # chunk_size bytes, far under MAX_DECLARED_EXPANSION x).  In partial
    # mode total_len is the peer-declared final size, so the guard holds
    # for the whole container, not just the bytes in hand.
    plausible = max(total_len, _HEADER.size) * MAX_DECLARED_EXPANSION
    if orig_len > plausible:
        raise BoundsError(
            f"declared original length {orig_len} at offset 8 is implausible "
            f"for a {total_len}-byte container"
        )
    if inter_len > plausible:
        raise BoundsError(
            f"declared intermediate length {inter_len} at offset 16 is "
            f"implausible for a {total_len}-byte container"
        )
    if chunk_size > MAX_CHUNK_SIZE:
        raise BoundsError(
            f"declared chunk size {chunk_size} at offset 24 exceeds the "
            f"maximum {MAX_CHUNK_SIZE}"
        )
    pos = _HEADER.size
    shape: tuple[int, ...] | None = None
    if flags & FLAG_SHAPE:
        if pos + 1 > len(blob):
            if partial and pos + 1 <= total_len:
                return None
            raise FormatError(f"truncated shape block at offset {pos}")
        (ndim,) = struct.unpack_from("<B", blob, pos)
        pos += 1
        if ndim > MAX_NDIM:
            raise FormatError(
                f"shape block at offset {pos - 1} declares {ndim} dimensions "
                f"(maximum {MAX_NDIM})"
            )
        need = ndim * 8
        if pos + need > len(blob):
            if partial and pos + need <= total_len:
                return None
            raise FormatError(f"truncated shape block at offset {pos}")
        shape = struct.unpack_from(f"<{ndim}Q", blob, pos)
        pos += need
        elements = 1
        for dim in shape:
            elements *= dim
        if elements * _DTYPE_ITEMSIZE[dtype_code] != orig_len:
            raise FormatError(
                f"shape {tuple(shape)} x itemsize {_DTYPE_ITEMSIZE[dtype_code]} "
                f"does not cover the declared original length {orig_len}"
            )
    checksum: int | None = None
    if flags & FLAG_CHECKSUM:
        if pos + 4 > len(blob):
            if partial and pos + 4 <= total_len:
                return None
            raise FormatError(f"truncated checksum block at offset {pos}")
        (checksum,) = struct.unpack_from("<I", blob, pos)
        pos += 4
    raw_fallback = bool(flags & FLAG_RAW)
    if raw_fallback:
        if n_chunks != 0:
            raise FormatError(
                f"raw-fallback container must not carry chunks "
                f"(n_chunks={n_chunks} at offset 28)"
            )
        if flags & FLAG_CHUNK_CRCS:
            raise FormatError("raw-fallback container must not carry a chunk CRC table")
        if flags & FLAG_CHUNK_INDEX:
            raise FormatError("raw-fallback container must not carry a chunk index")
        if flags & FLAG_FCM_RESTART:
            raise FormatError(
                "raw-fallback container must not declare FCM restart markers"
            )
        if flags & FLAG_CHUNK_CODECS:
            raise FormatError(
                "raw-fallback container must not carry a chunk codec table"
            )
        if total_len - pos != orig_len:
            raise FormatError(
                f"raw-fallback payload length mismatch: header says {orig_len}, "
                f"container has {total_len - pos} bytes after offset {pos}"
            )
        if inter_len != orig_len:
            raise FormatError(
                f"raw-fallback intermediate length {inter_len} must equal "
                f"the original length {orig_len}"
            )
        return ContainerInfo(
            version=version,
            codec_id=codec_id,
            dtype_code=dtype_code,
            raw_fallback=True,
            original_len=orig_len,
            intermediate_len=inter_len,
            chunk_size=0,
            n_chunks=0,
            shape=shape,
            chunk_sizes=(),
            payload_offset=pos,
            total_len=total_len,
            checksum=checksum,
        )
    if flags & FLAG_FCM_RESTART and inter_len != orig_len:
        raise FormatError(
            f"FCM-restart container must have intermediate length equal to "
            f"the original length (FCM runs inside the chunk pipeline), got "
            f"{inter_len} != {orig_len}"
        )
    if flags & FLAG_CHUNK_CODECS:
        if flags & FLAG_FCM_RESTART:
            raise FormatError(
                "chunk-codec container must not also declare FCM restart "
                "markers (member codecs frame restart per chunk)"
            )
        if inter_len != orig_len:
            raise FormatError(
                f"chunk-codec container must have intermediate length equal "
                f"to the original length (every member stage runs inside the "
                f"chunk pipeline), got {inter_len} != {orig_len}"
            )
    table_bytes = n_chunks * 4
    crc_bytes = table_bytes if flags & FLAG_CHUNK_CRCS else 0
    index_bytes = n_chunks * 12 if flags & FLAG_CHUNK_INDEX else 0
    codec_bytes = n_chunks if flags & FLAG_CHUNK_CODECS else 0
    need_tables = table_bytes + crc_bytes + index_bytes + codec_bytes
    if pos + need_tables > total_len:
        raise FormatError(
            f"truncated chunk table: {n_chunks} chunks need "
            f"{need_tables} bytes at "
            f"offset {pos}, container has {total_len - pos}"
        )
    if pos + need_tables > len(blob):
        # Only reachable in partial mode: the declared total has room for
        # the tables, the bytes just haven't arrived yet.
        return None
    chunk_sizes = struct.unpack_from(f"<{n_chunks}I", blob, pos)
    pos += table_bytes
    chunk_crcs: tuple[int, ...] | None = None
    if flags & FLAG_CHUNK_CRCS:
        chunk_crcs = struct.unpack_from(f"<{n_chunks}I", blob, pos)
        pos += crc_bytes
    index_offsets: tuple[int, ...] | None = None
    index_out_lengths: tuple[int, ...] | None = None
    if flags & FLAG_CHUNK_INDEX:
        index_offsets = struct.unpack_from(f"<{n_chunks}Q", blob, pos)
        index_out_lengths = struct.unpack_from(
            f"<{n_chunks}I", blob, pos + 8 * n_chunks
        )
        pos += index_bytes
    chunk_codec_ids: tuple[int, ...] | None = None
    if flags & FLAG_CHUNK_CODECS:
        chunk_codec_ids = struct.unpack_from(f"<{n_chunks}B", blob, pos)
        pos += codec_bytes
        # Every entry must name a known *fixed* codec before anything is
        # allocated from the table — a selector id cannot appear (there is
        # no pipeline behind it) and an unknown id cannot be decoded.
        from repro.core.codecs import fixed_codec_ids

        known = fixed_codec_ids()
        for i, cid in enumerate(chunk_codec_ids):
            if cid not in known:
                raise FormatError(
                    f"chunk codec table entry {i} names codec id {cid}, "
                    f"which is not a known fixed codec "
                    f"(known ids: {sorted(known)})"
                )
    for i, size in enumerate(chunk_sizes):
        if size == 0:
            raise FormatError(
                f"chunk {i} declares a zero-length payload in the chunk table "
                f"(every payload carries at least its flag byte)"
            )
    if pos + sum(chunk_sizes) != total_len:
        raise FormatError(
            f"payload length mismatch: chunk table says {sum(chunk_sizes)}, "
            f"container has {total_len - pos} bytes after offset {pos}"
        )
    if index_offsets is not None:
        # The stored offsets are redundant with the chunk-table prefix
        # sums; any disagreement means the index cannot be trusted for
        # seeking and the container is rejected outright.
        expect = pos
        total_out = 0
        for i in range(n_chunks):
            if index_offsets[i] != expect:
                raise FormatError(
                    f"chunk index entry {i} declares payload offset "
                    f"{index_offsets[i]} but the chunk table places the "
                    f"payload at offset {expect}"
                )
            out_len = index_out_lengths[i]
            if not 0 < out_len <= chunk_size:
                raise FormatError(
                    f"chunk index entry {i} declares decoded length {out_len} "
                    f"outside (0, chunk_size={chunk_size}]"
                )
            expect += chunk_sizes[i]
            total_out += out_len
        if total_out != inter_len:
            raise FormatError(
                f"chunk index decoded lengths sum to {total_out} but the "
                f"header declares intermediate length {inter_len}"
            )
    return ContainerInfo(
        version=version,
        codec_id=codec_id,
        dtype_code=dtype_code,
        raw_fallback=False,
        original_len=orig_len,
        intermediate_len=inter_len,
        chunk_size=chunk_size,
        n_chunks=n_chunks,
        shape=shape,
        chunk_sizes=tuple(chunk_sizes),
        payload_offset=pos,
        total_len=total_len,
        checksum=checksum,
        chunk_crcs=chunk_crcs,
        index_offsets=index_offsets,
        index_out_lengths=index_out_lengths,
        fcm_restart=bool(flags & FLAG_FCM_RESTART),
        chunk_codecs=chunk_codec_ids,
    )


def payload_offsets(info: ContainerInfo) -> list[int]:
    """Absolute offset of each chunk payload.

    Containers with the v3 explicit index answer from the stored offsets
    (already validated against the chunk table); older containers fall
    back to the prefix sum over the chunk-size table.
    """
    if info.index_offsets is not None:
        return list(info.index_offsets)
    offsets = []
    pos = info.payload_offset
    for size in info.chunk_sizes:
        offsets.append(pos)
        pos += size
    return offsets


def concat_containers(blobs) -> bytes:
    """Concatenate compressed containers without re-encoding any payload.

    The inputs must share dtype and (for chunked inputs) chunk size.
    Chunk payloads are copied verbatim — inputs whose final chunk is
    partial simply become ragged interior chunks of the result, and
    raw-fallback inputs are split into ``CHUNK_RAW`` chunk payloads (a
    byte copy, not a re-encode).  When every resulting chunk belongs to
    the same fixed codec the output is the familiar version-3 container
    (byte-identical to what earlier releases produced); mixed-codec
    inputs — v4 containers, or containers of *different* fixed codecs —
    produce a version-4 output whose merged per-chunk codec table records
    each chunk's encoder.  Containers whose codec carries cross-chunk FCM
    state (v1/v2 DPratio without restart markers) cannot be concatenated
    and are rejected; recompress those with restart markers first.

    The whole-input CRC32 cannot be combined without decoding, so the
    result carries per-chunk CRCs only; shapes are dropped (the result
    describes the concatenated 1-D stream).
    """
    from repro.core.chunking import CHUNK_RAW, CHUNK_SIZE, chunk_lengths, iter_chunks
    from repro.core.codecs import codec_by_id, fixed_codec_ids, selector_codec

    blobs = list(blobs)
    if not blobs:
        raise ValueError("concat_containers needs at least one container")
    infos = [inspect_container(blob) for blob in blobs]
    dtype_code = infos[0].dtype_code
    chunk_size = 0
    for i, info in enumerate(infos):
        if info.dtype_code != dtype_code:
            raise FormatError(
                f"cannot concatenate containers of different dtypes "
                f"(input 0 has dtype code {dtype_code}, input {i} has "
                f"{info.dtype_code})"
            )
        if not info.raw_fallback and info.n_chunks:
            if chunk_size and info.chunk_size != chunk_size:
                raise FormatError(
                    f"cannot concatenate containers of different chunk sizes "
                    f"({chunk_size} vs {info.chunk_size} at input {i})"
                )
            chunk_size = info.chunk_size
    chunk_size = chunk_size or CHUNK_SIZE

    payloads: list[bytes] = []
    out_lengths: list[int] = []
    member_ids: list[int] = []
    total_orig = 0
    for i, (blob, info) in enumerate(zip(blobs, infos)):
        if info.original_len == 0:
            continue
        if info.raw_fallback:
            # The raw payload is the original bytes verbatim: re-chunk it
            # as CHUNK_RAW payloads (a copy, never a stage execution).  A
            # CHUNK_RAW payload decodes identically under any pipeline,
            # so selector-codec fallbacks are tagged with the first fixed
            # codec id (the table cannot carry a selector id).
            codec = codec_by_id(info.codec_id)
            raw_id = min(fixed_codec_ids()) if codec.selector else info.codec_id
            view = memoryview(blob)[info.payload_offset:]
            for piece in iter_chunks(view, chunk_size):
                payloads.append(bytes([CHUNK_RAW]) + bytes(piece))
                out_lengths.append(len(piece))
                member_ids.append(raw_id)
            total_orig += info.original_len
            continue
        if info.chunk_codecs is not None:
            ids = list(info.chunk_codecs)
        else:
            codec = codec_by_id(info.codec_id)
            if codec.global_stage_factory is not None and not info.fcm_restart:
                raise FormatError(
                    f"input {i} carries cross-chunk FCM state (container "
                    f"version {info.version} without restart markers) and "
                    f"cannot be concatenated; recompress it with fcm='restart'"
                )
            ids = [info.codec_id] * info.n_chunks
        offsets = payload_offsets(info)
        lengths = (info.index_out_lengths
                   if info.index_out_lengths is not None
                   else chunk_lengths(info.intermediate_len, info.chunk_size))
        for off, size, out_len, cid in zip(
            offsets, info.chunk_sizes, lengths, ids
        ):
            payloads.append(blob[off : off + size])
            out_lengths.append(out_len)
            member_ids.append(cid)
        total_orig += info.original_len

    if not payloads:
        return build_container(
            codec_id=infos[0].codec_id, dtype_code=dtype_code, original_len=0,
            intermediate_len=0, chunk_size=chunk_size, chunk_payloads=[],
        )
    if len(set(member_ids)) == 1:
        # Uniform inputs keep the verbatim v3 shape earlier releases wrote.
        codec = codec_by_id(member_ids[0])
        return build_container(
            codec_id=member_ids[0],
            dtype_code=dtype_code,
            original_len=total_orig,
            intermediate_len=total_orig,
            chunk_size=chunk_size,
            chunk_payloads=payloads,
            chunk_crcs=True,
            chunk_index=True,
            out_lengths=out_lengths,
            fcm_restart=codec.global_stage_factory is not None,
        )
    return build_container(
        codec_id=selector_codec().codec_id,
        dtype_code=dtype_code,
        original_len=total_orig,
        intermediate_len=total_orig,
        chunk_size=chunk_size,
        chunk_payloads=payloads,
        chunk_crcs=True,
        chunk_index=True,
        out_lengths=out_lengths,
        chunk_codecs=member_ids,
    )
