"""Pluggable chunk executors: the paper's §3.1 scheduling policies, for real.

The paper's central systems claim is that chunk independence plus
prefix-sum write positions let the same format run under *any* execution
strategy.  This module is where those strategies live:

* ``serial`` — one worker walks the chunks in order (the reference
  schedule every other policy must be byte-identical to);
* ``threaded`` — a true dynamic worklist: each OS thread builds its own
  worker (pipelines are thread-local by construction) and pops the next
  unclaimed chunk index from a shared counter, exactly like the paper's
  OpenMP loop where "each running thread requests the next available
  chunk";
* ``static-blocks`` — a blocked partition: worker *w* owns the
  contiguous index range ``[bounds[w], bounds[w+1])``, the CPU analogue
  of the GPU's block-per-chunk grid launch.

The same policy vocabulary drives the *modeled* schedules in
:mod:`repro.device.execution` — ``normalize_policy`` and
:func:`static_block_bounds` are shared so the simulator partitions work
exactly like the real executors do.

An executor runs ``make_worker``-produced callables over job indices.
``make_worker(worker_id)`` is called once per execution slot, *inside*
the thread that will use it, so worker state (pipeline instances, stage
scratch buffers) is genuinely thread-local — never shared between
concurrently running jobs.
"""

from __future__ import annotations

import itertools
import queue
import threading
from abc import ABC, abstractmethod
from collections.abc import Callable

import numpy as np

#: Canonical scheduling-policy names, shared with the device simulator.
SCHEDULING_POLICIES = ("serial", "threaded", "static-blocks")

#: Every executor policy the engine accepts: the thread schedules plus
#: the GIL-free process pool (which the device simulator does not model).
EXECUTOR_POLICIES = SCHEDULING_POLICIES + ("process",)

#: Accepted aliases (the simulator's historical names map onto the
#: executor vocabulary: its dynamic worklist is the threaded policy).
_POLICY_ALIASES = {
    "dynamic": "threaded",
    "worklist": "threaded",
    "static": "static-blocks",
    "processes": "process",
    "multiprocess": "process",
}


def normalize_policy(
    name: str, policies: tuple[str, ...] = SCHEDULING_POLICIES
) -> str:
    """Map a policy name or alias to its canonical form.

    ``policies`` is the accepted vocabulary — the device simulator keeps
    the default thread-schedule triple, the engine passes
    :data:`EXECUTOR_POLICIES`.
    """
    key = name.lower().replace("_", "-")
    key = _POLICY_ALIASES.get(key, key)
    if key not in policies:
        raise ValueError(
            f"unknown scheduling policy {name!r}; "
            f"choose from {', '.join(policies)}"
        )
    return key


def static_block_bounds(n_jobs: int, workers: int) -> np.ndarray:
    """Partition boundaries of the static-blocks policy (workers + 1 ints).

    Shared by :class:`StaticBlockExecutor` and the schedule simulator in
    :mod:`repro.device.execution`, so modeled and real partitions match.
    """
    return np.linspace(0, n_jobs, workers + 1).astype(int)


class Executor(ABC):
    """A strategy for running independent chunk jobs."""

    policy: str = "serial"

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers

    @abstractmethod
    def run(
        self,
        n_jobs: int,
        make_worker: Callable[[int], Callable[[int], object]],
    ) -> list:
        """Run jobs ``0..n_jobs-1``; returns their results in index order.

        ``make_worker(worker_id)`` builds the per-slot job function; it is
        invoked inside the thread that will call it.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(policy={self.policy!r}, workers={self.workers})"


def _run_threads(
    n_jobs: int,
    n_threads: int,
    make_worker: Callable[[int], Callable[[int], object]],
    claim_ranges: Callable[[int], range],
) -> list:
    """Spawn ``n_threads`` threads, each draining its claimed index stream.

    A job that raises is *contained*: it is recorded against its index and
    the thread moves on to its next claim, so one bad chunk never poisons
    the rest of the worklist.  After the join, the failure with the lowest
    job index is re-raised — the same error a serial run would have hit
    first, making error reporting deterministic across policies and
    worker counts.  (``list.append`` is atomic under the GIL, so the
    shared error list needs no lock.)
    """
    results: list = [None] * n_jobs
    errors: list[tuple[int, BaseException]] = []

    def body(worker_id: int) -> None:
        try:
            worker = make_worker(worker_id)
        except BaseException as exc:  # worker construction is fatal
            errors.append((-1, exc))
            return
        for i in claim_ranges(worker_id):
            try:
                results[i] = worker(i)
            except BaseException as exc:  # contain: next claim still runs
                errors.append((i, exc))

    threads = [
        threading.Thread(target=body, args=(w,), name=f"repro-exec-{w}")
        for w in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise min(errors, key=lambda pair: pair[0])[1]
    return results


class SerialExecutor(Executor):
    """One worker, chunks in order — the reference schedule."""

    policy = "serial"

    def __init__(self, workers: int = 1) -> None:
        # A serial schedule has exactly one execution slot no matter what
        # worker count it was asked for; report it honestly.
        super().__init__(1)

    def run(self, n_jobs, make_worker):
        worker = make_worker(0)
        return [worker(i) for i in range(n_jobs)]


class ThreadedExecutor(Executor):
    """Dynamic worklist: free threads pop the next unclaimed chunk index."""

    policy = "threaded"

    def run(self, n_jobs, make_worker):
        n_threads = min(self.workers, n_jobs)
        if n_threads <= 1:
            return SerialExecutor.run(self, n_jobs, make_worker)
        counter = itertools.count()

        def claims(_worker_id: int):
            # ``next`` on one shared counter is atomic under the GIL: every
            # index is claimed by exactly one thread, in demand order.
            while True:
                i = next(counter)
                if i >= n_jobs:
                    return
                yield i

        return _run_threads(n_jobs, n_threads, make_worker, claims)


class StaticBlockExecutor(Executor):
    """Blocked partition: worker ``w`` owns one contiguous index range."""

    policy = "static-blocks"

    def run(self, n_jobs, make_worker):
        n_threads = min(self.workers, max(n_jobs, 1))
        if n_threads <= 1 or n_jobs <= 1:
            return SerialExecutor.run(self, n_jobs, make_worker)
        bounds = static_block_bounds(n_jobs, n_threads)

        def claims(worker_id: int) -> range:
            return range(int(bounds[worker_id]), int(bounds[worker_id + 1]))

        return _run_threads(n_jobs, n_threads, make_worker, claims)


class _Batch:
    """One ``run()`` call's shared state inside a :class:`PooledThreadedExecutor`.

    Participants claim job indices from one shared counter (the same
    dynamic-worklist schedule as :class:`ThreadedExecutor`); the batch is
    done when every job has been processed, or — if worker construction
    failed everywhere — when every participant has given up.
    """

    def __init__(self, n_jobs: int, make_worker, participants: int) -> None:
        self.n_jobs = n_jobs
        self.make_worker = make_worker
        self.participants = participants
        self.counter = itertools.count()
        self.results: list = [None] * n_jobs
        self.errors: list[tuple[int, BaseException]] = []
        self.done = threading.Event()
        self._lock = threading.Lock()
        self._jobs_done = 0
        self._participants_done = 0

    def execute(self, slot: int) -> None:
        """Run one participant's share; called inside a pool thread."""
        if self.done.is_set():
            # A sibling already drained the batch; don't build a worker
            # just to find the counter exhausted.
            return
        worker = None
        try:
            worker = self.make_worker(slot)
        except BaseException as exc:  # worker construction is fatal
            self.errors.append((-1, exc))
        processed = 0
        if worker is not None:
            while True:
                i = next(self.counter)
                if i >= self.n_jobs:
                    break
                try:
                    self.results[i] = worker(i)
                except BaseException as exc:  # contain: next claim still runs
                    self.errors.append((i, exc))
                processed += 1
        with self._lock:
            self._jobs_done += processed
            self._participants_done += 1
            if (
                self._jobs_done >= self.n_jobs
                or self._participants_done >= self.participants
            ):
                self.done.set()


class PooledThreadedExecutor(Executor):
    """The threaded worklist on persistent threads — the daemon profile.

    :class:`ThreadedExecutor` spawns fresh OS threads on every ``run()``
    call, which is fine for one-shot CLI invocations but a real cost for
    a long-running server handling many small requests.  This executor
    keeps ``workers`` daemon threads alive and feeds them per-``run()``
    batches instead; the schedule (dynamic worklist over one shared
    counter) and the output bytes are identical to the threaded policy.

    ``run()`` is safe to call concurrently from multiple threads: each
    call is an independent batch, any single pool thread can drain a
    batch alone (claims come from the batch's own counter), so
    concurrent batches interleave without deadlock.  ``make_worker`` is
    still invoked inside the pool thread that uses it, preserving the
    thread-locality contract.  Do not call ``run()`` from inside a pool
    thread (no nested batches).
    """

    policy = "threaded"

    def __init__(self, workers: int = 1) -> None:
        super().__init__(workers)
        self._tickets: queue.SimpleQueue = queue.SimpleQueue()
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._thread_main, name=f"repro-pool-{w}", daemon=True
            )
            for w in range(workers)
        ]
        for t in self._threads:
            t.start()

    def _thread_main(self) -> None:
        while True:
            ticket = self._tickets.get()
            if ticket is None:
                return
            batch, slot = ticket
            batch.execute(slot)

    def run(self, n_jobs, make_worker):
        if self._closed:
            raise RuntimeError("executor pool is closed")
        if n_jobs <= 0:
            return []
        participants = min(self.workers, n_jobs)
        batch = _Batch(n_jobs, make_worker, participants)
        for slot in range(participants):
            self._tickets.put((batch, slot))
        batch.done.wait()
        if batch.errors:
            raise min(batch.errors, key=lambda pair: pair[0])[1]
        return batch.results

    def close(self) -> None:
        """Stop the pool threads; idempotent."""
        if self._closed:
            return
        self._closed = True
        for _ in self._threads:
            self._tickets.put(None)
        for t in self._threads:
            t.join()

    def __enter__(self) -> PooledThreadedExecutor:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SharedMemoryProcessExecutor(Executor):
    """A GIL-free process pool fed through ``multiprocessing.shared_memory``.

    Thread executors share one address space, so pure-Python stage
    overhead serialises on the GIL.  This executor keeps ``workers``
    OS processes alive and ships chunk windows to them as *named shared
    memory* (one copy in, one copy out — no per-chunk pickling of bulk
    data).  The engine routes its compress/decompress block jobs through
    :meth:`encode_chunks` / :meth:`decode_chunks`; both honour the
    engine contracts — output bytes identical to serial, and on failure
    the error of the lowest-indexed failing chunk is re-raised with its
    serial message (errors cross the process boundary as
    ``(index, type_name, message)`` triples and are rebuilt from
    :mod:`repro.errors`).

    The generic :meth:`run` cannot ship arbitrary closures to another
    process; it degrades to an in-process serial sweep (used by e.g.
    salvage decode), keeping every caller functional.
    """

    policy = "process"
    #: engines check this marker to route work through the shm methods.
    kind = "process"

    def __init__(self, workers: int = 1) -> None:
        super().__init__(workers)
        self._pool = None
        self._closed = False

    def _ensure_pool(self):
        if self._closed:
            raise RuntimeError("process executor is closed")
        if self._pool is None:
            import multiprocessing

            self._pool = multiprocessing.get_context().Pool(self.workers)
        return self._pool

    def run(self, n_jobs, make_worker):
        # Arbitrary job closures are not picklable; run them here instead.
        return SerialExecutor.run(self, n_jobs, make_worker)

    def _block_tasks(self, n_chunks: int):
        bounds = static_block_bounds(n_chunks, min(self.workers, n_chunks))
        return [
            (int(bounds[w]), int(bounds[w + 1]))
            for w in range(len(bounds) - 1)
            if bounds[w] < bounds[w + 1]
        ]

    def encode_chunks(self, data, plan, codec_name: str, batch: bool,
                      fcm_restart: bool = False) -> list:
        """Compress every chunk of ``plan`` over ``data``; payload list."""
        from multiprocessing import shared_memory

        from repro.core import _procwork

        if plan.n_chunks == 0:
            return []
        pool = self._ensure_pool()
        data = bytes(data)
        shm = shared_memory.SharedMemory(create=True, size=max(1, len(data)))
        try:
            shm.buf[: len(data)] = data
            blocks = self._block_tasks(plan.n_chunks)
            tasks = [
                (
                    shm.name,
                    codec_name,
                    batch,
                    [
                        (plan.jobs[i].index, plan.jobs[i].offset,
                         plan.jobs[i].end)
                        for i in range(lo, hi)
                    ],
                    fcm_restart,
                )
                for lo, hi in blocks
            ]
            payloads: list = [None] * plan.n_chunks
            errors: list[tuple[int, str, str]] = []
            for (lo, hi), (block_payloads, block_errors) in zip(
                blocks, pool.map(_procwork.proc_encode_block, tasks)
            ):
                payloads[lo:hi] = block_payloads
                errors.extend(block_errors)
            if errors:
                index, type_name, msg = min(errors, key=lambda e: e[0])
                raise _procwork.rebuild_error(type_name, msg)
            return payloads
        finally:
            shm.close()
            shm.unlink()

    @staticmethod
    def _split_blocks(blocks, chunk_codecs):
        """Split block tasks so each is codec-homogeneous (v4 containers)."""
        out = []
        for lo, hi in blocks:
            s = lo
            for i in range(lo + 1, hi):
                if chunk_codecs[i] != chunk_codecs[s]:
                    out.append((s, i))
                    s = i
            out.append((s, hi))
        return out

    def decode_chunks(
        self, blob, plan, codec_name: str, chunk_crcs, batch: bool,
        fcm_restart: bool = False, chunk_codecs=None,
    ) -> bytes:
        """Decode every chunk of ``plan`` out of ``blob``; returns the
        concatenated intermediate buffer.

        Subset (range) plans work unchanged: each task carries its job's
        global chunk index for CRC lookup and error attribution, while
        the write offsets stay relative to the plan's output buffer.

        ``chunk_codecs`` (mixed v4 containers) is a per-plan-position
        sequence of ``(codec_name, fcm_restart)`` pairs overriding the
        global pair; blocks are split at codec changes so every worker
        task still runs one pipeline.
        """
        from multiprocessing import shared_memory

        from repro.core import _procwork

        if plan.n_chunks == 0:
            return bytes(plan.out_len)
        pool = self._ensure_pool()
        blob = bytes(blob)
        in_shm = shared_memory.SharedMemory(create=True, size=max(1, len(blob)))
        out_shm = shared_memory.SharedMemory(
            create=True, size=max(1, plan.out_len)
        )
        try:
            in_shm.buf[: len(blob)] = blob
            blocks = self._block_tasks(plan.n_chunks)
            if chunk_codecs is not None:
                blocks = self._split_blocks(blocks, chunk_codecs)
            tasks = [
                (
                    in_shm.name,
                    out_shm.name,
                    codec_name if chunk_codecs is None else chunk_codecs[lo][0],
                    batch,
                    [
                        (
                            plan.jobs[i].index,
                            plan.jobs[i].offset,
                            plan.jobs[i].end,
                            plan.out_offsets[i],
                            plan.out_lengths[i],
                            None if chunk_crcs is None
                            else chunk_crcs[plan.jobs[i].index],
                        )
                        for i in range(lo, hi)
                    ],
                    fcm_restart,
                )
                for lo, hi in blocks
            ]
            errors: list[tuple[int, str, str]] = []
            for block_errors in pool.map(_procwork.proc_decode_block, tasks):
                errors.extend(block_errors)
            if errors:
                index, type_name, msg = min(errors, key=lambda e: e[0])
                raise _procwork.rebuild_error(type_name, msg)
            return bytes(out_shm.buf[: plan.out_len])
        finally:
            in_shm.close()
            in_shm.unlink()
            out_shm.close()
            out_shm.unlink()

    def close(self) -> None:
        """Stop the worker processes; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> SharedMemoryProcessExecutor:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


_EXECUTOR_TYPES: dict[str, type[Executor]] = {
    "serial": SerialExecutor,
    "threaded": ThreadedExecutor,
    "static-blocks": StaticBlockExecutor,
    "process": SharedMemoryProcessExecutor,
}


def get_executor(policy: str, workers: int = 1) -> Executor:
    """Build an executor for a canonical policy name or alias."""
    return _EXECUTOR_TYPES[normalize_policy(policy, EXECUTOR_POLICIES)](workers)


def resolve_executor(
    executor: str | Executor | None, workers: int
) -> Executor:
    """Resolve the engine's ``executor=`` argument.

    ``None`` keeps the historical behaviour of the ``workers`` knob:
    serial for one worker, the dynamic worklist otherwise.
    """
    if isinstance(executor, Executor):
        return executor
    if executor is None:
        return get_executor("serial" if workers <= 1 else "threaded", workers)
    return get_executor(executor, workers)
