"""Chunk framing: independent 16 KiB chunks with a raw-fallback flag.

Paper §3: all stages except FCM "operate on chunks of 16 kilobytes",
sized so two chunk buffers fit in GPU shared memory / the CPU L1 data
cache.  Each chunk is independent, which is the source of all coarse
parallelism; "to cap the worst-case expansion, the compressor emits the
original data for any chunk that it cannot compress and marks it as
such".

Here a chunk payload is one flag byte followed by either the transformed
body (``CHUNK_COMPRESSED``) or the untouched original bytes
(``CHUNK_RAW``).
"""

from __future__ import annotations

from collections.abc import Iterator

#: Chunk size used by every codec (paper §3).
CHUNK_SIZE = 16384

CHUNK_RAW = 0
CHUNK_COMPRESSED = 1


def iter_chunks(data, chunk_size: int = CHUNK_SIZE) -> Iterator:
    """Yield consecutive ``chunk_size`` slices of ``data`` (last may be short).

    Slicing follows the input type: pass a ``memoryview`` to get zero-copy
    chunk views, ``bytes`` to get copies.
    """
    if chunk_size <= 0:
        raise ValueError("chunk size must be positive")
    for start in range(0, len(data), chunk_size):
        yield data[start : start + chunk_size]


def chunk_count(total_len: int, chunk_size: int = CHUNK_SIZE) -> int:
    """Number of chunks covering ``total_len`` bytes."""
    return (total_len + chunk_size - 1) // chunk_size


def chunk_lengths(total_len: int, chunk_size: int = CHUNK_SIZE) -> list[int]:
    """Original (pre-compression) length of every chunk."""
    n = chunk_count(total_len, chunk_size)
    if n == 0:
        return []
    lengths = [chunk_size] * n
    last = total_len - (n - 1) * chunk_size
    lengths[-1] = last
    return lengths


def chunk_offsets(total_len: int, chunk_size: int = CHUNK_SIZE) -> list[int]:
    """Byte offset of every chunk: the prefix sums over the chunk lengths.

    These are the schedule-independent read positions of paper §3.1 —
    every executor policy reads (and on decode, writes) the same windows.
    """
    n = chunk_count(total_len, chunk_size)
    return [i * chunk_size for i in range(n)]
