"""Stage pipelines: forward transformation chains with reverse decoding.

A :class:`Pipeline` applies its stages in order during compression; for
decompression "the inverses of the stages are invoked in reverse order"
(paper §3, Figure 1).  The per-chunk raw fallback lives here: a chunk
whose transformed body is not smaller than the original is emitted raw.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.chunking import CHUNK_COMPRESSED, CHUNK_RAW
from repro.errors import CorruptDataError
from repro.stages import Stage


class Pipeline:
    """An ordered chain of reversible stages."""

    def __init__(self, stages: Sequence[Stage]) -> None:
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        self.stages = list(stages)

    def encode(self, data: bytes) -> bytes:
        for stage in self.stages:
            data = stage.encode(data)
        return data

    def decode(self, data: bytes) -> bytes:
        for stage in reversed(self.stages):
            data = stage.decode(data)
        return data

    def encode_chunk(self, chunk: bytes) -> bytes:
        """Transform one chunk, falling back to raw storage on expansion."""
        body = self.encode(chunk)
        if len(body) >= len(chunk):
            return bytes([CHUNK_RAW]) + chunk
        return bytes([CHUNK_COMPRESSED]) + body

    def decode_chunk(self, payload: bytes, original_len: int) -> bytes:
        """Invert :meth:`encode_chunk`; validates the recovered length."""
        if not payload:
            raise CorruptDataError("empty chunk payload")
        flag, body = payload[0], payload[1:]
        if flag == CHUNK_RAW:
            chunk = body
        elif flag == CHUNK_COMPRESSED:
            chunk = self.decode(body)
        else:
            raise CorruptDataError(f"unknown chunk flag {flag}")
        if len(chunk) != original_len:
            raise CorruptDataError(
                f"chunk decoded to {len(chunk)} bytes, expected {original_len}"
            )
        return chunk

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = " -> ".join(stage.name for stage in self.stages)
        return f"Pipeline({names})"
