"""Stage pipelines: forward transformation chains with reverse decoding.

A :class:`Pipeline` applies its stages in order during compression; for
decompression "the inverses of the stages are invoked in reverse order"
(paper §3, Figure 1).  The per-chunk raw fallback lives here: a chunk
whose transformed body is not smaller than the original is emitted raw.

Pipelines honour the zero-copy contract of :mod:`repro.stages`: chunk
inputs may be ``memoryview``\\ s into a larger buffer, and the optional
``events`` argument of :meth:`Pipeline.encode_chunk` /
:meth:`Pipeline.decode_chunk` records one :class:`~repro.core.trace.StageEvent`
per stage (time spent, bytes left behind) for the engine's per-chunk
instrumentation.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from repro.core.chunking import CHUNK_COMPRESSED, CHUNK_RAW
from repro.core.trace import StageEvent
from repro.errors import CorruptDataError
from repro.stages import ByteLike, Stage


class Pipeline:
    """An ordered chain of reversible stages."""

    def __init__(self, stages: Sequence[Stage]) -> None:
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        self.stages = list(stages)

    def encode(self, data: ByteLike, events: list[StageEvent] | None = None) -> bytes:
        for stage in self.stages:
            if events is None:
                data = stage.encode(data)
            else:
                start = time.perf_counter()
                data = stage.encode(data)
                events.append(
                    StageEvent(stage.name, time.perf_counter() - start, len(data))
                )
        return data

    def decode(self, data: ByteLike, events: list[StageEvent] | None = None) -> bytes:
        for stage in reversed(self.stages):
            if events is None:
                data = stage.decode(data)
            else:
                start = time.perf_counter()
                data = stage.decode(data)
                events.append(
                    StageEvent(stage.name, time.perf_counter() - start, len(data))
                )
        return data

    def encode_chunk(
        self, chunk: ByteLike, events: list[StageEvent] | None = None
    ) -> bytes:
        """Transform one chunk, falling back to raw storage on expansion."""
        body = self.encode(chunk, events)
        if len(body) >= len(chunk):
            original = chunk if isinstance(chunk, bytes) else bytes(chunk)
            return bytes([CHUNK_RAW]) + original
        return bytes([CHUNK_COMPRESSED]) + body

    def decode_chunk(
        self,
        payload: ByteLike,
        original_len: int,
        events: list[StageEvent] | None = None,
    ) -> bytes:
        """Invert :meth:`encode_chunk`; validates the recovered length."""
        if not len(payload):
            raise CorruptDataError("empty chunk payload")
        flag, body = payload[0], payload[1:]
        if flag == CHUNK_RAW:
            chunk = body if isinstance(body, bytes) else bytes(body)
        elif flag == CHUNK_COMPRESSED:
            chunk = self.decode(body, events)
        else:
            raise CorruptDataError(f"unknown chunk flag {flag}")
        if len(chunk) != original_len:
            raise CorruptDataError(
                f"chunk decoded to {len(chunk)} bytes, expected {original_len}"
            )
        return chunk

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = " -> ".join(stage.name for stage in self.stages)
        return f"Pipeline({names})"
