"""Stage pipelines: forward transformation chains with reverse decoding.

A :class:`Pipeline` applies its stages in order during compression; for
decompression "the inverses of the stages are invoked in reverse order"
(paper §3, Figure 1).  The per-chunk raw fallback lives here: a chunk
whose transformed body is not smaller than the original is emitted raw.

Pipelines honour the zero-copy contract of :mod:`repro.stages`: chunk
inputs may be ``memoryview``\\ s into a larger buffer, and the optional
``events`` argument of :meth:`Pipeline.encode_chunk` /
:meth:`Pipeline.decode_chunk` records one :class:`~repro.core.trace.StageEvent`
per stage (time spent, bytes left behind) for the engine's per-chunk
instrumentation.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from repro.core.chunking import CHUNK_COMPRESSED, CHUNK_RAW
from repro.core.trace import StageEvent
from repro.errors import CorruptDataError
from repro.stages import ByteLike, Stage


class Pipeline:
    """An ordered chain of reversible stages."""

    def __init__(self, stages: Sequence[Stage]) -> None:
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        self.stages = list(stages)

    def encode(self, data: ByteLike, events: list[StageEvent] | None = None) -> bytes:
        for stage in self.stages:
            if events is None:
                data = stage.encode(data)
            else:
                start = time.perf_counter()
                data = stage.encode(data)
                events.append(
                    StageEvent(stage.name, time.perf_counter() - start, len(data))
                )
        return data

    def decode(self, data: ByteLike, events: list[StageEvent] | None = None) -> bytes:
        for stage in reversed(self.stages):
            if events is None:
                data = stage.decode(data)
            else:
                start = time.perf_counter()
                data = stage.decode(data)
                events.append(
                    StageEvent(stage.name, time.perf_counter() - start, len(data))
                )
        return data

    def encode_chunk(
        self, chunk: ByteLike, events: list[StageEvent] | None = None
    ) -> bytes:
        """Transform one chunk, falling back to raw storage on expansion."""
        body = self.encode(chunk, events)
        if len(body) >= len(chunk):
            original = chunk if isinstance(chunk, bytes) else bytes(chunk)
            return bytes([CHUNK_RAW]) + original
        return bytes([CHUNK_COMPRESSED]) + body

    def decode_chunk(
        self,
        payload: ByteLike,
        original_len: int,
        events: list[StageEvent] | None = None,
    ) -> bytes:
        """Invert :meth:`encode_chunk`; validates the recovered length."""
        if not len(payload):
            raise CorruptDataError("empty chunk payload")
        flag, body = payload[0], payload[1:]
        if flag == CHUNK_RAW:
            chunk = body if isinstance(body, bytes) else bytes(body)
        elif flag == CHUNK_COMPRESSED:
            chunk = self.decode(body, events)
        else:
            raise CorruptDataError(f"unknown chunk flag {flag}")
        if len(chunk) != original_len:
            raise CorruptDataError(
                f"chunk decoded to {len(chunk)} bytes, expected {original_len}"
            )
        return chunk

    # -- batched execution ------------------------------------------------

    def encode_batch(
        self, chunks: list, events: list[StageEvent] | None = None
    ) -> list[bytes]:
        """Columnar :meth:`encode`: each stage sees the whole batch at once.

        With ``events``, one :class:`StageEvent` per stage is recorded with
        the batch's total output bytes.
        """
        data = list(chunks)
        for stage in self.stages:
            if events is None:
                data = stage.encode_batch(data)
            else:
                start = time.perf_counter()
                data = stage.encode_batch(data)
                events.append(
                    StageEvent(
                        stage.name,
                        time.perf_counter() - start,
                        sum(len(d) for d in data),
                    )
                )
        return data

    def decode_batch(
        self, payloads: list, events: list[StageEvent] | None = None
    ) -> list[bytes]:
        data = list(payloads)
        for stage in reversed(self.stages):
            if events is None:
                data = stage.decode_batch(data)
            else:
                start = time.perf_counter()
                data = stage.decode_batch(data)
                events.append(
                    StageEvent(
                        stage.name,
                        time.perf_counter() - start,
                        sum(len(d) for d in data),
                    )
                )
        return data

    def encode_chunk_batch(
        self, chunks: list, events: list[StageEvent] | None = None
    ) -> list[bytes]:
        """Batched :meth:`encode_chunk`: per-chunk raw fallback still applies."""
        bodies = self.encode_batch(chunks, events)
        out: list[bytes] = []
        for chunk, body in zip(chunks, bodies):
            if len(body) >= len(chunk):
                original = chunk if isinstance(chunk, bytes) else bytes(chunk)
                out.append(bytes([CHUNK_RAW]) + original)
            else:
                out.append(bytes([CHUNK_COMPRESSED]) + body)
        return out

    def decode_chunk_batch(
        self,
        payloads: list,
        original_lens: Sequence[int],
        events: list[StageEvent] | None = None,
    ) -> list[bytes]:
        """Batched :meth:`decode_chunk`.

        May raise on *any* chunk of the batch without per-chunk
        attribution — callers needing serial-identical errors re-run the
        failing batch through :meth:`decode_chunk`.
        """
        chunks: list[bytes | None] = [None] * len(payloads)
        compressed_idx: list[int] = []
        bodies: list[ByteLike] = []
        for i, payload in enumerate(payloads):
            if not len(payload):
                raise CorruptDataError("empty chunk payload")
            flag, body = payload[0], payload[1:]
            if flag == CHUNK_RAW:
                chunks[i] = body if isinstance(body, bytes) else bytes(body)
            elif flag == CHUNK_COMPRESSED:
                compressed_idx.append(i)
                bodies.append(body)
            else:
                raise CorruptDataError(f"unknown chunk flag {flag}")
        for i, chunk in zip(compressed_idx, self.decode_batch(bodies, events)):
            chunks[i] = chunk
        for i, chunk in enumerate(chunks):
            if len(chunk) != original_lens[i]:
                raise CorruptDataError(
                    f"chunk decoded to {len(chunk)} bytes, expected {original_lens[i]}"
                )
        return chunks

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = " -> ".join(stage.name for stage in self.stages)
        return f"Pipeline({names})"
