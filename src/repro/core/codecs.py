"""Codec definitions: SPspeed, SPratio, DPspeed, DPratio.

Figure 1 of the paper defines the four algorithms as stage chains:

* ``SPspeed``  (FP32, speed): DIFFMS -> MPLG
* ``SPratio``  (FP32, ratio): DIFFMS -> BIT -> RZE
* ``DPspeed``  (FP64, speed): DIFFMS -> MPLG
* ``DPratio``  (FP64, ratio): FCM (global) -> DIFFMS -> RAZE -> RARE

The "ratio" mode favours compression ratio, the "speed" mode favours
throughput; all four beat most prior work on both axes (paper §1).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.errors import UnknownCodecError, UnsupportedDtypeError
from repro.core.pipeline import Pipeline
from repro.stages import RARE, RAZE, RZE, BitTranspose, DiffMS, FCMStage, MPLG, Stage


@dataclass(frozen=True)
class Codec:
    """A named compression algorithm: a chunk pipeline plus optional global stage."""

    name: str
    codec_id: int
    dtype: np.dtype
    word_bits: int
    mode: str  # "speed", "ratio", or "auto"
    description: str
    stage_factory: Callable[[], list[Stage]] = field(repr=False)
    global_stage_factory: Callable[[], Stage] | None = field(default=None, repr=False)
    #: True for the ``auto`` codec: no pipeline of its own, the encode
    #: path probes each chunk and routes it to a fixed member codec (the
    #: container then carries a per-chunk codec table, format v4).
    selector: bool = False

    def make_pipeline(self, fcm_restart: bool = False) -> Pipeline:
        """The per-chunk stage chain.

        With ``fcm_restart=True`` the codec's global stage (FCM) is
        prepended to the chunk pipeline instead of running as a serial
        whole-input pass: the predictor re-seeds at every chunk boundary
        (container v3 restart markers), which makes every chunk
        independently decodable and lets DPratio run under any executor.
        """
        stages = self.stage_factory()
        if fcm_restart and self.global_stage_factory is not None:
            stages.insert(0, self.global_stage_factory())
        return Pipeline(stages)

    def make_global_stage(self) -> Stage | None:
        if self.global_stage_factory is None:
            return None
        return self.global_stage_factory()

    @property
    def stage_names(self) -> list[str]:
        names = [stage.name for stage in self.stage_factory()]
        if self.global_stage_factory is not None:
            names.insert(0, self.global_stage_factory().name)
        return names


SPSPEED = Codec(
    name="spspeed",
    codec_id=1,
    dtype=np.dtype(np.float32),
    word_bits=32,
    mode="speed",
    description="FP32 throughput mode: DIFFMS -> enhanced MPLG",
    stage_factory=lambda: [DiffMS(32), MPLG(32)],
)

SPRATIO = Codec(
    name="spratio",
    codec_id=2,
    dtype=np.dtype(np.float32),
    word_bits=32,
    mode="ratio",
    description="FP32 ratio mode: DIFFMS -> BIT -> RZE",
    stage_factory=lambda: [DiffMS(32), BitTranspose(32), RZE()],
)

DPSPEED = Codec(
    name="dpspeed",
    codec_id=3,
    dtype=np.dtype(np.float64),
    word_bits=64,
    mode="speed",
    description="FP64 throughput mode: DIFFMS -> enhanced MPLG",
    stage_factory=lambda: [DiffMS(64), MPLG(64)],
)

DPRATIO = Codec(
    name="dpratio",
    codec_id=4,
    dtype=np.dtype(np.float64),
    word_bits=64,
    mode="ratio",
    description="FP64 ratio mode: FCM (global) -> DIFFMS -> RAZE -> RARE",
    stage_factory=lambda: [DiffMS(64), RAZE(64), RARE(64)],
    global_stage_factory=FCMStage,
)

#: The adaptive selector: probes every chunk and routes it to the best
#: fixed codec for its statistics (see :mod:`repro.selection`).  It owns
#: no stages — the member pipelines do the work — so it lives *outside*
#: :data:`CODECS` (which enumerates the paper's fixed pipelines) and is
#: resolved by name/id through :func:`get_codec` / :func:`codec_by_id`.
AUTO = Codec(
    name="auto",
    codec_id=5,
    dtype=np.dtype(np.void),
    word_bits=0,
    mode="auto",
    description="adaptive: probe each chunk, route to the best fixed codec",
    stage_factory=lambda: [],
    selector=True,
)

CODECS: dict[str, Codec] = {
    codec.name: codec for codec in (SPSPEED, SPRATIO, DPSPEED, DPRATIO)
}

_BY_ID: dict[int, Codec] = {codec.codec_id: codec for codec in CODECS.values()}
_BY_ID[AUTO.codec_id] = AUTO


def get_codec(name: str) -> Codec:
    """Look a codec up by name (case-insensitive, including ``auto``)."""
    key = name.lower()
    if key == AUTO.name:
        return AUTO
    if key not in CODECS:
        raise UnknownCodecError(
            f"unknown codec {name!r}; available: "
            f"{', '.join(sorted([*CODECS, AUTO.name]))}"
        )
    return CODECS[key]


def codec_by_id(codec_id: int) -> Codec:
    """Look a codec up by its container id (including the selector)."""
    if codec_id not in _BY_ID:
        raise UnknownCodecError(f"unknown codec id {codec_id}")
    return _BY_ID[codec_id]


def selector_codec() -> Codec:
    """The ``auto`` selector codec (header codec of v4 containers)."""
    return AUTO


def fixed_codec_ids() -> frozenset[int]:
    """Registry ids legal in a v4 per-chunk codec table (fixed codecs only)."""
    return frozenset(_BY_ID) - {AUTO.codec_id}


def selection_candidates(dtype_code: int) -> tuple[Codec, ...]:
    """The fixed codecs the selector may route a chunk to for a dtype.

    Float containers choose between the paper's two same-width pipelines;
    raw-byte containers may route to any of the four (word width is just
    a transform granularity there).
    """
    from repro.core.container import DTYPE_F32, DTYPE_F64

    if dtype_code == DTYPE_F32:
        return (SPSPEED, SPRATIO)
    if dtype_code == DTYPE_F64:
        return (DPSPEED, DPRATIO)
    return (SPSPEED, SPRATIO, DPSPEED, DPRATIO)


def codec_for(dtype: np.dtype, mode: str = "ratio") -> Codec:
    """Pick the paper's codec for a dtype and mode ('speed' or 'ratio')."""
    if mode not in ("speed", "ratio"):
        raise UnknownCodecError(f"unknown mode {mode!r}; use 'speed' or 'ratio'")
    dtype = np.dtype(dtype)
    for codec in CODECS.values():
        if codec.dtype == dtype and codec.mode == mode:
            return codec
    raise UnsupportedDtypeError(
        f"no codec for dtype {dtype}; float32 and float64 are supported"
    )
