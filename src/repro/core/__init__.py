"""The four codecs of the paper and the container format that frames them.

* :mod:`repro.core.chunking` — 16 KiB chunk splitting and per-chunk
  raw-fallback framing.
* :mod:`repro.core.pipeline` — stage pipelines (encode forward, decode in
  reverse order).
* :mod:`repro.core.container` — the serialised ``FPRZ`` container.
* :mod:`repro.core.codecs` — SPspeed / SPratio / DPspeed / DPratio
  definitions and the codec registry.
* :mod:`repro.core.compressor` — the engine tying the above together.
"""

from repro.core.codecs import (
    CODECS,
    Codec,
    codec_by_id,
    codec_for,
    get_codec,
)
from repro.core.compressor import compress_bytes, decompress_bytes
from repro.core.container import ContainerInfo, inspect_container

__all__ = [
    "CODECS",
    "Codec",
    "ContainerInfo",
    "codec_by_id",
    "codec_for",
    "compress_bytes",
    "decompress_bytes",
    "get_codec",
    "inspect_container",
]
