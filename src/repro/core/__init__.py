"""The four codecs of the paper and the container format that frames them.

* :mod:`repro.core.chunking` — 16 KiB chunk splitting and per-chunk
  raw-fallback framing.
* :mod:`repro.core.pipeline` — stage pipelines (encode forward, decode in
  reverse order).
* :mod:`repro.core.container` — the serialised ``FPRZ`` container.
* :mod:`repro.core.codecs` — SPspeed / SPratio / DPspeed / DPratio
  definitions and the codec registry.
* :mod:`repro.core.plan` — precomputed chunk jobs and prefix-sum offsets.
* :mod:`repro.core.executors` — pluggable scheduling policies (serial /
  threaded worklist / static blocks, paper §3.1).
* :mod:`repro.core.trace` — per-chunk instrumentation records.
* :mod:`repro.core.compressor` — the plan/execute engine tying the above
  together.
"""

from repro.core.codecs import (
    CODECS,
    Codec,
    codec_by_id,
    codec_for,
    get_codec,
)
from repro.core.compressor import compress_bytes, decompress_bytes
from repro.core.container import (
    DEFAULT_CHECKSUM,
    DEFAULT_CHUNK_CHECKSUMS,
    ContainerInfo,
    inspect_container,
)
from repro.core.executors import (
    SCHEDULING_POLICIES,
    Executor,
    get_executor,
    normalize_policy,
)
from repro.core.plan import ChunkJob, DecodePlan, EncodePlan, plan_decode, plan_encode
from repro.core.salvage import ChunkFailure, SalvageReport, merge_ranges, ranges_cover
from repro.core.trace import ChunkTrace, StageEvent, TraceCollector

__all__ = [
    "CODECS",
    "Codec",
    "ChunkFailure",
    "ChunkJob",
    "ChunkTrace",
    "ContainerInfo",
    "DEFAULT_CHECKSUM",
    "DEFAULT_CHUNK_CHECKSUMS",
    "DecodePlan",
    "EncodePlan",
    "Executor",
    "SCHEDULING_POLICIES",
    "SalvageReport",
    "StageEvent",
    "TraceCollector",
    "codec_by_id",
    "codec_for",
    "compress_bytes",
    "decompress_bytes",
    "get_codec",
    "get_executor",
    "inspect_container",
    "merge_ranges",
    "normalize_policy",
    "ranges_cover",
    "plan_decode",
    "plan_encode",
]
