"""Incremental (chunk-at-a-time) compression and decompression.

The engine behind the service tier's streamed COMPRESS/DECOMPRESS: the
paper's whole design rests on independent 16 KiB chunks, so neither
direction ever needs the full payload in memory — a compressor can emit
each chunk's payload the moment ``chunk_size`` input bytes exist, and a
decompressor can emit each chunk's plaintext the moment that chunk's
payload bytes exist.  Both classes here hold at most one partial chunk
(plus, for decompression, the container prefix — header and tables —
which must be whole before any payload byte can be attributed).

Byte-identity contract: feeding a :class:`StreamingCompressor` the same
bytes as :func:`repro.core.compressor.compress_bytes` with
``fcm="restart"`` produces the identical container, with two documented
exceptions:

* codecs with a global FCM stage are always restart-framed (a global
  stage is a serial whole-input pass — the one thing a bounded-memory
  stream cannot run), and
* the whole-input raw fallback is disabled — payloads already streamed
  to the peer cannot be retracted.  The container is still valid and
  decodes identically; it just may exceed raw size on incompressible
  input where the local API would have fallen back.

Everything routes through the same per-chunk primitives the batch engine
uses (``codec.make_pipeline(...).encode_chunk`` / ``decode_chunk``), so
the stages themselves cannot drift between the streamed and buffered
paths.
"""

from __future__ import annotations

import zlib

from repro.core import container as fmt
from repro.core.chunking import CHUNK_SIZE
from repro.core.codecs import Codec, codec_by_id
from repro.core.compressor import _check_geometry, _pipeline_resolver
from repro.errors import ChecksumError, CorruptDataError, FormatError, ReproError

__all__ = ["StreamingCompressor", "StreamingDecompressor"]


class StreamingCompressor:
    """Compress a byte stream of known total length chunk by chunk.

    Usage::

        enc = StreamingCompressor(codec, total_len=n, shape=(...,))
        for piece in arriving_bytes:
            for index, payload in enc.feed(piece):
                emit(index, payload)
        for index, payload in enc.flush():
            emit(index, payload)
        prefix = enc.prefix()          # header + tables
        # prefix + b"".join(payloads) == the full container

    Memory held: at most one partial input chunk plus per-chunk payload
    *lengths and CRCs* (a few bytes per chunk) for the final prefix —
    never the payloads themselves.
    """

    def __init__(
        self,
        codec: Codec,
        *,
        total_len: int,
        chunk_size: int = CHUNK_SIZE,
        dtype_code: int | None = None,
        shape: tuple[int, ...] | None = None,
        checksum: bool = fmt.DEFAULT_CHECKSUM,
        chunk_checksums: bool = fmt.DEFAULT_CHUNK_CHECKSUMS,
    ) -> None:
        if codec.selector:
            raise FormatError(
                f"codec {codec.name!r} is the adaptive selector; streamed "
                f"compression requires a fixed codec (the probe needs "
                f"whole-chunk statistics the stream planner does not buffer)"
            )
        if total_len < 0:
            raise ValueError(f"total_len must be non-negative, got {total_len}")
        self.codec = codec
        self.total_len = int(total_len)
        self.chunk_size = int(chunk_size)
        if dtype_code is None:
            dtype_code = {4: fmt.DTYPE_F32, 8: fmt.DTYPE_F64}.get(
                codec.dtype.itemsize, fmt.DTYPE_BYTES
            )
        self.dtype_code = dtype_code
        self.shape = shape
        self.chunk_checksums = chunk_checksums
        #: Restart framing whenever the codec has an FCM stage: the global
        #: whole-input pass is the one thing a bounded stream cannot run.
        self.fcm_restart = codec.global_stage_factory is not None
        self._pipeline = codec.make_pipeline(self.fcm_restart)
        self._with_crc = checksum
        self._crc = 0
        self._buf = bytearray()
        self._fed = 0
        self._next_index = 0
        self._payload_sizes: list[int] = []
        self._payload_crcs: list[int] = []
        self._finished = False

    @property
    def bytes_buffered(self) -> int:
        """Input bytes held (the partial tail chunk)."""
        return len(self._buf)

    def _encode_one(self, chunk: bytes) -> tuple[int, bytes]:
        payload = self._pipeline.encode_chunk(memoryview(chunk))
        index = self._next_index
        self._next_index += 1
        self._payload_sizes.append(len(payload))
        if self.chunk_checksums:
            self._payload_crcs.append(fmt.checksum_of(payload))
        return index, payload

    def feed(self, piece: bytes) -> list[tuple[int, bytes]]:
        """Absorb input bytes; returns every newly completed chunk payload."""
        if self._finished:
            raise ValueError("feed() after flush()")
        if self._fed + len(piece) > self.total_len:
            raise FormatError(
                f"stream overran its declared length: "
                f"{self._fed + len(piece)} of {self.total_len} bytes"
            )
        self._fed += len(piece)
        if self._with_crc:
            self._crc = zlib.crc32(piece, self._crc)
        self._buf += piece
        out: list[tuple[int, bytes]] = []
        while len(self._buf) >= self.chunk_size:
            chunk = bytes(self._buf[: self.chunk_size])
            del self._buf[: self.chunk_size]
            out.append(self._encode_one(chunk))
        return out

    def flush(self) -> list[tuple[int, bytes]]:
        """Finish the stream; returns the ragged tail payload, if any."""
        if self._finished:
            raise ValueError("flush() called twice")
        if self._fed != self.total_len:
            raise FormatError(
                f"truncated stream: flush() after {self._fed} of "
                f"{self.total_len} declared bytes"
            )
        self._finished = True
        out: list[tuple[int, bytes]] = []
        if self._buf:
            out.append(self._encode_one(bytes(self._buf)))
            self._buf.clear()
        return out

    def prefix(self) -> bytes:
        """The container prefix (header + metadata + tables).

        Prepended to the concatenated payloads (in index order) this
        reconstructs the exact container ``compress_bytes`` builds for
        the same input — see :func:`repro.core.container.build_container_prefix`.
        """
        if not self._finished:
            raise ValueError("prefix() before flush()")
        return fmt.build_container_prefix(
            codec_id=self.codec.codec_id,
            dtype_code=self.dtype_code,
            original_len=self.total_len,
            intermediate_len=self.total_len,
            chunk_size=self.chunk_size,
            chunk_sizes=self._payload_sizes,
            payload_crcs=self._payload_crcs if self.chunk_checksums else None,
            shape=self.shape,
            checksum=(self._crc & 0xFFFFFFFF) if self._with_crc else None,
            chunk_crcs=self.chunk_checksums,
            fcm_restart=self.fcm_restart,
        )


class StreamingDecompressor:
    """Decompress a container byte stream chunk by chunk.

    Buffers the container prefix (header + tables) until it parses via
    :func:`repro.core.container.inspect_container_prefix`, then decodes
    and emits each chunk the moment its payload bytes are complete —
    only one partial payload is ever held.  Containers whose codec
    carries cross-chunk FCM state (v1/v2 DPratio without restart
    markers) are rejected up front: their chunks are not independently
    decodable, which is precisely what streaming requires.

    The whole-input CRC32, when present, is verified incrementally over
    the emitted plaintext and checked at :meth:`finish`.
    """

    def __init__(self, *, total_len: int) -> None:
        if total_len < 0:
            raise ValueError(f"total_len must be non-negative, got {total_len}")
        self.total_len = int(total_len)
        self.info: fmt.ContainerInfo | None = None
        self._buf = bytearray()
        self._fed = 0
        self._crc = 0
        self._resolve = None
        self._out_lengths: tuple[int, ...] = ()
        self._next_index = 0
        self._finished = False

    @property
    def bytes_buffered(self) -> int:
        """Container bytes held (prefix while incomplete, then at most
        one partial chunk payload)."""
        return len(self._buf)

    def _open(self, info: fmt.ContainerInfo) -> None:
        codec = codec_by_id(info.codec_id)
        _check_geometry(info, codec)
        if (
            not info.raw_fallback
            and info.chunk_codecs is None
            and codec.global_stage_factory is not None
            and not info.fcm_restart
        ):
            raise FormatError(
                f"container carries cross-chunk FCM state (version "
                f"{info.version} without restart markers) and cannot be "
                f"streamed; recompress it with fcm='restart' or use the "
                f"non-streamed DECOMPRESS request"
            )
        self.info = info
        self._resolve = _pipeline_resolver(codec, info)
        self._out_lengths = info.decoded_lengths()

    def _decode_one(self, payload: bytes) -> tuple[int, bytes]:
        info = self.info
        i = self._next_index
        self._next_index += 1
        if info.chunk_crcs is not None:
            if fmt.checksum_of(payload) != info.chunk_crcs[i]:
                raise ChecksumError(
                    f"chunk {i} payload failed its stored CRC32 in the "
                    f"streamed container"
                )
        pipeline = self._resolve(i)
        try:
            chunk = pipeline.decode_chunk(memoryview(payload), self._out_lengths[i])
        except ReproError as exc:
            raise type(exc)(f"chunk {i}: {exc}") from exc
        except Exception as exc:  # foreign crash -> typed corruption
            raise CorruptDataError(
                f"chunk {i}: undecodable payload "
                f"({type(exc).__name__}: {exc})"
            ) from exc
        data = bytes(chunk)
        if info.checksum is not None:
            self._crc = zlib.crc32(data, self._crc)
        return i, data

    def feed(self, piece: bytes) -> list[tuple[int, bytes]]:
        """Absorb container bytes; returns every newly decoded chunk."""
        if self._finished:
            raise ValueError("feed() after finish()")
        if self._fed + len(piece) > self.total_len:
            raise FormatError(
                f"stream overran its declared length: "
                f"{self._fed + len(piece)} of {self.total_len} bytes"
            )
        self._fed += len(piece)
        self._buf += piece
        out: list[tuple[int, bytes]] = []
        if self.info is None:
            info = fmt.inspect_container_prefix(
                bytes(self._buf), total_len=self.total_len
            )
            if info is None:
                return out
            self._open(info)
            del self._buf[: info.payload_offset]
        info = self.info
        if info.raw_fallback:
            # The payload is the original bytes verbatim: emit as they
            # arrive, re-chunked only for frame-sized delivery.
            while self._buf:
                data = bytes(self._buf[: CHUNK_SIZE])
                del self._buf[: CHUNK_SIZE]
                i = self._next_index
                self._next_index += 1
                if info.checksum is not None:
                    self._crc = zlib.crc32(data, self._crc)
                out.append((i, data))
            return out
        while self._next_index < info.n_chunks:
            size = info.chunk_sizes[self._next_index]
            if len(self._buf) < size:
                break
            payload = bytes(self._buf[:size])
            del self._buf[:size]
            out.append(self._decode_one(payload))
        return out

    def finish(self) -> tuple[int, tuple[int, ...] | None]:
        """Validate completeness; returns ``(dtype_code, shape)``."""
        if self._finished:
            raise ValueError("finish() called twice")
        if self._fed != self.total_len:
            raise FormatError(
                f"truncated stream: finish() after {self._fed} of "
                f"{self.total_len} declared bytes"
            )
        info = self.info
        if info is None:
            raise FormatError(
                "stream ended before the container prefix was complete"
            )
        if not info.raw_fallback and self._next_index != info.n_chunks:
            raise FormatError(
                f"streamed container ended with {self._next_index} of "
                f"{info.n_chunks} chunks decoded"
            )
        if info.checksum is not None and (self._crc & 0xFFFFFFFF) != info.checksum:
            raise ChecksumError(
                "decompressed stream failed its stored whole-input CRC32"
            )
        self._finished = True
        return info.dtype_code, info.shape
