"""Per-chunk execution traces: the engine's instrumentation layer.

FCBench-style cross-codec comparisons live or die on consistent
measurement plumbing, and adaptive codec selection needs to *observe*
what each chunk actually cost.  The engine therefore threads an optional
:class:`TraceCollector` through every executor: when present, each chunk
job records one :class:`ChunkTrace` — which worker ran it, how long each
stage took, how many bytes each stage left behind, and whether the chunk
fell back to raw storage.

Traces are collected lock-free: ``list.append`` is atomic under the GIL
and each chunk produces exactly one record, so workers on any executor
policy can share one collector.  Records arrive in completion order;
:attr:`TraceCollector.chunks` returns them sorted by chunk index.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StageEvent:
    """One stage's contribution to one chunk (or the global stage)."""

    stage: str
    seconds: float
    out_bytes: int


@dataclass(frozen=True)
class ChunkTrace:
    """Everything the engine observed while processing one chunk."""

    index: int
    worker: int
    original_len: int
    payload_len: int
    raw_fallback: bool
    seconds: float
    #: per-stage (name, seconds, output size), in execution order —
    #: pipeline order when encoding, reverse order when decoding.
    stages: tuple[StageEvent, ...]
    #: True when the chunk ran inside a batched block; its ``seconds`` is
    #: then the block time divided evenly and ``stages`` is empty (the
    #: per-stage timings live on the block's :class:`BatchTrace`).
    batched: bool = False


@dataclass(frozen=True)
class BatchTrace:
    """One batched block of contiguous chunks processed in a single pass."""

    worker: int
    #: index of the block's first chunk.
    start: int
    n_chunks: int
    seconds: float
    #: per-stage (name, seconds, total output bytes across the batch),
    #: in execution order.
    stages: tuple[StageEvent, ...]


class TraceCollector:
    """Accumulates chunk traces from one compress or decompress call.

    Use one collector per engine call; the engine annotates it with the
    executor policy, worker count, and direction it ran under.
    """

    def __init__(self) -> None:
        self._chunks: list[ChunkTrace] = []
        self._batches: list[BatchTrace] = []
        self.policy: str | None = None
        self.workers: int | None = None
        self.direction: str | None = None
        #: the whole-input stage (FCM), when the codec has one.
        self.global_stage: StageEvent | None = None

    def add(self, trace: ChunkTrace) -> None:
        self._chunks.append(trace)

    def add_batch(self, trace: BatchTrace) -> None:
        self._batches.append(trace)

    def annotate(self, *, policy: str, workers: int, direction: str) -> None:
        self.policy = policy
        self.workers = workers
        self.direction = direction

    @property
    def chunks(self) -> tuple[ChunkTrace, ...]:
        """Chunk traces in chunk-index order (collection order is racy)."""
        return tuple(sorted(self._chunks, key=lambda t: t.index))

    @property
    def batches(self) -> tuple[BatchTrace, ...]:
        """Batched-block traces in first-chunk order."""
        return tuple(sorted(self._batches, key=lambda t: t.start))

    @property
    def n_chunks(self) -> int:
        return len(self._chunks)

    @property
    def raw_chunks(self) -> int:
        """How many chunks fell back to raw storage."""
        return sum(1 for t in self._chunks if t.raw_fallback)

    def __len__(self) -> int:
        return len(self._chunks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TraceCollector(chunks={len(self._chunks)}, policy={self.policy!r}, "
            f"workers={self.workers}, direction={self.direction!r})"
        )
