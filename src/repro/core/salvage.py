"""Salvage-mode decode records: what was recovered, what was lost, why.

The container stores independent chunks precisely so damage stays local
(paper §3: chunks are self-contained; a raw-fallback flag caps each one's
worst case).  ``decompress(..., errors="salvage")`` exploits that: every
chunk that still verifies is decoded normally, every chunk that does not
is zero-filled, and the caller receives a :class:`SalvageReport` mapping
exactly which output byte ranges are trustworthy.

Coordinates: chunk failures carry both the *payload* window (where the
damage sits inside the container) and the *output* window (which decoded
bytes were zero-filled).  For codecs with a global stage (DPratio's FCM),
the output window of a chunk failure is in *intermediate* coordinates;
the report's :attr:`SalvageReport.damaged_ranges` is always in final
output coordinates, computed by the stage's damage-aware inverse
(:meth:`repro.stages.Stage.decode_salvage`).
"""

from __future__ import annotations

from dataclasses import dataclass, field


def merge_ranges(ranges) -> tuple[tuple[int, int], ...]:
    """Normalise (start, end) byte ranges: sorted, overlaps coalesced."""
    spans = sorted((int(a), int(b)) for a, b in ranges if b > a)
    merged: list[tuple[int, int]] = []
    for start, end in spans:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return tuple(merged)


def ranges_cover(ranges, offset: int, length: int) -> bool:
    """True when [offset, offset+length) intersects any damaged range."""
    end = offset + length
    return any(a < end and offset < b for a, b in ranges)


@dataclass(frozen=True)
class ChunkFailure:
    """One chunk that could not be verified or decoded."""

    #: chunk index in the container's chunk table.
    index: int
    #: byte range of the compressed payload inside the container.
    payload_offset: int
    payload_length: int
    #: byte range that was zero-filled in the decode buffer (intermediate
    #: coordinates for global-stage codecs, output coordinates otherwise).
    output_offset: int
    output_length: int
    #: human-readable failure reason.
    reason: str
    #: exception class name ("ChecksumError", "CorruptDataError", ...).
    error_type: str
    #: name of the codec that encoded this chunk — the member codec from
    #: the v4 per-chunk table for mixed containers, else the container
    #: codec.  ``None`` only for legacy callers that did not resolve it.
    codec: str | None = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        via = f", codec {self.codec}" if self.codec else ""
        return (
            f"chunk {self.index} (payload bytes "
            f"{self.payload_offset}..{self.payload_offset + self.payload_length}"
            f"{via}): {self.error_type}: {self.reason}"
        )


@dataclass(frozen=True)
class SalvageReport:
    """Outcome of one salvage-mode decode."""

    #: total number of chunks in the container (0 for raw fallback).
    n_chunks: int
    #: length of the returned output in bytes.
    output_len: int
    #: per-chunk failures, in chunk-index order.
    failures: tuple[ChunkFailure, ...] = ()
    #: byte ranges of the output that were zero-filled or are untrusted,
    #: in final output coordinates, sorted and non-overlapping.
    damaged_ranges: tuple[tuple[int, int], ...] = ()
    #: whole-input CRC verdict: True/False when the container carries a
    #: checksum, None when it does not.
    checksum_ok: bool | None = None
    #: True when the global stage's inverse itself failed and the entire
    #: output had to be zero-filled.
    global_stage_failed: bool = False
    #: free-form notes (length mismatches, raw-fallback status, ...).
    notes: tuple[str, ...] = field(default=())

    @property
    def ok(self) -> bool:
        """True when every byte of the output is trustworthy."""
        return (
            not self.failures
            and not self.damaged_ranges
            and not self.global_stage_failed
            and self.checksum_ok is not False
        )

    @property
    def chunks_recovered(self) -> int:
        return self.n_chunks - len(self.failures)

    @property
    def damaged_bytes(self) -> int:
        return sum(end - start for start, end in self.damaged_ranges)

    def render(self) -> str:
        """Human-readable multi-line summary (used by the CLI)."""
        lines = [
            f"salvage: {self.chunks_recovered}/{self.n_chunks} chunks recovered, "
            f"{self.damaged_bytes}/{self.output_len} output bytes damaged"
        ]
        if self.checksum_ok is not None:
            lines.append(f"  whole-input checksum: {'ok' if self.checksum_ok else 'MISMATCH'}")
        if self.global_stage_failed:
            lines.append("  global stage inverse FAILED; output zero-filled")
        for failure in self.failures:
            lines.append(f"  {failure}")
        for start, end in self.damaged_ranges:
            lines.append(f"  damaged output bytes {start}..{end}")
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)
