"""Chunk plans: precomputed jobs and prefix-sum offsets (paper §3.1).

A plan is the *static* half of the engine: given only lengths — never
the data — it derives every chunk's read position and, for decoding,
every chunk's write position.  This is the Python rendering of the
paper's observation that "no write positions need to be communicated as
the decompressed chunk sizes are known a priori": the prefix sums over
the chunk-length table ARE the schedule-independent read/write offsets,
so any executor policy can process the jobs in any order and land every
byte in the same place.

:func:`plan_encode` covers compression (equal-size chunks over the
intermediate buffer); :func:`plan_decode` covers decompression (payload
read offsets from the container's chunk table, output write offsets from
the a-priori chunk lengths); :func:`plan_for_range` covers *partial*
decompression — a subset plan holding only the chunks that overlap a
requested byte range, which the executors run unchanged because every
job already carries its own read window and relative write offset.

Subset jobs keep their **global** chunk index in ``ChunkJob.index`` even
though their list position is 0..k-1: error messages, CRC-table lookups,
and trace records must name the container's chunk, not the subset's.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from itertools import accumulate

from repro.core import container as fmt
from repro.core.chunking import CHUNK_SIZE, chunk_lengths, chunk_offsets
from repro.errors import BoundsError, CorruptDataError


@dataclass(frozen=True)
class ChunkJob:
    """One chunk's read window into its source buffer."""

    index: int
    offset: int
    length: int

    @property
    def end(self) -> int:
        return self.offset + self.length


@dataclass(frozen=True)
class EncodePlan:
    """Chunk jobs for compressing one intermediate buffer."""

    total_len: int
    chunk_size: int
    jobs: tuple[ChunkJob, ...]

    @property
    def n_chunks(self) -> int:
        return len(self.jobs)


@dataclass(frozen=True)
class DecodePlan:
    """Read jobs over a container's payload section plus write offsets.

    ``jobs[i]`` is chunk *i*'s compressed payload window inside the blob;
    ``out_offsets[i]``/``out_lengths[i]`` give where (and how much) the
    decoded chunk writes into the preallocated output buffer.
    """

    jobs: tuple[ChunkJob, ...]
    out_offsets: tuple[int, ...]
    out_lengths: tuple[int, ...]
    out_len: int

    @property
    def n_chunks(self) -> int:
        return len(self.jobs)


def plan_encode(total_len: int, chunk_size: int = CHUNK_SIZE) -> EncodePlan:
    """Plan the chunk jobs covering ``total_len`` input bytes."""
    lengths = chunk_lengths(total_len, chunk_size)
    offsets = chunk_offsets(total_len, chunk_size)
    jobs = tuple(
        ChunkJob(index=i, offset=off, length=n)
        for i, (off, n) in enumerate(zip(offsets, lengths))
    )
    return EncodePlan(total_len=total_len, chunk_size=chunk_size, jobs=jobs)


def _decode_geometry(info: fmt.ContainerInfo) -> tuple[int, ...]:
    """Validated decoded length of every chunk of a non-raw container."""
    if info.raw_fallback:
        raise ValueError("raw-fallback containers have no chunk plan")
    if info.chunk_size <= 0 and info.intermediate_len > 0:
        raise CorruptDataError("container header carries a zero chunk size")
    lengths = info.decoded_lengths()
    if len(lengths) != info.n_chunks:
        raise CorruptDataError(
            f"chunk count mismatch: header says {info.n_chunks}, "
            f"lengths imply {len(lengths)}"
        )
    return tuple(lengths)


def plan_decode(info: fmt.ContainerInfo) -> DecodePlan:
    """Plan the chunk jobs for decoding a parsed (non-raw) container.

    Containers carrying the v3 explicit index may have ragged interior
    chunks; the write offsets are then the prefix sums of the stored
    decoded lengths rather than multiples of ``chunk_size``.
    """
    lengths = _decode_geometry(info)
    jobs = []
    pos = info.payload_offset
    for i, size in enumerate(info.chunk_sizes):
        jobs.append(ChunkJob(index=i, offset=pos, length=size))
        pos += size
    out_offsets = tuple(accumulate(lengths[:-1], initial=0)) if lengths else ()
    return DecodePlan(
        jobs=tuple(jobs),
        out_offsets=out_offsets,
        out_lengths=lengths,
        out_len=info.intermediate_len,
    )


@dataclass(frozen=True)
class RangePlan:
    """A subset :class:`DecodePlan` covering one requested byte range.

    ``plan`` holds only the chunks overlapping ``[start, stop)`` — jobs
    keep their global chunk index, write offsets are relative to a
    chunk-aligned output buffer of ``plan.out_len`` bytes that begins at
    intermediate offset ``aligned_start``.  ``trim`` is the slice of that
    buffer holding exactly the requested bytes.
    """

    plan: DecodePlan
    first_chunk: int
    aligned_start: int
    start: int
    stop: int

    @property
    def trim(self) -> tuple[int, int]:
        return (self.start - self.aligned_start, self.stop - self.aligned_start)


def plan_for_range(info: fmt.ContainerInfo, start: int, stop: int) -> RangePlan:
    """Plan the chunk jobs whose decoded bytes overlap ``[start, stop)``.

    Coordinates are intermediate-buffer offsets — identical to output
    offsets for every codec without cross-chunk FCM state.  The subset
    plan runs under any executor unchanged; chunks outside the range are
    never read, verified, or decoded.
    """
    if not 0 <= start <= stop <= info.intermediate_len:
        raise BoundsError(
            f"range [{start}, {stop}) out of bounds for "
            f"{info.intermediate_len} decoded bytes"
        )
    lengths = _decode_geometry(info)
    starts = list(accumulate(lengths[:-1], initial=0)) if lengths else []
    if start == stop:
        empty = DecodePlan(jobs=(), out_offsets=(), out_lengths=(), out_len=0)
        return RangePlan(plan=empty, first_chunk=0,
                         aligned_start=start, start=start, stop=stop)
    # First chunk whose window contains `start`; one past the last chunk
    # whose window intersects [start, stop).
    lo = bisect_right(starts, start) - 1
    hi = bisect_right(starts, stop - 1)
    payload_starts = fmt.payload_offsets(info)
    jobs = tuple(
        ChunkJob(index=i, offset=payload_starts[i], length=info.chunk_sizes[i])
        for i in range(lo, hi)
    )
    aligned_start = starts[lo]
    out_offsets = tuple(starts[i] - aligned_start for i in range(lo, hi))
    out_lengths = tuple(lengths[lo:hi])
    out_len = sum(out_lengths)
    return RangePlan(
        plan=DecodePlan(jobs=jobs, out_offsets=out_offsets,
                        out_lengths=out_lengths, out_len=out_len),
        first_chunk=lo,
        aligned_start=aligned_start,
        start=start,
        stop=stop,
    )
