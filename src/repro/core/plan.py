"""Chunk plans: precomputed jobs and prefix-sum offsets (paper §3.1).

A plan is the *static* half of the engine: given only lengths — never
the data — it derives every chunk's read position and, for decoding,
every chunk's write position.  This is the Python rendering of the
paper's observation that "no write positions need to be communicated as
the decompressed chunk sizes are known a priori": the prefix sums over
the chunk-length table ARE the schedule-independent read/write offsets,
so any executor policy can process the jobs in any order and land every
byte in the same place.

:func:`plan_encode` covers compression (equal-size chunks over the
intermediate buffer); :func:`plan_decode` covers decompression (payload
read offsets from the container's chunk table, output write offsets from
the a-priori chunk lengths).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import container as fmt
from repro.core.chunking import CHUNK_SIZE, chunk_lengths, chunk_offsets
from repro.errors import CorruptDataError


@dataclass(frozen=True)
class ChunkJob:
    """One chunk's read window into its source buffer."""

    index: int
    offset: int
    length: int

    @property
    def end(self) -> int:
        return self.offset + self.length


@dataclass(frozen=True)
class EncodePlan:
    """Chunk jobs for compressing one intermediate buffer."""

    total_len: int
    chunk_size: int
    jobs: tuple[ChunkJob, ...]

    @property
    def n_chunks(self) -> int:
        return len(self.jobs)


@dataclass(frozen=True)
class DecodePlan:
    """Read jobs over a container's payload section plus write offsets.

    ``jobs[i]`` is chunk *i*'s compressed payload window inside the blob;
    ``out_offsets[i]``/``out_lengths[i]`` give where (and how much) the
    decoded chunk writes into the preallocated output buffer.
    """

    jobs: tuple[ChunkJob, ...]
    out_offsets: tuple[int, ...]
    out_lengths: tuple[int, ...]
    out_len: int

    @property
    def n_chunks(self) -> int:
        return len(self.jobs)


def plan_encode(total_len: int, chunk_size: int = CHUNK_SIZE) -> EncodePlan:
    """Plan the chunk jobs covering ``total_len`` input bytes."""
    lengths = chunk_lengths(total_len, chunk_size)
    offsets = chunk_offsets(total_len, chunk_size)
    jobs = tuple(
        ChunkJob(index=i, offset=off, length=n)
        for i, (off, n) in enumerate(zip(offsets, lengths))
    )
    return EncodePlan(total_len=total_len, chunk_size=chunk_size, jobs=jobs)


def plan_decode(info: fmt.ContainerInfo) -> DecodePlan:
    """Plan the chunk jobs for decoding a parsed (non-raw) container."""
    if info.raw_fallback:
        raise ValueError("raw-fallback containers have no chunk plan")
    if info.chunk_size <= 0 and info.intermediate_len > 0:
        raise CorruptDataError("container header carries a zero chunk size")
    lengths = chunk_lengths(info.intermediate_len, info.chunk_size or CHUNK_SIZE)
    if len(lengths) != info.n_chunks:
        raise CorruptDataError(
            f"chunk count mismatch: header says {info.n_chunks}, "
            f"lengths imply {len(lengths)}"
        )
    jobs = []
    pos = info.payload_offset
    for i, size in enumerate(info.chunk_sizes):
        jobs.append(ChunkJob(index=i, offset=pos, length=size))
        pos += size
    out_offsets = chunk_offsets(info.intermediate_len, info.chunk_size or CHUNK_SIZE)
    return DecodePlan(
        jobs=tuple(jobs),
        out_offsets=tuple(out_offsets),
        out_lengths=tuple(lengths),
        out_len=info.intermediate_len,
    )
