"""Worker-process entry points for the shared-memory process executor.

Everything here must be picklable by reference (module-level functions,
plain-tuple tasks), because :class:`~repro.core.executors.SharedMemoryProcessExecutor`
ships work to its pool via ``multiprocessing``.  Bulk bytes travel
through named shared memory; only the small task descriptions and the
(compressed) results cross the pipe.

Error contract: a failing chunk is reported as ``(index, type_name,
message)``.  The parent rebuilds the exception class from
:mod:`repro.errors` by name (:func:`rebuild_error`), and the messages are
produced by the same :func:`decode_chunk_guarded` helper the in-process
engine uses for its batched fallback — so a corrupt chunk raises the
byte-identical error under every executor policy.
"""

from __future__ import annotations

import struct
from multiprocessing import shared_memory

from repro import errors as _errors
from repro.errors import ChecksumError, CorruptDataError, ReproError


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to a parent-owned segment without adopting its lifetime.

    On Python < 3.13 ``SharedMemory(name=...)`` registers the segment
    with the resource tracker even for attach-only use.  Under the fork
    start method that tracker is *shared* with the parent and its cache
    is a set, so an unregister issued from this worker would erase the
    parent's own entry and make the parent's later ``unlink`` print a
    ``KeyError`` traceback from the tracker.  The attach must therefore
    never reach the tracker at all: 3.13+ has ``track=False`` for this,
    and older versions get the equivalent by suppressing ``register``
    for the duration of the constructor (workers run tasks serially,
    so the swap is not racy).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        pass
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register

#: Foreign exception types a stage may leak on garbage input (mirrors
#: the engine's list; kept here so worker processes need not import it).
FOREIGN_ERRORS = (ValueError, TypeError, IndexError, KeyError, OverflowError,
                  ZeroDivisionError, struct.error)


def rebuild_error(type_name: str, message: str) -> ReproError:
    """Reconstruct a worker-process error in the parent.

    Unknown or non-:class:`ReproError` type names collapse to
    :class:`CorruptDataError` — the parent never raises a foreign type.
    """
    cls = getattr(_errors, type_name, None)
    if not (isinstance(cls, type) and issubclass(cls, ReproError)):
        cls = CorruptDataError
    return cls(message)


def decode_chunk_guarded(
    pipeline, i: int, payload, length: int, offset: int, end: int, crc
) -> bytes:
    """Decode one chunk with the engine's serial error semantics.

    Verifies the optional payload CRC, translates foreign exceptions to
    :class:`CorruptDataError`, and prefixes every failure with the chunk
    index and container byte range — the exact strings
    ``decompress_bytes`` produces on its serial path.
    """
    from repro.core.container import checksum_of

    if crc is not None and checksum_of(payload) != crc:
        raise ChecksumError(
            f"chunk {i} (container bytes {offset}..{end}): "
            f"payload CRC32 mismatch"
        )
    try:
        return pipeline.decode_chunk(payload, length)
    except ReproError as exc:
        raise type(exc)(
            f"chunk {i} (container bytes {offset}..{end}): {exc}"
        ) from exc
    except FOREIGN_ERRORS as exc:
        raise CorruptDataError(
            f"chunk {i} (container bytes {offset}..{end}): "
            f"undecodable payload ({type(exc).__name__}: {exc})"
        ) from exc


def proc_encode_block(task) -> tuple[list, list]:
    """Compress one contiguous block of chunks inside a worker process.

    ``task`` is ``(shm_name, codec_name, batch, jobs, fcm_restart)`` with
    ``jobs`` a list of ``(index, offset, end)`` windows into the shared
    buffer.  Returns ``(payloads, errors)``; a failed chunk leaves
    ``None`` in its payload slot.
    """
    shm_name, codec_name, batch, jobs, fcm_restart = task
    from repro.core.codecs import get_codec

    shm = _attach(shm_name)
    try:
        # Copy the windows out so the buffer releases cleanly on close.
        chunks = [bytes(shm.buf[offset:end]) for _, offset, end in jobs]
    finally:
        shm.close()
    pipeline = get_codec(codec_name).make_pipeline(fcm_restart)
    if batch and len(chunks) >= 2:
        try:
            return pipeline.encode_chunk_batch(chunks), []
        except Exception:
            pass  # fall through to the serial sweep for attribution
    payloads: list = []
    errors: list[tuple[int, str, str]] = []
    for (i, _, _), chunk in zip(jobs, chunks):
        try:
            payloads.append(pipeline.encode_chunk(chunk))
        except Exception as exc:
            payloads.append(None)
            errors.append((i, type(exc).__name__, str(exc)))
    return payloads, errors


def proc_decode_block(task) -> list:
    """Decode one contiguous block of chunks inside a worker process.

    ``task`` is ``(in_name, out_name, codec_name, batch, jobs,
    fcm_restart)`` with ``jobs`` a list of ``(index, offset, end,
    out_offset, out_length, crc)``.  The index is the container's global
    chunk index (subset/range plans pass it through for attribution);
    decoded chunks land in the output shared memory at their plan-
    relative prefix-sum offsets.  Returns the error triples (empty on
    success).
    """
    in_name, out_name, codec_name, batch, jobs, fcm_restart = task
    from repro.core.codecs import get_codec

    in_shm = _attach(in_name)
    try:
        payloads = [bytes(in_shm.buf[offset:end]) for _, offset, end, _, _, _ in jobs]
    finally:
        in_shm.close()
    pipeline = get_codec(codec_name).make_pipeline(fcm_restart)
    lengths = [length for _, _, _, _, length, _ in jobs]
    chunks: list | None = None
    if batch and len(jobs) >= 2:
        try:
            for (i, offset, end, _, _, crc), payload in zip(jobs, payloads):
                if crc is not None:
                    from repro.core.container import checksum_of

                    if checksum_of(payload) != crc:
                        raise ChecksumError(
                            f"chunk {i} (container bytes {offset}..{end}): "
                            f"payload CRC32 mismatch"
                        )
            chunks = pipeline.decode_chunk_batch(payloads, lengths)
        except Exception:
            chunks = None  # serial sweep below reproduces exact errors
    errors: list[tuple[int, str, str]] = []
    if chunks is None:
        chunks = []
        for (i, offset, end, _, length, crc), payload in zip(jobs, payloads):
            try:
                chunks.append(
                    decode_chunk_guarded(
                        pipeline, i, payload, length, offset, end, crc
                    )
                )
            except Exception as exc:
                chunks.append(None)
                errors.append((i, type(exc).__name__, str(exc)))
    out_shm = _attach(out_name)
    try:
        for (_, _, _, out_offset, length, _), chunk in zip(jobs, chunks):
            if chunk is not None:
                out_shm.buf[out_offset : out_offset + length] = chunk
    finally:
        out_shm.close()
    return errors
