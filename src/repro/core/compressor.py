"""The compression engine: a plan/execute core over zero-copy chunk views.

``compress_bytes`` mirrors the structure of the paper's encoders, split
into the two layers §3.1 implies:

* the **plan** (:mod:`repro.core.plan`) precomputes every chunk's read
  window from prefix sums over the chunk lengths — pure arithmetic, no
  data movement;
* the **executor** (:mod:`repro.core.executors`) decides *who* runs each
  chunk job and *when* — serially, through a dynamic worklist of threads
  (the paper's OpenMP loop), or over a static blocked partition (the
  CPU analogue of a block-per-chunk GPU launch).  Chunks are independent
  by construction, so the output bytes are identical under every policy
  and worker count.

The hot path is zero-copy: chunk jobs read ``memoryview`` windows into
the intermediate buffer (no per-chunk slice copies), and the container /
output buffers are preallocated and filled at the plan's prefix-sum
offsets instead of ``b"".join``-ing pieces.

``decompress_bytes`` inverts the process: the size table's prefix sums
yield each chunk's read position, the a-priori chunk lengths yield each
chunk's *write* position ("No write positions need to be communicated as
the decompressed chunk sizes are known a priori", paper §3.1), chunks
decode independently under any executor, and the global stage's inverse
runs last.

Passing a :class:`~repro.core.trace.TraceCollector` as ``trace=``
records per-chunk instrumentation — stage timings, stage output sizes,
raw-fallback flags, worker assignment — without touching the untraced
fast path.

A whole-input raw fallback caps worst-case expansion at the container
header even for adversarial inputs; it is built lazily, only when the
compressed container failed to beat it.
"""

from __future__ import annotations

import time

from repro.core import container as fmt
from repro.core.chunking import CHUNK_RAW, CHUNK_SIZE
from repro.core.codecs import Codec, codec_by_id
from repro.core.executors import Executor, resolve_executor
from repro.core.plan import plan_decode, plan_encode
from repro.core.trace import ChunkTrace, StageEvent, TraceCollector
from repro.errors import CorruptDataError


def _run_global_stage(
    stage, method: str, data, trace: TraceCollector | None
):
    """Run the whole-input stage (FCM), recording its trace event."""
    fn = getattr(stage, method)
    if trace is None:
        return fn(data)
    start = time.perf_counter()
    out = fn(data)
    trace.global_stage = StageEvent(stage.name, time.perf_counter() - start, len(out))
    return out


def compress_bytes(
    data: bytes,
    codec: Codec,
    *,
    chunk_size: int = CHUNK_SIZE,
    dtype_code: int | None = None,
    shape: tuple[int, ...] | None = None,
    workers: int = 1,
    checksum: bool = False,
    executor: str | Executor | None = None,
    trace: TraceCollector | None = None,
) -> bytes:
    """Compress raw bytes with ``codec`` into a contiguous container.

    ``executor`` selects the scheduling policy (``"serial"``,
    ``"threaded"``, ``"static-blocks"``, or a prebuilt
    :class:`~repro.core.executors.Executor`); when omitted, ``workers``
    picks serial (1) or the threaded worklist (>1).  ``checksum=True``
    embeds a CRC32 of the original data; decompression then verifies
    integrity end to end.  ``trace`` collects per-chunk instrumentation.
    """
    if dtype_code is None:
        dtype_code = {4: fmt.DTYPE_F32, 8: fmt.DTYPE_F64}.get(
            codec.dtype.itemsize, fmt.DTYPE_BYTES
        )
    crc = fmt.checksum_of(data) if checksum else None
    engine = resolve_executor(executor, workers)
    if trace is not None:
        trace.annotate(policy=engine.policy, workers=engine.workers,
                       direction="compress")
    global_stage = codec.make_global_stage()
    if global_stage is not None:
        intermediate = _run_global_stage(global_stage, "encode", data, trace)
    else:
        intermediate = data
    plan = plan_encode(len(intermediate), chunk_size)
    view = memoryview(intermediate)

    def make_worker(worker_id: int):
        pipeline = codec.make_pipeline()

        def encode_job(i: int) -> bytes:
            job = plan.jobs[i]
            chunk = view[job.offset : job.end]
            if trace is None:
                return pipeline.encode_chunk(chunk)
            events: list[StageEvent] = []
            start = time.perf_counter()
            payload = pipeline.encode_chunk(chunk, events)
            trace.add(ChunkTrace(
                index=i,
                worker=worker_id,
                original_len=job.length,
                payload_len=len(payload),
                raw_fallback=payload[0] == CHUNK_RAW,
                seconds=time.perf_counter() - start,
                stages=tuple(events),
            ))
            return payload

        return encode_job

    payloads = engine.run(plan.n_chunks, make_worker)
    blob = fmt.build_container(
        codec_id=codec.codec_id,
        dtype_code=dtype_code,
        original_len=len(data),
        intermediate_len=len(intermediate),
        chunk_size=chunk_size,
        chunk_payloads=payloads,
        shape=shape,
        checksum=crc,
    )
    # Whole-input fallback: never hand back a container larger than raw.
    # Built lazily — compression usually wins, and the fallback copies
    # the entire input.
    raw_size = fmt.raw_container_size(len(data), shape=shape, checksum=crc)
    if raw_size < len(blob):
        return fmt.build_raw_container(
            codec_id=codec.codec_id, dtype_code=dtype_code, data=data,
            shape=shape, checksum=crc,
        )
    return blob


def decompress_bytes(
    blob: bytes,
    *,
    workers: int = 1,
    executor: str | Executor | None = None,
    trace: TraceCollector | None = None,
) -> tuple[bytes, fmt.ContainerInfo]:
    """Decompress a container; returns the original bytes plus its metadata."""
    info = fmt.inspect_container(blob)
    codec = codec_by_id(info.codec_id)
    if info.raw_fallback:
        data = bytes(memoryview(blob)[info.payload_offset :])
        if info.checksum is not None and fmt.checksum_of(data) != info.checksum:
            raise CorruptDataError("checksum mismatch: container payload is corrupt")
        return data, info
    engine = resolve_executor(executor, workers)
    if trace is not None:
        trace.annotate(policy=engine.policy, workers=engine.workers,
                       direction="decompress")
    plan = plan_decode(info)
    view = memoryview(blob)
    # Write positions are known a priori (§3.1): decode straight into a
    # preallocated buffer at the plan's prefix-sum offsets.
    out = bytearray(plan.out_len)

    def make_worker(worker_id: int):
        pipeline = codec.make_pipeline()

        def decode_job(i: int) -> None:
            job = plan.jobs[i]
            payload = view[job.offset : job.end]
            length = plan.out_lengths[i]
            if trace is None:
                chunk = pipeline.decode_chunk(payload, length)
            else:
                events: list[StageEvent] = []
                start = time.perf_counter()
                chunk = pipeline.decode_chunk(payload, length, events)
                trace.add(ChunkTrace(
                    index=i,
                    worker=worker_id,
                    original_len=length,
                    payload_len=job.length,
                    raw_fallback=len(payload) > 0 and payload[0] == CHUNK_RAW,
                    seconds=time.perf_counter() - start,
                    stages=tuple(events),
                ))
            offset = plan.out_offsets[i]
            out[offset : offset + length] = chunk

        return decode_job

    engine.run(plan.n_chunks, make_worker)
    intermediate = bytes(out)
    global_stage = codec.make_global_stage()
    if global_stage is not None:
        data = _run_global_stage(global_stage, "decode", intermediate, trace)
    else:
        data = intermediate
    if len(data) != info.original_len:
        raise CorruptDataError(
            f"decompressed to {len(data)} bytes, expected {info.original_len}"
        )
    if info.checksum is not None and fmt.checksum_of(data) != info.checksum:
        raise CorruptDataError("checksum mismatch: container payload is corrupt")
    return data, info
