"""The compression engine: a plan/execute core over zero-copy chunk views.

``compress_bytes`` mirrors the structure of the paper's encoders, split
into the two layers §3.1 implies:

* the **plan** (:mod:`repro.core.plan`) precomputes every chunk's read
  window from prefix sums over the chunk lengths — pure arithmetic, no
  data movement;
* the **executor** (:mod:`repro.core.executors`) decides *who* runs each
  chunk job and *when* — serially, through a dynamic worklist of threads
  (the paper's OpenMP loop), or over a static blocked partition (the
  CPU analogue of a block-per-chunk GPU launch).  Chunks are independent
  by construction, so the output bytes are identical under every policy
  and worker count.

The hot path is zero-copy: chunk jobs read ``memoryview`` windows into
the intermediate buffer (no per-chunk slice copies), and the container /
output buffers are preallocated and filled at the plan's prefix-sum
offsets instead of ``b"".join``-ing pieces.

``decompress_bytes`` inverts the process: the size table's prefix sums
yield each chunk's read position, the a-priori chunk lengths yield each
chunk's *write* position ("No write positions need to be communicated as
the decompressed chunk sizes are known a priori", paper §3.1), chunks
decode independently under any executor, and the global stage's inverse
runs last.

Corruption hardening
--------------------
Decoding is built so that a damaged container can only fail in
library-controlled ways:

* every declared length is bounds-checked before an allocation is sized
  from it (:func:`repro.core.container.inspect_container` plus the
  geometry checks here), so a flipped header bit cannot trigger an
  over-allocation;
* chunk payload CRCs (container v2) are verified before decode, so
  corruption is caught at the damaged chunk with its byte range;
* foreign exceptions escaping a stage on garbage input are translated to
  :class:`CorruptDataError` at the chunk boundary — callers only ever see
  :class:`~repro.errors.ReproError` subclasses (the invariant
  :mod:`repro.fuzzing` enforces);
* ``errors="salvage"`` decodes every chunk that still verifies,
  zero-fills the ones that do not, and returns a
  :class:`~repro.core.salvage.SalvageReport` mapping the untrusted byte
  ranges — one flipped bit costs one chunk, not the file.

Passing a :class:`~repro.core.trace.TraceCollector` as ``trace=``
records per-chunk instrumentation — stage timings, stage output sizes,
raw-fallback flags, worker assignment — without touching the untraced
fast path.

A whole-input raw fallback caps worst-case expansion at the container
header even for adversarial inputs; it is built lazily, only when the
compressed container failed to beat it.
"""

from __future__ import annotations

import struct
import time

from repro.core import container as fmt
from repro.core._procwork import decode_chunk_guarded
from repro.core.chunking import CHUNK_RAW, CHUNK_SIZE
from repro.core.codecs import Codec, codec_by_id
from repro.core.executors import Executor, resolve_executor, static_block_bounds
from repro.core.plan import EncodePlan, plan_decode, plan_encode, plan_for_range
from repro.core.salvage import ChunkFailure, SalvageReport, merge_ranges
from repro.core.trace import BatchTrace, ChunkTrace, StageEvent, TraceCollector
from repro.errors import BoundsError, ChecksumError, CorruptDataError, ReproError

#: Foreign exception types a stage may leak on garbage input; translated
#: to :class:`CorruptDataError` at the chunk/global-stage boundary.
#: MemoryError is deliberately absent — allocations are prevented by the
#: bounds checks, never papered over after the fact.
_FOREIGN = (ValueError, TypeError, IndexError, KeyError, OverflowError,
            ZeroDivisionError, struct.error)


def _run_global_stage(
    stage, method: str, data, trace: TraceCollector | None
):
    """Run the whole-input stage (FCM), recording its trace event."""
    fn = getattr(stage, method)
    if trace is None:
        return fn(data)
    start = time.perf_counter()
    out = fn(data)
    trace.global_stage = StageEvent(stage.name, time.perf_counter() - start, len(out))
    return out


def _use_batch(batch: bool | None, n_chunks: int) -> bool:
    """Resolve the ``batch`` knob: default on whenever there is a batch."""
    if batch is None:
        return n_chunks >= 2
    return batch and n_chunks >= 2


def _block_ranges(n_chunks: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous ascending chunk blocks, one batched job per block.

    Ascending contiguity is a correctness property, not a convenience:
    the lowest failing *block* then contains the globally lowest failing
    *chunk*, preserving the executors' deterministic-error contract.
    """
    bounds = static_block_bounds(n_chunks, min(workers, n_chunks))
    return [
        (int(bounds[b]), int(bounds[b + 1]))
        for b in range(len(bounds) - 1)
        if bounds[b] < bounds[b + 1]
    ]


def _split_blocks_by_codec(blocks, plan, info) -> list[tuple[int, int]]:
    """Split chunk blocks so each is codec-homogeneous (v4 containers).

    The batched kernels run one pipeline per block, so a block must not
    straddle a codec change in the per-chunk table.  Ascending contiguity
    is preserved, keeping the deterministic-error contract.
    """
    if info.chunk_codecs is None:
        return blocks
    out = []
    for lo, hi in blocks:
        s = lo
        for i in range(lo + 1, hi):
            if (info.chunk_codecs[plan.jobs[i].index]
                    != info.chunk_codecs[plan.jobs[s].index]):
                out.append((s, i))
                s = i
        out.append((s, hi))
    return out


def _member_pipeline(member: Codec):
    """A v4 member codec's chunk pipeline: codecs with a global FCM stage
    always run it restart-framed inside the chunk (the v4 contract)."""
    return member.make_pipeline(member.global_stage_factory is not None)


def _pipeline_resolver(codec: Codec, info: fmt.ContainerInfo):
    """Per-worker ``global chunk index -> pipeline`` for decoding.

    Single-codec containers resolve to one pipeline; mixed (v4)
    containers resolve through the per-chunk codec table, caching one
    pipeline per member codec.  Call once per worker — pipelines are
    thread-local by the executor contract.
    """
    if info.chunk_codecs is None:
        # Built lazily: a selector-coded container with zero chunks has no
        # table and no stages, and never asks for a pipeline.
        single: list = []

        def resolve_single(i: int):
            if not single:
                single.append(codec.make_pipeline(info.fcm_restart))
            return single[0]

        return resolve_single
    cache: dict[int, object] = {}

    def resolve(i: int):
        cid = info.chunk_codecs[i]
        pipeline = cache.get(cid)
        if pipeline is None:
            pipeline = cache[cid] = _member_pipeline(codec_by_id(cid))
        return pipeline

    return resolve


def _chunk_codec_name(info: fmt.ContainerInfo, i: int, codec: Codec) -> str:
    """The codec that encoded chunk ``i`` (salvage attribution)."""
    if info.chunk_codecs is None:
        return codec.name
    return codec_by_id(info.chunk_codecs[i]).name


def _plan_chunk_codecs(info: fmt.ContainerInfo, plan, codec: Codec):
    """Per-plan-position ``(codec_name, fcm_restart)`` pairs for the
    process executor, or ``None`` for single-codec containers."""
    if info.chunk_codecs is None:
        return None
    pairs = []
    for job in plan.jobs:
        member = codec_by_id(info.chunk_codecs[job.index])
        pairs.append((member.name, member.global_stage_factory is not None))
    return pairs


def _make_encode_worker(codec: Codec, plan, view, trace: TraceCollector | None,
                        fcm_restart: bool = False):
    """Per-chunk encode jobs (the non-batched reference path)."""

    def make_worker(worker_id: int):
        pipeline = codec.make_pipeline(fcm_restart)

        def encode_job(i: int) -> bytes:
            job = plan.jobs[i]
            chunk = view[job.offset : job.end]
            if trace is None:
                return pipeline.encode_chunk(chunk)
            events: list[StageEvent] = []
            start = time.perf_counter()
            payload = pipeline.encode_chunk(chunk, events)
            trace.add(ChunkTrace(
                index=job.index,
                worker=worker_id,
                original_len=job.length,
                payload_len=len(payload),
                raw_fallback=payload[0] == CHUNK_RAW,
                seconds=time.perf_counter() - start,
                stages=tuple(events),
            ))
            return payload

        return encode_job

    return make_worker


def _encode_batched_blocks(
    codec: Codec, plan, view, engine: Executor, trace: TraceCollector | None,
    fcm_restart: bool = False,
) -> list:
    """Encode contiguous chunk blocks through the stages' 2D kernels.

    Each block is one executor job: its chunks run as a single
    ``encode_chunk_batch`` pass (one kernel invocation per stage).  Any
    exception inside the batched pass drops the block back to the
    per-chunk loop, so failures keep serial semantics.
    """
    blocks = _block_ranges(plan.n_chunks, engine.workers)

    def make_worker(worker_id: int):
        pipeline = codec.make_pipeline(fcm_restart)

        def encode_block(b: int) -> list:
            lo, hi = blocks[b]
            chunks = [
                view[plan.jobs[i].offset : plan.jobs[i].end]
                for i in range(lo, hi)
            ]
            events: list[StageEvent] = []
            start = time.perf_counter()
            try:
                payloads = pipeline.encode_chunk_batch(
                    chunks, None if trace is None else events
                )
            except Exception:
                worker = _make_encode_worker(
                    codec, plan, view, trace, fcm_restart
                )(worker_id)
                return [worker(i) for i in range(lo, hi)]
            if trace is not None:
                seconds = time.perf_counter() - start
                trace.add_batch(BatchTrace(
                    worker=worker_id,
                    start=plan.jobs[lo].index,
                    n_chunks=hi - lo,
                    seconds=seconds,
                    stages=tuple(events),
                ))
                per_chunk = seconds / (hi - lo)
                for i, payload in zip(range(lo, hi), payloads):
                    trace.add(ChunkTrace(
                        index=plan.jobs[i].index,
                        worker=worker_id,
                        original_len=plan.jobs[i].length,
                        payload_len=len(payload),
                        raw_fallback=payload[0] == CHUNK_RAW,
                        seconds=per_chunk,
                        stages=(),
                        batched=True,
                    ))
            return payloads

        return encode_block

    payloads: list = []
    for block in engine.run(len(blocks), make_worker):
        payloads.extend(block)
    return payloads


def _compress_selector(
    data: bytes,
    codec: Codec,
    *,
    chunk_size: int,
    dtype_code: int,
    shape: tuple[int, ...] | None,
    crc: int | None,
    chunk_checksums: bool,
    engine: Executor,
    trace: TraceCollector | None,
    batch: bool | None,
    selector,
) -> bytes:
    """Encode under the adaptive selector: probe, choose, group, route.

    Selection runs once, up front, on the calling thread — the chosen
    codec table is therefore identical under every executor policy and
    batch setting, and the payload bytes inherit the fixed codecs' own
    executor independence.  Same-decision chunks are grouped into subset
    plans so the columnar ``encode_chunk_batch`` kernels still engage,
    then the payloads scatter back to container order.
    """
    from repro.core.codecs import selection_candidates
    from repro.selection import get_policy, probe_chunks

    policy = get_policy(selector)
    candidates = selection_candidates(dtype_code)
    plan = plan_encode(len(data), chunk_size)
    view = memoryview(data)
    chunks = [view[job.offset : job.end] for job in plan.jobs]
    probes = probe_chunks(chunks, candidates, with_stats=False)
    choices = [policy.choose(p, candidates) for p in probes]
    if trace is not None:
        trace.annotate(selector=policy.name)
    groups: dict[int, list[int]] = {}
    for i, member in enumerate(choices):
        groups.setdefault(member.codec_id, []).append(i)
    payloads: list = [None] * plan.n_chunks
    for cid in sorted(groups):
        member = codec_by_id(cid)
        indices = groups[cid]
        subplan = EncodePlan(
            total_len=plan.total_len,
            chunk_size=chunk_size,
            jobs=tuple(plan.jobs[i] for i in indices),
        )
        # v4 contract: a member's global FCM stage runs restart-framed
        # inside the chunk pipeline, so every chunk stays independent.
        restart = member.global_stage_factory is not None
        batched = _use_batch(batch, subplan.n_chunks)
        if getattr(engine, "kind", None) == "process":
            group_payloads = engine.encode_chunks(
                data, subplan, member.name, batched, fcm_restart=restart
            )
        elif batched:
            group_payloads = _encode_batched_blocks(
                member, subplan, view, engine, trace, restart
            )
        else:
            group_payloads = engine.run(
                subplan.n_chunks,
                _make_encode_worker(member, subplan, view, trace, restart),
            )
        for i, payload in zip(indices, group_payloads):
            payloads[i] = payload
    blob = fmt.build_container(
        codec_id=codec.codec_id,
        dtype_code=dtype_code,
        original_len=len(data),
        intermediate_len=len(data),
        chunk_size=chunk_size,
        chunk_payloads=payloads,
        shape=shape,
        checksum=crc,
        chunk_crcs=chunk_checksums,
        chunk_codecs=[member.codec_id for member in choices],
    )
    raw_size = fmt.raw_container_size(len(data), shape=shape, checksum=crc)
    if raw_size < len(blob):
        return fmt.build_raw_container(
            codec_id=codec.codec_id, dtype_code=dtype_code, data=data,
            shape=shape, checksum=crc,
        )
    return blob


def compress_bytes(
    data: bytes,
    codec: Codec,
    *,
    chunk_size: int = CHUNK_SIZE,
    dtype_code: int | None = None,
    shape: tuple[int, ...] | None = None,
    workers: int = 1,
    checksum: bool = fmt.DEFAULT_CHECKSUM,
    chunk_checksums: bool = fmt.DEFAULT_CHUNK_CHECKSUMS,
    executor: str | Executor | None = None,
    trace: TraceCollector | None = None,
    batch: bool | None = None,
    fcm: str = "global",
    selector=None,
) -> bytes:
    """Compress raw bytes with ``codec`` into a contiguous container.

    ``fcm`` selects how a codec's FCM stage runs (ignored for codecs
    without one): ``"global"`` (default) is the legacy serial whole-input
    pass with the v1/v2 cross-chunk layout — best ratio, because matches
    may reach arbitrarily far back; ``"restart"`` re-seeds the predictor
    at every chunk boundary and runs FCM *inside* the chunk pipeline —
    container v3, every chunk independently decodable, every executor
    policy usable, :func:`decompress_range_bytes` O(range).  Restart
    caps the match distance at one chunk, so its ratio cost is
    data-dependent: ~1-2% on smooth fields, large on data whose repeats
    sit further back than ``chunk_size`` (measured numbers in
    ALGORITHMS.md).

    ``executor`` selects the scheduling policy (``"serial"``,
    ``"threaded"``, ``"static-blocks"``, ``"process"``, or a prebuilt
    :class:`~repro.core.executors.Executor`); when omitted, ``workers``
    picks serial (1) or the threaded worklist (>1).  ``batch`` controls
    columnar chunk batching — each worker runs whole *blocks* of chunks
    through the stages' 2D kernels instead of one chunk at a time; the
    default (``None``) batches whenever the input spans at least two
    chunks.  Batching never changes output bytes.  ``checksum``
    embeds a CRC32 of the original data (verified end to end on
    decompression) and ``chunk_checksums`` a CRC32 per chunk payload
    (container v2; localises corruption to one chunk and enables
    salvage-mode recovery); both default to the documented
    :data:`repro.core.container.DEFAULT_CHECKSUM` /
    :data:`~repro.core.container.DEFAULT_CHUNK_CHECKSUMS`.  ``trace``
    collects per-chunk instrumentation.

    When ``codec`` is the adaptive selector (``auto``), every chunk is
    probed and routed to the best fixed codec for its statistics and the
    output is a v4 container with a per-chunk codec table; ``selector``
    then picks the decision policy (``"heuristic"`` default,
    ``"trained"``, a thresholds-file path, or a
    :class:`~repro.selection.SelectionPolicy`).  ``fcm`` is ignored —
    member codecs with an FCM stage always run it restart-framed.
    """
    if fcm not in ("restart", "global"):
        raise ValueError(f"fcm must be 'restart' or 'global', not {fcm!r}")
    if dtype_code is None:
        dtype_code = {4: fmt.DTYPE_F32, 8: fmt.DTYPE_F64}.get(
            codec.dtype.itemsize, fmt.DTYPE_BYTES
        )
    crc = fmt.checksum_of(data) if checksum else None
    engine = resolve_executor(executor, workers)
    if trace is not None:
        trace.annotate(policy=engine.policy, workers=engine.workers,
                       direction="compress")
    if codec.selector:
        try:
            return _compress_selector(
                data, codec, chunk_size=chunk_size, dtype_code=dtype_code,
                shape=shape, crc=crc, chunk_checksums=chunk_checksums,
                engine=engine, trace=trace, batch=batch, selector=selector,
            )
        finally:
            if (getattr(engine, "kind", None) == "process"
                    and engine is not executor):
                engine.close()
    restart = fcm == "restart" and codec.global_stage_factory is not None
    global_stage = None if restart else codec.make_global_stage()
    if global_stage is not None:
        intermediate = _run_global_stage(global_stage, "encode", data, trace)
    else:
        intermediate = data
    plan = plan_encode(len(intermediate), chunk_size)
    view = memoryview(intermediate)
    batched = _use_batch(batch, plan.n_chunks)
    if getattr(engine, "kind", None) == "process":
        # GIL-free path: ship the intermediate buffer through shared
        # memory; per-chunk trace records are not collected across the
        # process boundary (the annotate() metadata still is).
        try:
            payloads = engine.encode_chunks(
                intermediate, plan, codec.name, batched, fcm_restart=restart
            )
        finally:
            if engine is not executor:
                # A policy string built this engine, so this call owns
                # its worker processes; don't leak them.
                engine.close()
    elif batched:
        payloads = _encode_batched_blocks(codec, plan, view, engine, trace,
                                          restart)
    else:
        payloads = engine.run(
            plan.n_chunks,
            _make_encode_worker(codec, plan, view, trace, restart),
        )
    blob = fmt.build_container(
        codec_id=codec.codec_id,
        dtype_code=dtype_code,
        original_len=len(data),
        intermediate_len=len(intermediate),
        chunk_size=chunk_size,
        chunk_payloads=payloads,
        shape=shape,
        checksum=crc,
        chunk_crcs=chunk_checksums,
        fcm_restart=restart,
    )
    # Whole-input fallback: never hand back a container larger than raw.
    # Built lazily — compression usually wins, and the fallback copies
    # the entire input.
    raw_size = fmt.raw_container_size(len(data), shape=shape, checksum=crc)
    if raw_size < len(blob):
        return fmt.build_raw_container(
            codec_id=codec.codec_id, dtype_code=dtype_code, data=data,
            shape=shape, checksum=crc,
        )
    return blob


def _check_geometry(info: fmt.ContainerInfo, codec: Codec) -> None:
    """Reject header geometry no output of ``codec`` could produce.

    Runs after :func:`~repro.core.container.inspect_container`'s generic
    bounds checks, adding the codec-specific constraint on the
    intermediate length — the last declared quantity an allocation is
    sized from.
    """
    if info.fcm_restart and codec.global_stage_factory is None:
        raise CorruptDataError(
            f"codec {codec.name!r} has no FCM stage, but the container "
            f"declares FCM restart markers"
        )
    if codec.selector and info.n_chunks and info.chunk_codecs is None:
        raise CorruptDataError(
            f"codec {codec.name!r} is a selector, but the container "
            f"carries no per-chunk codec table"
        )
    if info.chunk_codecs is not None and not codec.selector:
        raise CorruptDataError(
            f"container carries a per-chunk codec table, but its header "
            f"codec {codec.name!r} is not a selector"
        )
    global_stage = None if info.fcm_restart else codec.make_global_stage()
    if global_stage is None:
        if info.intermediate_len != info.original_len:
            raise CorruptDataError(
                f"codec {codec.name!r} has no global stage, but the header "
                f"declares intermediate length {info.intermediate_len} != "
                f"original length {info.original_len}"
            )
    else:
        limit = global_stage.max_encoded_len(info.original_len)
        if info.intermediate_len > limit:
            raise BoundsError(
                f"declared intermediate length {info.intermediate_len} "
                f"exceeds the {global_stage.name} stage's maximum "
                f"{limit} for {info.original_len} original bytes"
            )


def _make_decode_worker(
    codec: Codec, plan, info, view, out, trace: TraceCollector | None
):
    """Per-chunk decode jobs (the non-batched reference path)."""

    def make_worker(worker_id: int):
        resolve = _pipeline_resolver(codec, info)

        def decode_job(i: int) -> None:
            job = plan.jobs[i]
            pipeline = resolve(job.index)
            payload = view[job.offset : job.end]
            length = plan.out_lengths[i]
            # Subset plans keep the global chunk index on the job — error
            # attribution and CRC lookups must name the container's chunk.
            _verify_chunk_crc(info, job.index, payload, job)
            try:
                if trace is None:
                    chunk = pipeline.decode_chunk(payload, length)
                else:
                    events: list[StageEvent] = []
                    start = time.perf_counter()
                    chunk = pipeline.decode_chunk(payload, length, events)
                    trace.add(ChunkTrace(
                        index=job.index,
                        worker=worker_id,
                        original_len=length,
                        payload_len=job.length,
                        raw_fallback=len(payload) > 0 and payload[0] == CHUNK_RAW,
                        seconds=time.perf_counter() - start,
                        stages=tuple(events),
                    ))
            except ReproError as exc:
                raise type(exc)(
                    f"chunk {job.index} (container bytes {job.offset}..{job.end}): {exc}"
                ) from exc
            except _FOREIGN as exc:
                raise CorruptDataError(
                    f"chunk {job.index} (container bytes {job.offset}..{job.end}): "
                    f"undecodable payload ({type(exc).__name__}: {exc})"
                ) from exc
            offset = plan.out_offsets[i]
            out[offset : offset + length] = chunk

        return decode_job

    return make_worker


def _decode_batched_blocks(
    codec: Codec,
    plan,
    info,
    view,
    out,
    engine: Executor,
    trace: TraceCollector | None,
) -> None:
    """Decode contiguous chunk blocks through the stages' 2D kernels.

    Any exception inside a batched pass (corruption, structural mismatch)
    re-runs that block chunk-by-chunk with the engine's serial error
    semantics, so a damaged container raises the byte-identical error —
    same type, message, and chunk attribution — batching would otherwise
    obscure.
    """
    blocks = _split_blocks_by_codec(
        _block_ranges(plan.n_chunks, engine.workers), plan, info
    )

    def make_worker(worker_id: int):
        resolve = _pipeline_resolver(codec, info)

        def decode_block(b: int) -> None:
            lo, hi = blocks[b]
            # Blocks are codec-homogeneous by construction, so one
            # pipeline serves the whole block.
            pipeline = resolve(plan.jobs[lo].index)
            payloads = [
                view[plan.jobs[i].offset : plan.jobs[i].end]
                for i in range(lo, hi)
            ]
            lengths = [plan.out_lengths[i] for i in range(lo, hi)]
            events: list[StageEvent] = []
            start = time.perf_counter()
            try:
                for i in range(lo, hi):
                    _verify_chunk_crc(info, plan.jobs[i].index, payloads[i - lo],
                                      plan.jobs[i])
                chunks = pipeline.decode_chunk_batch(
                    payloads, lengths, None if trace is None else events
                )
            except Exception:
                # Serial re-run: first failure raises the exact error the
                # serial schedule reports (lowest chunk of the block).
                for i in range(lo, hi):
                    job = plan.jobs[i]
                    chunk = decode_chunk_guarded(
                        pipeline,
                        job.index,
                        payloads[i - lo],
                        plan.out_lengths[i],
                        job.offset,
                        job.end,
                        None if info.chunk_crcs is None
                        else info.chunk_crcs[job.index],
                    )
                    offset = plan.out_offsets[i]
                    out[offset : offset + plan.out_lengths[i]] = chunk
                return
            if trace is not None:
                seconds = time.perf_counter() - start
                trace.add_batch(BatchTrace(
                    worker=worker_id,
                    start=plan.jobs[lo].index,
                    n_chunks=hi - lo,
                    seconds=seconds,
                    stages=tuple(events),
                ))
                per_chunk = seconds / (hi - lo)
                for i, payload in zip(range(lo, hi), payloads):
                    trace.add(ChunkTrace(
                        index=plan.jobs[i].index,
                        worker=worker_id,
                        original_len=plan.out_lengths[i],
                        payload_len=plan.jobs[i].length,
                        raw_fallback=len(payload) > 0 and payload[0] == CHUNK_RAW,
                        seconds=per_chunk,
                        stages=(),
                        batched=True,
                    ))
            for i, chunk in zip(range(lo, hi), chunks):
                offset = plan.out_offsets[i]
                out[offset : offset + plan.out_lengths[i]] = chunk

        return decode_block

    engine.run(len(blocks), make_worker)


def decompress_bytes(
    blob: bytes,
    *,
    workers: int = 1,
    executor: str | Executor | None = None,
    trace: TraceCollector | None = None,
    errors: str = "raise",
    batch: bool | None = None,
):
    """Decompress a container; returns the original bytes plus its metadata.

    ``errors`` selects the failure policy:

    * ``"raise"`` (default) — any verification or decode failure raises a
      :class:`~repro.errors.ReproError` subclass carrying the chunk index
      and container byte range; returns ``(data, info)``.
    * ``"salvage"`` — decode every chunk that verifies, zero-fill the
      ones that do not, and return ``(data, info, report)`` where
      ``report`` is a :class:`~repro.core.salvage.SalvageReport` listing
      each failure and the untrusted output byte ranges.  Only damage the
      header itself (magic, version, geometry) still raises — without a
      parseable chunk table there is nothing to salvage.
    """
    if errors not in ("raise", "salvage"):
        raise ValueError(f"errors must be 'raise' or 'salvage', not {errors!r}")
    info = fmt.inspect_container(blob)
    codec = codec_by_id(info.codec_id)
    _check_geometry(info, codec)
    if errors == "salvage":
        return _decompress_salvage(blob, info, codec, workers=workers,
                                   executor=executor, trace=trace)
    if info.raw_fallback:
        data = bytes(memoryview(blob)[info.payload_offset :])
        if info.checksum is not None and fmt.checksum_of(data) != info.checksum:
            raise ChecksumError(
                "whole-input CRC32 mismatch: raw-fallback payload is corrupt"
            )
        return data, info
    engine = resolve_executor(executor, workers)
    if trace is not None:
        trace.annotate(policy=engine.policy, workers=engine.workers,
                       direction="decompress")
    plan = plan_decode(info)
    view = memoryview(blob)
    # Write positions are known a priori (§3.1): decode straight into a
    # preallocated buffer at the plan's prefix-sum offsets.
    batched = _use_batch(batch, plan.n_chunks)
    if getattr(engine, "kind", None) == "process":
        try:
            intermediate = engine.decode_chunks(
                blob, plan, codec.name, info.chunk_crcs, batched,
                fcm_restart=info.fcm_restart,
                chunk_codecs=_plan_chunk_codecs(info, plan, codec),
            )
        finally:
            if engine is not executor:
                # A policy string built this engine, so this call owns
                # its worker processes; don't leak them.
                engine.close()
    else:
        out = bytearray(plan.out_len)
        if batched:
            _decode_batched_blocks(codec, plan, info, view, out, engine, trace)
        else:
            engine.run(
                plan.n_chunks,
                _make_decode_worker(codec, plan, info, view, out, trace),
            )
        intermediate = bytes(out)
    global_stage = None if info.fcm_restart else codec.make_global_stage()
    if global_stage is not None:
        try:
            data = _run_global_stage(global_stage, "decode", intermediate, trace)
        except ReproError as exc:
            raise type(exc)(f"global stage {global_stage.name!r}: {exc}") from exc
        except _FOREIGN as exc:
            raise CorruptDataError(
                f"global stage {global_stage.name!r}: undecodable intermediate "
                f"({type(exc).__name__}: {exc})"
            ) from exc
    else:
        data = intermediate
    if len(data) != info.original_len:
        raise CorruptDataError(
            f"decompressed to {len(data)} bytes, expected {info.original_len}"
        )
    if info.checksum is not None and fmt.checksum_of(data) != info.checksum:
        raise ChecksumError(
            "whole-input CRC32 mismatch: container payload is corrupt"
        )
    return data, info


def _clip_ranges(ranges, start: int, stop: int) -> tuple[tuple[int, int], ...]:
    """Intersect byte ranges with ``[start, stop)`` and shift to 0-based."""
    out = []
    for a, b in ranges:
        a2, b2 = max(a, start), min(b, stop)
        if a2 < b2:
            out.append((a2 - start, b2 - start))
    return tuple(out)


def decompress_range_bytes(
    blob: bytes,
    start: int,
    stop: int,
    *,
    workers: int = 1,
    executor: str | Executor | None = None,
    trace: TraceCollector | None = None,
    errors: str = "raise",
    batch: bool | None = None,
):
    """Decode only the bytes ``[start, stop)`` of a container's original data.

    Plans the subset of chunks overlapping the range
    (:func:`~repro.core.plan.plan_for_range`) and runs them through the
    same executors as a full decode — chunks outside the range are never
    read, CRC-verified, or decoded.  Returns ``(data, info)`` where
    ``data`` is byte-identical to ``decompress_bytes(blob)[0][start:stop]``.

    Two container layouts cannot decode partially and fall back:

    * raw-fallback containers slice the stored payload directly (no
      decode at all);
    * v1/v2 containers with cross-chunk FCM state (legacy DPratio) run a
      full decode and slice — correct, but O(file) not O(range).

    The whole-input CRC32 covers data outside the range and is never
    verified here.  ``errors="salvage"`` returns ``(data, info, report)``
    with per-chunk failures zero-filled; the report's ``damaged_ranges``
    are relative to the returned slice and ``checksum_ok`` is ``None``
    (a slice cannot be checksum-verified).
    """
    if errors not in ("raise", "salvage"):
        raise ValueError(f"errors must be 'raise' or 'salvage', not {errors!r}")
    info = fmt.inspect_container(blob)
    codec = codec_by_id(info.codec_id)
    _check_geometry(info, codec)
    if not 0 <= start <= stop <= info.original_len:
        raise BoundsError(
            f"range [{start}, {stop}) out of bounds for "
            f"{info.original_len} original bytes"
        )
    if info.raw_fallback:
        base = info.payload_offset
        data = bytes(memoryview(blob)[base + start : base + stop])
        if errors == "salvage":
            report = SalvageReport(
                n_chunks=0, output_len=len(data), checksum_ok=None,
            )
            return data, info, report
        return data, info
    if not info.fcm_restart and codec.global_stage_factory is not None:
        # Cross-chunk FCM (legacy v1/v2 DPratio): every output byte may
        # depend on any chunk, so there is nothing partial to plan.
        if errors == "salvage":
            data, _, full = _decompress_salvage(
                blob, info, codec, workers=workers, executor=executor,
                trace=trace,
            )
            report = SalvageReport(
                n_chunks=full.n_chunks,
                output_len=stop - start,
                failures=full.failures,
                damaged_ranges=_clip_ranges(full.damaged_ranges, start, stop),
                checksum_ok=full.checksum_ok,
                global_stage_failed=full.global_stage_failed,
                notes=full.notes + (
                    "range read fell back to a full decode: the container "
                    "carries cross-chunk FCM state (no restart markers)",
                ),
            )
            return data[start:stop], info, report
        data, _ = decompress_bytes(blob, workers=workers, executor=executor,
                                   trace=trace, batch=batch)
        return data[start:stop], info
    rplan = plan_for_range(info, start, stop)
    plan = rplan.plan
    engine = resolve_executor(executor, workers)
    if trace is not None:
        trace.annotate(policy=engine.policy, workers=engine.workers,
                       direction="decompress-range")
    view = memoryview(blob)
    batched = _use_batch(batch, plan.n_chunks)
    lo, hi = rplan.trim
    if errors == "salvage":
        out = bytearray(plan.out_len)
        failures: list[ChunkFailure] = []  # list.append is GIL-atomic

        def make_worker(worker_id: int):
            resolve = _pipeline_resolver(codec, info)

            def decode_job(i: int) -> None:
                job = plan.jobs[i]
                payload = view[job.offset : job.end]
                length = plan.out_lengths[i]
                offset = plan.out_offsets[i]
                try:
                    _verify_chunk_crc(info, job.index, payload, job)
                    chunk = resolve(job.index).decode_chunk(payload, length)
                except Exception as exc:
                    failures.append(ChunkFailure(
                        index=job.index,
                        payload_offset=job.offset,
                        payload_length=job.length,
                        output_offset=rplan.aligned_start + offset,
                        output_length=length,
                        reason=str(exc) or type(exc).__name__,
                        error_type=type(exc).__name__,
                        codec=_chunk_codec_name(info, job.index, codec),
                    ))
                    return
                out[offset : offset + length] = chunk

            return decode_job

        engine.run(plan.n_chunks, make_worker)
        failures.sort(key=lambda f: f.index)
        data = bytes(out[lo:hi])
        damaged = _clip_ranges(
            merge_ranges(
                (f.output_offset, f.output_offset + f.output_length)
                for f in failures
            ),
            start, stop,
        )
        notes = ()
        if failures:
            notes = ("range read: damaged ranges are relative to the "
                     "returned slice; failure offsets are absolute",)
        report = SalvageReport(
            n_chunks=plan.n_chunks,
            output_len=len(data),
            failures=tuple(failures),
            damaged_ranges=damaged,
            checksum_ok=None,
            notes=notes,
        )
        return data, info, report
    if getattr(engine, "kind", None) == "process":
        try:
            decoded = engine.decode_chunks(
                blob, plan, codec.name, info.chunk_crcs, batched,
                fcm_restart=info.fcm_restart,
                chunk_codecs=_plan_chunk_codecs(info, plan, codec),
            )
        finally:
            if engine is not executor:
                engine.close()
        return bytes(decoded[lo:hi]), info
    out = bytearray(plan.out_len)
    if plan.n_chunks:
        if batched:
            _decode_batched_blocks(codec, plan, info, view, out, engine, trace)
        else:
            engine.run(
                plan.n_chunks,
                _make_decode_worker(codec, plan, info, view, out, trace),
            )
    return bytes(out[lo:hi]), info


def _verify_chunk_crc(info: fmt.ContainerInfo, i: int, payload, job) -> None:
    """Raise :class:`ChecksumError` when chunk ``i`` fails its stored CRC."""
    if info.chunk_crcs is not None and fmt.checksum_of(payload) != info.chunk_crcs[i]:
        raise ChecksumError(
            f"chunk {i} (container bytes {job.offset}..{job.end}): "
            f"payload CRC32 mismatch"
        )


def _decompress_salvage(
    blob: bytes,
    info: fmt.ContainerInfo,
    codec: Codec,
    *,
    workers: int = 1,
    executor: str | Executor | None = None,
    trace: TraceCollector | None = None,
) -> tuple[bytes, fmt.ContainerInfo, SalvageReport]:
    """Best-effort decode: recover every verifiable chunk, map the rest."""
    notes: list[str] = []
    if info.raw_fallback:
        data = bytes(memoryview(blob)[info.payload_offset :])
        checksum_ok = None
        damaged: tuple[tuple[int, int], ...] = ()
        if info.checksum is not None:
            checksum_ok = fmt.checksum_of(data) == info.checksum
            if not checksum_ok:
                damaged = ((0, len(data)),) if data else ()
                notes.append(
                    "raw-fallback payload failed the whole-input checksum; "
                    "damage cannot be localised without chunks"
                )
        report = SalvageReport(
            n_chunks=0, output_len=len(data), damaged_ranges=damaged,
            checksum_ok=checksum_ok, notes=tuple(notes),
        )
        return data, info, report
    engine = resolve_executor(executor, workers)
    if trace is not None:
        trace.annotate(policy=engine.policy, workers=engine.workers,
                       direction="salvage")
    plan = plan_decode(info)
    view = memoryview(blob)
    out = bytearray(plan.out_len)
    failures: list[ChunkFailure] = []  # list.append is GIL-atomic

    def make_worker(worker_id: int):
        resolve = _pipeline_resolver(codec, info)

        def decode_job(i: int) -> None:
            job = plan.jobs[i]
            payload = view[job.offset : job.end]
            length = plan.out_lengths[i]
            offset = plan.out_offsets[i]
            try:
                _verify_chunk_crc(info, job.index, payload, job)
                chunk = resolve(job.index).decode_chunk(payload, length)
            except Exception as exc:
                # Contained: the window stays zero-filled, the worklist
                # moves on, and the failure is reported with both its
                # payload and output coordinates.
                failures.append(ChunkFailure(
                    index=job.index,
                    payload_offset=job.offset,
                    payload_length=job.length,
                    output_offset=offset,
                    output_length=length,
                    reason=str(exc) or type(exc).__name__,
                    error_type=type(exc).__name__,
                    codec=_chunk_codec_name(info, job.index, codec),
                ))
                return
            out[offset : offset + length] = chunk

        return decode_job

    engine.run(plan.n_chunks, make_worker)
    failures.sort(key=lambda f: f.index)
    intermediate = bytes(out)
    damaged_inter = merge_ranges(
        (f.output_offset, f.output_offset + f.output_length) for f in failures
    )
    global_stage = None if info.fcm_restart else codec.make_global_stage()
    global_failed = False
    if global_stage is None:
        data = intermediate
        damaged_out = damaged_inter
    else:
        try:
            data, damaged_out = global_stage.decode_salvage(
                intermediate, damaged_inter
            )
        except Exception as exc:
            global_failed = True
            notes.append(
                f"global stage {global_stage.name!r} inverse failed "
                f"({type(exc).__name__}: {exc}); output zero-filled"
            )
            data = bytes(info.original_len)
            damaged_out = ((0, info.original_len),) if info.original_len else ()
    if len(data) != info.original_len:
        notes.append(
            f"decoded length {len(data)} != declared {info.original_len}; "
            f"output adjusted and fully marked damaged"
        )
        data = data[: info.original_len] + bytes(
            max(0, info.original_len - len(data))
        )
        damaged_out = ((0, info.original_len),) if info.original_len else ()
    checksum_ok = None
    if info.checksum is not None:
        checksum_ok = fmt.checksum_of(data) == info.checksum
        if not checksum_ok and not failures and not global_failed and not damaged_out:
            notes.append(
                "whole-input checksum mismatch with every chunk verifying; "
                "damage sits outside the chunk CRCs' reach"
            )
            damaged_out = ((0, len(data)),) if data else ()
    report = SalvageReport(
        n_chunks=info.n_chunks,
        output_len=len(data),
        failures=tuple(failures),
        damaged_ranges=merge_ranges(damaged_out),
        checksum_ok=checksum_ok,
        global_stage_failed=global_failed,
        notes=tuple(notes),
    )
    return data, info, report
