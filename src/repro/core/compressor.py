"""The compression engine: global stage + chunk pipeline + container.

``compress_bytes`` mirrors the structure of the paper's encoders: the
(optional) global FCM stage runs first over the whole input, the result
is cut into independent 16 KiB chunks, each chunk runs through the stage
pipeline (with per-chunk raw fallback), and the compressed chunks are
concatenated behind a size table — the serial equivalent of the
prefix-sum write positions the parallel codes communicate.

``decompress_bytes`` inverts the process: the size table's prefix sums
yield each chunk's read position ("No write positions need to be
communicated as the decompressed chunk sizes are known a priori",
paper §3.1), chunks are decoded independently, and the global stage's
inverse runs last.

``workers > 1`` processes chunks on a thread pool — the analogue of the
paper's dynamic OpenMP worklist ("each running thread requests the next
available chunk").  Chunks are independent by construction, so the output
bytes are identical for any worker count.

A whole-input raw fallback caps worst-case expansion at the container
header even for adversarial inputs.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor

from repro.core import container as fmt
from repro.core.chunking import CHUNK_SIZE, chunk_lengths, iter_chunks
from repro.core.codecs import Codec, codec_by_id
from repro.errors import CorruptDataError


def _map_chunks(
    make_worker: Callable[[], Callable],
    items: Sequence,
    workers: int,
) -> list:
    """Apply a per-chunk function to independent chunks, in order.

    ``make_worker`` builds a fresh callable per thread (pipelines hold no
    cross-chunk state, but private instances keep the contract obvious).
    """
    if workers <= 1:
        worker = make_worker()
        return [worker(item) for item in items]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        pool_workers = [make_worker() for _ in range(workers)]
        futures = [
            pool.submit(pool_workers[i % workers], item)
            for i, item in enumerate(items)
        ]
        return [f.result() for f in futures]


def compress_bytes(
    data: bytes,
    codec: Codec,
    *,
    chunk_size: int = CHUNK_SIZE,
    dtype_code: int | None = None,
    shape: tuple[int, ...] | None = None,
    workers: int = 1,
    checksum: bool = False,
) -> bytes:
    """Compress raw bytes with ``codec`` into a contiguous container.

    ``checksum=True`` embeds a CRC32 of the original data; decompression
    then verifies integrity end to end.
    """
    if dtype_code is None:
        dtype_code = {4: fmt.DTYPE_F32, 8: fmt.DTYPE_F64}.get(
            codec.dtype.itemsize, fmt.DTYPE_BYTES
        )
    crc = fmt.checksum_of(data) if checksum else None
    global_stage = codec.make_global_stage()
    intermediate = global_stage.encode(data) if global_stage is not None else data
    payloads = _map_chunks(
        lambda: codec.make_pipeline().encode_chunk,
        list(iter_chunks(intermediate, chunk_size)),
        workers,
    )
    blob = fmt.build_container(
        codec_id=codec.codec_id,
        dtype_code=dtype_code,
        original_len=len(data),
        intermediate_len=len(intermediate),
        chunk_size=chunk_size,
        chunk_payloads=payloads,
        shape=shape,
        checksum=crc,
    )
    raw = fmt.build_raw_container(
        codec_id=codec.codec_id, dtype_code=dtype_code, data=data, shape=shape,
        checksum=crc,
    )
    # Whole-input fallback: never hand back a container larger than raw.
    return raw if len(raw) < len(blob) else blob


def decompress_bytes(blob: bytes, *, workers: int = 1) -> tuple[bytes, fmt.ContainerInfo]:
    """Decompress a container; returns the original bytes plus its metadata."""
    info = fmt.inspect_container(blob)
    codec = codec_by_id(info.codec_id)
    if info.raw_fallback:
        data = blob[info.payload_offset :]
        if info.checksum is not None and fmt.checksum_of(data) != info.checksum:
            raise CorruptDataError("checksum mismatch: container payload is corrupt")
        return data, info
    lengths = chunk_lengths(info.intermediate_len, info.chunk_size)
    if len(lengths) != info.n_chunks:
        raise CorruptDataError(
            f"chunk count mismatch: header says {info.n_chunks}, "
            f"lengths imply {len(lengths)}"
        )
    jobs = []
    pos = info.payload_offset
    for size, original_len in zip(info.chunk_sizes, lengths):
        jobs.append((blob[pos : pos + size], original_len))
        pos += size

    def make_worker():
        pipeline = codec.make_pipeline()
        return lambda job: pipeline.decode_chunk(job[0], job[1])

    pieces = _map_chunks(make_worker, jobs, workers)
    intermediate = b"".join(pieces)
    global_stage = codec.make_global_stage()
    data = global_stage.decode(intermediate) if global_stage is not None else intermediate
    if len(data) != info.original_len:
        raise CorruptDataError(
            f"decompressed to {len(data)} bytes, expected {info.original_len}"
        )
    if info.checksum is not None and fmt.checksum_of(data) != info.checksum:
        raise CorruptDataError("checksum mismatch: container payload is corrupt")
    return data, info
