"""Bit-level substrate used by every compression stage.

This subpackage contains the vectorised primitives the paper's data
transformations are built from:

* :mod:`repro.bitpack.zigzag` — two's-complement <-> magnitude-sign maps,
  the representation change inside DIFFMS and the enhanced MPLG stage.
* :mod:`repro.bitpack.clz` — count-leading-zeros and leading-common-bits,
  used by MPLG, RAZE, and RARE.
* :mod:`repro.bitpack.packing` — fixed-width MSB-first bit packing of word
  arrays, the payload encoding of MPLG/RAZE/RARE.
* :mod:`repro.bitpack.lanes` — the word-lane shift/OR kernels behind
  ``packing`` (chained-value lanes, strided window tables); byte-identical
  to the historical bit-matrix implementation, which the test suite keeps
  as a reference.
* :mod:`repro.bitpack.transpose` — bit transposition (the BIT stage).
* :mod:`repro.bitpack.bytes_util` — byte views, byte shuffles, safe casts.
* :mod:`repro.bitpack.backend` — the kernel backend registry: the hot
  kernels above dispatch through it, so accelerated implementations
  (numba JIT, cupy) can be swapped in per process without touching call
  sites.  Every backend must be byte-identical to the numpy reference.

All functions operate on numpy arrays and are pure (no in-place mutation
of caller data).
"""

from repro.bitpack.backend import (
    KernelBackend,
    active_backend,
    available_backends,
    backend_versions,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)
from repro.bitpack.bytes_util import (
    byte_shuffle,
    byte_unshuffle,
    words_from_bytes,
    words_to_bytes,
)
from repro.bitpack.clz import count_leading_zeros, leading_common_bits
from repro.bitpack.packing import pack_words, unpack_words, packed_size_bytes
from repro.bitpack.transpose import (
    bit_transpose,
    bit_transpose_batch,
    bit_untranspose,
    bit_untranspose_batch,
)
from repro.bitpack.zigzag import zigzag_decode, zigzag_encode

__all__ = [
    "KernelBackend",
    "active_backend",
    "available_backends",
    "backend_versions",
    "bit_transpose",
    "bit_transpose_batch",
    "bit_untranspose",
    "bit_untranspose_batch",
    "byte_shuffle",
    "byte_unshuffle",
    "count_leading_zeros",
    "get_backend",
    "leading_common_bits",
    "pack_words",
    "packed_size_bytes",
    "register_backend",
    "set_backend",
    "unpack_words",
    "use_backend",
    "words_from_bytes",
    "words_to_bytes",
    "zigzag_decode",
    "zigzag_encode",
]
