"""Bit transposition — the BIT stage of SPratio (paper §3.2, Figure 4).

Grouping the first bit of every value together, then all second bits, and
so on, places the (mostly zero) sign/exponent bits of DIFFMS output next
to each other, producing long zero runs that the following RZE stage
removes.

The transposition is performed over the whole word group at once: with
``n`` words of ``w`` bits the bit matrix is ``n x w``; transposing gives
``w`` rows of ``n`` bits each, serialised row by row (each row padded to
a whole byte so the transform stays invertible for any ``n``).
"""

from __future__ import annotations

import numpy as np


def bit_transpose(words: np.ndarray, word_bits: int) -> bytes:
    """Transpose the bit matrix of ``words``; returns the row-major stream.

    Output size is ``word_bits * ceil(n / 8)`` bytes.
    """
    n = len(words)
    if n == 0:
        return b""
    word_bytes = word_bits // 8
    be = words.astype(words.dtype.newbyteorder(">"), copy=False)
    bits = np.unpackbits(be.view(np.uint8).reshape(n, word_bytes), axis=1)
    # packbits pads each row (bit plane) independently to a byte boundary.
    return np.packbits(bits.T, axis=1).tobytes()


def bit_untranspose(buf: bytes | np.ndarray, count: int, word_bits: int) -> np.ndarray:
    """Inverse of :func:`bit_transpose`; returns ``count`` unsigned words."""
    dtype = np.dtype(f"u{word_bits // 8}")
    if count == 0:
        return np.zeros(0, dtype=dtype)
    raw = np.frombuffer(buf, dtype=np.uint8) if isinstance(buf, (bytes, bytearray, memoryview)) else np.asarray(buf, dtype=np.uint8)
    row_bytes = (count + 7) // 8
    need = word_bits * row_bytes
    if len(raw) < need:
        raise ValueError(f"transposed buffer too short: have {len(raw)}, need {need}")
    planes = np.unpackbits(raw[:need].reshape(word_bits, row_bytes), axis=1)[:, :count]
    bits = planes.T  # back to (count, word_bits)
    word_bytes = word_bits // 8
    be_bytes = np.packbits(bits.reshape(-1)).reshape(count, word_bytes)
    return be_bytes.view(np.dtype(f">u{word_bytes}")).reshape(count).astype(dtype)
