"""Bit transposition — the BIT stage of SPratio (paper §3.2, Figure 4).

Grouping the first bit of every value together, then all second bits, and
so on, places the (mostly zero) sign/exponent bits of DIFFMS output next
to each other, producing long zero runs that the following RZE stage
removes.

The transposition is performed over the whole word group at once: with
``n`` words of ``w`` bits the bit matrix is ``n x w``; transposing gives
``w`` rows of ``n`` bits each, serialised row by row (each row padded to
a whole byte so the transform stays invertible for any ``n``).
"""

from __future__ import annotations

import numpy as np

from repro.bitpack import backend as _backend

_U64 = np.uint64

# Masked-swap rounds of the classic 8x8 bit-matrix transpose (Hacker's
# Delight §7-3), applied to every uint64 lane at once.  Each lane holds an
# 8x8 bit block: 8 consecutive values' copies of one big-endian byte
# column on encode, 8 adjacent bit planes' bytes on decode.
_SWAPS = (
    (_U64(7), _U64(0x00AA00AA00AA00AA)),
    (_U64(14), _U64(0x0000CCCC0000CCCC)),
    (_U64(28), _U64(0x00000000F0F0F0F0)),
)


def _transpose8(lanes: np.ndarray) -> np.ndarray:
    """In-place 8x8 bit transpose of every u64 lane (rows = bytes)."""
    for shift, mask in _SWAPS:
        t = lanes >> shift
        np.bitwise_xor(t, lanes, out=t)
        np.bitwise_and(t, mask, out=t)
        np.bitwise_xor(lanes, t, out=lanes)
        np.left_shift(t, shift, out=t)
        np.bitwise_xor(lanes, t, out=lanes)
    return lanes


def bit_transpose(words: np.ndarray, word_bits: int) -> bytes:
    """Transpose the bit matrix of ``words``; returns the row-major stream.

    Output size is ``word_bits * ceil(n / 8)`` bytes.  Dispatches to the
    active kernel backend; the numpy reference works on 8x8 bit blocks
    in uint64 lanes — O(n · word_bits / 64) lane operations — instead of
    materialising the one-byte-per-bit matrix.
    """
    return _backend.kernel("bit_transpose")(words, word_bits)


def bit_untranspose(buf: bytes | np.ndarray, count: int, word_bits: int) -> np.ndarray:
    """Inverse of :func:`bit_transpose`; returns ``count`` unsigned words.

    Dispatches to the active kernel backend.
    """
    return _backend.kernel("bit_untranspose")(buf, count, word_bits)


def _bit_transpose_numpy(words: np.ndarray, word_bits: int) -> bytes:
    """The numpy reference transpose (masked-swap u64 lanes)."""
    n = len(words)
    if n == 0:
        return b""
    word_bytes = word_bits // 8
    row_bytes = (n + 7) // 8
    n8 = row_bytes * 8
    be = words.astype(words.dtype.newbyteorder(">"), copy=False)
    grid = np.zeros((n8, word_bytes), dtype=np.uint8)
    grid[:n] = be.view(np.uint8).reshape(n, word_bytes)
    # Lane (k, c) = byte column c of values 8k..8k+7; the byte order is
    # reversed so the little-endian u64 view sees rows in transpose8's
    # orientation (the output is un-reversed symmetrically).
    blocks = grid.reshape(row_bytes, 8, word_bytes).transpose(0, 2, 1)[:, :, ::-1]
    lanes = np.ascontiguousarray(blocks).reshape(-1).view(_U64)
    planes = _transpose8(lanes).view(np.uint8).reshape(row_bytes, word_bytes, 8)
    out = planes[:, :, ::-1].transpose(1, 2, 0)  # (word_bytes, 8, row_bytes)
    return np.ascontiguousarray(out).tobytes()


def bit_transpose_batch(words2d: np.ndarray, word_bits: int) -> list[bytes]:
    """Per-row :func:`bit_transpose` of a ``(n_chunks, n)`` grid, one kernel pass.

    Requires ``n % 8 == 0`` (rows then decompose into whole 8x8 blocks, so
    chunk boundaries align with lane boundaries and all rows transpose in
    a single masked-swap sweep).  Output is byte-identical to calling
    :func:`bit_transpose` on each row.
    """
    n_chunks, n = words2d.shape
    if n % 8:
        raise ValueError("batched transpose needs a multiple of 8 words per row")
    if n == 0 or n_chunks == 0:
        return [b""] * n_chunks
    word_bytes = word_bits // 8
    row_bytes = n // 8
    be = words2d.astype(words2d.dtype.newbyteorder(">"), copy=False)
    grid = be.view(np.uint8).reshape(n_chunks * n, word_bytes)
    blocks = grid.reshape(n_chunks * row_bytes, 8, word_bytes).transpose(0, 2, 1)[:, :, ::-1]
    lanes = np.ascontiguousarray(blocks).reshape(-1).view(_U64)
    planes = _transpose8(lanes).view(np.uint8).reshape(n_chunks, row_bytes, word_bytes, 8)
    # (chunk, word_bytes, 8, row_bytes): each chunk's planes serialised
    # exactly as the single-chunk kernel lays them out.
    out = np.ascontiguousarray(planes[:, :, :, ::-1].transpose(0, 2, 3, 1))
    blob = out.tobytes()
    size = word_bits * row_bytes
    return [blob[i * size : (i + 1) * size] for i in range(n_chunks)]


def bit_untranspose_batch(
    bufs: np.ndarray, count: int, word_bits: int
) -> np.ndarray:
    """Inverse of :func:`bit_transpose_batch` over a stacked byte grid.

    ``bufs`` is ``(n_chunks, word_bits * count // 8)`` uint8 (each row one
    chunk's transposed stream); ``count % 8 == 0``.  Returns an
    ``(n_chunks, count)`` unsigned word grid.
    """
    dtype = np.dtype(f"u{word_bits // 8}")
    n_chunks = len(bufs)
    if count % 8:
        raise ValueError("batched untranspose needs a multiple of 8 words per row")
    if count == 0 or n_chunks == 0:
        return np.zeros((n_chunks, count), dtype=dtype)
    word_bytes = word_bits // 8
    row_bytes = count // 8
    planes = np.asarray(bufs, dtype=np.uint8).reshape(
        n_chunks, word_bytes, 8, row_bytes
    )
    blocks = planes.transpose(0, 3, 1, 2)[:, :, :, ::-1]
    lanes = np.ascontiguousarray(blocks).reshape(-1).view(_U64)
    grid = _transpose8(lanes).view(np.uint8).reshape(
        n_chunks, row_bytes, word_bytes, 8
    )
    be_rows = grid[:, :, :, ::-1].transpose(0, 1, 3, 2)  # (chunk, row_bytes, 8, wb)
    be_bytes = np.ascontiguousarray(be_rows).reshape(n_chunks, count * word_bytes)
    be = be_bytes.view(np.dtype(f">u{word_bytes}"))
    return be.astype(dtype)


def _bit_untranspose_numpy(buf: bytes | np.ndarray, count: int, word_bits: int) -> np.ndarray:
    """The numpy reference inverse transpose."""
    dtype = np.dtype(f"u{word_bits // 8}")
    if count == 0:
        return np.zeros(0, dtype=dtype)
    if isinstance(buf, (bytes, bytearray, memoryview)):
        raw = np.frombuffer(buf, dtype=np.uint8)
    else:
        raw = np.asarray(buf, dtype=np.uint8)
    row_bytes = (count + 7) // 8
    need = word_bits * row_bytes
    if len(raw) < need:
        raise ValueError(f"transposed buffer too short: have {len(raw)}, need {need}")
    word_bytes = word_bits // 8
    planes = raw[:need].reshape(word_bytes, 8, row_bytes)
    blocks = planes.transpose(2, 0, 1)[:, :, ::-1]  # (row_bytes, word_bytes, 8)
    lanes = np.ascontiguousarray(blocks).reshape(-1).view(_U64)
    grid = _transpose8(lanes).view(np.uint8).reshape(row_bytes, word_bytes, 8)
    be_rows = grid[:, :, ::-1].transpose(0, 2, 1)  # (row_bytes, 8, word_bytes)
    be_bytes = np.ascontiguousarray(be_rows).reshape(row_bytes * 8, word_bytes)[:count]
    return be_bytes.reshape(-1).view(np.dtype(f">u{word_bytes}")).astype(dtype)
