"""Two's-complement <-> magnitude-sign ("zigzag") representation change.

The paper's DIFFMS stage stores integer differences in magnitude-sign
format so that both small positive values (many leading ``0`` bits) and
small negative values (many leading ``1`` bits) become values with only
leading zeros.  The forward map is::

    ms = (d << 1) ^ (d >>_signed (w - 1))

where the right shift is an arithmetic shift that replicates the sign
bit, i.e. the sign ends up in the least-significant bit position.  The
map is a bijection on w-bit words; the inverse is::

    d = (ms >> 1) ^ -(ms & 1)

Both directions are implemented purely with unsigned arithmetic (modulo
2^w), which is what the reference CPU/GPU codes do as well.
"""

from __future__ import annotations

import numpy as np

_UNSIGNED_FOR_BITS = {8: np.uint8, 16: np.uint16, 32: np.uint32, 64: np.uint64}
_SIGNED_FOR_BITS = {8: np.int8, 16: np.int16, 32: np.int32, 64: np.int64}


def _check_words(words: np.ndarray, word_bits: int) -> np.dtype:
    if word_bits not in _UNSIGNED_FOR_BITS:
        raise ValueError(f"unsupported word size: {word_bits} bits")
    expected = np.dtype(_UNSIGNED_FOR_BITS[word_bits])
    if words.dtype != expected:
        raise ValueError(f"expected dtype {expected}, got {words.dtype}")
    return expected


def zigzag_encode(words: np.ndarray, word_bits: int) -> np.ndarray:
    """Map unsigned words holding two's-complement values to magnitude-sign.

    Values near zero (in the signed sense) map to small unsigned values:
    0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ...
    """
    _check_words(words, word_bits)
    signed = words.view(_SIGNED_FOR_BITS[word_bits])
    sign_fill = (signed >> (word_bits - 1)).view(words.dtype)
    return (words << 1) ^ sign_fill


def zigzag_decode(words: np.ndarray, word_bits: int) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    _check_words(words, word_bits)
    one = words.dtype.type(1)
    sign = words & one
    # -(ms & 1) as an unsigned all-ones/all-zeros mask.
    mask = (-sign.view(_SIGNED_FOR_BITS[word_bits])).view(words.dtype)
    return (words >> 1) ^ mask
