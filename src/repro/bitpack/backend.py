"""Pluggable kernel backends for the frozen-contract bitpack kernel set.

The hot loops of every codec are a small set of kernels with frozen wire
contracts (golden sha256 corpora pin their output byte for byte):

===========================  ====================================================
kernel                       contract
===========================  ====================================================
``pack_lanes``               low ``width`` bits of each word, MSB-first, padded
``unpack_lanes``             exact inverse over a validated byte stream
``count_leading_zeros``      per-element clz, ``clz(0) == word_bits``
``leading_common_bits``      clz of ``word ^ previous`` (chunk-leading ``initial``)
``bit_transpose``            8x8 masked-swap bit-matrix transpose (BIT stage)
``bit_untranspose``          exact inverse
``eliminated_counts_rows``   per-row suffix-summed leading-bit histogram
``choose_k_rows``            per-row modelled-cost argmin over that histogram
===========================  ====================================================

A *backend* is one implementation set for (a subset of) those kernels.
This module is the registry that resolves which implementation a call
site gets:

* ``numpy`` — the reference word-lane kernels (always available, always
  registered, and the byte-identity oracle every other backend is tested
  against);
* ``numba`` — fused nopython/nogil JIT loops
  (:mod:`repro.bitpack._numba_kernels`), **auto-selected when numba is
  importable**: the loops collapse the multi-pass numpy pipelines into
  single passes and release the GIL, so the ``threaded`` executor policy
  scales where numpy dispatch serialized it;
* ``cupy`` — a GPU stub (:mod:`repro.bitpack._cupy_kernels`) wired
  through the same interface, registered only when cupy imports;
  never auto-selected (host<->device transfers lose on 16 KiB chunks —
  it exists for explicit real-GPU runs).

Resolution order per call: an explicit :func:`set_backend` /
:func:`use_backend` choice, else the ``FPRZ_KERNEL_BACKEND`` environment
variable, else auto (highest-priority available backend).  A backend
that implements only part of the kernel set transparently falls back to
the numpy reference for the rest, so partial backends still produce
complete — and identical — wire bytes.

Adding a backend: implement any subset of :data:`KERNEL_NAMES` with the
exact numpy-reference semantics, then call :func:`register_backend`.
The parity suite (``tests/bitpack/test_backend.py``) automatically runs
every registered backend against the reference: a property sweep over
widths 1–64, both word sizes, and degenerate geometries, plus golden
sha256 corpus replay.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.errors import ReproError

#: Environment variable consulted when no backend was set explicitly.
BACKEND_ENV_VAR = "FPRZ_KERNEL_BACKEND"

#: The frozen-contract kernel set a backend may implement (any subset).
KERNEL_NAMES = (
    "pack_lanes",
    "unpack_lanes",
    "count_leading_zeros",
    "leading_common_bits",
    "bit_transpose",
    "bit_untranspose",
    "eliminated_counts_rows",
    "choose_k_rows",
)


@dataclass(frozen=True)
class KernelBackend:
    """One named implementation set of the bitpack kernel contract.

    ``kernels`` maps :data:`KERNEL_NAMES` entries to callables with the
    reference signatures; missing entries resolve to the numpy
    reference.  ``priority`` orders auto-selection (highest available
    wins); backends with ``auto=False`` are never auto-selected and must
    be requested by name.
    """

    name: str
    kernels: Mapping[str, Callable]
    version: str | None = None
    #: True for JIT/GPU backends (shown in stats and trajectory configs).
    accelerated: bool = False
    priority: int = 0
    auto: bool = True
    #: Fully-resolved kernel table (gaps filled with numpy), built on
    #: registration.  Call sites read this dict directly.
    resolved: dict = field(default_factory=dict, compare=False)

    def describe(self) -> str:
        ver = f" {self.version}" if self.version else ""
        native = sum(1 for k in KERNEL_NAMES if k in self.kernels)
        return f"{self.name}{ver} ({native}/{len(KERNEL_NAMES)} native kernels)"


_lock = threading.Lock()
_registry: dict[str, KernelBackend] = {}
_explicit: str | None = None
#: The resolved active backend; ``None`` forces re-resolution.
_active: KernelBackend | None = None


def _numpy_kernels() -> dict:
    # Function-level imports: the leaf modules (lanes, clz, transpose,
    # _adaptive) never import this module, but the public wrapper
    # modules (packing, clz, transpose) do — so the reference table is
    # built lazily to keep import order trivial.
    from repro.bitpack import clz as _clz
    from repro.bitpack import lanes as _lanes
    from repro.bitpack import transpose as _transpose
    from repro.stages import _adaptive as _adapt

    return {
        "pack_lanes": _lanes.pack_lanes,
        "unpack_lanes": _lanes.unpack_lanes,
        "count_leading_zeros": _clz._count_leading_zeros_numpy,
        "leading_common_bits": _clz._leading_common_bits_numpy,
        "bit_transpose": _transpose._bit_transpose_numpy,
        "bit_untranspose": _transpose._bit_untranspose_numpy,
        "eliminated_counts_rows": _adapt._eliminated_counts_rows_numpy,
        "choose_k_rows": _adapt._choose_k_rows_numpy,
    }


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Register (or replace) a backend and return it.

    Unknown kernel names are rejected — a typo would otherwise silently
    fall back to numpy and void the backend's point.
    """
    unknown = set(backend.kernels) - set(KERNEL_NAMES)
    if unknown:
        raise ReproError(
            f"backend {backend.name!r} implements unknown kernels: "
            f"{', '.join(sorted(unknown))}"
        )
    resolved = dict(_numpy_kernels())
    resolved.update(backend.kernels)
    backend.resolved.clear()
    backend.resolved.update(resolved)
    global _active
    with _lock:
        _registry[backend.name] = backend
        _active = None
    return backend


def _ensure_builtin_backends() -> None:
    if "numpy" in _registry:
        return
    import numpy as np

    register_backend(KernelBackend(
        name="numpy", kernels=_numpy_kernels(), version=np.__version__,
        accelerated=False, priority=0,
    ))
    from repro.bitpack import _numba_kernels

    if _numba_kernels.HAVE_NUMBA:
        register_backend(_numba_kernels.make_backend())
    from repro.bitpack import _cupy_kernels

    if _cupy_kernels.HAVE_CUPY:
        register_backend(_cupy_kernels.make_backend())


def available_backends() -> tuple[str, ...]:
    """Registered backend names, auto-resolution order first."""
    _ensure_builtin_backends()
    with _lock:
        backends = sorted(
            _registry.values(), key=lambda b: (-b.priority, b.name)
        )
    return tuple(b.name for b in backends)


def get_backend(name: str) -> KernelBackend:
    """Look up one registered backend by name."""
    _ensure_builtin_backends()
    with _lock:
        backend = _registry.get(name)
    if backend is None:
        raise ReproError(
            f"unknown kernel backend {name!r}; available: "
            f"{', '.join(available_backends())} "
            f"(numba/cupy register only when importable)"
        )
    return backend


def _resolve() -> KernelBackend:
    _ensure_builtin_backends()
    name = _explicit or os.environ.get(BACKEND_ENV_VAR) or None
    if name:
        return get_backend(name)
    with _lock:
        candidates = [b for b in _registry.values() if b.auto]
        candidates.sort(key=lambda b: (-b.priority, b.name))
        return candidates[0]


def active_backend() -> KernelBackend:
    """The backend the next kernel call will use."""
    global _active
    backend = _active
    if backend is None:
        backend = _active = _resolve()
    return backend


def kernel(name: str) -> Callable:
    """Resolve one kernel against the active backend (numpy fills gaps)."""
    return active_backend().resolved[name]


def set_backend(name: str | None) -> str | None:
    """Pin the process-wide backend; ``None`` restores auto-resolution.

    Returns the previously pinned name (``None`` if resolution was
    automatic) so callers can restore it.
    """
    global _explicit, _active
    if name is not None:
        get_backend(name)  # validate before switching
    with _lock:
        previous = _explicit
        _explicit = name
        _active = None
    return previous


@contextmanager
def use_backend(name: str | None):
    """Context manager: pin a backend, restore the previous pin on exit.

    Process-wide (kernel dispatch is a module-level decision), so tests
    that use it must not run concurrent compressions expecting different
    backends.
    """
    previous = set_backend(name)
    try:
        yield active_backend()
    finally:
        set_backend(previous)


def backend_versions() -> dict:
    """Name -> version of every registered backend (for result configs)."""
    _ensure_builtin_backends()
    with _lock:
        return {b.name: b.version for b in _registry.values()}
