"""Vectorised count-leading-zeros and leading-common-bits.

Used by:

* enhanced MPLG — leading zeros of each subchunk maximum decide the packed
  bit width;
* RAZE — a histogram of per-value leading-zero counts drives the adaptive
  top-``k`` split;
* RARE — the analogous histogram of leading-*common*-bit counts (with the
  previous value) drives its adaptive split.

The numpy implementation avoids float conversion (which misrounds near
powers of two above 2^53): it smears the leading one bit rightward with
a shift/OR cascade and counts the resulting set bits, so
``clz = word_bits - popcount(smear(x))``.  This touches each word
O(log word_bits) times with no per-call index allocation (the previous
byte-scan needed a fancy-indexed gather of the first nonzero byte).

Both public functions dispatch through the kernel backend registry
(:mod:`repro.bitpack.backend`); the smear/popcount code below is the
``numpy`` reference implementation every other backend is verified
against byte for byte.
"""

from __future__ import annotations

import numpy as np

from repro.bitpack import backend as _backend

# _POP8[b] = number of set bits in the 8-bit value b; fallback popcount
# table for numpy builds without np.bitwise_count (added in numpy 2.0).
_POP8 = np.array([bin(v).count("1") for v in range(256)], dtype=np.uint8)

_HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count")


def _popcount(words: np.ndarray) -> np.ndarray:
    if _HAVE_BITWISE_COUNT:
        return np.bitwise_count(words)
    by = words.view(np.uint8).reshape(words.shape + (words.dtype.itemsize,))
    return _POP8[by].sum(axis=-1, dtype=np.uint8)


def count_leading_zeros(words: np.ndarray, word_bits: int) -> np.ndarray:
    """Per-element count of leading zero bits; ``clz(0) == word_bits``.

    ``words`` must be an unsigned array whose itemsize matches
    ``word_bits``; any shape is accepted (the batched stage kernels pass
    ``(n_chunks, words_per_chunk)`` grids) and the result has the same
    shape.  Returns a ``uint8`` array.  Dispatches to the active kernel
    backend.
    """
    return _backend.kernel("count_leading_zeros")(words, word_bits)


def leading_common_bits(words: np.ndarray, word_bits: int, *, initial: int = 0) -> np.ndarray:
    """Per-element count of leading bits shared with the previous element.

    Element 0 is compared against ``initial`` (default 0, matching the
    convention that the value preceding a chunk is zero).  Identical
    neighbours share all ``word_bits`` bits.  Dispatches to the active
    kernel backend.
    """
    return _backend.kernel("leading_common_bits")(words, word_bits, initial=initial)


def _count_leading_zeros_numpy(words: np.ndarray, word_bits: int) -> np.ndarray:
    """The numpy reference CLZ (shift-smear + popcount)."""
    if words.dtype.itemsize * 8 != word_bits:
        raise ValueError(f"dtype {words.dtype} does not match word_bits={word_bits}")
    if words.size == 0:
        return np.zeros(words.shape, dtype=np.uint8)
    dt = words.dtype.type
    x = words | (words >> dt(1))
    shift = 2
    while shift < word_bits:
        x |= x >> dt(shift)
        shift <<= 1
    # x now has every bit at or below the leading one set.
    return (np.uint8(word_bits) - _popcount(x)).astype(np.uint8)


def _leading_common_bits_numpy(
    words: np.ndarray, word_bits: int, *, initial: int = 0
) -> np.ndarray:
    """The numpy reference leading-common-bits (CLZ of the XOR stream)."""
    if len(words) == 0:
        return np.zeros(0, dtype=np.uint8)
    prev = np.empty_like(words)
    prev[0] = words.dtype.type(initial)
    prev[1:] = words[:-1]
    return _count_leading_zeros_numpy(words ^ prev, word_bits)
