"""Vectorised count-leading-zeros and leading-common-bits.

Used by:

* enhanced MPLG — leading zeros of each subchunk maximum decide the packed
  bit width;
* RAZE — a histogram of per-value leading-zero counts drives the adaptive
  top-``k`` split;
* RARE — the analogous histogram of leading-*common*-bit counts (with the
  previous value) drives its adaptive split.

The implementation avoids float conversion (which misrounds near powers
of two above 2^53) by scanning the big-endian byte view with an 8-bit
lookup table.
"""

from __future__ import annotations

import numpy as np

# _CLZ8[b] = number of leading zero bits in the 8-bit value b (clz(0) = 8).
_CLZ8 = np.zeros(256, dtype=np.uint8)
_CLZ8[0] = 8
for _value in range(1, 256):
    _CLZ8[_value] = 8 - _value.bit_length()


def count_leading_zeros(words: np.ndarray, word_bits: int) -> np.ndarray:
    """Per-element count of leading zero bits; ``clz(0) == word_bits``.

    ``words`` must be an unsigned array whose itemsize matches
    ``word_bits``.  Returns a ``uint8`` array of the same length.
    """
    if words.dtype.itemsize * 8 != word_bits:
        raise ValueError(f"dtype {words.dtype} does not match word_bits={word_bits}")
    n = len(words)
    if n == 0:
        return np.zeros(0, dtype=np.uint8)
    word_bytes = word_bits // 8
    # Big-endian byte view: byte 0 holds the most significant bits.
    be = words.astype(words.dtype.newbyteorder(">"), copy=False)
    rows = be.view(np.uint8).reshape(n, word_bytes)
    nonzero = rows != 0
    # Index of the first nonzero byte; argmax returns 0 for all-zero rows,
    # which the `any` mask below corrects.
    first = np.argmax(nonzero, axis=1)
    has_nonzero = nonzero.any(axis=1)
    first_byte = rows[np.arange(n), first]
    clz = first.astype(np.uint16) * 8 + _CLZ8[first_byte]
    clz[~has_nonzero] = word_bits
    return clz.astype(np.uint8)


def leading_common_bits(words: np.ndarray, word_bits: int, *, initial: int = 0) -> np.ndarray:
    """Per-element count of leading bits shared with the previous element.

    Element 0 is compared against ``initial`` (default 0, matching the
    convention that the value preceding a chunk is zero).  Identical
    neighbours share all ``word_bits`` bits.
    """
    if len(words) == 0:
        return np.zeros(0, dtype=np.uint8)
    prev = np.empty_like(words)
    prev[0] = words.dtype.type(initial)
    prev[1:] = words[:-1]
    return count_leading_zeros(words ^ prev, word_bits)
