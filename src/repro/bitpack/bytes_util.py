"""Byte-level helpers: word views, byte shuffles, and safe conversions.

Word order convention
---------------------
Throughout the library, byte streams are interpreted as **little-endian**
words (the native order on every machine the paper evaluates).  The
*bit*-level primitives in :mod:`repro.bitpack.packing` and
:mod:`repro.bitpack.transpose` use MSB-first big-endian bit order
internally, which is an implementation detail hidden behind their APIs.
"""

from __future__ import annotations

import numpy as np

WORD_DTYPES = {8: np.dtype("<u1"), 16: np.dtype("<u2"), 32: np.dtype("<u4"), 64: np.dtype("<u8")}


def words_from_bytes(data: bytes | np.ndarray, word_bits: int) -> tuple[np.ndarray, bytes]:
    """Split ``data`` into an array of little-endian words plus a tail.

    Returns ``(words, tail)`` where ``tail`` holds the trailing bytes that
    do not fill a whole word (empty for aligned inputs).  The words array
    is a copy, safe to mutate.
    """
    dtype = WORD_DTYPES[word_bits]
    buf = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray, memoryview)) else np.asarray(data, dtype=np.uint8)
    word_bytes = dtype.itemsize
    n_words = len(buf) // word_bytes
    body = buf[: n_words * word_bytes]
    tail = buf[n_words * word_bytes :].tobytes()
    words = body.view(dtype).astype(dtype, copy=True)
    return words, tail


def words_to_bytes(words: np.ndarray, tail: bytes | memoryview = b"") -> bytes:
    """Inverse of :func:`words_from_bytes`: serialise words and append tail."""
    if not isinstance(tail, bytes):
        tail = bytes(tail)
    return words.astype(words.dtype.newbyteorder("<"), copy=False).tobytes() + tail


def byte_shuffle(data: bytes | np.ndarray, word_bytes: int) -> bytes:
    """Group byte 0 of every word together, then byte 1, and so on.

    This is the classic "shuffle" filter (as in HDF5/Blosc and the SPDP
    compressor).  Trailing bytes that do not fill a word are appended
    unchanged.
    """
    buf = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray)) else np.asarray(data, dtype=np.uint8)
    n_words = len(buf) // word_bytes
    body = buf[: n_words * word_bytes]
    tail = buf[n_words * word_bytes :]
    shuffled = body.reshape(n_words, word_bytes).T.reshape(-1)
    return shuffled.tobytes() + tail.tobytes()


def byte_unshuffle(data: bytes | np.ndarray, word_bytes: int) -> bytes:
    """Inverse of :func:`byte_shuffle`."""
    buf = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray)) else np.asarray(data, dtype=np.uint8)
    n_words = len(buf) // word_bytes
    body = buf[: n_words * word_bytes]
    tail = buf[n_words * word_bytes :]
    unshuffled = body.reshape(word_bytes, n_words).T.reshape(-1)
    return unshuffled.tobytes() + tail.tobytes()
