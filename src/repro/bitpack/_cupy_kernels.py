"""CuPy GPU stub backend — the real-GPU path through the kernel registry.

Registered only when ``cupy`` imports (never auto-selected: host<->device
transfers lose badly on the paper's 16 KiB chunks, so GPU runs must be
requested explicitly with ``--backend cupy`` / ``set_backend("cupy")``).

This is deliberately a *stub* in the paper's sense of compatible
implementations: the elementwise kernels (CLZ, leading-common-bits, the
per-row eliminated-counts histogram) run on the device with the same
shift-smear/popcount formulation as the numpy reference, while the
serialisation kernels (pack/unpack, bit transpose) fall back to the
numpy reference on the host.  Wire bytes are therefore identical by
construction, and the parity suite (which runs every registered backend
against the reference) keeps it that way as the device coverage grows.
Porting the word-lane pack kernels to fused device kernels is the open
item tracked in ROADMAP.md.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where cupy + a GPU exist
    import cupy

    cupy.zeros(1)  # fail fast when no device/driver is usable
    HAVE_CUPY = True
    CUPY_VERSION = cupy.__version__
except Exception:  # pragma: no cover - ImportError or CUDA runtime errors
    cupy = None
    HAVE_CUPY = False
    CUPY_VERSION = None


def _device_clz(words, word_bits: int):  # pragma: no cover - GPU only
    """Shift-smear + popcount CLZ on device, mirroring the reference."""
    x = cupy.asarray(words)
    dt = x.dtype.type
    smear = x | (x >> dt(1))
    shift = 2
    while shift < word_bits:
        smear |= smear >> dt(shift)
        shift <<= 1
    by = smear.view(cupy.uint8).reshape(smear.shape + (x.dtype.itemsize,))
    pop8 = cupy.asarray(
        np.array([bin(v).count("1") for v in range(256)], dtype=np.uint8)
    )
    pop = pop8[by].sum(axis=-1, dtype=cupy.uint8)
    return (cupy.uint8(word_bits) - pop).astype(cupy.uint8)


def _make_kernels() -> dict:  # pragma: no cover - GPU only
    def count_leading_zeros(words: np.ndarray, word_bits: int) -> np.ndarray:
        if words.dtype.itemsize * 8 != word_bits:
            raise ValueError(
                f"dtype {words.dtype} does not match word_bits={word_bits}"
            )
        if words.size == 0:
            return np.zeros(words.shape, dtype=np.uint8)
        return cupy.asnumpy(_device_clz(words, word_bits))

    def leading_common_bits(
        words: np.ndarray, word_bits: int, *, initial: int = 0
    ) -> np.ndarray:
        if len(words) == 0:
            return np.zeros(0, dtype=np.uint8)
        x = cupy.asarray(words)
        prev = cupy.empty_like(x)
        prev[0] = x.dtype.type(initial)
        prev[1:] = x[:-1]
        return cupy.asnumpy(_device_clz(x ^ prev, word_bits))

    def eliminated_counts_rows(
        leading2d: np.ndarray, word_bits: int
    ) -> np.ndarray:
        n_rows = len(leading2d)
        bins = word_bits + 1
        flat = cupy.asarray(leading2d, dtype=cupy.int64)
        offset = cupy.arange(n_rows, dtype=cupy.int64)[:, None] * bins
        hist = cupy.bincount(
            (flat + offset).reshape(-1), minlength=n_rows * bins
        )
        hist = hist[: n_rows * bins].reshape(n_rows, bins)
        return cupy.asnumpy(cupy.cumsum(hist[:, ::-1], axis=1)[:, ::-1])

    return {
        "count_leading_zeros": count_leading_zeros,
        "leading_common_bits": leading_common_bits,
        "eliminated_counts_rows": eliminated_counts_rows,
        # pack_lanes / unpack_lanes / bit_(un)transpose / choose_k_rows
        # intentionally absent: they resolve to the numpy reference.
    }


def make_backend():  # pragma: no cover - GPU only
    """The registered ``cupy`` backend (call only when cupy imports)."""
    from repro.bitpack.backend import KernelBackend

    return KernelBackend(
        name="cupy",
        kernels=_make_kernels(),
        version=CUPY_VERSION,
        accelerated=True,
        priority=5,
        auto=False,
    )
