"""Fused Numba JIT implementations of the bitpack kernel contract.

The numpy reference kernels (:mod:`repro.bitpack.lanes`, ``clz``,
``transpose``, ``stages._adaptive``) are built from many vectorised
passes; on the paper's 16 KiB chunks their per-op dispatch overhead
dominates.  The loops here collapse each kernel into a single pass over
the data and compile with ``@njit(nogil=True)``: one branchy scalar loop
per kernel, no intermediate arrays, and the GIL released for the whole
call — which is what lets the ``threaded`` executor policy scale chunk
work across cores (see docs/EXECUTION.md).

Byte-for-byte identity with the reference is the contract.  Every loop
body is written to run unchanged **without** numba (``_jit`` degrades to
the identity decorator), and the test suite registers that pure-Python
variant as the ``numba-py`` backend, so the exact loop semantics are
pinned against the numpy oracle even in numba-free environments; with
numba installed, the compiled variant runs the same parity sweep plus
the golden sha256 corpora (CI ``backend-smoke``).

Numba-portability rules used throughout (the loops must mean the same
thing under numpy scalar semantics and nopython semantics):

* every bit-twiddled value, mask, and shift amount is ``np.uint64`` —
  mixing uint64 with signed ints promotes to float64 under numba;
* no shift amount ever reaches 64 (undefined in LLVM, wrap-around on
  x86, but an explicit zero under numpy scalars);
* loop counters and indices stay plain Python ints.

Byte-aligned widths (``width % 8 == 0``) delegate to the reference's
aligned path: that regime is a single truncating byteswap ``astype``
(several GB/s) a scalar loop cannot beat.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
    NUMBA_VERSION = numba.__version__
except ImportError:  # pragma: no cover
    numba = None
    HAVE_NUMBA = False
    NUMBA_VERSION = None


def _jit(fn):
    """``numba.njit(nogil=True)`` when available, else the bare function."""
    if HAVE_NUMBA:  # pragma: no cover - exercised only with numba installed
        return numba.njit(cache=True, nogil=True)(fn)
    return fn


_U64_BE = np.dtype(">u8")
_NATIVE = {32: np.dtype("u4"), 64: np.dtype("u8")}

_ONE = np.uint64(1)
_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)


# ---------------------------------------------------------------------------
# pack / unpack


def _pack_loop(words, n, width, out64):
    """Accumulate ``width``-bit values MSB-first into logical u64 windows.

    ``out64[j]`` receives stream bits ``[64j, 64j + 64)`` as one logical
    value (serialised big-endian by the wrapper).  Invariant: ``acc``'s
    low ``nacc`` bits are pending stream bits; anything above is stale
    and is always shifted out before it can be observed.
    """
    if width == 64:
        mask = _FULL
    else:
        mask = (_ONE << np.uint64(width)) - _ONE
    acc = np.uint64(0)
    nacc = 0
    j = 0
    for i in range(n):
        v = np.uint64(words[i]) & mask
        if nacc + width >= 64:
            spill = nacc + width - 64
            if nacc == 0:
                # Only reachable at width == 64 (spill == 0).
                full = v >> np.uint64(spill)
            else:
                full = (acc << np.uint64(64 - nacc)) | (v >> np.uint64(spill))
            out64[j] = full
            j += 1
            acc = v
            nacc = spill
        else:
            acc = (acc << np.uint64(width)) | v
            nacc += width
    if nacc > 0:
        out64[j] = acc << np.uint64(64 - nacc)


def _unpack_loop(lanes, count, width, out):
    """Gather each value from (at most two) logical u64 stream windows.

    ``lanes[q]`` holds stream bits ``[64q, 64q + 64)``; the wrapper
    appends a zero pad lane so ``lanes[q + 1]`` is always readable.
    Stores truncate to the output dtype, which is safe because the
    double shift leaves at most ``width <= word_bits`` live bits.
    """
    bitpos = 0
    for i in range(count):
        q = bitpos >> 6
        off = bitpos & 63
        v = (lanes[q] << np.uint64(off)) >> np.uint64(64 - width)
        if off + width > 64:
            v |= lanes[q + 1] >> np.uint64(128 - width - off)
        out[i] = v
        bitpos += width


def _clz64(x):
    """Leading zeros of a nonzero uint64 (branchy binary search)."""
    c = 0
    if x >> np.uint64(32) == np.uint64(0):
        c += 32
        x <<= np.uint64(32)
    if x >> np.uint64(48) == np.uint64(0):
        c += 16
        x <<= np.uint64(16)
    if x >> np.uint64(56) == np.uint64(0):
        c += 8
        x <<= np.uint64(8)
    if x >> np.uint64(60) == np.uint64(0):
        c += 4
        x <<= np.uint64(4)
    if x >> np.uint64(62) == np.uint64(0):
        c += 2
        x <<= np.uint64(2)
    if x >> np.uint64(63) == np.uint64(0):
        c += 1
    return c


def _clz_loop(words, n, shift_up, word_bits, out):
    for i in range(n):
        x = np.uint64(words[i])
        if x == np.uint64(0):
            out[i] = word_bits
        else:
            out[i] = _clz64(x << shift_up)


def _lcb_loop(words, n, shift_up, word_bits, initial, out):
    prev = initial
    for i in range(n):
        x = np.uint64(words[i])
        d = x ^ prev
        if d == np.uint64(0):
            out[i] = word_bits
        else:
            out[i] = _clz64(d << shift_up)
        prev = x


def _transpose8(x):
    """8x8 bit-matrix transpose of one u64 lane (Hacker's Delight 7-3)."""
    t = (x ^ (x >> np.uint64(7))) & np.uint64(0x00AA00AA00AA00AA)
    x = x ^ t ^ (t << np.uint64(7))
    t = (x ^ (x >> np.uint64(14))) & np.uint64(0x0000CCCC0000CCCC)
    x = x ^ t ^ (t << np.uint64(14))
    t = (x ^ (x >> np.uint64(28))) & np.uint64(0x00000000F0F0F0F0)
    x = x ^ t ^ (t << np.uint64(28))
    return x


def _transpose_loop(words, n, word_bytes, out):
    """Bit-transpose ``n`` words into MSB-first bit-plane rows.

    Output layout (matches the reference): plane ``c*8 + b`` (byte
    column ``c`` big-endian, bit ``b`` MSB-first) is a row of
    ``ceil(n/8)`` bytes whose byte ``k`` packs values ``8k..8k+7``,
    value ``8k`` in the byte's MSB.
    """
    row_bytes = (n + 7) >> 3
    mask8 = np.uint64(0xFF)
    for k in range(row_bytes):
        base = k * 8
        hi = n - base
        if hi > 8:
            hi = 8
        for c in range(word_bytes):
            col = np.uint64(8 * (word_bytes - 1 - c))
            lane = np.uint64(0)
            for r in range(hi):
                b = (np.uint64(words[base + r]) >> col) & mask8
                lane |= b << np.uint64(56 - 8 * r)
            lane = _transpose8(lane)
            for b in range(8):
                out[(c * 8 + b) * row_bytes + k] = (
                    lane >> np.uint64(56 - 8 * b)
                ) & mask8


def _untranspose_loop(raw, count, word_bytes, out):
    """Inverse of :func:`_transpose_loop`; ``out`` is a zeroed u64 array."""
    row_bytes = (count + 7) >> 3
    for k in range(row_bytes):
        base = k * 8
        hi = count - base
        if hi > 8:
            hi = 8
        for c in range(word_bytes):
            col = np.uint64(8 * (word_bytes - 1 - c))
            lane = np.uint64(0)
            for b in range(8):
                lane |= np.uint64(raw[(c * 8 + b) * row_bytes + k]) << np.uint64(
                    56 - 8 * b
                )
            lane = _transpose8(lane)
            for r in range(hi):
                byte = (lane >> np.uint64(56 - 8 * r)) & np.uint64(0xFF)
                out[base + r] |= byte << col


def _elim_rows_loop(leading, n_rows, n, word_bits, counts):
    """Per-row histogram + suffix sum, in place over a zeroed grid."""
    for r in range(n_rows):
        for i in range(n):
            counts[r, leading[r, i]] += 1
        total = 0
        for k in range(word_bits, -1, -1):
            total += counts[r, k]
            counts[r, k] = total


def _choose_k_rows_loop(counts, n_rows, n, word_bits, k_out, cost_out):
    """Closed-form cost argmin per row (first minimum, like np.argmin)."""
    cost_disabled = n * word_bits
    for r in range(n_rows):
        best_k = 1
        best_cost = n + (n - counts[r, 1]) * 1 + n * (word_bits - 1)
        for k in range(2, word_bits + 1):
            cost = n + (n - counts[r, k]) * k + n * (word_bits - k)
            if cost < best_cost:
                best_cost = cost
                best_k = k
        if best_cost >= cost_disabled:
            k_out[r] = 0
            cost_out[r] = cost_disabled
        else:
            k_out[r] = best_k
            cost_out[r] = best_cost


# ---------------------------------------------------------------------------
# Kernel-contract wrappers around the loops


def _make_kernels(jit):
    """Build the kernel table with the loops passed through ``jit``.

    Called twice: with :func:`_jit` for the real backend, and with the
    identity function by the test suite to pin the pure-Python loop
    semantics (the ``numba-py`` parity backend).
    """
    pack_loop = jit(_pack_loop)
    unpack_loop = jit(_unpack_loop)
    clz_loop = jit(_clz_loop)
    lcb_loop = jit(_lcb_loop)
    transpose_loop = jit(_transpose_loop)
    untranspose_loop = jit(_untranspose_loop)
    elim_rows_loop = jit(_elim_rows_loop)
    choose_k_rows_loop = jit(_choose_k_rows_loop)

    def pack_lanes(words: np.ndarray, width: int, word_bits: int) -> bytes:
        from repro.bitpack.lanes import _pack_aligned

        n = len(words)
        if n == 0 or width == 0:
            return b""
        if width % 8 == 0:
            # The aligned regime is a truncating byteswap astype — a
            # memcpy-shaped vector op a scalar loop cannot beat.
            return _pack_aligned(words, width, word_bits)
        nbytes = (n * width + 7) // 8
        out64 = np.zeros((nbytes + 7) // 8, dtype=np.uint64)
        pack_loop(np.ascontiguousarray(words), n, width, out64)
        return out64.astype(_U64_BE).tobytes()[:nbytes]

    def unpack_lanes(
        raw: np.ndarray, count: int, width: int, word_bits: int
    ) -> np.ndarray:
        from repro.bitpack.lanes import _unpack_aligned

        dtype = _NATIVE[word_bits]
        if count == 0 or width == 0:
            return np.zeros(count, dtype=dtype)
        if width % 8 == 0:
            return _unpack_aligned(raw, count, width, word_bits, dtype)
        need = (count * width + 7) // 8
        n_lanes = (need + 7) // 8 + 1  # +1: always-readable zero spill lane
        buf = np.zeros(n_lanes * 8, dtype=np.uint8)
        buf[:need] = raw[:need]
        lanes = buf.view(_U64_BE).astype(np.uint64)
        out = np.empty(count, dtype=dtype)
        unpack_loop(lanes, count, width, out)
        return out

    def count_leading_zeros(words: np.ndarray, word_bits: int) -> np.ndarray:
        if words.dtype.itemsize * 8 != word_bits:
            raise ValueError(
                f"dtype {words.dtype} does not match word_bits={word_bits}"
            )
        out = np.empty(words.size, dtype=np.uint8)
        if words.size:
            clz_loop(
                np.ascontiguousarray(words).reshape(-1), words.size,
                np.uint64(64 - word_bits), word_bits, out,
            )
        return out.reshape(words.shape)

    def leading_common_bits(
        words: np.ndarray, word_bits: int, *, initial: int = 0
    ) -> np.ndarray:
        out = np.empty(len(words), dtype=np.uint8)
        if len(words):
            lcb_loop(
                np.ascontiguousarray(words), len(words),
                np.uint64(64 - word_bits), word_bits,
                np.uint64(words.dtype.type(initial)), out,
            )
        return out

    def bit_transpose(words: np.ndarray, word_bits: int) -> bytes:
        n = len(words)
        if n == 0:
            return b""
        row_bytes = (n + 7) // 8
        out = np.zeros(word_bits * row_bytes, dtype=np.uint8)
        transpose_loop(np.ascontiguousarray(words), n, word_bits // 8, out)
        return out.tobytes()

    def bit_untranspose(
        buf: bytes | np.ndarray, count: int, word_bits: int
    ) -> np.ndarray:
        dtype = _NATIVE[word_bits]
        if count == 0:
            return np.zeros(0, dtype=dtype)
        raw = (
            np.frombuffer(buf, dtype=np.uint8)
            if isinstance(buf, (bytes, bytearray, memoryview))
            else np.ascontiguousarray(buf, dtype=np.uint8)
        )
        need = word_bits * ((count + 7) // 8)
        if len(raw) < need:
            raise ValueError(
                f"transposed buffer too short: have {len(raw)}, need {need}"
            )
        out = np.zeros(count, dtype=np.uint64)
        untranspose_loop(raw, count, word_bits // 8, out)
        return out.astype(dtype)

    def eliminated_counts_rows(
        leading2d: np.ndarray, word_bits: int
    ) -> np.ndarray:
        grid = np.ascontiguousarray(leading2d, dtype=np.uint8)
        n_rows = len(grid)
        counts = np.zeros((n_rows, word_bits + 1), dtype=np.int64)
        if n_rows and grid.shape[1]:
            elim_rows_loop(grid, n_rows, grid.shape[1], word_bits, counts)
        return counts

    def choose_k_rows(
        leading2d: np.ndarray, n: int, word_bits: int
    ) -> tuple[np.ndarray, np.ndarray]:
        n_rows = len(leading2d)
        k = np.zeros(n_rows, dtype=np.int64)
        cost = np.zeros(n_rows, dtype=np.int64)
        if n == 0:
            return k, cost
        counts = eliminated_counts_rows(leading2d, word_bits)
        if n_rows:
            choose_k_rows_loop(counts, n_rows, n, word_bits, k, cost)
        return k, cost

    return {
        "pack_lanes": pack_lanes,
        "unpack_lanes": unpack_lanes,
        "count_leading_zeros": count_leading_zeros,
        "leading_common_bits": leading_common_bits,
        "bit_transpose": bit_transpose,
        "bit_untranspose": bit_untranspose,
        "eliminated_counts_rows": eliminated_counts_rows,
        "choose_k_rows": choose_k_rows,
    }


def pure_python_kernels() -> dict:
    """The loop bodies with no JIT — the parity oracle for numba-free CI."""
    return _make_kernels(lambda fn: fn)


def make_backend():
    """The registered ``numba`` backend (call only when numba imports)."""
    from repro.bitpack.backend import KernelBackend

    return KernelBackend(
        name="numba",
        kernels=_make_kernels(_jit),
        version=NUMBA_VERSION,
        accelerated=True,
        priority=10,
        auto=True,
    )
